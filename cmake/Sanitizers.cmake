# AddressSanitizer + UndefinedBehaviorSanitizer, gated behind RIP_SANITIZE
# so the `asan` preset is one cache variable away from any configuration.

option(RIP_SANITIZE "Enable AddressSanitizer + UndefinedBehaviorSanitizer" OFF)

if(RIP_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
