# Sanitizer toggles, each gated behind a cache option so the `asan` /
# `tsan` presets are one variable away from any configuration.
#
#   RIP_SANITIZE         AddressSanitizer + UndefinedBehaviorSanitizer
#   RIP_SANITIZE_THREAD  ThreadSanitizer (for the persistent scheduler
#                        and the parallel/sharded sweep tests)
#
# The two are mutually exclusive — ASan and TSan cannot be linked into
# one binary.

option(RIP_SANITIZE "Enable AddressSanitizer + UndefinedBehaviorSanitizer" OFF)
option(RIP_SANITIZE_THREAD "Enable ThreadSanitizer" OFF)

if(RIP_SANITIZE AND RIP_SANITIZE_THREAD)
  message(FATAL_ERROR "RIP_SANITIZE and RIP_SANITIZE_THREAD are mutually "
                      "exclusive: ASan and TSan cannot coexist")
endif()

if(RIP_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()

if(RIP_SANITIZE_THREAD)
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
endif()
