// Design-to-signoff hand-off: run RIP on a net, validate the solution
// with the built-in transient simulator, then export a SPICE deck for an
// external circuit simulator. Also demonstrates the RIPNET text format
// for exchanging routed nets.
//
//   $ ./examples/spice_export            # deck to rip_solution.sp
//   $ ./examples/spice_export mynet.net  # read a RIPNET file instead

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "eval/workload.hpp"
#include "net/net_io.hpp"
#include "rc/buffered_chain.hpp"
#include "sim/spice.hpp"
#include "sim/transient.hpp"
#include "tech/technology.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();
  const auto& dev = tech.device();

  // Load a net from a file if given; otherwise draw one from the paper's
  // population.
  net::Net n = [&] {
    if (argc > 1) return net::read_net_file(argv[1]);
    const auto wl = eval::make_paper_workload(tech, 1, 1717);
    return wl.front().net;
  }();
  std::cout << "net '" << n.name() << "': " << n.segments().size()
            << " segments, " << n.total_length_um() / 1000.0 << " mm\n";

  // Echo the net in RIPNET format (the interchange format).
  std::cout << "\n--- RIPNET ---\n";
  net::write_net(std::cout, n);

  const auto md = dp::min_delay(n, dev, {10.0, 400.0, 10.0, 200.0});
  const double tau_t = 1.3 * md.tau_min_fs;
  const auto rip = core::rip_insert(n, dev, tau_t);
  if (rip.status != dp::Status::kOptimal) {
    std::cout << "target infeasible — nothing to export\n";
    return 1;
  }
  std::cout << "\nRIP solution: " << rip.solution.size()
            << " repeaters, width " << fmt_f(rip.total_width_u, 0)
            << " u, Elmore delay "
            << fmt_unit(units::fs_to_ns(rip.delay_fs), 3, "ns") << "\n";

  // Cross-check with the internal transient simulator before export.
  sim::TransientOptions sim_opts;
  sim_opts.max_section_um = 100.0;
  const double t50 = sim::chain_t50_fs(n, rip.solution, dev, sim_opts);
  std::cout << "transient 50% delay: "
            << fmt_unit(units::fs_to_ns(t50), 3, "ns")
            << " (Elmore is a conservative upper bound)\n";

  const std::string path = "rip_solution.sp";
  std::ofstream out(path);
  sim::SpiceOptions spice_opts;
  spice_opts.vdd_v = tech.power().vdd_v;
  sim::write_spice_deck(out, n, rip.solution, dev, spice_opts);
  std::cout << "SPICE deck written to " << path
            << " (switch-level repeater models, .measure t50 included)\n";
  return 0;
}
