// Quickstart: build a routed two-pin net, compute its minimum achievable
// delay, and run Algorithm RIP against the conventional power-aware DP
// baseline for a mid-range timing target.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "net/net.hpp"
#include "rc/buffered_chain.hpp"
#include "tech/technology.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main() {
  using namespace rip;

  // The built-in calibrated 0.18 um kit (metal4/metal5 global routing).
  const tech::Technology tech = tech::make_tech180();
  const tech::RepeaterDevice& device = tech.device();

  // A 12.3 mm net of six routed segments with one forbidden zone (a
  // macro-block between 4.2 mm and 7.0 mm).
  const auto& m4 = tech.layer("metal4");
  const auto& m5 = tech.layer("metal5");
  net::NetBuilder builder("quickstart_net");
  builder.driver(120.0).receiver(60.0);
  builder.segment(2100.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  builder.segment(1800.0, m5.r_ohm_per_um, m5.c_ff_per_um, m5.name);
  builder.segment(2500.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  builder.segment(2000.0, m5.r_ohm_per_um, m5.c_ff_per_um, m5.name);
  builder.segment(1400.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  builder.segment(2500.0, m5.r_ohm_per_um, m5.c_ff_per_um, m5.name);
  builder.zone(4200.0, 7000.0);
  const net::Net net = builder.build();

  std::cout << "net: " << net.name() << ", length "
            << net.total_length_um() / 1000.0 << " mm, "
            << net.segments().size() << " segments, "
            << net.zones().size() << " forbidden zone(s)\n";

  // Unbuffered delay and the minimum achievable (buffered) delay.
  const double unbuffered =
      rc::elmore_delay_fs(net, net::RepeaterSolution{}, device);
  const auto md = dp::min_delay(net, device);
  std::cout << "unbuffered delay: " << fmt_unit(units::fs_to_ns(unbuffered), 3, "ns")
            << "\n";
  std::cout << "tau_min:          " << fmt_unit(units::fs_to_ns(md.tau_min_fs), 3, "ns")
            << "  (" << md.solution.size() << " repeaters)\n";

  // Design for a 1.3 * tau_min timing budget.
  const double tau_t = 1.3 * md.tau_min_fs;
  std::cout << "timing target:    " << fmt_unit(units::fs_to_ns(tau_t), 3, "ns")
            << "\n\n";

  // Algorithm RIP (Fig. 6 of the paper).
  const core::RipResult rip = core::rip_insert(net, device, tau_t);
  std::cout << "RIP:      " << rip.solution.size() << " repeaters, total width "
            << fmt_f(rip.total_width_u, 1) << " u, delay "
            << fmt_unit(units::fs_to_ns(rip.delay_fs), 3, "ns") << " ("
            << fmt_f(rip.runtime_s * 1e3, 2) << " ms)\n";
  for (const auto& r : rip.solution.repeaters()) {
    std::cout << "          x = " << fmt_f(r.position_um, 0) << " um, w = "
              << fmt_f(r.width_u, 0) << " u\n";
  }

  // Conventional power-aware DP baseline (library size 10, g = 20u).
  const auto baseline_opts =
      core::BaselineOptions::uniform_library(10.0, 20.0, 10);
  const dp::ChainDpResult dp =
      core::run_baseline(net, device, tau_t, baseline_opts);
  std::cout << "Baseline: " << dp.solution.size() << " repeaters, total width "
            << fmt_f(dp.total_width_u, 1) << " u, delay "
            << fmt_unit(units::fs_to_ns(dp.delay_fs), 3, "ns") << "\n";

  if (dp.total_width_u > 0) {
    const double saving =
        (dp.total_width_u - rip.total_width_u) / dp.total_width_u * 100.0;
    std::cout << "\npower saving of RIP over the DP baseline: "
              << fmt_f(saving, 1) << " %\n";
  }
  return 0;
}
