// rip_cli — the command-line face of the library. Drives the full flow
// from files, so RIP can sit inside a shell-scripted physical-design
// flow without writing any C++:
//
//   rip_cli gen      --seed 7 --out my.net            # draw a §6 net
//   rip_cli info     --net my.net                      # geometry + tau_min
//   rip_cli solve    --net my.net --target-x 1.3       # run Algorithm RIP
//                    [--target-ns 2.5] [--sol out.sol] [--spice out.sp]
//                    [--zone-hop] [--refine-repeats 2]
//   rip_cli baseline --net my.net --target-x 1.3 --granularity 20
//   rip_cli sweep    --net my.net --points 11 --csv sweep.csv
//   rip_cli compare  --net my.net --points 11 --granularity 20 --jobs 4
//   rip_cli check    --net my.net --sol out.sol [--target-ns 2.5]
//   rip_cli merge    --in s0.csv,s1.csv --out merged.csv
//
// Streaming (net/netlist_io.hpp + eval/stream.hpp): multi-net netlist
// files in the text or binary rnl format, converted losslessly in both
// directions and swept with bounded memory and checkpoint/resume:
//
//   rip_cli gen     --nets 1000 --netlist big.rnlb --format binary
//   rip_cli netlist-convert --in big.rnlb --out big.rnl
//   rip_cli stream  --in big.rnlb --out rows.csv --jobs 8
//                   --max-pending 64 --checkpoint big.ckpt --every 200
//   rip_cli stream  --in big.rnlb --out rows.csv --resume
//                   --checkpoint big.ckpt --every 200   # after a kill
//
// `sweep` and `compare` also run through the asynchronous evaluation
// service (eval/service.hpp) with `--async`: points are submitted
// individually and collected from futures, with `--max-pending N`
// bounding the pending queue (submit blocks when full — the
// backpressure a long-running driver loop wants). Output is identical
// to the blocking path; wall-clock columns excepted.
//
// A custom technology file (riptech format) can replace the built-in
// 0.18 um kit everywhere with --tech kit.tech. The sweep/compare
// multi-target commands fan out over `--jobs N` worker threads
// (0 = all hardware threads) with results identical to --jobs 1, and
// split across processes/machines with `--shard I/N`: each shard
// solves a deterministic round-robin subset of the points (row `idx`
// is the global point index), and `merge` reassembles shard CSVs into
// the byte-identical unsharded table (runtime columns excepted — they
// are wall clock).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "dp/workspace.hpp"
#include "eval/parallel.hpp"
#include "eval/service.hpp"
#include "eval/solve_cache.hpp"
#include "eval/stream.hpp"
#include "eval/workload.hpp"
#include "net/generator.hpp"
#include "net/net_io.hpp"
#include "net/netlist_io.hpp"
#include "net/solution_io.hpp"
#include "rc/buffered_chain.hpp"
#include "sim/spice.hpp"
#include "sim/transient.hpp"
#include "tech/objective.hpp"
#include "tech/tech_io.hpp"
#include "tech/technology.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace rip;

int usage(int rc = 2) {
  std::cout <<
      "usage: rip_cli <command> [options]\n"
      "  gen      --seed N [--out file.net] [--nets K]\n"
      "           [--netlist file.rnl [--format text|binary]\n"
      "            [--store-target-x F]]   (multi-net netlist output)\n"
      "  info     --net file.net\n"
      "  solve    --net file.net (--target-ns T | --target-x F)\n"
      "           [--sol out.sol] [--spice out.sp] [--zone-hop]\n"
      "           [--refine-repeats N] [--backend NAME]\n"
      "  baseline --net file.net (--target-ns T | --target-x F)\n"
      "           [--granularity G] [--lib-size N] [--min-width W]\n"
      "           [--backend NAME]\n"
      "  sweep    --net file.net [--points N] [--csv out.csv] [--jobs N]\n"
      "           [--shard I/N] [--async] [--max-pending N]\n"
      "           [--cache] [--cache-capacity N] [--backend NAME]\n"
      "  compare  --net file.net [--points N] [--granularity G]\n"
      "           [--lib-size N] [--min-width W] [--csv out.csv]\n"
      "           [--jobs N] [--shard I/N] [--async] [--max-pending N]\n"
      "           [--cache] [--cache-capacity N]\n"
      "           [--backend NAME[|NAME...]]\n"
      "  check    --net file.net --sol file.sol [--target-ns T]\n"
      "  merge    --in shard0.csv,shard1.csv[,...] --out merged.csv\n"
      "  netlist-convert --in file.rnl[b] --out file.rnl[b]\n"
      "           [--format text|binary]   (default: the other format)\n"
      "  stream   --in file.rnl[b] --out rows.csv [--jobs N]\n"
      "           [--max-pending N] [--checkpoint file --every N]\n"
      "           [--resume] [--stop-after N] [--target-x F]\n"
      "           [--errors quarantine.csv] [--deadline-ms F]\n"
      "           [--retry N] [--retry-base-ms N]\n"
      "           [--cache] [--cache-capacity N] [--cache-bytes N]\n"
      "           [--cache-ttl-ms N] [--backend NAME]\n"
      "           exit codes: 0 ok, 2 error, 3 stopped early,\n"
      "           4 finished with quarantined records, 5 crashed\n"
      "common:    [--tech kit.tech] [--faults SPEC [--fault-seed N]]\n"
      "           (--faults = deterministic fault injection, e.g.\n"
      "           'netlist.read:err@17;solve.delay:50ms@p=0.01';\n"
      "           see util/fault.hpp for the grammar;\n"
      "           --jobs 0 = all hardware threads;\n"
      "           --shard I/N = solve shard I of an N-way split;\n"
      "           --cache = share one Pareto-frontier solve cache across\n"
      "           the sweep's points — identical output, hit/miss stats\n"
      "           on stderr;\n"
      "           --backend = objective backend: paper2005, activity,\n"
      "           lowswing (omitted = the paper's objective, byte-\n"
      "           identical legacy output); compare accepts 'a|b|c' for\n"
      "           side-by-side per-backend columns)\n";
  return rc;
}

tech::Technology load_tech(const CliArgs& args) {
  if (const auto path = args.get("tech")) {
    return tech::read_technology_file(*path);
  }
  return tech::make_tech180();
}

net::Net load_net(const CliArgs& args) {
  return net::read_net_file(args.require("net"));
}

/// Service options for `--async`: worker threads from --jobs and the
/// bounded pending queue from --max-pending (absent = unbounded; an
/// explicit --max-pending 0 is rejected — say what you mean).
eval::ServiceOptions async_service_options(const CliArgs& args, int jobs) {
  eval::ServiceOptions options;
  options.jobs = jobs;
  options.max_pending =
      static_cast<std::size_t>(count_option(args, "max-pending", 0, 1));
  return options;
}

/// --cache / --cache-capacity: the optional per-invocation frontier
/// cache shared by every point of a sweep/compare. nullptr = caching
/// off (the default); results are bit-identical either way.
std::unique_ptr<eval::SolveCache> make_cache(const CliArgs& args) {
  if (!args.has("cache")) {
    RIP_REQUIRE(!args.has("cache-capacity"),
                "--cache-capacity requires --cache");
    RIP_REQUIRE(!args.has("cache-bytes"), "--cache-bytes requires --cache");
    RIP_REQUIRE(!args.has("cache-ttl-ms"),
                "--cache-ttl-ms requires --cache");
    return nullptr;
  }
  eval::SolveCacheOptions options;
  options.capacity =
      static_cast<std::size_t>(count_option(args, "cache-capacity", 1024, 1));
  options.max_bytes = count_option(args, "cache-bytes", 0, 1);
  options.ttl = std::chrono::milliseconds(
      count_option(args, "cache-ttl-ms", 0, 1));
  return std::make_unique<eval::SolveCache>(options);
}

/// --backend NAME -> an owned objective backend (tech/objective.hpp);
/// nullptr when the flag is absent, which keeps the paper's objective
/// and byte-identical legacy output. The multi-backend 'a|b|c' form is
/// compare-only; everywhere else one name is required.
std::unique_ptr<tech::ObjectiveBackend> backend_option(
    const CliArgs& args, const tech::Technology& tech) {
  const auto name = args.get("backend");
  if (!name) return nullptr;
  RIP_REQUIRE(name->find('|') == std::string::npos,
              "--backend takes a single name here; the 'a|b|c' "
              "multi-backend form is compare-only");
  return tech::make_backend(*name, tech);
}

/// Cache counters go to stderr so CSV/stdout output stays diffable
/// against cache-off runs.
void print_cache_stats(const eval::SolveCache* cache) {
  if (cache == nullptr) return;
  const auto s = cache->stats();
  std::cerr << "cache: " << s.hits << " hits, " << s.misses << " misses, "
            << s.insertions << " insertions, " << s.evictions
            << " evictions, " << s.entries << " entries, " << s.bytes
            << " bytes\n";
}

/// Resolve --target-ns / --target-x (x tau_min) into femtoseconds.
double resolve_target_fs(const CliArgs& args, const net::Net& n,
                         const tech::Technology& tech) {
  if (const auto ns = args.get("target-ns")) {
    return units::ns_to_fs(parse_double(*ns, "--target-ns"));
  }
  const double factor = args.get_double_or("target-x", 0.0);
  RIP_REQUIRE(factor > 0, "need --target-ns or --target-x");
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  return factor * md.tau_min_fs;
}

/// --format text|binary -> NetlistFormat, with a caller-chosen default
/// when the flag is absent.
net::NetlistFormat format_option(const CliArgs& args,
                                 net::NetlistFormat fallback) {
  const auto name = args.get("format");
  if (!name) return fallback;
  if (*name == "text") return net::NetlistFormat::kText;
  if (*name == "binary") return net::NetlistFormat::kBinary;
  throw Error("--format must be 'text' or 'binary', got '" + *name + "'");
}

int cmd_gen(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int count = args.get_int_or("nets", 1);
  Rng rng(seed);
  net::RandomNetConfig config;
  if (const auto netlist = args.get("netlist")) {
    // Multi-net netlist output: all --nets records into ONE streamable
    // file. --store-target-x F bakes tau_t = F * tau_min into each
    // record (one tau_min DP per net — meant for test-scale files);
    // without it records carry no target and `stream` resolves its
    // --target-x default per net at evaluation time.
    const double target_x = args.get_double_or("store-target-x", 0.0);
    RIP_REQUIRE(target_x >= 0, "--store-target-x must be > 0 when given");
    net::NetlistWriter writer(
        *netlist, format_option(args, net::NetlistFormat::kText));
    for (int i = 0; i < count; ++i) {
      const std::string name = "net_" + std::to_string(i + 1);
      const net::Net n = net::random_net(tech, config, rng, name);
      double tau_t_fs = 0.0;
      if (target_x > 0) {
        const auto md = dp::min_delay(n, tech.device(),
                                      {10.0, 400.0, 10.0, 200.0});
        tau_t_fs = target_x * md.tau_min_fs;
      }
      writer.add(n, tau_t_fs);
    }
    writer.close();
    std::cout << "wrote " << *netlist << " (" << count << " nets, "
              << (writer.format() == net::NetlistFormat::kText ? "text"
                                                               : "binary")
              << ")\n";
    return 0;
  }
  for (int i = 0; i < count; ++i) {
    const std::string name = "net_" + std::to_string(i + 1);
    const net::Net n = net::random_net(tech, config, rng, name);
    if (const auto out = args.get("out"); out && count == 1) {
      std::ofstream file(*out);
      RIP_REQUIRE(file.good(), "cannot write " + *out);
      net::write_net(file, n);
      std::cout << "wrote " << *out << " (" << n.total_length_um() / 1000.0
                << " mm, " << n.segments().size() << " segments)\n";
    } else if (const auto out2 = args.get("out"); out2) {
      const std::string path = *out2 + "." + std::to_string(i + 1);
      std::ofstream file(path);
      RIP_REQUIRE(file.good(), "cannot write " + path);
      net::write_net(file, n);
      std::cout << "wrote " << path << "\n";
    } else {
      net::write_net(std::cout, n);
    }
  }
  return 0;
}

int cmd_info(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const double unbuffered =
      rc::elmore_delay_fs(n, net::RepeaterSolution{}, tech.device());
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  std::cout << "net " << n.name() << "\n";
  std::cout << "  length:      " << fmt_f(n.total_length_um() / 1000.0, 3)
            << " mm in " << n.segments().size() << " segments\n";
  std::cout << "  wire:        " << fmt_f(n.total_resistance_ohm(), 1)
            << " Ohm, " << fmt_f(n.total_capacitance_ff() / 1000.0, 2)
            << " pF\n";
  std::cout << "  driver:      " << n.driver_width_u() << " u, receiver: "
            << n.receiver_width_u() << " u\n";
  for (const auto& z : n.zones()) {
    std::cout << "  zone:        " << fmt_f(z.start_um / 1000.0, 2) << ".."
              << fmt_f(z.end_um / 1000.0, 2) << " mm\n";
  }
  std::cout << "  unbuffered:  "
            << fmt_unit(units::fs_to_ns(unbuffered), 3, "ns") << "\n";
  std::cout << "  tau_min:     "
            << fmt_unit(units::fs_to_ns(md.tau_min_fs), 3, "ns") << " ("
            << md.solution.size() << " repeaters)\n";
  return 0;
}

int cmd_solve(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const double tau_t = resolve_target_fs(args, n, tech);

  core::RipOptions options;
  options.refine.move.allow_zone_hop = args.has("zone-hop");
  options.refine_repeats = args.get_int_or("refine-repeats", 1);
  const auto backend = backend_option(args, tech);

  const auto r =
      core::rip_insert(n, tech.device(), tau_t, options,
                       dp::Workspace::local(), nullptr, backend.get());
  std::cout << "target: " << fmt_unit(units::fs_to_ns(tau_t), 3, "ns")
            << "\n";
  if (r.status != dp::Status::kOptimal) {
    std::cout << "INFEASIBLE: best achievable delay "
              << fmt_unit(units::fs_to_ns(r.delay_fs), 3, "ns") << "\n";
    return 1;
  }
  std::cout << "solution: " << r.solution.size() << " repeaters, width "
            << fmt_f(r.total_width_u, 1) << " u, delay "
            << fmt_unit(units::fs_to_ns(r.delay_fs), 3, "ns") << " ("
            << fmt_f(r.runtime_s * 1e3, 1) << " ms)\n";
  if (backend != nullptr) {
    std::cout << "objective (" << backend->name()
              << "): " << fmt_f(r.objective_cost, 1) << "\n";
  }
  for (const auto& rep : r.solution.repeaters()) {
    std::cout << "  x = " << fmt_f(rep.position_um, 0) << " um, w = "
              << fmt_f(rep.width_u, 0) << " u\n";
  }
  if (const auto sol = args.get("sol")) {
    std::ofstream out(*sol);
    RIP_REQUIRE(out.good(), "cannot write " + *sol);
    net::write_solution(out, r.solution, n.name());
    std::cout << "solution written to " << *sol << "\n";
  }
  if (const auto spice = args.get("spice")) {
    std::ofstream out(*spice);
    RIP_REQUIRE(out.good(), "cannot write " + *spice);
    sim::SpiceOptions spice_opts;
    spice_opts.vdd_v = tech.power().vdd_v;
    sim::write_spice_deck(out, n, r.solution, tech.device(), spice_opts);
    std::cout << "SPICE deck written to " << *spice << "\n";
  }
  return 0;
}

int cmd_baseline(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const double tau_t = resolve_target_fs(args, n, tech);
  const auto options = core::BaselineOptions::uniform_library(
      args.get_double_or("min-width", 10.0),
      args.get_double_or("granularity", 10.0),
      args.get_int_or("lib-size", 10));
  const auto backend = backend_option(args, tech);
  const auto r =
      core::run_baseline(n, tech.device(), tau_t, options,
                         dp::Workspace::local(), nullptr, backend.get());
  std::cout << "target: " << fmt_unit(units::fs_to_ns(tau_t), 3, "ns")
            << "\n";
  if (r.status != dp::Status::kOptimal) {
    std::cout << "INFEASIBLE: best achievable delay "
              << fmt_unit(units::fs_to_ns(r.min_delay_fs), 3, "ns") << "\n";
    return 1;
  }
  std::cout << "baseline DP: " << r.solution.size() << " repeaters, width "
            << fmt_f(r.total_width_u, 1) << " u, delay "
            << fmt_unit(units::fs_to_ns(r.delay_fs), 3, "ns") << "\n";
  if (backend != nullptr) {
    std::cout << "objective (" << backend->name()
              << "): " << fmt_f(r.objective_cost, 1) << "\n";
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const int points = args.get_int_or("points", 11);
  const int jobs = parallel_jobs(args);
  const ShardSpec shard = shard_option(args);
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});

  // Solve this shard's points in parallel, then render in sweep order.
  std::vector<double> factors(static_cast<std::size_t>(std::max(points, 0)));
  for (int k = 0; k < points; ++k) {
    factors[static_cast<std::size_t>(k)] =
        1.05 + (points > 1 ? k * 1.0 / (points - 1) : 0.0);
  }
  const auto mine =
      eval::shard_case_indices(factors.size(), shard.index, shard.count);
  std::vector<core::RipResult> runs(mine.size());
  // With --cache, every point's stage-1 coarse frontier is solved once
  // and shared (the sweep varies only the target) — on this thread's
  // local workspace either way, so cache-off stays the plain path.
  const std::unique_ptr<eval::SolveCache> cache = make_cache(args);
  const std::unique_ptr<tech::ObjectiveBackend> backend =
      backend_option(args, tech);
  const auto solve_point = [&](std::size_t j) {
    runs[j] = core::rip_insert(n, tech.device(),
                               factors[mine[j]] * md.tau_min_fs, {},
                               dp::Workspace::local(), cache.get(),
                               backend.get());
  };
  if (args.has("async")) {
    // The async service via the submit_fn escape hatch: the sweep is
    // RIP-only, so each point writes its index-addressed slot and uses
    // the future purely as a completion signal. Output is identical to
    // the blocking path.
    eval::EvalService service(tech, async_service_options(args, jobs));
    std::vector<std::future<eval::CaseResult>> futures;
    futures.reserve(mine.size());
    for (std::size_t j = 0; j < mine.size(); ++j) {
      futures.push_back(service.submit_fn([&, j] {
        solve_point(j);
        return eval::CaseResult{};
      }));
    }
    for (auto& future : futures) future.get();
  } else {
    parallel_for_indexed(runs.size(), jobs, [&](std::size_t j) {
      solve_point(j);
    });
  }
  print_cache_stats(cache.get());

  Table table({"idx", "tau_t_ns", "tau_over_min", "width_u", "repeaters",
               "delay_ns"});
  for (std::size_t j = 0; j < runs.size(); ++j) {
    const std::size_t k = mine[j];
    const double tau_t = factors[k] * md.tau_min_fs;
    const auto& r = runs[j];
    table.add_row({std::to_string(k), fmt_f(units::fs_to_ns(tau_t), 3),
                   fmt_f(factors[k], 3),
                   r.status == dp::Status::kOptimal
                       ? fmt_f(r.total_width_u, 0)
                       : "VIOL",
                   std::to_string(r.solution.size()),
                   fmt_f(units::fs_to_ns(r.delay_fs), 3)});
  }
  if (const auto csv = args.get("csv")) {
    std::ofstream out(*csv);
    RIP_REQUIRE(out.good(), "cannot write " + *csv);
    table.print_csv(out);
    std::cout << "sweep written to " << *csv << "\n";
  } else {
    table.print(std::cout);
  }
  return 0;
}

int cmd_compare(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const int points = args.get_int_or("points", 11);
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  const auto baseline = core::BaselineOptions::uniform_library(
      args.get_double_or("min-width", 10.0),
      args.get_double_or("granularity", 10.0),
      args.get_int_or("lib-size", 10));

  // The batch engine: one Case per sweep point, fanned out over --jobs
  // and, with --shard I/N, split round-robin across processes.
  const auto targets = eval::timing_targets_fs(md.tau_min_fs, points);
  std::vector<eval::Case> cases;
  cases.reserve(targets.size());
  for (const double tau_t : targets) {
    cases.push_back(eval::Case{&n, tau_t, core::RipOptions{}, baseline});
  }
  // Objective backends: one sweep per requested backend. The default
  // (no --backend) single sweep keeps the legacy byte-identical table;
  // 'a|b|c' runs one sweep per backend and emits per-backend column
  // groups without the wall-clock columns, so the multi-backend table
  // is bit-identical at any jobs/shard/async combination. With --cache
  // every backend shares one frontier cache — solve keys fold the
  // backend identity, so entries never collide across backends.
  std::vector<std::unique_ptr<tech::ObjectiveBackend>> backends;
  std::vector<std::string> backend_names;
  if (const auto spec = args.get("backend")) {
    for (const auto& nm : split_on(*spec, '|')) {
      backends.push_back(tech::make_backend(trim(nm), tech));
      backend_names.push_back(backends.back()->name());
    }
  } else {
    backends.push_back(nullptr);
    backend_names.push_back("paper2005");
  }
  const bool multi = backends.size() > 1;

  eval::BatchOptions batch;
  batch.jobs = parallel_jobs(args);
  const ShardSpec shard = shard_option(args);
  batch.shard_index = shard.index;
  batch.shard_count = shard.count;
  const std::unique_ptr<eval::SolveCache> cache = make_cache(args);
  batch.context.cache = cache.get();
  const auto mine =
      eval::shard_case_indices(cases.size(), shard.index, shard.count);
  std::vector<std::vector<eval::CaseResult>> all_results(backends.size());
  for (std::size_t b = 0; b < backends.size(); ++b) {
    batch.context.backend = backends[b].get();
    if (args.has("async")) {
      // One future per point through the async service (FIFO order);
      // --max-pending exercises the bounded-queue backpressure. Results
      // are collected in submission order, so the table is identical to
      // the blocking run_cases path (wall-clock columns excepted).
      eval::ServiceOptions service_options =
          async_service_options(args, batch.jobs);
      service_options.context = batch.context;
      eval::EvalService service(tech, service_options);
      std::vector<std::future<eval::CaseResult>> futures;
      futures.reserve(mine.size());
      for (const std::size_t k : mine) {
        futures.push_back(service.submit(cases[k]));
      }
      all_results[b].reserve(futures.size());
      for (auto& future : futures) all_results[b].push_back(future.get());
    } else {
      all_results[b] = eval::run_cases(tech, cases, batch);
    }
  }
  print_cache_stats(cache.get());

  std::vector<std::string> headers{"idx", "tau_t_ns", "tau_over_min"};
  if (multi) {
    for (const auto& nm : backend_names) {
      headers.push_back(nm + ":rip_u");
      headers.push_back(nm + ":dp_u");
      headers.push_back(nm + ":impr%");
    }
  } else {
    headers.insert(headers.end(),
                   {"rip_u", "dp_u", "impr%", "rip_ms", "dp_ms"});
  }
  Table table(headers);
  for (std::size_t j = 0; j < mine.size(); ++j) {
    const auto& r0 = all_results.front()[j];
    std::vector<std::string> cells{
        std::to_string(mine[j]), fmt_f(units::fs_to_ns(r0.tau_t_fs), 3),
        fmt_f(r0.tau_t_fs / md.tau_min_fs, 3)};
    for (std::size_t b = 0; b < all_results.size(); ++b) {
      const auto& r = all_results[b][j];
      cells.push_back(r.rip_feasible ? fmt_f(r.rip_width_u, 0) : "VIOL");
      cells.push_back(r.dp_feasible ? fmt_f(r.dp_width_u, 0) : "VIOL");
      cells.push_back(r.rip_feasible && r.dp_feasible
                          ? fmt_f(r.improvement_pct, 2)
                          : "-");
      if (!multi) {
        cells.push_back(fmt_f(r.rip_runtime_s * 1e3, 1));
        cells.push_back(fmt_f(r.dp_runtime_s * 1e3, 1));
      }
    }
    table.add_row(std::move(cells));
  }
  if (const auto csv = args.get("csv")) {
    std::ofstream out(*csv);
    RIP_REQUIRE(out.good(), "cannot write " + *csv);
    table.print_csv(out);
    std::cout << "comparison written to " << *csv << "\n";
  } else {
    table.print(std::cout);
  }
  return 0;
}

// Reassemble shard CSVs (sweep/compare --shard output) into the full
// table: every row carries its global point index in the `idx` column,
// so the merge is a validated interleave — each index 0..total-1 must
// appear exactly once across the inputs.
int cmd_merge(const CliArgs& args) {
  const auto inputs = split_on(args.require("in"), ',');
  RIP_REQUIRE(!inputs.empty() && !inputs.front().empty(),
              "--in needs a comma-separated list of shard CSVs");
  std::string header;
  std::vector<std::pair<std::size_t, std::string>> rows;
  for (const auto& path : inputs) {
    std::ifstream file(path);
    RIP_REQUIRE(file.good(), "cannot read " + path);
    std::string line;
    bool first = true;
    while (std::getline(file, line)) {
      if (trim(line).empty()) continue;
      if (first) {
        first = false;
        RIP_REQUIRE(starts_with(line, "idx,"),
                    path + " is not a sharded sweep CSV (no idx column)");
        if (header.empty()) header = line;
        RIP_REQUIRE(line == header, path + " has a different header");
        continue;
      }
      const auto comma = line.find(',');
      RIP_REQUIRE(comma != std::string::npos, path + ": malformed row");
      const int idx = parse_int(line.substr(0, comma), path + " idx");
      RIP_REQUIRE(idx >= 0, path + ": negative idx");
      rows.emplace_back(static_cast<std::size_t>(idx), line);
    }
    RIP_REQUIRE(!first, path + " is empty");
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    RIP_REQUIRE(rows[i].first == i,
                rows[i].first < i
                    ? "duplicate idx " + std::to_string(rows[i].first)
                    : "missing idx " + std::to_string(i) +
                          " (is a shard absent?)");
  }
  const std::string out_path = args.require("out");
  std::ofstream out(out_path);
  RIP_REQUIRE(out.good(), "cannot write " + out_path);
  out << header << "\n";
  for (const auto& [idx, line] : rows) out << line << "\n";
  std::cout << "merged " << rows.size() << " rows from " << inputs.size()
            << " shard(s) into " << out_path << "\n";
  return 0;
}

// Lossless text <-> binary netlist conversion, streamed record by
// record (constant memory at any file size). The default output format
// is whichever one the input is not; either direction round-trips to
// the byte-identical original (netlist_io_test pins that property).
int cmd_netlist_convert(const CliArgs& args) {
  const std::string in_path = args.require("in");
  const std::string out_path = args.require("out");
  net::NetlistReader reader(in_path);
  const net::NetlistFormat out_format =
      format_option(args, reader.format() == net::NetlistFormat::kText
                              ? net::NetlistFormat::kBinary
                              : net::NetlistFormat::kText);
  net::NetlistWriter writer(out_path, out_format);
  while (auto record = reader.next()) {
    writer.add(record->net, record->tau_t_fs);
  }
  writer.close();
  std::cout << "converted " << writer.count() << " nets: " << in_path
            << " ("
            << (reader.format() == net::NetlistFormat::kText ? "text"
                                                             : "binary")
            << ") -> " << out_path << " ("
            << (out_format == net::NetlistFormat::kText ? "text" : "binary")
            << ")\n";
  return 0;
}

// The bounded-memory streaming sweep (eval/stream.hpp): every record of
// --in becomes one CSV row of --out, evaluated through the async
// service with --max-pending backpressure; peak RSS is set by the
// window, not the file. --checkpoint/--every make the run resumable
// after a kill; --stop-after simulates the kill for tests.
int cmd_stream(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  eval::StreamOptions options;
  options.jobs = parallel_jobs(args);
  // Strict counts: absent flags keep their defaults, but an explicit
  // nonsensical value (--max-pending 0, --every 0, --stop-after 0,
  // anything negative or non-numeric) is rejected up front with a
  // uniform message instead of surfacing as a confusing hang or no-op.
  options.max_pending =
      static_cast<std::size_t>(count_option(args, "max-pending", 64, 1));
  options.checkpoint_every = count_option(args, "every", 0, 1);
  if (const auto ckpt = args.get("checkpoint")) options.checkpoint_path = *ckpt;
  RIP_REQUIRE(options.checkpoint_path.empty() || options.checkpoint_every > 0,
              "--checkpoint requires --every N");
  options.resume = args.has("resume");
  options.stop_after = count_option(args, "stop-after", 0, 1);
  options.default_target_x = args.get_double_or("target-x", 1.5);
  if (const auto errors = args.get("errors")) options.errors_path = *errors;
  options.deadline_ms = args.get_double_or("deadline-ms", 0.0);
  RIP_REQUIRE(options.deadline_ms >= 0, "--deadline-ms must be >= 0");
  options.retry.max_attempts =
      static_cast<int>(count_option(args, "retry", 1, 1));
  options.retry.base = std::chrono::milliseconds(
      count_option(args, "retry-base-ms", 1, 1));
  const std::unique_ptr<eval::SolveCache> cache = make_cache(args);
  const std::unique_ptr<tech::ObjectiveBackend> backend =
      backend_option(args, tech);
  options.context.cache = cache.get();
  options.context.backend = backend.get();

  const auto result =
      eval::run_stream(tech, args.require("in"), args.require("out"), options);
  print_cache_stats(cache.get());
  std::cerr << "stream: " << result.rows_written << " rows this run ("
            << result.rows_total << " total, resumed from "
            << result.resumed_from << "), " << result.rows_quarantined
            << " quarantined (" << result.quarantined_total << " total), "
            << result.checkpoints_written << " checkpoints, "
            << (result.finished ? "finished" : "stopped early") << ", "
            << fmt_f(result.elapsed_s, 2) << " s";
  if (result.elapsed_s > 0) {
    std::cerr << ", "
              << fmt_f(result.rows_written / result.elapsed_s, 1)
              << " nets/s";
  }
  std::cerr << "\n";
  // Exit codes: 0 = clean, 3 = stopped early (stop_after), 4 = finished
  // but with quarantined records (partial success — the sidecar has the
  // casualty list). Crashes and hard errors exit from main (5 and 2).
  if (!result.finished) return 3;
  return result.quarantined_total > 0 ? 4 : 0;
}

int cmd_check(const CliArgs& args) {
  const tech::Technology tech = load_tech(args);
  const net::Net n = load_net(args);
  const auto parsed = net::read_solution_file(args.require("sol"));
  if (!parsed.net_name.empty() && parsed.net_name != n.name()) {
    std::cout << "warning: solution was produced for net '"
              << parsed.net_name << "', checking against '" << n.name()
              << "'\n";
  }
  const bool legal = parsed.solution.legal_for(n);
  const double delay =
      rc::elmore_delay_fs(n, parsed.solution, tech.device());
  std::cout << "repeaters: " << parsed.solution.size() << ", width "
            << fmt_f(parsed.solution.total_width_u(), 1) << " u\n";
  std::cout << "placement: " << (legal ? "legal" : "ILLEGAL") << "\n";
  std::cout << "elmore delay: "
            << fmt_unit(units::fs_to_ns(delay), 3, "ns") << "\n";
  bool timing_ok = true;
  if (const auto ns = args.get("target-ns")) {
    const double tau_t = units::ns_to_fs(parse_double(*ns, "--target-ns"));
    timing_ok = delay <= tau_t;
    std::cout << "timing: " << (timing_ok ? "MET" : "VIOLATED") << " (target "
              << fmt_unit(units::fs_to_ns(tau_t), 3, "ns") << ")\n";
  }
  return (legal && timing_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args =
        CliArgs::parse(argc, argv,
                       {"zone-hop", "help", "async", "cache", "resume"});
    if (args.has("help")) return usage(0);
    // --faults overrides any RIP_FAULTS env configuration; --fault-seed
    // feeds the deterministic p= triggers.
    if (const auto faults = args.get("faults")) {
      rip::FaultInjector::configure(*faults,
                                    count_option(args, "fault-seed", 0));
    } else {
      RIP_REQUIRE(!args.has("fault-seed"), "--fault-seed requires --faults");
    }
    int rc;
    if (args.command() == "gen") rc = cmd_gen(args);
    else if (args.command() == "info") rc = cmd_info(args);
    else if (args.command() == "solve") rc = cmd_solve(args);
    else if (args.command() == "baseline") rc = cmd_baseline(args);
    else if (args.command() == "sweep") rc = cmd_sweep(args);
    else if (args.command() == "compare") rc = cmd_compare(args);
    else if (args.command() == "check") rc = cmd_check(args);
    else if (args.command() == "merge") rc = cmd_merge(args);
    else if (args.command() == "netlist-convert") rc = cmd_netlist_convert(args);
    else if (args.command() == "stream") rc = cmd_stream(args);
    else return usage();
    for (const auto& name : args.unused()) {
      std::cerr << "warning: unused option --" << name << "\n";
    }
    return rc;
  } catch (const rip::InjectedCrash& e) {
    // The simulated process kill: no recovery layer may swallow it, so
    // it surfaces here with its own exit code — resume tests treat a
    // 5 exactly like a SIGKILL.
    std::cerr << "fatal: " << e.what() << "\n";
    return 5;
  } catch (const rip::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
