// The Section 7 future-work direction, runnable today: power-aware
// buffering of an interconnect *tree* with the tree DP and the
// tree-RIP-lite hybrid. Builds a small clock-distribution-like tree,
// buffers it for a relaxed budget, and prints where the buffers went.
//
//   $ ./examples/tree_buffering

#include <iostream>

#include "core/tree_hybrid.hpp"
#include "dp/library.hpp"
#include "dp/tree_dp.hpp"
#include "tech/technology.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main() {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();
  const auto& dev = tech.device();
  const double driver_width = 150.0;

  dp::RandomTreeConfig config;
  config.sink_count = 8;
  config.candidates_per_edge = 4;
  config.edge_length_min_um = 1500.0;
  config.edge_length_max_um = 3500.0;
  config.r_ohm_per_um = tech.layer("metal4").r_ohm_per_um;
  config.c_ff_per_um = tech.layer("metal4").c_ff_per_um;
  Rng rng(99);
  const auto tree = dp::random_buffer_tree(config, rng);
  std::cout << "tree: " << tree.nodes().size() << " nodes, "
            << tree.sink_count() << " sinks\n";

  // Minimum achievable worst-sink delay.
  dp::ChainDpOptions delay_mode;
  delay_mode.mode = dp::Mode::kMinDelay;
  const auto md = dp::run_tree_dp(tree, dev, driver_width,
                                  dp::RepeaterLibrary::range(10, 400, 20),
                                  delay_mode);
  std::cout << "tau_min (worst sink): "
            << fmt_unit(units::fs_to_ns(md.delay_fs), 3, "ns") << " using "
            << md.solution.repeater_count() << " buffers\n";

  const double tau_t = 1.4 * md.delay_fs;
  std::cout << "timing budget: " << fmt_unit(units::fs_to_ns(tau_t), 3, "ns")
            << "\n\n";

  // Fine DP reference vs the hybrid.
  dp::ChainDpOptions power_mode;
  power_mode.mode = dp::Mode::kMinPower;
  power_mode.timing_target_fs = tau_t;
  const auto fine = dp::run_tree_dp(tree, dev, driver_width,
                                    dp::RepeaterLibrary::range(10, 400, 10),
                                    power_mode);
  const auto hybrid = core::tree_hybrid_insert(tree, dev, driver_width, tau_t);

  auto describe = [&](const char* tag, const dp::TreeSolution& s,
                      double delay_fs) {
    std::cout << tag << ": width " << fmt_f(s.total_width_u(), 0) << " u, "
              << s.repeater_count() << " buffers, worst sink "
              << fmt_unit(units::fs_to_ns(delay_fs), 3, "ns") << "\n";
    for (std::size_t node = 0; node < s.width_u.size(); ++node) {
      if (s.width_u[node] > 0) {
        std::cout << "   node " << node << " ("
                  << (tree.nodes()[node].name.empty()
                          ? "internal"
                          : tree.nodes()[node].name)
                  << "): " << fmt_f(s.width_u[node], 0) << " u\n";
      }
    }
  };
  if (fine.status == dp::Status::kOptimal) {
    describe("fine tree DP (g=10u)", fine.solution, fine.delay_fs);
  }
  std::cout << "\n";
  if (hybrid.status == dp::Status::kOptimal) {
    describe("tree-RIP-lite       ", hybrid.solution, hybrid.delay_fs);
    std::cout << "\nhybrid runtime " << fmt_f(hybrid.runtime_s * 1e3, 1)
              << " ms; greedy refinement accepted " << hybrid.greedy_moves
              << " width reductions after the coarse DP\n";
  }
  return 0;
}
