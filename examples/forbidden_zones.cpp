// Forbidden zones in practice: the same routed net with (a) no macro
// blockage, (b) a large central blockage, and (c) the blockage plus the
// Section 7 "hop across zones" REFINE extension. Shows how blockages
// push repeaters to the zone boundaries, cost power, and how much of
// that cost hopping recovers.
//
//   $ ./examples/forbidden_zones

#include <iostream>

#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "net/net.hpp"
#include "tech/technology.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace {

rip::net::Net make_net(const rip::tech::Technology& tech, bool with_zone) {
  using namespace rip;
  const auto& m4 = tech.layer("metal4");
  const auto& m5 = tech.layer("metal5");
  net::NetBuilder b(with_zone ? "blocked" : "open");
  b.driver(120.0).receiver(60.0);
  b.segment(2400.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  b.segment(2200.0, m5.r_ohm_per_um, m5.c_ff_per_um, m5.name);
  b.segment(2500.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  b.segment(1900.0, m5.r_ohm_per_um, m5.c_ff_per_um, m5.name);
  b.segment(2300.0, m4.r_ohm_per_um, m4.c_ff_per_um, m4.name);
  if (with_zone) b.zone(3700.0, 7600.0);  // a 3.9 mm macro in the middle
  return b.build();
}

void report(const char* tag, const rip::core::RipResult& r) {
  using namespace rip;
  std::cout << tag << ": ";
  if (r.status != dp::Status::kOptimal) {
    std::cout << "TIMING VIOLATION (best effort "
              << fmt_unit(units::fs_to_ns(r.delay_fs), 3, "ns") << ")\n";
    return;
  }
  std::cout << "width " << fmt_f(r.total_width_u, 0) << " u, "
            << r.solution.size() << " repeaters at [";
  for (std::size_t i = 0; i < r.solution.size(); ++i) {
    if (i) std::cout << ", ";
    std::cout << fmt_f(r.solution.repeaters()[i].position_um / 1000.0, 2);
  }
  std::cout << "] mm, delay "
            << fmt_unit(units::fs_to_ns(r.delay_fs), 3, "ns") << "\n";
}

}  // namespace

int main() {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();
  const auto& dev = tech.device();

  const net::Net open_net = make_net(tech, false);
  const net::Net blocked_net = make_net(tech, true);

  // A shared absolute timing budget, set from the *blocked* net's
  // tau_min so every variant can meet it.
  const auto md = dp::min_delay(blocked_net, dev, {10.0, 400.0, 10.0, 200.0});
  const double tau_t = 1.25 * md.tau_min_fs;
  std::cout << "timing budget: " << fmt_unit(units::fs_to_ns(tau_t), 3, "ns")
            << " (1.25 x tau_min of the blocked net)\n";
  std::cout << "blockage: 3.7..7.6 mm of " << blocked_net.total_length_um() / 1000.0
            << " mm (" << fmt_f(100.0 * 3900.0 / blocked_net.total_length_um(), 0)
            << "% of the net)\n\n";

  const auto open_result = core::rip_insert(open_net, dev, tau_t);
  report("open net         ", open_result);

  const auto blocked_result = core::rip_insert(blocked_net, dev, tau_t);
  report("blocked net      ", blocked_result);

  core::RipOptions hop;
  hop.refine.move.allow_zone_hop = true;
  const auto hop_result = core::rip_insert(blocked_net, dev, tau_t, hop);
  report("blocked + hopping", hop_result);

  if (open_result.status == dp::Status::kOptimal &&
      blocked_result.status == dp::Status::kOptimal) {
    const double cost = (blocked_result.total_width_u -
                         open_result.total_width_u) /
                        open_result.total_width_u * 100.0;
    std::cout << "\nblockage cost: " << fmt_f(cost, 1)
              << " % extra repeater width (repeaters cannot sit inside "
                 "the macro, so they crowd its boundaries)\n";
  }
  return 0;
}
