// The power/delay tradeoff that motivates the paper: sweep the timing
// budget from 1.05 to 2.05 tau_min on one global net and record the
// minimum repeater power (total width) each scheme needs. Loose budgets
// need dramatically less repeater power — but only if the insertion
// algorithm can exploit fine width granularity, which is exactly where
// RIP's hybrid search pays off.
//
//   $ ./examples/power_delay_tradeoff

#include <iostream>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/workload.hpp"
#include "tech/technology.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();

  // One net from the paper's Section 6 population.
  const auto workload = eval::make_paper_workload(tech, 1, 4242);
  const auto& wn = workload.front();
  std::cout << "net: " << wn.net.name() << ", "
            << wn.net.total_length_um() / 1000.0 << " mm, tau_min = "
            << fmt_unit(units::fs_to_ns(wn.tau_min_fs), 3, "ns") << "\n\n";

  const auto targets = eval::timing_targets_fs(wn.tau_min_fs, 11);
  const auto baseline40 = core::BaselineOptions::uniform_library(10, 40, 10);

  Table table({"tau_t(ns)", "tau_t/tau_min", "RIP width(u)", "RIP reps",
               "DP40 width(u)", "RIP power(nW)"});
  const auto& power = tech.power();
  const auto& dev = tech.device();
  for (const double tau : targets) {
    const auto rip = core::rip_insert(wn.net, dev, tau);
    const auto dp = core::run_baseline(wn.net, dev, tau, baseline40);
    const std::string rip_w = rip.status == dp::Status::kOptimal
                                  ? fmt_f(rip.total_width_u, 0)
                                  : "VIOL";
    const std::string dp_w = dp.status == dp::Status::kOptimal
                                 ? fmt_f(dp.total_width_u, 0)
                                 : "VIOL";
    table.add_row(
        {fmt_f(units::fs_to_ns(tau), 3), fmt_f(tau / wn.tau_min_fs, 2),
         rip_w, std::to_string(rip.solution.size()), dp_w,
         fmt_f(power.repeater_power_nw(rip.total_width_u, dev.co_ff,
                                       dev.cp_ff),
               1)});
  }
  table.print(std::cout);
  std::cout << "\nRelaxing the budget from 1.05 to 2.05 tau_min cuts "
               "repeater power by roughly an order of magnitude — the "
               "reason power-aware repeater insertion exists.\n";
  return 0;
}
