// async_service — tour of the asynchronous batch-evaluation service
// (eval/service.hpp): submit cases, get futures, watch progress
// counters, get a completion callback, use priorities, and cancel
// queued work. This is the submit/await shape an iterative
// optimization driver or a network front-end builds on, instead of
// blocking in eval::run_cases for a whole batch.

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/baseline.hpp"
#include "eval/service.hpp"
#include "eval/workload.hpp"
#include "tech/technology.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

int main() {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();

  // Two paper-population nets, five timing targets each.
  const auto workload = eval::make_paper_workload(tech, 2, 2005);
  const auto baseline =
      core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  std::vector<eval::Case> cases;
  for (const auto& wn : workload) {
    for (const double tau_t : eval::timing_targets_fs(wn.tau_min_fs, 5)) {
      cases.push_back(
          eval::Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  // One service, all hardware threads, a bounded pending queue.
  eval::ServiceOptions options;
  options.jobs = 0;
  options.max_pending = 64;
  eval::EvalService service(tech, options);

  // --- one case, one future -------------------------------------------
  std::future<eval::CaseResult> one = service.submit(cases.front());
  const eval::CaseResult first = one.get();
  std::cout << "single case: target "
            << fmt_f(units::fs_to_ns(first.tau_t_fs), 3) << " ns -> RIP "
            << fmt_f(first.rip_width_u, 0) << " u vs DP "
            << fmt_f(first.dp_width_u, 0) << " u ("
            << fmt_f(first.improvement_pct, 2) << "% better)\n";

  // --- a batch with a completion callback and progress counters -------
  std::atomic<bool> batch_done{false};
  eval::BatchHandle batch = service.submit_batch(
      cases, eval::Priority::kNormal, [&] { batch_done = true; });
  while (batch.settled() < batch.size()) {
    std::cout << "progress: " << batch.settled() << "/" << batch.size()
              << " settled\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  batch.wait_all();  // also waits for the callback
  std::cout << "batch of " << batch.size() << ": " << batch.completed()
            << " completed, callback fired: " << std::boolalpha
            << batch_done.load() << "\n";
  double mean_impr = 0;
  for (const eval::CaseResult& r : batch.results()) {
    mean_impr += r.improvement_pct;
  }
  std::cout << "mean improvement: "
            << fmt_f(mean_impr / static_cast<double>(batch.size()), 2)
            << "%\n";

  // --- priorities and cooperative cancellation ------------------------
  // Pause dispatch so everything queues, submit a low-priority batch
  // and one high-priority case, cancel the batch, then resume: only
  // the high-priority case runs; the batch's futures fail with
  // CancelledError.
  service.pause();
  eval::BatchHandle doomed =
      service.submit_batch(cases, eval::Priority::kLow);
  std::future<eval::CaseResult> urgent =
      service.submit(cases.back(), eval::Priority::kHigh);
  const std::size_t cancelled = doomed.cancel();
  service.resume();
  urgent.get();
  std::cout << "cancelled " << cancelled << " queued low-priority cases; "
            << "the high-priority case still ran\n";
  try {
    doomed.future(0).get();
  } catch (const eval::CancelledError&) {
    std::cout << "cancelled case's future throws CancelledError\n";
  }

  // The destructor drains: every accepted case settles before exit.
  return 0;
}
