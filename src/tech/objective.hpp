#pragma once

/// @file objective.hpp
/// Pluggable objective backends: what the DP minimizes, per net.
///
/// The 2005 paper's power model (Eq. 3/4) is affine in total repeater
/// width, so the DP kernels historically minimized width directly. A
/// backend generalizes that without touching the label algebra: every
/// backend reduces, per net, to the affine repeater cost
///
///     cost(solution) = sum_i (width_weight * w_i + per_repeater)
///
/// plus a fixed receiver-side delay penalty and an on/off switch for
/// repeater insertion. Affine-in-width is the contract that keeps the
/// kernels exact: a per-buffer cost lookup table (dp::Workspace::lib_cost)
/// replaces the raw width table, group expansions stay sorted runs, and
/// Pareto dominance over (C, q, cost) is still a staircase. Anything the
/// affine form cannot express (wire energy, swing scaling, sense-amp
/// bias) is constant per net and belongs in `net_power_nw` reporting,
/// not in the optimization objective.
///
/// tech/ sits below net/ in the include order, so backends see nets
/// through the flat `NetProfile` summary rather than `net::Net`.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tech/technology.hpp"

namespace rip::tech {

/// The slice of a net's identity the objective backends consume. Built
/// by the solver layers from `net::Net` (or synthesized for trees).
struct NetProfile {
  std::string_view name;     ///< for per-net activity lookup ("" = default)
  double length_um = 0;      ///< driver-to-receiver route length
  double wire_cap_ff = 0;    ///< total wire capacitance
};

/// Per-net cost coefficients a backend hands the DP kernels.
///
/// `width_weight`/`per_repeater` define the affine repeater cost above.
/// `receiver_penalty_fs` is charged once at the receiver (seeded into the
/// initial label's slack) — e.g. a low-swing sense-amp resolution delay.
/// `allow_repeaters = false` restricts the solve to the repeaterless
/// design point (the DP then only answers feasibility + wire delay).
struct ChainCost {
  double width_weight = 1.0;
  double per_repeater = 0.0;
  double receiver_penalty_fs = 0.0;
  bool allow_repeaters = true;

  /// True when the cost degenerates to plain total width — the paper's
  /// objective. The kernels keep their historic bit-exact arithmetic on
  /// this path (cost table == width table, no recomputation).
  bool is_identity() const {
    return width_weight == 1.0 && per_repeater == 0.0 &&
           receiver_penalty_fs == 0.0 && allow_repeaters;
  }
};

/// Interface every objective backend implements. Stateless after
/// construction and const-callable from many threads at once — solver
/// layers share one instance across all jobs of a sweep.
class ObjectiveBackend {
 public:
  virtual ~ObjectiveBackend() = default;

  /// Registry name ("paper2005", "activity", "lowswing", ...).
  virtual const std::string& name() const = 0;

  /// The affine cost coefficients for one net. Must be deterministic in
  /// the profile (same profile -> same coefficients) — the solve cache
  /// folds the result into its key.
  virtual ChainCost chain_cost(const NetProfile& net) const = 0;

  /// Reported total link power [nW] for a finished design whose DP
  /// objective cost was `objective_cost` with `repeater_count` repeaters.
  /// This is where the per-net constants excluded from the optimization
  /// (wire switching energy, static receiver bias) are added back in.
  virtual double net_power_nw(const NetProfile& net, double objective_cost,
                              int repeater_count) const = 0;

  /// Folded into dp::chain_solve_key alongside the derived coefficients,
  /// so cache entries can never collide across backends even if two
  /// backends happen to emit equal coefficients for one net.
  virtual std::uint64_t fingerprint() const = 0;
};

/// (a) The paper's Eq. 3/4 objective: cost == total width (identity
/// coefficients), power = gamma * width. The default everywhere a
/// backend pointer is null; bit-identical to the pre-backend kernels.
class Paper2005Backend final : public ObjectiveBackend {
 public:
  Paper2005Backend(PowerModel power, RepeaterDevice device)
      : power_(power), device_(device) {}

  const std::string& name() const override;
  ChainCost chain_cost(const NetProfile& net) const override;
  double net_power_nw(const NetProfile& net, double objective_cost,
                      int repeater_count) const override;
  std::uint64_t fingerprint() const override;

 private:
  PowerModel power_;
  RepeaterDevice device_;
};

/// Tuning knobs for ActivityPowerBackend. Defaults are calibrated
/// against the built-in 0.18 um kit (same order of magnitude as the
/// PowerModel constants they refine).
struct ActivityPowerConfig {
  double default_activity = 0.15;   ///< used when a net has no profile entry
  double static_nw_per_u = 5.0;     ///< width-proportional leakage slope
  double static_nw_per_repeater = 12.0;  ///< width-independent leakage floor
  double wire_static_nw_per_mm = 80.0;   ///< per-mm link static power
};

/// (b) Activity-aware static+dynamic link power (Graphite-style
/// ElectricalLinkPowerModelRepeated): dynamic energy scales with a
/// per-net switching activity instead of one global alpha, and leakage
/// has both a per-width slope and a per-repeater floor — so the DP
/// genuinely trades repeater count against width, unlike the paper's
/// pure-width objective.
class ActivityPowerBackend final : public ObjectiveBackend {
 public:
  ActivityPowerBackend(PowerModel power, RepeaterDevice device,
                       ActivityPowerConfig config = {},
                       std::map<std::string, double, std::less<>> activity = {});

  const std::string& name() const override;
  ChainCost chain_cost(const NetProfile& net) const override;
  double net_power_nw(const NetProfile& net, double objective_cost,
                      int repeater_count) const override;
  std::uint64_t fingerprint() const override;

  /// The switching activity used for `net_name`: the profile entry if
  /// present, else a deterministic per-name pseudo-activity in
  /// [0.05, 0.45] (hash of the name), else `default_activity` for
  /// anonymous nets. Deterministic across runs and platforms.
  double activity_for(std::string_view net_name) const;

 private:
  PowerModel power_;
  RepeaterDevice device_;
  ActivityPowerConfig config_;
  std::map<std::string, double, std::less<>> activity_;
};

/// Tuning knobs for LowSwingBackend.
struct LowSwingConfig {
  double swing_v = 0.4;              ///< reduced signal swing [V]
  double receiver_penalty_fs = 120000.0;  ///< sense-amp + level conversion
  double receiver_static_nw = 250.0; ///< sense-amp bias power
};

/// (c) Repeaterless low-swing interconnect (Naveen & Sharma): no
/// repeaters are inserted (the wire either meets timing on its own,
/// with a fixed transceiver delay penalty, or the point is infeasible),
/// and the reported power is the swing-scaled wire switching energy
/// plus the receiver's static bias — the competing design point the
/// evaluator compares against RIP per net.
class LowSwingBackend final : public ObjectiveBackend {
 public:
  LowSwingBackend(PowerModel power, LowSwingConfig config = {})
      : power_(power), config_(config) {}

  const std::string& name() const override;
  ChainCost chain_cost(const NetProfile& net) const override;
  double net_power_nw(const NetProfile& net, double objective_cost,
                      int repeater_count) const override;
  std::uint64_t fingerprint() const override;

 private:
  PowerModel power_;
  LowSwingConfig config_;
};

/// Names accepted by make_backend, in registry order.
const std::vector<std::string>& backend_names();

/// Construct a backend by registry name from a technology's constants.
/// Throws rip::Error on an unknown name.
std::unique_ptr<ObjectiveBackend> make_backend(std::string_view name,
                                               const Technology& tech);

}  // namespace rip::tech
