#include "tech/objective.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rip::tech {

namespace {

/// Dynamic switching power in nW of `c_ff` femtofarads toggling with
/// activity `alpha` between 0 and `vdd_v` at `freq_ghz`: same unit
/// conversion as PowerModel::gamma_nw_per_u (fF * GHz -> 1e3 nW).
double dynamic_nw(double alpha, double vdd_v, double freq_ghz, double c_ff) {
  return alpha * vdd_v * vdd_v * freq_ghz * c_ff * 1e3;
}

}  // namespace

// ---------------------------------------------------------------- paper2005

const std::string& Paper2005Backend::name() const {
  static const std::string n = "paper2005";
  return n;
}

ChainCost Paper2005Backend::chain_cost(const NetProfile&) const {
  return ChainCost{};  // identity: cost == total width (Eq. 4)
}

double Paper2005Backend::net_power_nw(const NetProfile&, double objective_cost,
                                      int) const {
  // Eq. 4: P = gamma * sum w_i; the objective cost IS the total width.
  return power_.gamma_nw_per_u(device_.co_ff, device_.cp_ff) * objective_cost;
}

std::uint64_t Paper2005Backend::fingerprint() const {
  Hash64 h;
  h << std::string_view(name()) << power_.activity << power_.vdd_v
    << power_.freq_ghz << power_.beta_nw_per_u;
  return h.value();
}

// ------------------------------------------------------------------ activity

ActivityPowerBackend::ActivityPowerBackend(
    PowerModel power, RepeaterDevice device, ActivityPowerConfig config,
    std::map<std::string, double, std::less<>> activity)
    : power_(power),
      device_(device),
      config_(config),
      activity_(std::move(activity)) {
  RIP_REQUIRE(config_.default_activity > 0,
              "activity backend: default activity must be positive");
  for (const auto& [net, alpha] : activity_) {
    RIP_REQUIRE(alpha > 0 && alpha <= 1.0,
                "activity backend: activity for '" + net +
                    "' must be in (0, 1]");
  }
}

const std::string& ActivityPowerBackend::name() const {
  static const std::string n = "activity";
  return n;
}

double ActivityPowerBackend::activity_for(std::string_view net_name) const {
  if (net_name.empty()) return config_.default_activity;
  if (const auto it = activity_.find(net_name); it != activity_.end()) {
    return it->second;
  }
  // Deterministic per-name pseudo-activity in [0.05, 0.45]: a stand-in
  // traffic profile, so unprofiled sweeps still exercise genuinely
  // per-net objectives. Stable across runs/platforms (Hash64 is).
  Hash64 h;
  h << net_name;
  return 0.05 + static_cast<double>(h.value() % 4096) / 4096.0 * 0.40;
}

ChainCost ActivityPowerBackend::chain_cost(const NetProfile& net) const {
  const double alpha = activity_for(net.name);
  ChainCost cost;
  cost.width_weight =
      dynamic_nw(alpha, power_.vdd_v, power_.freq_ghz,
                 device_.co_ff + device_.cp_ff) +
      config_.static_nw_per_u;
  cost.per_repeater = config_.static_nw_per_repeater;
  return cost;
}

double ActivityPowerBackend::net_power_nw(const NetProfile& net,
                                          double objective_cost, int) const {
  // The objective cost already totals the repeater dynamic + leakage
  // power in nW; add the per-net constants the DP could not change:
  // wire switching energy and the per-mm link static power.
  const double alpha = activity_for(net.name);
  return objective_cost +
         dynamic_nw(alpha, power_.vdd_v, power_.freq_ghz, net.wire_cap_ff) +
         config_.wire_static_nw_per_mm * net.length_um / 1000.0;
}

std::uint64_t ActivityPowerBackend::fingerprint() const {
  Hash64 h;
  h << std::string_view(name()) << power_.vdd_v << power_.freq_ghz
    << device_.co_ff << device_.cp_ff << config_.default_activity
    << config_.static_nw_per_u << config_.static_nw_per_repeater
    << config_.wire_static_nw_per_mm << activity_.size();
  for (const auto& [net, alpha] : activity_) {
    h << std::string_view(net) << alpha;
  }
  return h.value();
}

// ------------------------------------------------------------------ lowswing

const std::string& LowSwingBackend::name() const {
  static const std::string n = "lowswing";
  return n;
}

ChainCost LowSwingBackend::chain_cost(const NetProfile&) const {
  ChainCost cost;
  cost.width_weight = 0.0;
  cost.per_repeater = 0.0;
  cost.receiver_penalty_fs = config_.receiver_penalty_fs;
  cost.allow_repeaters = false;
  return cost;
}

double LowSwingBackend::net_power_nw(const NetProfile& net, double,
                                     int) const {
  // Low-swing dynamic energy is Vdd * Vswing * C per transition (the
  // driver still pulls from Vdd but only moves the wire by Vswing),
  // plus the sense amp's standing bias current at the receiver.
  return power_.activity * power_.vdd_v * config_.swing_v * power_.freq_ghz *
             net.wire_cap_ff * 1e3 +
         config_.receiver_static_nw;
}

std::uint64_t LowSwingBackend::fingerprint() const {
  Hash64 h;
  h << std::string_view(name()) << power_.activity << power_.vdd_v
    << power_.freq_ghz << config_.swing_v << config_.receiver_penalty_fs
    << config_.receiver_static_nw;
  return h.value();
}

// ------------------------------------------------------------------ registry

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {"paper2005", "activity",
                                                 "lowswing"};
  return names;
}

std::unique_ptr<ObjectiveBackend> make_backend(std::string_view name,
                                               const Technology& tech) {
  if (name == "paper2005") {
    return std::make_unique<Paper2005Backend>(tech.power(), tech.device());
  }
  if (name == "activity") {
    return std::make_unique<ActivityPowerBackend>(tech.power(), tech.device());
  }
  if (name == "lowswing") {
    return std::make_unique<LowSwingBackend>(tech.power());
  }
  std::string known;
  for (const auto& n : backend_names()) {
    known += known.empty() ? n : ", " + n;
  }
  RIP_REQUIRE(false, "unknown objective backend '" + std::string(name) +
                         "' (known: " + known + ")");
  return nullptr;  // unreachable
}

}  // namespace rip::tech
