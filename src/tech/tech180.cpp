#include "tech/technology.hpp"

namespace rip::tech {

// Calibrated synthetic 0.18 um kit (DESIGN.md §5).
//
// The "unit" repeater u is a near-minimum inverter; global wires are routed
// on metal4/metal5 only, as in Section 6 of the paper. Calibration targets
// (matching the regimes the paper's experiments exercise):
//  - tau_min of a ~12 mm net is ~2.4 ns, matching the 2.5-5.5 ns
//    constraint band of Fig. 7;
//  - the unbuffered delay is ~3x tau_min, so repeaters are required over
//    the whole 1.05..2.05 tau_min target sweep (as in the paper, where
//    even the loosest targets need small repeaters);
//  - the delay-optimal repeater width w* = sqrt(R_s c / (r C_o)) is
//    ~210-240u: above the g=10u baseline library's 100u ceiling (so the
//    paper's zone-I timing violations appear) yet within reach of the
//    g=20u library's 190u ceiling (which the paper reports as violation-
//    free) and well below the 400u range cap.
Technology make_tech180() {
  RepeaterDevice dev;
  dev.rs_ohm = 36000.0;  // unit-size output resistance
  dev.co_ff = 0.8;       // unit-size input capacitance
  dev.cp_ff = 0.8;       // unit-size output parasitic
  dev.min_width_u = 1.0;
  dev.max_width_u = 1000.0;

  std::vector<MetalLayer> layers = {
      {"metal4", 0.290, 0.29},  // thinner layer: more R, less C
      {"metal5", 0.260, 0.32},  // thicker layer: less R, more C
  };

  PowerModel power;
  power.activity = 0.15;
  power.vdd_v = 1.8;
  power.freq_ghz = 0.8;
  power.beta_nw_per_u = 4.0;

  return Technology("tech180", dev, layers, power);
}

}  // namespace rip::tech
