#pragma once

/// @file tech_io.hpp
/// Text serialization of Technology objects. A minimal line-oriented
/// format ("RIPTECH v1") so that alternative kits can be supplied without
/// recompiling:
///
///     riptech 1
///     name tech180
///     device rs_ohm 36000 co_ff 1.8 cp_ff 1.6 min_u 1 max_u 1000
///     layer metal4 r_ohm_per_um 0.108 c_ff_per_um 0.21
///     layer metal5 r_ohm_per_um 0.088 c_ff_per_um 0.24
///     power activity 0.15 vdd_v 1.8 freq_ghz 0.8 beta_nw_per_u 4
///
/// Lines beginning with '#' are comments.

#include <iosfwd>
#include <string>

#include "tech/technology.hpp"

namespace rip::tech {

/// Parse a technology from a stream; throws rip::Error with a line number
/// on malformed input.
Technology read_technology(std::istream& is);

/// Parse a technology from a file path.
Technology read_technology_file(const std::string& path);

/// Serialize; `read_technology` round-trips the output exactly.
void write_technology(std::ostream& os, const Technology& tech);

}  // namespace rip::tech
