#include "tech/tech_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rip::tech {

namespace {

/// Parse "key value key value ..." token pairs into a map.
std::map<std::string, std::string> kv_pairs(
    const std::vector<std::string>& tokens, std::size_t from, int line_no) {
  RIP_REQUIRE((tokens.size() - from) % 2 == 0,
              "odd key/value list at line " + std::to_string(line_no));
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i + 1 < tokens.size(); i += 2)
    kv[tokens[i]] = tokens[i + 1];
  return kv;
}

double need_double(const std::map<std::string, std::string>& kv,
                   const std::string& key, int line_no) {
  const auto it = kv.find(key);
  RIP_REQUIRE(it != kv.end(),
              "missing key '" + key + "' at line " + std::to_string(line_no));
  return rip::parse_double(it->second, key);
}

}  // namespace

Technology read_technology(std::istream& is) {
  std::string line;
  int line_no = 0;
  bool got_magic = false;
  std::string name;
  RepeaterDevice dev;
  bool got_device = false;
  std::vector<MetalLayer> layers;
  PowerModel power;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    const std::string& kind = tokens[0];
    if (kind == "riptech") {
      RIP_REQUIRE(tokens.size() == 2 && tokens[1] == "1",
                  "unsupported riptech version at line " +
                      std::to_string(line_no));
      got_magic = true;
    } else if (kind == "name") {
      RIP_REQUIRE(tokens.size() == 2,
                  "name takes one token at line " + std::to_string(line_no));
      name = tokens[1];
    } else if (kind == "device") {
      const auto kv = kv_pairs(tokens, 1, line_no);
      dev.rs_ohm = need_double(kv, "rs_ohm", line_no);
      dev.co_ff = need_double(kv, "co_ff", line_no);
      dev.cp_ff = need_double(kv, "cp_ff", line_no);
      dev.min_width_u = need_double(kv, "min_u", line_no);
      dev.max_width_u = need_double(kv, "max_u", line_no);
      got_device = true;
    } else if (kind == "layer") {
      RIP_REQUIRE(tokens.size() >= 2,
                  "layer needs a name at line " + std::to_string(line_no));
      const auto kv = kv_pairs(tokens, 2, line_no);
      MetalLayer layer;
      layer.name = tokens[1];
      layer.r_ohm_per_um = need_double(kv, "r_ohm_per_um", line_no);
      layer.c_ff_per_um = need_double(kv, "c_ff_per_um", line_no);
      layers.push_back(layer);
    } else if (kind == "power") {
      const auto kv = kv_pairs(tokens, 1, line_no);
      power.activity = need_double(kv, "activity", line_no);
      power.vdd_v = need_double(kv, "vdd_v", line_no);
      power.freq_ghz = need_double(kv, "freq_ghz", line_no);
      power.beta_nw_per_u = need_double(kv, "beta_nw_per_u", line_no);
    } else {
      throw Error("unknown directive '" + kind + "' at line " +
                  std::to_string(line_no));
    }
  }
  RIP_REQUIRE(got_magic, "missing 'riptech 1' header");
  RIP_REQUIRE(got_device, "missing 'device' line");
  return Technology(name, dev, std::move(layers), power);
}

Technology read_technology_file(const std::string& path) {
  std::ifstream in(path);
  RIP_REQUIRE(in.good(), "cannot open technology file: " + path);
  return read_technology(in);
}

void write_technology(std::ostream& os, const Technology& tech) {
  os << "riptech 1\n";
  os << "name " << tech.name() << "\n";
  const auto& d = tech.device();
  os << "device rs_ohm " << d.rs_ohm << " co_ff " << d.co_ff << " cp_ff "
     << d.cp_ff << " min_u " << d.min_width_u << " max_u " << d.max_width_u
     << "\n";
  for (const auto& l : tech.layers()) {
    os << "layer " << l.name << " r_ohm_per_um " << l.r_ohm_per_um
       << " c_ff_per_um " << l.c_ff_per_um << "\n";
  }
  const auto& p = tech.power();
  os << "power activity " << p.activity << " vdd_v " << p.vdd_v
     << " freq_ghz " << p.freq_ghz << " beta_nw_per_u " << p.beta_nw_per_u
     << "\n";
}

}  // namespace rip::tech
