#include "tech/technology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rip::tech {

double PowerModel::gamma_nw_per_u(double co_ff, double cp_ff) const {
  // alpha * Vdd^2 * f * C  with C in fF and f in GHz gives power in
  // fF * V^2 * 1e9 / s = 1e-6 W * 1e-9... work in consistent units:
  // P[W] = alpha * Vdd^2 [V^2] * f[Hz] * C[F].
  // C per u = (co + cp) fF = (co + cp) * 1e-15 F; f = freq_ghz * 1e9 Hz.
  // => P per u [W] = alpha * vdd^2 * freq_ghz * (co+cp) * 1e-6
  // => in nW: * 1e9 = alpha * vdd^2 * freq_ghz * (co+cp) * 1e3.
  const double dynamic_nw =
      activity * vdd_v * vdd_v * freq_ghz * (co_ff + cp_ff) * 1e3;
  return dynamic_nw + beta_nw_per_u;
}

double PowerModel::repeater_power_nw(double width_u, double co_ff,
                                     double cp_ff) const {
  return gamma_nw_per_u(co_ff, cp_ff) * width_u;
}

Technology::Technology(std::string name, RepeaterDevice device,
                       std::vector<MetalLayer> layers, PowerModel power)
    : name_(std::move(name)),
      device_(device),
      layers_(std::move(layers)),
      power_(power) {
  RIP_REQUIRE(!name_.empty(), "technology name must not be empty");
  RIP_REQUIRE(device_.rs_ohm > 0, "unit repeater resistance must be positive");
  RIP_REQUIRE(device_.co_ff > 0, "unit input capacitance must be positive");
  RIP_REQUIRE(device_.cp_ff >= 0,
              "unit output capacitance must be non-negative");
  RIP_REQUIRE(device_.min_width_u > 0 &&
                  device_.min_width_u <= device_.max_width_u,
              "repeater width bounds out of order");
  RIP_REQUIRE(!layers_.empty(), "technology needs at least one layer");
  for (const auto& l : layers_) {
    RIP_REQUIRE(!l.name.empty(), "layer name must not be empty");
    RIP_REQUIRE(l.r_ohm_per_um > 0 && l.c_ff_per_um > 0,
                "layer RC must be positive: " + l.name);
  }
}

const MetalLayer& Technology::layer(const std::string& name) const {
  const auto it =
      std::find_if(layers_.begin(), layers_.end(),
                   [&](const MetalLayer& l) { return l.name == name; });
  RIP_REQUIRE(it != layers_.end(), "unknown layer: " + name);
  return *it;
}

bool Technology::has_layer(const std::string& name) const {
  return std::any_of(layers_.begin(), layers_.end(),
                     [&](const MetalLayer& l) { return l.name == name; });
}

}  // namespace rip::tech
