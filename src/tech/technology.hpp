#pragma once

/// @file technology.hpp
/// Technology model: the electrical parameters the repeater-insertion
/// algorithms consume. Mirrors the quantities named in the paper:
/// the switch-level repeater model (R_s, C_o, C_p of a unit-size repeater,
/// Fig. 2), per-unit-length wire RC of each routing layer, and the power
/// model constants of Eq. (3).

#include <string>
#include <vector>

namespace rip::tech {

/// One routing layer with its per-unit-length RC characteristics.
struct MetalLayer {
  std::string name;        ///< e.g. "metal4"
  double r_ohm_per_um = 0; ///< wire resistance per micron [Ohm/um]
  double c_ff_per_um = 0;  ///< wire capacitance per micron [fF/um]
};

/// Switch-level model of the repeater family (Fig. 2 of the paper).
/// A repeater of width `w` (in units of the minimal width u) has output
/// resistance `rs_ohm / w`, input capacitance `co_ff * w` and parasitic
/// output capacitance `cp_ff * w`.
struct RepeaterDevice {
  double rs_ohm = 0;       ///< unit-size output resistance R_s [Ohm]
  double co_ff = 0;        ///< unit-size input capacitance C_o [fF]
  double cp_ff = 0;        ///< unit-size output capacitance C_p [fF]
  double min_width_u = 1;  ///< smallest manufacturable width [u]
  double max_width_u = 1e9;///< largest allowed width [u]
};

/// Constants of the repeater power model, Eq. (3):
///   P = alpha * Vdd^2 * f * C_total_load + sum_i beta * w_i.
/// Because C_total_load is linear in total width, P = c + gamma * sum w_i
/// (Eq. 4); `gamma_fw_per_u()` exposes that slope.
struct PowerModel {
  double activity = 0.15;      ///< switching activity alpha
  double vdd_v = 1.8;          ///< supply voltage [V]
  double freq_ghz = 1.0;       ///< clock frequency [GHz]
  double beta_nw_per_u = 5.0;  ///< leakage slope beta [nW per u of width]

  /// Dynamic + leakage power of a repeater of width `w` (total gate load
  /// C = (C_o + C_p) * w), in nanowatts.
  double repeater_power_nw(double width_u, double co_ff, double cp_ff) const;

  /// Power slope gamma in nW per unit width (Eq. 4).
  double gamma_nw_per_u(double co_ff, double cp_ff) const;
};

/// A complete technology: device + layer stack + power constants.
class Technology {
 public:
  Technology(std::string name, RepeaterDevice device,
             std::vector<MetalLayer> layers, PowerModel power);

  const std::string& name() const { return name_; }
  const RepeaterDevice& device() const { return device_; }
  const PowerModel& power() const { return power_; }
  const std::vector<MetalLayer>& layers() const { return layers_; }

  /// Look up a layer by name; throws rip::Error if absent.
  const MetalLayer& layer(const std::string& name) const;

  /// True if a layer with this name exists.
  bool has_layer(const std::string& name) const;

 private:
  std::string name_;
  RepeaterDevice device_;
  std::vector<MetalLayer> layers_;
  PowerModel power_;
};

/// The built-in 0.18 um kit used by all experiments. Values are synthetic
/// but physically plausible; they are calibrated so that the minimum delay
/// of the paper's net population (Section 6) lands in the nanosecond range
/// of Fig. 7. See DESIGN.md §5 for the substitution rationale.
Technology make_tech180();

}  // namespace rip::tech
