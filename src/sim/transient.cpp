#include "sim/transient.hpp"

#include <algorithm>
#include <cmath>

#include "rc/buffered_chain.hpp"
#include "rc/elmore.hpp"
#include "util/error.hpp"
#include "util/solver.hpp"

namespace rip::sim {

Ladder build_stage_ladder(const tech::RepeaterDevice& device,
                          double driver_width_u,
                          const std::vector<net::WirePiece>& pieces,
                          double load_ff, double max_section_um) {
  RIP_REQUIRE(driver_width_u > 0, "driver width must be positive");
  RIP_REQUIRE(max_section_um > 0, "section length must be positive");
  Ladder ladder;
  // Node 0 sits directly at the driver output: it carries the driver's
  // parasitic output capacitance C_p * w.
  ladder.series_r_ohm.push_back(device.rs_ohm / driver_width_u);
  ladder.shunt_c_ff.push_back(device.cp_ff * driver_width_u);
  for (const auto& piece : pieces) {
    const int n = std::max(1, static_cast<int>(
                                  std::ceil(piece.length_um / max_section_um)));
    const double dl = piece.length_um / n;
    for (int k = 0; k < n; ++k) {
      ladder.series_r_ohm.push_back(piece.r_ohm_per_um * dl);
      ladder.shunt_c_ff.push_back(piece.c_ff_per_um * dl);
    }
  }
  // Lumped receiver capacitance at the final node.
  ladder.shunt_c_ff.back() += load_ff;
  return ladder;
}

namespace {

/// Elmore delay of the ladder itself (for auto time-step selection).
double ladder_elmore_fs(const Ladder& ladder) {
  double elmore = 0.0;
  double upstream_r = 0.0;
  // delay = sum_i C_i * R(path to i); ladder path resistance is a prefix.
  std::vector<double> prefix_r(ladder.series_r_ohm.size());
  for (std::size_t i = 0; i < ladder.series_r_ohm.size(); ++i) {
    upstream_r += ladder.series_r_ohm[i];
    prefix_r[i] = upstream_r;
  }
  for (std::size_t i = 0; i < ladder.shunt_c_ff.size(); ++i) {
    elmore += ladder.shunt_c_ff[i] * prefix_r[i];
  }
  return elmore;
}

}  // namespace

double ladder_t50_fs(const Ladder& ladder, const TransientOptions& opts) {
  const std::size_t n = ladder.shunt_c_ff.size();
  RIP_REQUIRE(n > 0, "empty ladder");
  RIP_REQUIRE(ladder.series_r_ohm.size() == n, "ladder band size mismatch");
  RIP_REQUIRE(opts.threshold > 0 && opts.threshold < 1,
              "threshold must be in (0,1)");

  const double elmore = ladder_elmore_fs(ladder);
  RIP_REQUIRE(elmore > 0, "ladder has no RC product");
  const double dt = opts.dt_fs > 0 ? opts.dt_fs : elmore / 400.0;
  const double t_max = opts.max_time_factor * elmore;

  // Backward Euler: (G + C/dt) v_{k+1} = (C/dt) v_k + b, unit step input.
  // G is tridiagonal: node i couples to i-1 via 1/r_i and to i+1 via
  // 1/r_{i+1}; node 0 couples to the source via 1/r_0.
  std::vector<double> g(n);  // conductance of series_r
  for (std::size_t i = 0; i < n; ++i) {
    RIP_REQUIRE(ladder.series_r_ohm[i] > 0,
                "ladder series resistance must be positive");
    g[i] = 1.0 / ladder.series_r_ohm[i];
  }
  std::vector<double> diag(n), lower(n), upper(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = g[i] + (i + 1 < n ? g[i + 1] : 0.0) + ladder.shunt_c_ff[i] / dt;
    lower[i] = (i > 0) ? -g[i] : 0.0;
    upper[i] = (i + 1 < n) ? -g[i + 1] : 0.0;
  }

  std::vector<double> v(n, 0.0);
  std::vector<double> rhs(n);
  double v_prev_out = 0.0;
  for (double t = dt; t <= t_max; t += dt) {
    for (std::size_t i = 0; i < n; ++i)
      rhs[i] = ladder.shunt_c_ff[i] / dt * v[i];
    rhs[0] += g[0] * 1.0;  // unit step source through the driver resistor
    v = solve_tridiagonal(lower, diag, upper, rhs);
    const double v_out = v[n - 1];
    if (v_out >= opts.threshold) {
      // Linear interpolation inside the step that crossed.
      const double frac =
          (opts.threshold - v_prev_out) / (v_out - v_prev_out);
      return t - dt + frac * dt;
    }
    v_prev_out = v_out;
  }
  throw Error("transient simulation did not reach the threshold within " +
              std::to_string(t_max) + " fs");
}

double stage_t50_fs(const tech::RepeaterDevice& device, double driver_width_u,
                    const std::vector<net::WirePiece>& pieces, double load_ff,
                    const TransientOptions& opts) {
  const Ladder ladder = build_stage_ladder(device, driver_width_u, pieces,
                                           load_ff, opts.max_section_um);
  return ladder_t50_fs(ladder, opts);
}

double chain_t50_fs(const net::Net& net, const net::RepeaterSolution& solution,
                    const tech::RepeaterDevice& device,
                    const TransientOptions& opts) {
  const rc::BufferedChain chain(net, solution, device);
  double total = 0.0;
  for (const auto& stage : chain.stages()) {
    total += stage_t50_fs(device, stage.driver_width_u, stage.pieces,
                          device.co_ff * stage.load_width_u, opts);
  }
  return total;
}

}  // namespace rip::sim
