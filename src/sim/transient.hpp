#pragma once

/// @file transient.hpp
/// Backward-Euler transient simulation of RC ladders.
///
/// This is the ground truth used in tests to validate the Elmore engine:
/// Elmore is an upper bound on the 50% step-response delay of an RC
/// ladder, is exact to within ln(2) for a single pole, and preserves
/// ordering between competing buffering solutions. The simulator plays the
/// role the authors' circuit simulator plays for their delay model.
///
/// A repeater stage is simulated as: ideal unit step -> driver resistance
/// R_s/w -> discretized wire ladder -> lumped load. Stages are decoupled
/// through repeaters exactly as in the paper's switch-level model, so the
/// buffered-net delay is the sum of per-stage delays.

#include <vector>

#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::sim {

/// Knobs for the transient run.
struct TransientOptions {
  double max_section_um = 25.0;  ///< wire discretization granularity
  double dt_fs = 0.0;            ///< time step; 0 = auto (Elmore / 400)
  double threshold = 0.5;        ///< measure delay at this fraction of Vdd
  double max_time_factor = 40.0; ///< abort after this multiple of Elmore
};

/// A discretized RC ladder: node i is connected to node i-1 through
/// series_r[i] (node 0 connects to the source through series_r[0]) and
/// carries shunt_c[i] to ground.
struct Ladder {
  std::vector<double> series_r_ohm;
  std::vector<double> shunt_c_ff;
};

/// Build the ladder for one stage: driver resistance, discretized wire,
/// lumped load capacitance at the final node.
Ladder build_stage_ladder(const tech::RepeaterDevice& device,
                          double driver_width_u,
                          const std::vector<net::WirePiece>& pieces,
                          double load_ff, double max_section_um);

/// Time for the last ladder node to cross `threshold` of the step input,
/// by backward-Euler integration with linear interpolation at the
/// crossing. Throws if the waveform fails to cross within the time budget.
double ladder_t50_fs(const Ladder& ladder, const TransientOptions& opts = {});

/// 50% delay of a single repeater stage (driver width `w`, wire, load).
double stage_t50_fs(const tech::RepeaterDevice& device, double driver_width_u,
                    const std::vector<net::WirePiece>& pieces, double load_ff,
                    const TransientOptions& opts = {});

/// 50% delay of a fully buffered net: sum of per-stage delays.
double chain_t50_fs(const net::Net& net, const net::RepeaterSolution& solution,
                    const tech::RepeaterDevice& device,
                    const TransientOptions& opts = {});

}  // namespace rip::sim
