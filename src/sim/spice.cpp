#include "sim/spice.hpp"

#include <cmath>
#include <ostream>
#include <string>

#include "rc/buffered_chain.hpp"
#include "util/error.hpp"

namespace rip::sim {

namespace {
std::string node(std::size_t stage, std::size_t idx) {
  std::string name = "n";
  name += std::to_string(stage);
  name += '_';
  name += std::to_string(idx);
  return name;
}
}  // namespace

void write_spice_deck(std::ostream& os, const net::Net& net,
                      const net::RepeaterSolution& solution,
                      const tech::RepeaterDevice& device,
                      const SpiceOptions& opts) {
  RIP_REQUIRE(opts.vdd_v > 0, "vdd must be positive");
  const rc::BufferedChain chain(net, solution, device);
  const auto& stages = chain.stages();

  os << "* RIP buffered net '" << net.name() << "' — switch-level export\n";
  os << "* " << solution.size() << " repeaters, total width "
     << solution.total_width_u() << " u\n";
  os << ".option post\n";
  os << "Vsrc src 0 PULSE(0 " << opts.vdd_v << " 0 " << opts.rise_ps
     << "p " << opts.rise_ps << "p " << opts.sim_window_ns / 2 << "n "
     << opts.sim_window_ns << "n)\n";

  std::size_t r_id = 0;
  std::size_t c_id = 0;
  std::size_t e_id = 0;
  std::string stage_in = "src";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& stage = stages[s];
    os << "* stage " << s << ": driver width " << stage.driver_width_u
       << " u, wire " << stage.from_um << ".." << stage.to_um << " um\n";
    // Driver: unity-gain source + output resistance + parasitic cap.
    const std::string drv_out = node(s, 0);
    os << "E" << ++e_id << " " << "x" << s << " 0 " << stage_in << " 0 1\n";
    os << "R" << ++r_id << " x" << s << " " << drv_out << " "
       << device.rs_ohm / stage.driver_width_u << "\n";
    os << "C" << ++c_id << " " << drv_out << " 0 "
       << device.cp_ff * stage.driver_width_u << "f\n";
    // Wire ladder.
    std::size_t idx = 0;
    std::string prev = drv_out;
    for (const auto& piece : stage.pieces) {
      const int n = std::max(
          1, static_cast<int>(std::ceil(piece.length_um / opts.max_section_um)));
      const double dl = piece.length_um / n;
      for (int k = 0; k < n; ++k) {
        const std::string cur = node(s, ++idx);
        os << "R" << ++r_id << " " << prev << " " << cur << " "
           << piece.r_ohm_per_um * dl << "\n";
        os << "C" << ++c_id << " " << cur << " 0 " << piece.c_ff_per_um * dl
           << "f\n";
        prev = cur;
      }
    }
    // Receiving gate input capacitance.
    os << "C" << ++c_id << " " << prev << " 0 "
       << device.co_ff * stage.load_width_u << "f\n";
    stage_in = prev;
  }

  os << ".tran 1p " << opts.sim_window_ns << "n\n";
  os << ".measure tran t50 trig v(src) val=" << opts.vdd_v / 2
     << " rise=1 targ v(" << stage_in << ") val=" << opts.vdd_v / 2
     << " rise=1\n";
  os << ".end\n";
}

}  // namespace rip::sim
