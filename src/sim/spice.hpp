#pragma once

/// @file spice.hpp
/// SPICE deck export of a buffered net, so that RIP solutions can be
/// validated with an external circuit simulator. Repeaters are emitted
/// as the paper's switch-level model (Fig. 2): input capacitance C_o*w,
/// an ideal unity-gain controlled source, output resistance R_s/w and
/// output parasitic C_p*w. Signal inversion is abstracted away, exactly
/// as in the paper's delay model.

#include <iosfwd>

#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::sim {

/// Options controlling the emitted deck.
struct SpiceOptions {
  double vdd_v = 1.8;            ///< source swing
  double rise_ps = 10.0;         ///< source edge rate
  double sim_window_ns = 20.0;   ///< .tran window
  double max_section_um = 50.0;  ///< wire discretization
};

/// Write a complete .sp deck (transient analysis, .measure of the 50%
/// crossing at the receiver) for `net` buffered with `solution`.
void write_spice_deck(std::ostream& os, const net::Net& net,
                      const net::RepeaterSolution& solution,
                      const tech::RepeaterDevice& device,
                      const SpiceOptions& opts = {});

}  // namespace rip::sim
