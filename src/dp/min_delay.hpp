#pragma once

/// @file min_delay.hpp
/// tau_min: the minimum achievable Elmore delay of a net, used to define
/// the timing-target sweeps of the experiments (targets range over
/// 1.05..2.05 * tau_min, Section 6 of the paper).

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::dp {

/// Options for the tau_min computation. Defaults mirror the richest
/// library any scheme in the paper may use (10u..400u in 10u steps) with
/// a 50 um placement grid (RIP's finest location granularity).
struct MinDelayOptions {
  double min_width_u = 10.0;
  double max_width_u = 400.0;
  double granularity_u = 10.0;
  double pitch_um = 50.0;
};

/// Result of the tau_min computation.
struct MinDelayResult {
  double tau_min_fs = 0;             ///< minimum achievable delay
  net::RepeaterSolution solution;    ///< a solution achieving it
  double unbuffered_delay_fs = 0;    ///< delay with no repeaters at all
};

/// Compute tau_min by running the DP in kMinDelay mode. The first
/// overload solves on this thread's Workspace::local(); the second
/// reuses the caller's workspace arenas.
MinDelayResult min_delay(const net::Net& net,
                         const tech::RepeaterDevice& device,
                         const MinDelayOptions& options = {});
MinDelayResult min_delay(const net::Net& net,
                         const tech::RepeaterDevice& device,
                         const MinDelayOptions& options, Workspace& ws);

}  // namespace rip::dp
