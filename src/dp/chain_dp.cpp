#include "dp/chain_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/pareto.hpp"
#include "dp/workspace.hpp"
#include "util/error.hpp"

namespace rip::dp {

namespace {

/// Affine coefficients of wire propagation across one candidate interval.
/// Carrying a label upstream over the interval's pieces applies, piece by
/// piece, q -= r*(C + c/2); C += c. Composed over the whole interval that
/// is exactly
///   q -= R_tot * C + K;   C += C_tot
/// with K = sum_k r_k * (c_0 + ... + c_{k-1} + 0.5*c_k) over pieces
/// ordered downstream->upstream. The coefficients depend only on the
/// interval, so they are computed once and applied to every alive label —
/// two fused multiply-adds per label instead of a loop over pieces.
struct WireAffine {
  double r_tot = 0;  ///< total interval resistance [Ohm]
  double c_tot = 0;  ///< total interval capacitance [fF]
  double k = 0;      ///< label-independent Elmore term [fs]
};

WireAffine interval_affine(const std::vector<net::WirePiece>& pieces) {
  WireAffine a;
  // pieces are ordered upstream->downstream; accumulate from the
  // downstream end, mirroring the label's traversal order.
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    const double r = it->r_ohm_per_um * it->length_um;
    const double c = it->c_ff_per_um * it->length_um;
    a.k += r * (a.c_tot + 0.5 * c);
    a.r_tot += r;
    a.c_tot += c;
  }
  return a;
}

/// Apply the interval map to the whole frontier (contiguous SoA arrays).
void propagate_frontier(ChainFrontier& front, const WireAffine& wire) {
  if (wire.r_tot == 0 && wire.c_tot == 0) return;
  double* cap = front.cap_ff.data();
  double* q = front.q_fs.data();
  const std::size_t n = front.size();
  for (std::size_t i = 0; i < n; ++i) {
    q[i] -= wire.r_tot * cap[i] + wire.k;
    cap[i] += wire.c_tot;
  }
}

/// Build the buffer-insertion labels of one candidate into ws.expanded,
/// already dominance-filtered *within* each buffer group and ordered so
/// that ws.expanded is sorted by (C asc, q desc, w asc).
///
/// The structural shortcut the whole kernel leans on: every label of
/// group b shares the same downstream capacitance (the buffer's input
/// load co*w_b), and the allowed buffer list is width-ascending, so the
/// groups concatenate into a sorted run without any global sort. Within
/// a group, equal C reduces dominance to the (q, w) staircase: sort the
/// group (24-byte entries, cache-resident) by (q desc, w asc) and keep
/// the strictly-falling-width prefix sweep. In delay mode (no width
/// dimension) the staircase collapses to the single max-q label, found
/// by a linear scan — no sort at all.
void expand_candidate(Workspace& ws, const ChainFrontier& front,
                      const std::vector<std::int16_t>& allowed,
                      const std::vector<double>& widths, double intrinsic_fs,
                      bool use_width) {
  const std::size_t fn = front.size();
  ws.expanded.clear();
  // Lower-bound reserve only: the retained workspace capacity converges
  // to the true survivor watermark after warm-up, which is far below
  // the fn * |allowed| worst case — reserving that would pin megabytes
  // of never-used arena per thread.
  ws.expanded.reserve(fn + allowed.size());
  const double* cap = front.cap_ff.data();
  const double* q = front.q_fs.data();
  const double* w = front.width_u.data();
  for (const std::int16_t b : allowed) {
    const auto bi = static_cast<std::size_t>(b);
    const double load = ws.lib_load_ff[bi];
    const double rs_over_w = ws.lib_rs_over_w[bi];
    const double wb = widths[bi];
    if (!use_width) {
      // Delay mode: only the group's best q can survive (ties: the
      // smallest width, matching the (q desc, w asc) sort order).
      double best_q = -std::numeric_limits<double>::infinity();
      double best_w = std::numeric_limits<double>::infinity();
      std::int32_t best_i = -1;
      for (std::size_t i = 0; i < fn; ++i) {
        const double up_q = q[i] - (intrinsic_fs + rs_over_w * cap[i]);
        const double up_w = w[i] + wb;
        if (up_q > best_q || (up_q == best_q && up_w < best_w)) {
          best_q = up_q;
          best_w = up_w;
          best_i = static_cast<std::int32_t>(i);
        }
      }
      ws.expanded.push_back(ExpandLabel{load, best_q, best_w, best_i, b});
      continue;
    }
    ws.group.clear();
    ws.group.reserve(fn);
    for (std::size_t i = 0; i < fn; ++i) {
      ws.group.push_back(
          GroupEntry{q[i] - (intrinsic_fs + rs_over_w * cap[i]), w[i] + wb,
                     static_cast<std::int32_t>(i)});
    }
    std::sort(ws.group.begin(), ws.group.end(),
              [](const GroupEntry& a, const GroupEntry& c) {
                if (a.q_fs != c.q_fs) return a.q_fs > c.q_fs;
                return a.width_u < c.width_u;
              });
    // Sweeping q descending, a label survives the group staircase iff
    // its width strictly undercuts everything seen.
    double min_w = std::numeric_limits<double>::infinity();
    for (const GroupEntry& e : ws.group) {
      if (e.width_u < min_w) {
        min_w = e.width_u;
        ws.expanded.push_back(
            ExpandLabel{load, e.q_fs, e.width_u, e.origin, b});
      }
    }
  }
}

/// Reconstruct the repeater list from a winning label's parent chain
/// through the reconstruction arena. `count` is the label's repeater
/// count, so the output vector is reserved exactly once.
net::RepeaterSolution reconstruct(const Workspace& ws, std::int32_t node,
                                  std::int16_t count,
                                  const RepeaterLibrary& library,
                                  const std::vector<double>& candidates_um) {
  std::vector<net::Repeater> repeaters;
  repeaters.reserve(static_cast<std::size_t>(count));
  for (std::int32_t idx = node; idx >= 0;
       idx = ws.a_parent[static_cast<std::size_t>(idx)]) {
    const auto i = static_cast<std::size_t>(idx);
    repeaters.push_back(net::Repeater{
        candidates_um[static_cast<std::size_t>(ws.a_pos[i])],
        library.widths_u()[static_cast<std::size_t>(ws.a_buffer[i])]});
  }
  return net::RepeaterSolution(std::move(repeaters));
}

}  // namespace

ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options) {
  return run_chain_dp(net, device, library, candidates_um, options,
                      Workspace::local());
}

ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options, Workspace& ws) {
  const double total_um = net.total_length_um();
  RIP_REQUIRE(std::is_sorted(candidates_um.begin(), candidates_um.end()),
              "candidate positions must be sorted");
  for (const double pos : candidates_um) {
    RIP_REQUIRE(net.placement_legal(pos),
                "candidate position is not a legal repeater location");
  }
  if (options.mode == Mode::kMinPower) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }
  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == candidates_um.size(),
                "allowed_buffers must parallel the candidate list");
    for (const auto& allowed : *options.allowed_buffers) {
      RIP_REQUIRE(std::is_sorted(allowed.begin(), allowed.end()),
                  "allowed_buffers lists must be sorted ascending");
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }

  const bool power_mode = (options.mode == Mode::kMinPower);
  ChainDpResult result;
  result.stats.positions = candidates_um.size();
  result.stats.workspace_reuses = ws.stats_.solves();

  // Per-solve precompute: the library's input loads (co*w) and driving
  // resistances (rs/w), and the width-independent intrinsic gate delay.
  library.fill_device_terms(device, ws.lib_load_ff, ws.lib_rs_over_w);
  const double intrinsic_fs = device.rs_ohm * device.cp_ff;
  const std::size_t lib_n = library.size();
  ws.all_buffers.resize(lib_n);
  for (std::size_t b = 0; b < lib_n; ++b)
    ws.all_buffers[b] = static_cast<std::int16_t>(b);
  const std::vector<double>& widths = library.widths_u();

  // Reset the chain arenas; capacity is retained from prior solves.
  ChainFrontier* front = &ws.chain_front;
  ChainFrontier* back = &ws.chain_back;
  front->clear();
  back->clear();
  ws.a_parent.clear();
  ws.a_pos.clear();
  ws.a_buffer.clear();

  // Seed at the receiver: C = C_o * w_r; q = timing target (0 in delay
  // mode, where q is the negated accumulated delay); p = 0. The seed has
  // no arena entry (node -1 terminates reconstruction).
  front->push(device.co_ff * net.receiver_width_u(),
              power_mode ? options.timing_target_fs : 0.0, 0.0, 0, -1);
  ++result.stats.labels_created;

  // Sweep candidates from the last (closest to receiver) to the first.
  // Invariant entering each step: the frontier is sorted by
  // (C asc, q desc, w asc). Wire propagation preserves it: C order
  // survives adding one constant (IEEE addition is monotone) and labels
  // at equal C receive the exact same q shift. (If two distinct C
  // values round to the same sum, their q tie-order can locally relax —
  // the staircase sweep below only needs C to be non-decreasing, so the
  // survivor set stays correct; at worst a dominated FP-twin lives one
  // extra round.) The merge below emits the next frontier in the same
  // order.
  double downstream_pos = total_um;
  for (std::size_t ci = candidates_um.size(); ci-- > 0;) {
    const double pos = candidates_um[ci];
    net.pieces_between(pos, downstream_pos, ws.pieces);
    propagate_frontier(*front, interval_affine(ws.pieces));
    downstream_pos = pos;

    // Library indices that may be inserted at this candidate.
    const std::vector<std::int16_t>& allowed =
        options.allowed_buffers != nullptr ? (*options.allowed_buffers)[ci]
                                           : ws.all_buffers;

    // Option B labels (insert a repeater here), built per buffer group,
    // pre-filtered within each group, concatenated in sorted run order.
    expand_candidate(ws, *front, allowed, widths, intrinsic_fs, power_mode);
    const std::size_t fn = front->size();
    const std::size_t gn = ws.expanded.size();
    result.stats.labels_created += allowed.size() * fn;

    // Merge the pass-through run (the frontier itself — option A labels
    // are never copied) with the expansion run, sweeping the global
    // dominance filter over the combined sorted order and materializing
    // survivors straight into the back frontier. Surviving repeater
    // labels append their reconstruction-arena entry here; pass-throughs
    // keep their node.
    back->clear();
    back->reserve(fn + gn);
    ws.frontier.clear();
    double best_q = -std::numeric_limits<double>::infinity();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < fn || j < gn) {
      bool from_front;
      if (j >= gn) {
        from_front = true;
      } else if (i >= fn) {
        from_front = false;
      } else {
        // (C asc, q desc, w asc); exact ties take the pass-through.
        const ExpandLabel& g = ws.expanded[j];
        if (front->cap_ff[i] != g.cap_ff) {
          from_front = front->cap_ff[i] < g.cap_ff;
        } else if (front->q_fs[i] != g.q_fs) {
          from_front = front->q_fs[i] > g.q_fs;
        } else {
          from_front = front->width_u[i] <= g.width_u;
        }
      }
      if (from_front) {
        const double q = front->q_fs[i];
        const double w = front->width_u[i];
        const bool survives = power_mode
                                  ? ws.frontier.try_insert(q, w)
                                  : q > best_q;
        if (survives) {
          best_q = q;
          back->push(front->cap_ff[i], q, w, front->count[i],
                     front->node[i]);
        }
        ++i;
      } else {
        const ExpandLabel& g = ws.expanded[j];
        const bool survives = power_mode
                                  ? ws.frontier.try_insert(g.q_fs, g.width_u)
                                  : g.q_fs > best_q;
        if (survives) {
          best_q = g.q_fs;
          const auto origin = static_cast<std::size_t>(g.origin);
          ws.a_parent.push_back(front->node[origin]);
          ws.a_pos.push_back(static_cast<std::int32_t>(ci));
          ws.a_buffer.push_back(g.buffer);
          back->push(g.cap_ff, g.q_fs, g.width_u,
                     static_cast<std::int16_t>(front->count[origin] + 1),
                     static_cast<std::int32_t>(ws.a_parent.size() - 1));
        }
        ++j;
      }
    }
    result.stats.labels_pruned += fn * (1 + allowed.size()) - back->size();
    result.stats.labels_peak =
        std::max(result.stats.labels_peak, back->size());
    std::swap(front, back);
  }

  // Final wire run up to the driver, then the driver itself.
  net.pieces_between(0.0, downstream_pos, ws.pieces);
  propagate_frontier(*front, interval_affine(ws.pieces));

  std::int32_t best = -1;          // min width among feasible (power mode)
  std::int32_t best_delay = -1;    // max q_final overall
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  const double driver_rs_over_w = device.rs_ohm / net.driver_width_u();
  for (std::size_t i = 0; i < front->size(); ++i) {
    const double q_final =
        front->q_fs[i] - (intrinsic_fs + driver_rs_over_w * front->cap_ff[i]);
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = static_cast<std::int32_t>(i);
    }
    if (power_mode && q_final >= -options.slack_tolerance_fs) {
      // Selection order: total width, then repeater count, then slack.
      const bool better =
          front->width_u[i] < best_width ||
          (front->width_u[i] == best_width &&
           (front->count[i] < best_count ||
            (front->count[i] == best_count && q_final > best_q)));
      if (better) {
        best_width = front->width_u[i];
        best_count = front->count[i];
        best_q = q_final;
        best = static_cast<std::int32_t>(i);
      }
    }
  }
  RIP_ASSERT(best_delay >= 0, "DP lost all labels");

  result.stats.arena_peak = ws.a_parent.size();

  const double target = power_mode ? options.timing_target_fs : 0.0;
  const auto delay_i = static_cast<std::size_t>(best_delay);
  if (options.reconstruct_solutions) {
    result.min_delay_solution =
        reconstruct(ws, front->node[delay_i], front->count[delay_i], library,
                    candidates_um);
  }
  result.min_delay_fs = target - best_delay_q;

  if (power_mode) {
    if (best >= 0) {
      const auto best_i = static_cast<std::size_t>(best);
      result.status = Status::kOptimal;
      if (options.reconstruct_solutions) {
        result.solution = reconstruct(ws, front->node[best_i],
                                      front->count[best_i], library,
                                      candidates_um);
      }
      result.total_width_u = front->width_u[best_i];
      result.delay_fs = target - best_q;
    } else {
      result.status = Status::kInfeasible;
      result.total_width_u = 0;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    if (options.reconstruct_solutions) result.solution = result.min_delay_solution;
    result.total_width_u = front->width_u[delay_i];
    result.delay_fs = result.min_delay_fs;
  }

  ++ws.stats_.chain_solves;
  ws.stats_.labels_created += result.stats.labels_created;
  ws.stats_.labels_pruned += result.stats.labels_pruned;
  ws.stats_.peak_frontier_labels =
      std::max(ws.stats_.peak_frontier_labels, result.stats.labels_peak);
  ws.stats_.peak_arena_labels =
      std::max(ws.stats_.peak_arena_labels, result.stats.arena_peak);
  return result;
}

}  // namespace rip::dp
