#include "dp/chain_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/pareto.hpp"
#include "util/error.hpp"

namespace rip::dp {

namespace {

/// Propagate a label upstream across a run of wire pieces (ordered
/// upstream->downstream): the signal still has to traverse the wire, so
/// q decreases by the wire's Elmore delay into the current C, and C grows
/// by the wire capacitance.
void propagate_wire(Label& label, const std::vector<net::WirePiece>& pieces) {
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    const double r = it->r_ohm_per_um * it->length_um;
    const double c = it->c_ff_per_um * it->length_um;
    label.q_fs -= r * (label.cap_ff + 0.5 * c);
    label.cap_ff += c;
  }
}

/// Delay through a repeater (or the driver) of width `w` into downstream
/// capacitance `cap`: R_s C_p + (R_s / w) * cap.
double gate_delay_fs(const tech::RepeaterDevice& device, double w,
                     double cap_ff) {
  return device.rs_ohm * device.cp_ff + device.rs_ohm / w * cap_ff;
}

/// Reconstruct the repeater list from a winning label's parent chain.
net::RepeaterSolution reconstruct(const std::vector<Label>& arena,
                                  std::int32_t winner,
                                  const RepeaterLibrary& library,
                                  const std::vector<double>& candidates_um) {
  std::vector<net::Repeater> repeaters;
  for (std::int32_t idx = winner; idx >= 0; idx = arena[idx].parent) {
    const Label& l = arena[idx];
    if (l.buffer >= 0) {
      repeaters.push_back(net::Repeater{
          candidates_um[static_cast<std::size_t>(l.pos)],
          library.widths_u()[static_cast<std::size_t>(l.buffer)]});
    }
  }
  return net::RepeaterSolution(std::move(repeaters));
}

}  // namespace

ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options) {
  const double total_um = net.total_length_um();
  RIP_REQUIRE(std::is_sorted(candidates_um.begin(), candidates_um.end()),
              "candidate positions must be sorted");
  for (const double pos : candidates_um) {
    RIP_REQUIRE(net.placement_legal(pos),
                "candidate position is not a legal repeater location");
  }
  if (options.mode == Mode::kMinPower) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }
  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == candidates_um.size(),
                "allowed_buffers must parallel the candidate list");
    for (const auto& allowed : *options.allowed_buffers) {
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }

  const bool power_mode = (options.mode == Mode::kMinPower);
  ChainDpResult result;
  result.stats.positions = candidates_um.size();

  // The arena owns every label ever created; the working set holds arena
  // indices of the currently-alive frontier. Wire propagation mutates
  // arena entries in place (parent links are only used for reconstruction,
  // which reads buffer/pos, so mutation is safe).
  std::vector<Label> arena;
  arena.reserve(1024);
  std::vector<std::int32_t> alive;

  // Seed at the receiver: C = C_o * w_r; q = timing target (0 in delay
  // mode, where q is the negated accumulated delay); p = 0.
  Label seed;
  seed.cap_ff = device.co_ff * net.receiver_width_u();
  seed.q_fs = power_mode ? options.timing_target_fs : 0.0;
  arena.push_back(seed);
  alive.push_back(0);
  ++result.stats.labels_created;

  // Sweep candidates from the last (closest to receiver) to the first.
  std::vector<std::int16_t> all_indices(library.size());
  for (std::size_t b = 0; b < library.size(); ++b)
    all_indices[b] = static_cast<std::int16_t>(b);
  double downstream_pos = total_um;
  std::vector<Label> scratch;
  for (std::size_t ci = candidates_um.size(); ci-- > 0;) {
    const double pos = candidates_um[ci];
    const auto pieces = net.pieces_between(pos, downstream_pos);
    for (const std::int32_t idx : alive) propagate_wire(arena[idx], pieces);
    downstream_pos = pos;

    // Option A: pass through (labels keep their identity). Option B: for
    // each library width, insert a repeater here.
    scratch.clear();
    for (const std::int32_t idx : alive) {
      scratch.push_back(arena[idx]);
      // Remember where this copy came from so we can map back.
      scratch.back().parent = idx;
      scratch.back().buffer = -1;
      scratch.back().pos = -1;
    }
    // Library indices that may be inserted at this candidate.
    const std::vector<std::int16_t>* allowed =
        options.allowed_buffers != nullptr ? &(*options.allowed_buffers)[ci]
                                           : &all_indices;
    for (const std::int32_t idx : alive) {
      const Label& down = arena[idx];
      for (const std::int16_t b : *allowed) {
        const double w = library.widths_u()[static_cast<std::size_t>(b)];
        Label up;
        up.cap_ff = device.co_ff * w;
        up.q_fs = down.q_fs - gate_delay_fs(device, w, down.cap_ff);
        up.width_u = down.width_u + w;
        up.parent = idx;
        up.pos = static_cast<std::int32_t>(ci);
        up.buffer = b;
        up.count = static_cast<std::int16_t>(down.count + 1);
        scratch.push_back(up);
      }
    }
    result.stats.labels_created += allowed->size() * alive.size();
    prune_dominated(scratch, power_mode);
    result.stats.labels_peak = std::max(result.stats.labels_peak,
                                        scratch.size());

    // Materialize the pruned set back into the arena. Pass-through labels
    // (buffer == -1) reuse their existing arena slot; new repeater labels
    // are appended.
    alive.clear();
    for (Label& l : scratch) {
      if (l.buffer < 0) {
        alive.push_back(l.parent);  // parent field held the original index
      } else {
        arena.push_back(l);
        alive.push_back(static_cast<std::int32_t>(arena.size() - 1));
      }
    }
  }

  // Final wire run up to the driver, then the driver itself.
  {
    const auto pieces = net.pieces_between(0.0, downstream_pos);
    for (const std::int32_t idx : alive) propagate_wire(arena[idx], pieces);
  }

  std::int32_t best = -1;          // min width among feasible (power mode)
  std::int32_t best_delay = -1;    // max q_final overall
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  for (const std::int32_t idx : alive) {
    Label& l = arena[idx];
    const double q_final =
        l.q_fs - gate_delay_fs(device, net.driver_width_u(), l.cap_ff);
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = idx;
    }
    if (power_mode && q_final >= -options.slack_tolerance_fs) {
      // Selection order: total width, then repeater count, then slack.
      const bool better =
          l.width_u < best_width ||
          (l.width_u == best_width &&
           (l.count < best_count ||
            (l.count == best_count && q_final > best_q)));
      if (better) {
        best_width = l.width_u;
        best_count = l.count;
        best_q = q_final;
        best = idx;
      }
    }
  }
  RIP_ASSERT(best_delay >= 0, "DP lost all labels");

  const double target = power_mode ? options.timing_target_fs : 0.0;
  result.min_delay_solution =
      reconstruct(arena, best_delay, library, candidates_um);
  result.min_delay_fs = target - best_delay_q;

  if (power_mode) {
    if (best >= 0) {
      result.status = Status::kOptimal;
      result.solution = reconstruct(arena, best, library, candidates_um);
      result.total_width_u = arena[best].width_u;
      result.delay_fs = target - best_q;
    } else {
      result.status = Status::kInfeasible;
      result.total_width_u = 0;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    result.solution = result.min_delay_solution;
    result.total_width_u = result.solution.total_width_u();
    result.delay_fs = result.min_delay_fs;
  }
  return result;
}

}  // namespace rip::dp
