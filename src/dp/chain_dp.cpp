#include "dp/chain_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "dp/kernel_ops.hpp"
#include "dp/pareto.hpp"
#include "dp/workspace.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rip::dp {

namespace {

using kernel::expand_candidate;
using kernel::identity_cost_table;
using kernel::interval_affine;
using kernel::kNoBuffers;
using kernel::propagate_frontier;

/// Resolve the active backend's per-net cost coefficients (identity when
/// no backend is set), validated by the shared checker.
tech::ChainCost resolve_cost(const net::Net& net,
                             const ChainDpOptions& options) {
  return kernel::checked_chain_cost(
      options.backend, tech::NetProfile{net.name(), net.total_length_um(),
                                        net.total_capacitance_ff()});
}

/// Read-only view over a finished (post-driver) frontier plus its
/// reconstruction arena. Both the cold path (workspace arrays) and the
/// cached path (ChainFrontierSolve arrays) select through this view, so
/// the two paths share one selection code path — bit-identity between a
/// cold solve and a later cache hit is by construction, not by accident.
struct FrontierView {
  const double* q_fs;             ///< target-relative final slack
  const double* width_u;
  const std::int16_t* count;
  const std::int32_t* node;
  std::size_t size;
  const std::int32_t* a_parent;
  const std::int32_t* a_pos;
  const std::int16_t* a_buffer;
};

FrontierView view_of(const ChainFrontier& front, const Workspace& ws) {
  return FrontierView{front.q_fs.data(),    front.width_u.data(),
                      front.count.data(),   front.node.data(),
                      front.size(),         ws.a_parent.data(),
                      ws.a_pos.data(),      ws.a_buffer.data()};
}

FrontierView view_of(const ChainFrontierSolve& solve) {
  return FrontierView{solve.q_fs.data(),    solve.width_u.data(),
                      solve.count.data(),   solve.node.data(),
                      solve.size(),         solve.a_parent.data(),
                      solve.a_pos.data(),   solve.a_buffer.data()};
}

/// Reconstruct the repeater list from a winning label's parent chain
/// through the reconstruction arena. `count` is the label's repeater
/// count, so the output vector is reserved exactly once.
/// Physical total width of a label, re-summed from its arena chain. Only
/// the non-identity objectives use this: on the identity path the label's
/// accumulated value IS the total width, bit-for-bit (re-summing would
/// reverse the accumulation order and can differ in the last ulp).
double arena_total_width(const FrontierView& v, std::int32_t node,
                         const RepeaterLibrary& library) {
  double w = 0;
  for (std::int32_t idx = node; idx >= 0;
       idx = v.a_parent[static_cast<std::size_t>(idx)]) {
    w += library.widths_u()[static_cast<std::size_t>(
        v.a_buffer[static_cast<std::size_t>(idx)])];
  }
  return w;
}

net::RepeaterSolution reconstruct(const FrontierView& v, std::int32_t node,
                                  std::int16_t count,
                                  const RepeaterLibrary& library,
                                  const std::vector<double>& candidates_um) {
  std::vector<net::Repeater> repeaters;
  repeaters.reserve(static_cast<std::size_t>(count));
  for (std::int32_t idx = node; idx >= 0;
       idx = v.a_parent[static_cast<std::size_t>(idx)]) {
    const auto i = static_cast<std::size_t>(idx);
    repeaters.push_back(net::Repeater{
        candidates_um[static_cast<std::size_t>(v.a_pos[i])],
        library.widths_u()[static_cast<std::size_t>(v.a_buffer[i])]});
  }
  return net::RepeaterSolution(std::move(repeaters));
}

void validate_inputs(const net::Net& net, const RepeaterLibrary& library,
                     const std::vector<double>& candidates_um,
                     const ChainDpOptions& options, bool need_target) {
  RIP_REQUIRE(std::is_sorted(candidates_um.begin(), candidates_um.end()),
              "candidate positions must be sorted");
  for (const double pos : candidates_um) {
    RIP_REQUIRE(net.placement_legal(pos),
                "candidate position is not a legal repeater location");
  }
  if (need_target && options.mode == Mode::kMinPower) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }
  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == candidates_um.size(),
                "allowed_buffers must parallel the candidate list");
    for (const auto& allowed : *options.allowed_buffers) {
      RIP_REQUIRE(std::is_sorted(allowed.begin(), allowed.end()),
                  "allowed_buffers lists must be sorted ascending");
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }
}

/// Double-buffered sweep state: which SoA frontier is live and where the
/// sweep currently stands on the chain.
struct SweepCursor {
  ChainFrontier* front;
  ChainFrontier* back;
  double downstream_pos;
};

/// Fill the per-solve library terms, reset the chain arenas, and seed the
/// receiver label. q is *target-relative*: it starts at 0 in both modes
/// and every later update subtracts terms that depend only on C, never on
/// q itself — so the swept frontier is independent of the timing target,
/// which enters only at selection time. That target-independence is what
/// lets one solved frontier answer every target (ChainSolveCache).
SweepCursor seed_sweep(const net::Net& net, const tech::RepeaterDevice& device,
                       const RepeaterLibrary& library,
                       const tech::ChainCost& cost, Workspace& ws,
                       DpStats& stats) {
  library.fill_device_terms(device, ws.lib_load_ff, ws.lib_rs_over_w);
  library.fill_cost_terms(cost, ws.lib_cost);
  const std::size_t lib_n = library.size();
  ws.all_buffers.resize(lib_n);
  for (std::size_t b = 0; b < lib_n; ++b)
    ws.all_buffers[b] = static_cast<std::int16_t>(b);

  SweepCursor cur{&ws.chain_front, &ws.chain_back, net.total_length_um()};
  cur.front->clear();
  cur.back->clear();
  ws.a_parent.clear();
  ws.a_pos.clear();
  ws.a_buffer.clear();

  // Seed at the receiver: C = C_o * w_r; q = 0 (target-relative) minus
  // any backend receiver penalty (kernel::seed_q_fs); p = 0. The seed
  // has no arena entry (node -1 terminates reconstruction).
  cur.front->push(device.co_ff * net.receiver_width_u(),
                  kernel::seed_q_fs(cost), 0.0, 0, -1);
  ++stats.labels_created;
  return cur;
}

/// Sweep candidate indices [stop, start) from the last (closest to the
/// receiver) down to `stop`. Shared verbatim by the full solve, the
/// prefix capture, and the resume path — identical arithmetic in all
/// three is what makes resume bit-identical to a full solve.
///
/// Invariant entering each step: the frontier is sorted by
/// (C asc, q desc, w asc). Wire propagation preserves it: C order
/// survives adding one constant (IEEE addition is monotone) and labels
/// at equal C receive the exact same q shift. (If two distinct C
/// values round to the same sum, their q tie-order can locally relax —
/// the staircase sweep below only needs C to be non-decreasing, so the
/// survivor set stays correct; at worst a dominated FP-twin lives one
/// extra round.) The merge below emits the next frontier in the same
/// order.
void sweep_range(const net::Net& net, const tech::RepeaterDevice& device,
                 const std::vector<double>& candidates_um,
                 const ChainDpOptions& options, const tech::ChainCost& cost,
                 Workspace& ws, SweepCursor& cur, std::size_t start,
                 std::size_t stop, DpStats& stats) {
  const bool power_mode = (options.mode == Mode::kMinPower);
  const double intrinsic_fs = device.rs_ohm * device.cp_ff;
  ChainFrontier* front = cur.front;
  ChainFrontier* back = cur.back;
  for (std::size_t ci = start; ci-- > stop;) {
    const double pos = candidates_um[ci];
    net.pieces_between(pos, cur.downstream_pos, ws.pieces);
    propagate_frontier(*front, interval_affine(ws.pieces));
    cur.downstream_pos = pos;

    // Library indices that may be inserted at this candidate. A backend
    // that forbids repeaters empties every candidate's list.
    const std::vector<std::int16_t>& allowed =
        !cost.allow_repeaters        ? kNoBuffers
        : options.allowed_buffers != nullptr ? (*options.allowed_buffers)[ci]
                                             : ws.all_buffers;

    // Option B labels (insert a repeater here), built per buffer group,
    // pre-filtered within each group, concatenated in sorted run order.
    // Labels accumulate the objective cost table (== widths on the
    // identity objective, same bits).
    expand_candidate(ws, *front, allowed, ws.lib_cost, intrinsic_fs,
                     power_mode);
    const std::size_t fn = front->size();
    const std::size_t gn = ws.expanded.size();
    stats.labels_created += allowed.size() * fn;

    // Merge the pass-through run (the frontier itself — option A labels
    // are never copied) with the expansion run, sweeping the global
    // dominance filter over the combined sorted order and materializing
    // survivors straight into the back frontier. Surviving repeater
    // labels append their reconstruction-arena entry here; pass-throughs
    // keep their node.
    back->clear();
    back->reserve(fn + gn);
    ws.frontier.clear();
    double best_q = -std::numeric_limits<double>::infinity();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < fn || j < gn) {
      bool from_front;
      if (j >= gn) {
        from_front = true;
      } else if (i >= fn) {
        from_front = false;
      } else {
        // (C asc, q desc, w asc); exact ties take the pass-through.
        const ExpandLabel& g = ws.expanded[j];
        if (front->cap_ff[i] != g.cap_ff) {
          from_front = front->cap_ff[i] < g.cap_ff;
        } else if (front->q_fs[i] != g.q_fs) {
          from_front = front->q_fs[i] > g.q_fs;
        } else {
          from_front = front->width_u[i] <= g.width_u;
        }
      }
      if (from_front) {
        const double q = front->q_fs[i];
        const double w = front->width_u[i];
        const bool survives = power_mode
                                  ? ws.frontier.try_insert(q, w)
                                  : q > best_q;
        if (survives) {
          best_q = q;
          back->push(front->cap_ff[i], q, w, front->count[i],
                     front->node[i]);
        }
        ++i;
      } else {
        const ExpandLabel& g = ws.expanded[j];
        const bool survives = power_mode
                                  ? ws.frontier.try_insert(g.q_fs, g.width_u)
                                  : g.q_fs > best_q;
        if (survives) {
          best_q = g.q_fs;
          const auto origin = static_cast<std::size_t>(g.origin);
          ws.a_parent.push_back(front->node[origin]);
          ws.a_pos.push_back(static_cast<std::int32_t>(ci));
          ws.a_buffer.push_back(g.buffer);
          back->push(g.cap_ff, g.q_fs, g.width_u,
                     static_cast<std::int16_t>(front->count[origin] + 1),
                     static_cast<std::int32_t>(ws.a_parent.size() - 1));
        }
        ++j;
      }
    }
    stats.labels_pruned += fn * (1 + allowed.size()) - back->size();
    stats.labels_peak = std::max(stats.labels_peak, back->size());
    std::swap(front, back);
  }
  cur.front = front;
  cur.back = back;
}

/// Final wire run up to the driver, then the driver gate applied *in
/// place*: afterwards front->q_fs[i] holds the label's target-relative
/// final slack (q_rel; feasibility at a target is q_rel + target >= -tol
/// and the realized delay is -q_rel). cap_ff is dead past this point.
void finish_at_driver(const net::Net& net, const tech::RepeaterDevice& device,
                      Workspace& ws, SweepCursor& cur) {
  net.pieces_between(0.0, cur.downstream_pos, ws.pieces);
  propagate_frontier(*cur.front, interval_affine(ws.pieces));
  const double intrinsic_fs = device.rs_ohm * device.cp_ff;
  const double driver_rs_over_w = device.rs_ohm / net.driver_width_u();
  double* q = cur.front->q_fs.data();
  const double* cap = cur.front->cap_ff.data();
  const std::size_t n = cur.front->size();
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = q[i] - (intrinsic_fs + driver_rs_over_w * cap[i]);
  }
}

/// Answer one target from a finished frontier: feasibility scan,
/// min-cost (power) / max-slack (delay) selection, reconstruction.
/// `identity` says the labels' value dimension is plain total width
/// (read it off the winner); otherwise the physical width is re-summed
/// from the winner's arena chain.
ChainDpResult select_result(const FrontierView& v,
                            const RepeaterLibrary& library,
                            const std::vector<double>& candidates_um,
                            const ChainDpOptions& options, bool identity,
                            const DpStats& stats) {
  const bool power_mode = (options.mode == Mode::kMinPower);
  const double target = power_mode ? options.timing_target_fs : 0.0;
  ChainDpResult result;
  result.stats = stats;

  std::int32_t best = -1;          // min width among feasible (power mode)
  std::int32_t best_delay = -1;    // max final slack overall
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < v.size; ++i) {
    const double q_final = v.q_fs[i];  // target-relative, driver applied
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = static_cast<std::int32_t>(i);
    }
    if (power_mode && q_final + target >= -options.slack_tolerance_fs) {
      // Selection order: total width, then repeater count, then slack.
      const bool better =
          v.width_u[i] < best_width ||
          (v.width_u[i] == best_width &&
           (v.count[i] < best_count ||
            (v.count[i] == best_count && q_final > best_q)));
      if (better) {
        best_width = v.width_u[i];
        best_count = v.count[i];
        best_q = q_final;
        best = static_cast<std::int32_t>(i);
      }
    }
  }
  RIP_ASSERT(best_delay >= 0, "DP lost all labels");

  const auto delay_i = static_cast<std::size_t>(best_delay);
  if (options.reconstruct_solutions) {
    result.min_delay_solution = reconstruct(v, v.node[delay_i],
                                            v.count[delay_i], library,
                                            candidates_um);
  }
  result.min_delay_fs = -best_delay_q;

  if (power_mode) {
    if (best >= 0) {
      const auto best_i = static_cast<std::size_t>(best);
      result.status = Status::kOptimal;
      if (options.reconstruct_solutions) {
        result.solution = reconstruct(v, v.node[best_i], v.count[best_i],
                                      library, candidates_um);
      }
      result.total_width_u =
          identity ? v.width_u[best_i]
                   : arena_total_width(v, v.node[best_i], library);
      result.objective_cost = v.width_u[best_i];
      result.delay_fs = -best_q;
    } else {
      result.status = Status::kInfeasible;
      result.total_width_u = 0;
      result.objective_cost = 0;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    if (options.reconstruct_solutions) {
      result.solution = result.min_delay_solution;
    }
    result.total_width_u =
        identity ? v.width_u[delay_i]
                 : arena_total_width(v, v.node[delay_i], library);
    result.objective_cost = v.width_u[delay_i];
    result.delay_fs = result.min_delay_fs;
  }
  return result;
}

void bump_ws_stats(Workspace& ws, const DpStats& stats) {
  ++ws.stats_.chain_solves;
  ws.stats_.labels_created += stats.labels_created;
  ws.stats_.labels_pruned += stats.labels_pruned;
  ws.stats_.peak_frontier_labels =
      std::max(ws.stats_.peak_frontier_labels, stats.labels_peak);
  ws.stats_.peak_arena_labels =
      std::max(ws.stats_.peak_arena_labels, stats.arena_peak);
}

/// Fingerprint of everything a suffix checkpoint's labels depend on: the
/// device, library, mode, receiver width, the suffix candidate positions
/// (and their allowed lists), and the net geometry downstream of the
/// checkpoint. chain_dp_resume recomputes this against the new query and
/// refuses a mismatch, so a stale prefix fails loudly.
std::uint64_t prefix_consistency_key(const net::Net& net,
                                     const tech::RepeaterDevice& device,
                                     const RepeaterLibrary& library,
                                     const std::vector<double>& candidates_um,
                                     const ChainDpOptions& options,
                                     std::size_t suffix_candidates) {
  Hash64 h;
  h << device.rs_ohm << device.co_ff << device.cp_ff;
  h << net.receiver_width_u();
  h << std::span<const double>(library.widths_u());
  h << static_cast<int>(options.mode);
  const std::size_t n = candidates_um.size();
  const std::size_t first = n - suffix_candidates;
  h << suffix_candidates;
  for (std::size_t ci = first; ci < n; ++ci) h << candidates_um[ci];
  // Geometry downstream of the checkpoint (candidate spacing, wire RC,
  // and — via pieces — any forbidden-zone splits in that range).
  const double from =
      suffix_candidates == 0 ? net.total_length_um() : candidates_um[first];
  std::vector<net::WirePiece> pieces;
  net.pieces_between(from, net.total_length_um(), pieces);
  h << pieces.size();
  for (const auto& p : pieces) {
    h << p.length_um << p.r_ohm_per_um << p.c_ff_per_um;
  }
  h << (options.allowed_buffers != nullptr);
  if (options.allowed_buffers != nullptr) {
    for (std::size_t ci = first; ci < n; ++ci) {
      h << std::span<const std::int16_t>((*options.allowed_buffers)[ci]);
    }
  }
  // Backend identity + derived coefficients: a checkpoint taken under
  // one objective must refuse to resume under another.
  h << (options.backend != nullptr);
  if (options.backend != nullptr) {
    const tech::ChainCost cost = resolve_cost(net, options);
    h << options.backend->fingerprint() << cost.width_weight
      << cost.per_repeater << cost.receiver_penalty_fs
      << cost.allow_repeaters;
  }
  return h.value();
}

}  // namespace

std::size_t ChainFrontierSolve::bytes() const {
  return sizeof(*this) +
         (q_fs.capacity() + width_u.capacity()) * sizeof(double) +
         count.capacity() * sizeof(std::int16_t) +
         node.capacity() * sizeof(std::int32_t) +
         (a_parent.capacity() + a_pos.capacity()) * sizeof(std::int32_t) +
         a_buffer.capacity() * sizeof(std::int16_t);
}

std::uint64_t chain_solve_key(const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const RepeaterLibrary& library,
                              const std::vector<double>& candidates_um,
                              const ChainDpOptions& options) {
  Hash64 h;
  // Device and terminals.
  h << device.rs_ohm << device.co_ff << device.cp_ff;
  h << net.driver_width_u() << net.receiver_width_u();
  // Net geometry: electrical fields only (layer names are informational
  // and do not enter the sweep).
  const auto& segments = net.segments();
  h << segments.size();
  for (const auto& s : segments) {
    h << s.length_um << s.r_ohm_per_um << s.c_ff_per_um;
  }
  const auto& zones = net.zones();
  h << zones.size();
  for (const auto& z : zones) h << z.start_um << z.end_um;
  // Library contents and candidate positions.
  h << std::span<const double>(library.widths_u());
  h << std::span<const double>(candidates_um);
  // Sweep-shaping options. The timing target, slack tolerance, and
  // reconstruct flag are selection-time knobs and deliberately excluded:
  // one cached frontier answers every target.
  h << static_cast<int>(options.mode);
  h << (options.allowed_buffers != nullptr);
  if (options.allowed_buffers != nullptr) {
    h << options.allowed_buffers->size();
    for (const auto& allowed : *options.allowed_buffers) {
      h << std::span<const std::int16_t>(allowed);
    }
  }
  // Backend identity + derived per-net coefficients. Both are folded:
  // the coefficients because they are what the sweep actually consumes
  // (a per-net activity profile is not in the geometry hash above), the
  // fingerprint so entries can never collide across backends. The
  // default path hashes only the `false` marker, keeping pre-backend
  // keys stable.
  h << (options.backend != nullptr);
  if (options.backend != nullptr) {
    const tech::ChainCost cost = resolve_cost(net, options);
    h << options.backend->fingerprint() << cost.width_weight
      << cost.per_repeater << cost.receiver_penalty_fs
      << cost.allow_repeaters;
  }
  return h.value();
}

ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options) {
  return run_chain_dp(net, device, library, candidates_um, options,
                      Workspace::local());
}

ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options, Workspace& ws) {
  validate_inputs(net, library, candidates_um, options, /*need_target=*/true);
  const tech::ChainCost cost = resolve_cost(net, options);

  DpStats stats;
  stats.positions = candidates_um.size();
  stats.workspace_reuses = ws.stats_.solves();

  SweepCursor cur = seed_sweep(net, device, library, cost, ws, stats);
  sweep_range(net, device, candidates_um, options, cost, ws, cur,
              candidates_um.size(), 0, stats);
  finish_at_driver(net, device, ws, cur);
  stats.arena_peak = ws.a_parent.size();

  ChainDpResult result =
      select_result(view_of(*cur.front, ws), library, candidates_um, options,
                    identity_cost_table(cost), stats);
  bump_ws_stats(ws, stats);
  return result;
}

ChainFrontierSolve solve_chain_frontier(
    const net::Net& net, const tech::RepeaterDevice& device,
    const RepeaterLibrary& library, const std::vector<double>& candidates_um,
    const ChainDpOptions& options, Workspace& ws) {
  validate_inputs(net, library, candidates_um, options, /*need_target=*/false);
  const tech::ChainCost cost = resolve_cost(net, options);

  DpStats stats;
  stats.positions = candidates_um.size();
  // Canonicalized: a detached frontier reports no workspace warmth, so a
  // miss-then-insert and a later hit describe the solve identically.
  stats.workspace_reuses = 0;

  SweepCursor cur = seed_sweep(net, device, library, cost, ws, stats);
  sweep_range(net, device, candidates_um, options, cost, ws, cur,
              candidates_um.size(), 0, stats);
  finish_at_driver(net, device, ws, cur);
  stats.arena_peak = ws.a_parent.size();

  ChainFrontierSolve out;
  out.identity_cost = identity_cost_table(cost);
  out.q_fs = cur.front->q_fs;
  out.width_u = cur.front->width_u;
  out.count = cur.front->count;
  out.node = cur.front->node;
  out.a_parent = ws.a_parent;
  out.a_pos = ws.a_pos;
  out.a_buffer = ws.a_buffer;
  out.stats = stats;
  bump_ws_stats(ws, stats);
  return out;
}

ChainDpResult select_from_frontier(const ChainFrontierSolve& solve,
                                   const RepeaterLibrary& library,
                                   const std::vector<double>& candidates_um,
                                   const ChainDpOptions& options) {
  if (options.mode == Mode::kMinPower) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }
  return select_result(view_of(solve), library, candidates_um, options,
                       solve.identity_cost, solve.stats);
}

ChainDpResult run_chain_dp_cached(const net::Net& net,
                                  const tech::RepeaterDevice& device,
                                  const RepeaterLibrary& library,
                                  const std::vector<double>& candidates_um,
                                  const ChainDpOptions& options, Workspace& ws,
                                  ChainSolveCache* cache) {
  if (cache == nullptr) {
    return run_chain_dp(net, device, library, candidates_um, options, ws);
  }
  const std::uint64_t key =
      chain_solve_key(net, device, library, candidates_um, options);
  std::shared_ptr<const ChainFrontierSolve> entry = cache->lookup(key);
  if (entry == nullptr) {
    entry = cache->insert(
        key, solve_chain_frontier(net, device, library, candidates_um,
                                  options, ws));
  }
  // Hit or miss, always select from the stored entry's arrays: every
  // caller of this key answers from the same bits.
  return select_from_frontier(*entry, library, candidates_um, options);
}

ChainPrefix chain_dp_prefix(const net::Net& net,
                            const tech::RepeaterDevice& device,
                            const RepeaterLibrary& library,
                            const std::vector<double>& candidates_um,
                            const ChainDpOptions& options,
                            std::size_t suffix_candidates, Workspace& ws) {
  validate_inputs(net, library, candidates_um, options, /*need_target=*/false);
  RIP_REQUIRE(suffix_candidates <= candidates_um.size(),
              "chain_dp_prefix suffix exceeds the candidate count");
  const tech::ChainCost cost = resolve_cost(net, options);

  DpStats stats;
  stats.positions = candidates_um.size();

  SweepCursor cur = seed_sweep(net, device, library, cost, ws, stats);
  sweep_range(net, device, candidates_um, options, cost, ws, cur,
              candidates_um.size(), candidates_um.size() - suffix_candidates,
              stats);

  ChainPrefix out;
  out.total_candidates = candidates_um.size();
  out.suffix_candidates = suffix_candidates;
  out.downstream_pos_um = cur.downstream_pos;
  out.frontier = *cur.front;
  out.a_parent = ws.a_parent;
  out.a_pos = ws.a_pos;
  out.a_buffer = ws.a_buffer;
  out.stats = stats;
  out.suffix_key = prefix_consistency_key(net, device, library, candidates_um,
                                          options, suffix_candidates);
  // Not a complete solve: workspace cumulative stats are left untouched.
  return out;
}

ChainDpResult chain_dp_resume(const ChainPrefix& prefix, const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const RepeaterLibrary& library,
                              const std::vector<double>& candidates_um,
                              const ChainDpOptions& options, Workspace& ws) {
  validate_inputs(net, library, candidates_um, options, /*need_target=*/true);
  const std::size_t n = candidates_um.size();
  RIP_REQUIRE(prefix.suffix_candidates <= n,
              "chain_dp_resume candidate list is shorter than the prefix's "
              "suffix");
  RIP_REQUIRE(
      prefix.suffix_key == prefix_consistency_key(net, device, library,
                                                  candidates_um, options,
                                                  prefix.suffix_candidates),
      "chain_dp_resume prefix does not match the query (suffix candidates, "
      "downstream geometry, library, device, mode, or backend differ)");
  const tech::ChainCost cost = resolve_cost(net, options);

  DpStats stats = prefix.stats;
  stats.positions = n;
  stats.workspace_reuses = ws.stats_.solves();

  // Load the checkpoint into the workspace arenas (capacity is reused).
  library.fill_device_terms(device, ws.lib_load_ff, ws.lib_rs_over_w);
  library.fill_cost_terms(cost, ws.lib_cost);
  const std::size_t lib_n = library.size();
  ws.all_buffers.resize(lib_n);
  for (std::size_t b = 0; b < lib_n; ++b)
    ws.all_buffers[b] = static_cast<std::int16_t>(b);
  ws.chain_front = prefix.frontier;
  ws.chain_back.clear();
  ws.a_parent = prefix.a_parent;
  ws.a_pos = prefix.a_pos;
  ws.a_buffer = prefix.a_buffer;
  // Arena entries index the *old* candidate list; if the resume list has
  // a different prefix length, shift the suffix's candidate indices.
  const auto delta = static_cast<std::ptrdiff_t>(n) -
                     static_cast<std::ptrdiff_t>(prefix.total_candidates);
  if (delta != 0) {
    for (auto& p : ws.a_pos) p = static_cast<std::int32_t>(p + delta);
  }

  SweepCursor cur{&ws.chain_front, &ws.chain_back,
                  prefix.suffix_candidates == 0 ? net.total_length_um()
                                                : prefix.downstream_pos_um};
  sweep_range(net, device, candidates_um, options, cost, ws, cur,
              n - prefix.suffix_candidates, 0, stats);
  finish_at_driver(net, device, ws, cur);
  stats.arena_peak = ws.a_parent.size();

  ChainDpResult result =
      select_result(view_of(*cur.front, ws), library, candidates_um, options,
                    identity_cost_table(cost), stats);
  bump_ws_stats(ws, stats);
  return result;
}

}  // namespace rip::dp
