#pragma once

/// @file workspace.hpp
/// Reusable solver state for the DP kernels.
///
/// The chain and tree DPs are the hot path of every experiment: a sweep
/// evaluates millions of (net, target, library) cases and each case runs
/// one or more DP solves. A Workspace owns every piece of dynamic memory
/// those solves need — structure-of-arrays label arenas, dominance-prune
/// scratch, the flat Pareto frontier, per-solve library terms, wire-piece
/// buffers — and hands it back, capacity intact, solve after solve. After
/// a warm-up solve per shape, steady-state solves perform zero heap
/// allocations in the kernel (bench_dp asserts this with a counting
/// operator new).
///
/// Threading model: a Workspace is single-threaded state. Every solver
/// entry point takes an optional `Workspace&`; the parameterless
/// overloads use `Workspace::local()`, one workspace per thread, so each
/// participant of the persistent scheduler (eval/parallel.hpp,
/// eval/service.hpp) reuses its own arenas across the cases it steals.
/// Solver results are a pure function of the solver inputs — never of
/// the workspace's prior contents — which tests/pareto_property_test.cpp
/// proves by bit-comparing fresh-workspace and reused-workspace solves.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dp/pareto.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"

namespace rip::dp {

/// The DP kernels' alive label set, structure-of-arrays. The value
/// fields (cap/q/width) are contiguous so affine wire propagation is a
/// straight vectorizable loop; count rides along for the final
/// tie-break; node points into the reconstruction arena. The chain
/// kernel keeps two of these and ping-pongs between them each candidate
/// step; the tree kernel pools one per tree node (plus a scratch
/// double-buffer) and swaps child frontiers upward through junctions.
struct ChainFrontier {
  std::vector<double> cap_ff;
  std::vector<double> q_fs;
  std::vector<double> width_u;
  std::vector<std::int16_t> count;
  std::vector<std::int32_t> node;

  std::size_t size() const { return cap_ff.size(); }
  void clear() {
    cap_ff.clear();
    q_fs.clear();
    width_u.clear();
    count.clear();
    node.clear();
  }
  void reserve(std::size_t n) {
    cap_ff.reserve(n);
    q_fs.reserve(n);
    width_u.reserve(n);
    count.reserve(n);
    node.reserve(n);
  }
  void push(double cap, double q, double width, std::int16_t cnt,
            std::int32_t nd) {
    cap_ff.push_back(cap);
    q_fs.push_back(q);
    width_u.push_back(width);
    count.push_back(cnt);
    node.push_back(nd);
  }
};

/// One candidate label of a single buffer-insertion group during the
/// chain DP's candidate step. Every label of group b shares the same
/// downstream capacitance (the buffer's input load), so only (q, width,
/// origin) vary — 24 bytes, sorted cache-resident per group.
struct GroupEntry {
  double q_fs;
  double width_u;
  std::int32_t origin;  ///< index into the old frontier
};

/// A group survivor after the within-group dominance filter, tagged
/// with its buffer for arena materialization.
struct ExpandLabel {
  double cap_ff;
  double q_fs;
  double width_u;
  std::int32_t origin;
  std::int16_t buffer;
};

/// Cumulative counters of one workspace, across every solve it served.
/// (Per-solve, input-deterministic counters live in DpStats instead.)
struct WorkspaceStats {
  std::size_t chain_solves = 0;  ///< chain DP solves served
  std::size_t tree_solves = 0;   ///< tree DP solves served
  std::size_t labels_created = 0;     ///< labels materialized, cumulative
  std::size_t labels_pruned = 0;      ///< labels dominance-pruned, cumulative
  std::size_t peak_frontier_labels = 0;  ///< largest pruned frontier ever
  std::size_t peak_arena_labels = 0;     ///< largest reconstruction arena ever

  std::size_t solves() const { return chain_solves + tree_solves; }
};

/// Bump-style arena bundle for the DP kernels. All buffer members are
/// internal solver state — public so the kernels (chain_dp.cpp,
/// tree_dp.cpp, brute_force.cpp) can use them without indirection, but
/// not part of the stable API; outside callers should only construct
/// workspaces, pass them to solvers, and read stats().
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// This thread's workspace (thread_local). The parameterless solver
  /// overloads use it, so scheduler workers automatically reuse one
  /// arena set per thread.
  static Workspace& local();

  const WorkspaceStats& stats() const { return stats_; }

  /// Drop every arena's memory (capacity included). Only useful for
  /// memory-pressure tests; steady-state callers never need it.
  void release_memory();

  // ---- chain DP: the alive frontier double-buffer (current and next),
  // the per-group expansion scratch, and the concatenated group
  // survivors the merge step consumes.
  ChainFrontier chain_front;
  ChainFrontier chain_back;
  std::vector<GroupEntry> group;
  std::vector<ExpandLabel> expanded;

  // ---- chain DP: append-only reconstruction arena. One entry per
  // surviving repeater insertion; pass-throughs reuse their node.
  std::vector<std::int32_t> a_parent;
  std::vector<std::int32_t> a_pos;
  std::vector<std::int16_t> a_buffer;

  // ---- dominance pruning: the flat staircase frontier.
  FlatFrontier frontier;

  // ---- per-solve library terms (filled by RepeaterLibrary::
  // fill_device_terms / fill_cost_terms): input load co*w, driving rs/w,
  // and objective cost per width (== the width itself on the identity
  // objective — see tech/objective.hpp).
  std::vector<double> lib_load_ff;
  std::vector<double> lib_rs_over_w;
  std::vector<double> lib_cost;
  std::vector<std::int16_t> all_buffers;  ///< 0..n-1 identity allowed-list

  // ---- wire decomposition buffer (net::Net::pieces_between reuse).
  std::vector<net::WirePiece> pieces;

  // ---- repeater scratch (brute_force assignment expansion).
  std::vector<net::Repeater> repeaters;

  // ---- tree DP: SoA frontier pool plus a scratch frontier. A subtree's
  // frontier lives in the pool slot of its leftmost descendant leaf
  // (tree_slot maps node -> slot), so walking up a unary path segment
  // never moves it, and the slot serving each role is a pure function of
  // the topology. Merges materialize into the scratch and are copied —
  // not swapped — back into the role's slot: capacities never migrate
  // between slots, which is what makes a single warm-up solve enough for
  // the zero-steady-state-allocation guarantee bench_dp gates on. The
  // pool only ever grows — a shrinking resize would destroy the pooled
  // vectors' capacity.
  std::vector<ChainFrontier> tree_frontiers;
  ChainFrontier tree_scratch;
  std::vector<std::int32_t> tree_slot;

  // ---- tree DP: junction-merge scratch. The cross product of the two
  // child frontiers is enumerated as an n-way merge of sorted row
  // streams (row i = smaller-side label i crossed with every label of
  // the larger side, which is C-ascending): tree_order is the binary
  // heap of row indices, tree_rowpos each row's cursor into the larger
  // side, tree_pair_cap/q the cached (C, q) key of each row's current
  // element. Pairs pop in frontier order and are dominance-tested on
  // the spot — nothing is materialized or sorted.
  std::vector<std::int32_t> tree_order;
  std::vector<std::int32_t> tree_rowpos;
  std::vector<double> tree_pair_cap;
  std::vector<double> tree_pair_q;

  // ---- tree DP: survivor-only reconstruction arena (SoA). Buffer
  // entries carry (left = downstream label, node, buffer); junction
  // entries carry (left, right) with node/buffer -1. Labels whose
  // subtree holds no repeater carry arena index -1 and never
  // materialize an entry.
  std::vector<std::int32_t> tree_a_left;
  std::vector<std::int32_t> tree_a_right;
  std::vector<std::int32_t> tree_a_node;
  std::vector<std::int16_t> tree_a_buffer;
  std::vector<std::int32_t> tree_stack;
  std::vector<double> tree_cap;    ///< tree_delay_fs bottom-up caps
  std::vector<double> tree_delay;  ///< tree_delay_fs bottom-up delays

  // Cumulative counters; kernels update them alongside DpStats.
  WorkspaceStats stats_;
};

}  // namespace rip::dp
