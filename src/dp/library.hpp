#pragma once

/// @file library.hpp
/// Discrete repeater libraries: the finite sets of allowed repeater
/// widths the DP algorithms select from. The paper's experiments use
/// three kinds (Section 6):
///   - the baseline DP library: size `n`, smallest width `w0`, uniform
///     granularity `g` (widths w0, w0+g, ..., w0+(n-1)g);
///   - a width *range* with granularity (Table 2: 10u..400u step g);
///   - RIP's refined library: REFINE's continuous widths rounded to the
///     nearest multiple of a granularity (10u), deduplicated.

#include <vector>

namespace rip::tech {
struct RepeaterDevice;
struct ChainCost;
}  // namespace rip::tech

namespace rip::dp {

/// An immutable sorted set of allowed repeater widths (in units of u).
class RepeaterLibrary {
 public:
  /// Construct from arbitrary widths; sorts and deduplicates (within
  /// 1e-9 u). All widths must be positive.
  explicit RepeaterLibrary(std::vector<double> widths_u);

  const std::vector<double>& widths_u() const { return widths_u_; }
  std::size_t size() const { return widths_u_.size(); }
  double min_width_u() const { return widths_u_.front(); }
  double max_width_u() const { return widths_u_.back(); }

  /// The library width closest to `w` (ties round up).
  double round_to_library(double w) const;

  /// Per-width device terms the DP gate-delay recurrence needs: the
  /// input load C_o * w_b and the driving resistance R_s / w_b, one
  /// entry per library width. The kernels fill these once per solve
  /// into workspace-owned buffers (resized, capacity reused) instead of
  /// dividing per label — the division is the expensive part of the
  /// inner loop. Both vectors are fully overwritten.
  void fill_device_terms(const tech::RepeaterDevice& device,
                         std::vector<double>& load_ff,
                         std::vector<double>& rs_over_w) const;

  /// Per-width objective cost of inserting one repeater of each library
  /// width under `cost` (tech/objective.hpp): width_weight * w_b +
  /// per_repeater. On the identity cost (the paper's objective) the
  /// table is a verbatim copy of widths_u() — same bits, so the kernels'
  /// historic width arithmetic is unchanged on that path. Fully
  /// overwrites `cost_u` (capacity reused).
  void fill_cost_terms(const tech::ChainCost& cost,
                       std::vector<double>& cost_u) const;

  /// Library of `count` widths starting at `min_width` with uniform
  /// `granularity` spacing — the baseline DP library of Table 1.
  static RepeaterLibrary uniform(double min_width_u, double granularity_u,
                                 int count);

  /// All multiples of `granularity` inside [min_width, max_width] —
  /// the fixed-range libraries of Table 2. The first width is the
  /// smallest multiple of `granularity` that is >= min_width.
  static RepeaterLibrary range(double min_width_u, double max_width_u,
                               double granularity_u);

  /// RIP's stage-3 library construction (Fig. 6, line 3): for each
  /// continuous width from REFINE, include the floor and ceiling
  /// multiples of `granularity` (clamped to [min_width, max_width]),
  /// deduplicated. Bracketing instead of nearest-rounding guarantees the
  /// library always contains a width at least as strong as the
  /// continuous optimum, so the stage-3 DP stays feasible whenever the
  /// relaxation was.
  static RepeaterLibrary from_rounding(const std::vector<double>& continuous,
                                       double granularity_u,
                                       double min_width_u,
                                       double max_width_u);

 private:
  std::vector<double> widths_u_;
};

}  // namespace rip::dp
