#include "dp/workspace.hpp"

namespace rip::dp {

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

void Workspace::release_memory() {
  const WorkspaceStats kept = stats_;
  *this = Workspace();
  stats_ = kept;
}

}  // namespace rip::dp
