#pragma once

/// @file pareto.hpp
/// Label dominance pruning for the buffering DP.
///
/// Power mode keeps the 3-D Pareto frontier over (C, q, p): a label is
/// dominated if another has no-larger downstream capacitance, no-smaller
/// required arrival time, and no-larger total repeater width (Lillis'
/// power-aware generalization of van Ginneken pruning). Delay mode prunes
/// in 2-D (C, q), ignoring p.
///
/// The frontier itself is a sorted flat vector pair (FlatFrontier), not a
/// node-based tree: staircase queries are binary searches over contiguous
/// doubles and updates are single splices, so pruning allocates nothing
/// once the vectors have warmed up — the property the zero-allocation DP
/// workspace (dp/workspace.hpp) is built on.

#include <cstdint>
#include <vector>

namespace rip::dp {

/// One DP label: the downstream state at a point of the net.
struct Label {
  double cap_ff = 0;    ///< downstream lumped capacitance C
  double q_fs = 0;      ///< required arrival time (larger is better)
  double width_u = 0;   ///< downstream total repeater width p
  std::int32_t parent = -1;  ///< arena index of the downstream label
  std::int32_t pos = -1;     ///< candidate index where a repeater was added
  std::int16_t buffer = -1;  ///< library index of that repeater (-1: none)
  /// Downstream repeater count. Not part of the dominance relation; used
  /// only to break total-width ties at the final selection (fewer
  /// repeaters preferred — REFINE keeps the repeater count fixed, so
  /// handing it the leaner structure matters).
  std::int16_t count = 0;
};

/// The (q, width) staircase over every label seen so far during a 3-D
/// prune: only points not dominated by another seen point are kept, so
/// ordered by q ascending the widths are strictly ascending too. Stored
/// as two parallel sorted flat vectors; clear() keeps the capacity, so a
/// reused frontier allocates nothing in steady state.
class FlatFrontier {
 public:
  void clear() {
    q_.clear();
    w_.clear();
  }
  void reserve(std::size_t n) {
    q_.reserve(n);
    w_.reserve(n);
  }
  std::size_t size() const { return q_.size(); }

  /// If some seen point has q' >= q and width' <= width, the candidate
  /// is dominated: return false and leave the staircase unchanged.
  /// Otherwise insert it, evict the points it dominates, return true.
  bool try_insert(double q_fs, double width_u);

 private:
  std::vector<double> q_;  ///< ascending
  std::vector<double> w_;  ///< parallel to q_, ascending
};

/// Remove dominated labels from `labels`, in place (compaction, no side
/// copy). If `use_width` is false the width field is ignored (pure delay
/// mode). Exactly one of any set of mutually identical labels is kept.
/// O(n log n). The two-argument overload uses a thread-local frontier;
/// the three-argument one reuses the caller's (dp::Workspace::frontier).
void prune_dominated(std::vector<Label>& labels, bool use_width);
void prune_dominated(std::vector<Label>& labels, bool use_width,
                     FlatFrontier& frontier);

/// True if `a` dominates `b` (a at least as good in every tracked
/// dimension). Identical labels dominate each other.
bool dominates(const Label& a, const Label& b, bool use_width);

}  // namespace rip::dp
