#pragma once

/// @file pareto.hpp
/// Label dominance pruning for the buffering DP.
///
/// Power mode keeps the 3-D Pareto frontier over (C, q, p): a label is
/// dominated if another has no-larger downstream capacitance, no-smaller
/// required arrival time, and no-larger total repeater width (Lillis'
/// power-aware generalization of van Ginneken pruning). Delay mode prunes
/// in 2-D (C, q), ignoring p.

#include <cstdint>
#include <vector>

namespace rip::dp {

/// One DP label: the downstream state at a point of the net.
struct Label {
  double cap_ff = 0;    ///< downstream lumped capacitance C
  double q_fs = 0;      ///< required arrival time (larger is better)
  double width_u = 0;   ///< downstream total repeater width p
  std::int32_t parent = -1;  ///< arena index of the downstream label
  std::int32_t pos = -1;     ///< candidate index where a repeater was added
  std::int16_t buffer = -1;  ///< library index of that repeater (-1: none)
  /// Downstream repeater count. Not part of the dominance relation; used
  /// only to break total-width ties at the final selection (fewer
  /// repeaters preferred — REFINE keeps the repeater count fixed, so
  /// handing it the leaner structure matters).
  std::int16_t count = 0;
};

/// Remove dominated labels from `labels`, in place. If `use_width` is
/// false the width field is ignored (pure delay mode). Exactly one of any
/// set of mutually identical labels is kept. O(n log n).
void prune_dominated(std::vector<Label>& labels, bool use_width);

/// True if `a` dominates `b` (a at least as good in every tracked
/// dimension). Identical labels dominate each other.
bool dominates(const Label& a, const Label& b, bool use_width);

}  // namespace rip::dp
