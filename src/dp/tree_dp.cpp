#include "dp/tree_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/pareto.hpp"
#include "dp/workspace.hpp"
#include "util/error.hpp"

namespace rip::dp {

BufferTree::BufferTree() {
  BufferTreeNode root;
  root.parent = -1;
  root.name = "root";
  nodes_.push_back(root);
  children_.emplace_back();
}

std::int32_t BufferTree::add_node(BufferTreeNode node) {
  RIP_REQUIRE(node.parent >= 0 &&
                  node.parent < static_cast<std::int32_t>(nodes_.size()),
              "tree node parent must exist");
  RIP_REQUIRE(node.edge_r_ohm >= 0 && node.edge_c_ff >= 0,
              "edge RC must be non-negative");
  if (node.is_sink) {
    RIP_REQUIRE(node.sink_cap_ff >= 0, "sink cap must be non-negative");
    ++sink_count_;
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  children_.emplace_back();
  children_[static_cast<std::size_t>(nodes_.back().parent)].push_back(id);
  return id;
}

double TreeSolution::total_width_u() const {
  double p = 0;
  for (const double w : width_u) p += w;
  return p;
}

std::size_t TreeSolution::repeater_count() const {
  std::size_t n = 0;
  for (const double w : width_u)
    if (w > 0) ++n;
  return n;
}

namespace {

Label to_flat(const TreeLabel& t) {
  Label l;
  l.cap_ff = t.cap_ff;
  l.q_fs = t.q_fs;
  l.width_u = t.width_u;
  return l;
}

/// Prune a set of tree labels via the flat-label pruner, compacting the
/// survivors through the workspace's kept buffer (capacity reused).
/// Returns how many labels were pruned away.
std::size_t prune_tree_labels(std::vector<TreeLabel>& labels, bool use_width,
                              Workspace& ws) {
  if (labels.size() <= 1) return 0;
  const std::size_t before = labels.size();
  ws.tree_flat.clear();
  ws.tree_flat.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Label f = to_flat(labels[i]);
    f.parent = static_cast<std::int32_t>(i);  // remember origin
    ws.tree_flat.push_back(f);
  }
  prune_dominated(ws.tree_flat, use_width, ws.frontier);
  ws.tree_kept.clear();
  ws.tree_kept.reserve(ws.tree_flat.size());
  for (const Label& f : ws.tree_flat)
    ws.tree_kept.push_back(labels[static_cast<std::size_t>(f.parent)]);
  labels.swap(ws.tree_kept);
  return before - labels.size();
}

void collect_buffers(const std::vector<TreeLabel>& arena, std::int32_t idx,
                     TreeSolution& solution, const RepeaterLibrary& library,
                     std::vector<std::int32_t>& stack) {
  // Iterative DFS over the label DAG.
  stack.clear();
  stack.push_back(idx);
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    if (cur < 0) continue;
    const TreeLabel& l = arena[static_cast<std::size_t>(cur)];
    if (l.buffer >= 0) {
      solution.width_u[static_cast<std::size_t>(l.node)] =
          library.widths_u()[static_cast<std::size_t>(l.buffer)];
    }
    stack.push_back(l.left);
    stack.push_back(l.right);
  }
}

}  // namespace

TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options) {
  return run_tree_dp(tree, device, driver_width_u, library, options,
                     Workspace::local());
}

TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options, Workspace& ws) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(driver_width_u > 0, "driver width must be positive");
  RIP_REQUIRE(tree.sink_count() > 0, "tree has no sinks");
  const bool power_mode = (options.mode == Mode::kMinPower);
  if (power_mode) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }

  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == nodes.size(),
                "allowed_buffers must parallel the tree nodes");
    for (const auto& allowed : *options.allowed_buffers) {
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }

  // Objective backend: the tree carries no route length or net name, so
  // the profile is synthetic — anonymous, zero length, wire cap = total
  // edge + sink capacitance (enough for cap-driven cost derivations).
  tech::ChainCost cost;
  if (options.backend != nullptr) {
    tech::NetProfile profile;
    for (const auto& node : nodes) {
      profile.wire_cap_ff += node.edge_c_ff;
      if (node.is_sink) profile.wire_cap_ff += node.sink_cap_ff;
    }
    cost = options.backend->chain_cost(profile);
    RIP_REQUIRE(cost.width_weight >= 0 && cost.per_repeater >= 0,
                "objective backend produced negative cost coefficients");
    RIP_REQUIRE(cost.receiver_penalty_fs >= 0,
                "objective backend produced a negative receiver penalty");
  }
  const bool identity =
      cost.width_weight == 1.0 && cost.per_repeater == 0.0;

  // Per-solve precompute, shared with the chain kernel: input loads,
  // driving resistances, and objective costs per library width, plus the
  // intrinsic delay.
  library.fill_device_terms(device, ws.lib_load_ff, ws.lib_rs_over_w);
  library.fill_cost_terms(cost, ws.lib_cost);
  const double intrinsic_fs = device.rs_ohm * device.cp_ff;
  ws.all_buffers.resize(library.size());
  for (std::size_t b = 0; b < library.size(); ++b)
    ws.all_buffers[b] = static_cast<std::int16_t>(b);

  TreeDpResult result;
  result.stats.positions = nodes.size();
  result.stats.workspace_reuses = ws.stats_.solves();

  ws.tree_arena.clear();
  // The per-node label pool: vectors keep their capacity across solves
  // and circulate between slots by swap, so a steady-state solve of the
  // same topology reuses every buffer.
  ws.tree_node_labels.resize(nodes.size());
  auto& arena = ws.tree_arena;
  auto& node_labels = ws.tree_node_labels;

  // Children have larger indices than parents (enforced by add_node), so
  // a reverse index sweep is a bottom-up traversal.
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    const auto& kids = tree.children()[ni];
    std::vector<TreeLabel>& labels = node_labels[ni];
    labels.clear();

    if (kids.empty()) {
      RIP_REQUIRE(node.is_sink, "leaf node is not a sink");
      TreeLabel seed;
      seed.cap_ff = node.sink_cap_ff;
      seed.q_fs = power_mode ? options.timing_target_fs : 0.0;
      // Backend receiver penalty, charged once per sink (e.g. a sense
      // amp at every leaf). Guarded so the default path keeps +0.0.
      if (cost.receiver_penalty_fs != 0.0) {
        seed.q_fs -= cost.receiver_penalty_fs;
      }
      labels.push_back(seed);
      ++result.stats.labels_created;
    } else {
      // Merge children branch sets: C adds, q takes the min, p adds.
      labels.swap(node_labels[static_cast<std::size_t>(kids[0])]);
      for (std::size_t k = 1; k < kids.size(); ++k) {
        auto& other = node_labels[static_cast<std::size_t>(kids[k])];
        // Materialize the operands in the arena once, so merged labels
        // can reference them for reconstruction.
        ws.tree_aidx.clear();
        ws.tree_bidx.clear();
        ws.tree_aidx.reserve(labels.size());
        ws.tree_bidx.reserve(other.size());
        for (const TreeLabel& a : labels) {
          arena.push_back(a);
          ws.tree_aidx.push_back(static_cast<std::int32_t>(arena.size() - 1));
        }
        for (const TreeLabel& b : other) {
          arena.push_back(b);
          ws.tree_bidx.push_back(static_cast<std::int32_t>(arena.size() - 1));
        }
        ws.tree_build.clear();
        ws.tree_build.reserve(labels.size() * other.size());
        for (std::size_t i = 0; i < labels.size(); ++i) {
          for (std::size_t j = 0; j < other.size(); ++j) {
            const TreeLabel& a = labels[i];
            const TreeLabel& b = other[j];
            TreeLabel m;
            m.cap_ff = a.cap_ff + b.cap_ff;
            m.q_fs = std::min(a.q_fs, b.q_fs);
            m.width_u = a.width_u + b.width_u;
            m.count = static_cast<std::int16_t>(a.count + b.count);
            m.left = ws.tree_aidx[i];
            m.right = ws.tree_bidx[j];
            ws.tree_build.push_back(m);
          }
        }
        result.stats.labels_created += ws.tree_build.size();
        result.stats.labels_pruned +=
            prune_tree_labels(ws.tree_build, power_mode, ws);
        labels.swap(ws.tree_build);
        other.clear();
      }
      // A sink can also be an internal tap: add its pin cap.
      if (node.is_sink) {
        for (TreeLabel& l : labels) l.cap_ff += node.sink_cap_ff;
      }
    }

    // Optional repeater at this node.
    const std::vector<std::int16_t>& allowed =
        options.allowed_buffers != nullptr ? (*options.allowed_buffers)[ni]
                                           : ws.all_buffers;
    if (node.candidate && cost.allow_repeaters && !allowed.empty()) {
      const std::size_t base = labels.size();
      labels.reserve(base * (1 + allowed.size()));
      for (std::size_t i = 0; i < base; ++i) {
        const TreeLabel down = labels[i];
        arena.push_back(down);
        const auto down_idx = static_cast<std::int32_t>(arena.size() - 1);
        for (const std::int16_t b : allowed) {
          const auto bi = static_cast<std::size_t>(b);
          TreeLabel up;
          up.cap_ff = ws.lib_load_ff[bi];
          up.q_fs =
              down.q_fs - (intrinsic_fs + ws.lib_rs_over_w[bi] * down.cap_ff);
          up.width_u = down.width_u + ws.lib_cost[bi];
          up.left = down_idx;
          up.node = static_cast<std::int32_t>(ni);
          up.buffer = b;
          up.count = static_cast<std::int16_t>(down.count + 1);
          labels.push_back(up);
        }
      }
      result.stats.labels_created += allowed.size() * base;
      result.stats.labels_pruned += prune_tree_labels(labels, power_mode, ws);
    }

    // Traverse the edge to the parent (lumped pi: half the edge cap on
    // each side contributes r * (C + c/2) to the Elmore delay).
    if (node.parent >= 0 && (node.edge_r_ohm > 0 || node.edge_c_ff > 0)) {
      for (TreeLabel& l : labels) {
        l.q_fs -= node.edge_r_ohm * (l.cap_ff + 0.5 * node.edge_c_ff);
        l.cap_ff += node.edge_c_ff;
      }
    }
    result.stats.labels_peak =
        std::max(result.stats.labels_peak, labels.size());
  }

  // Driver at the root.
  auto& root_labels = node_labels[0];
  RIP_ASSERT(!root_labels.empty(), "tree DP lost all labels");
  const double target = power_mode ? options.timing_target_fs : 0.0;
  const TreeLabel* best = nullptr;
  const TreeLabel* best_delay = nullptr;
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  const double driver_rs_over_w = device.rs_ohm / driver_width_u;
  for (const TreeLabel& l : root_labels) {
    const double q_final =
        l.q_fs - (intrinsic_fs + driver_rs_over_w * l.cap_ff);
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = &l;
    }
    if (power_mode && q_final >= -options.slack_tolerance_fs) {
      const bool better =
          l.width_u < best_width ||
          (l.width_u == best_width &&
           (l.count < best_count ||
            (l.count == best_count && q_final > best_q)));
      if (better) {
        best_width = l.width_u;
        best_count = l.count;
        best_q = q_final;
        best = &l;
      }
    }
  }

  result.stats.arena_peak = arena.size();

  auto reconstruct = [&](const TreeLabel& l) {
    TreeSolution s;
    s.width_u.assign(nodes.size(), 0.0);
    if (l.buffer >= 0) {
      s.width_u[static_cast<std::size_t>(l.node)] =
          library.widths_u()[static_cast<std::size_t>(l.buffer)];
    }
    collect_buffers(arena, l.left, s, library, ws.tree_stack);
    collect_buffers(arena, l.right, s, library, ws.tree_stack);
    return s;
  };

  result.min_delay_fs = target - best_delay_q;
  if (options.reconstruct_solutions) {
    result.min_delay_solution = reconstruct(*best_delay);
  }
  if (power_mode) {
    if (best != nullptr) {
      result.status = Status::kOptimal;
      if (options.reconstruct_solutions) result.solution = reconstruct(*best);
      // Identity objective: the label's accumulated value is the total
      // width, bit-for-bit. Otherwise re-sum the physical widths from a
      // reconstruction (summation order differs, which is fine off the
      // identity path).
      result.total_width_u =
          identity ? best->width_u : reconstruct(*best).total_width_u();
      result.objective_cost = best->width_u;
      result.delay_fs = target - best_q;
    } else {
      result.status = Status::kInfeasible;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    if (options.reconstruct_solutions) result.solution = result.min_delay_solution;
    result.total_width_u = identity ? best_delay->width_u
                                    : reconstruct(*best_delay).total_width_u();
    result.objective_cost = best_delay->width_u;
    result.delay_fs = result.min_delay_fs;
  }

  ++ws.stats_.tree_solves;
  ws.stats_.labels_created += result.stats.labels_created;
  ws.stats_.labels_pruned += result.stats.labels_pruned;
  ws.stats_.peak_frontier_labels =
      std::max(ws.stats_.peak_frontier_labels, result.stats.labels_peak);
  ws.stats_.peak_arena_labels =
      std::max(ws.stats_.peak_arena_labels, result.stats.arena_peak);
  return result;
}

double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution) {
  return tree_delay_fs(tree, device, driver_width_u, solution,
                       Workspace::local());
}

double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution,
                     Workspace& ws) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(solution.width_u.size() == nodes.size(),
              "solution size does not match tree");
  // Bottom-up evaluation mirroring the DP but over a fixed assignment:
  // carry (C, d_worst) per node where d_worst is the worst delay from
  // this node down to any sink below it.
  ws.tree_cap.assign(nodes.size(), 0.0);
  ws.tree_delay.assign(nodes.size(), 0.0);
  std::vector<double>& cap = ws.tree_cap;
  std::vector<double>& delay = ws.tree_delay;
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    double c = node.is_sink ? node.sink_cap_ff : 0.0;
    double d = 0.0;
    for (const auto kid : tree.children()[ni]) {
      c += cap[static_cast<std::size_t>(kid)];
      d = std::max(d, delay[static_cast<std::size_t>(kid)]);
    }
    const double w = solution.width_u[ni];
    if (w > 0) {
      RIP_REQUIRE(node.candidate, "repeater placed at a non-candidate node");
      d += device.rs_ohm * device.cp_ff + device.rs_ohm / w * c;
      c = device.co_ff * w;
    }
    if (node.parent >= 0) {
      d += node.edge_r_ohm * (c + 0.5 * node.edge_c_ff);
      c += node.edge_c_ff;
    }
    cap[ni] = c;
    delay[ni] = d;
  }
  return delay[0] + device.rs_ohm * device.cp_ff +
         device.rs_ohm / driver_width_u * cap[0];
}

BufferTree random_buffer_tree(const RandomTreeConfig& config, Rng& rng) {
  RIP_REQUIRE(config.sink_count >= 1, "tree needs at least one sink");
  RIP_REQUIRE(config.candidates_per_edge >= 1,
              "need at least one candidate per edge");
  BufferTree tree;
  // Attachment points: nodes new branches may sprout from.
  std::vector<std::int32_t> attach{0};
  for (int s = 0; s < config.sink_count; ++s) {
    const std::int32_t from = attach[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(attach.size()) - 1))];
    const double length =
        rng.uniform(config.edge_length_min_um, config.edge_length_max_um);
    const double piece = length / config.candidates_per_edge;
    std::int32_t parent = from;
    for (int k = 0; k < config.candidates_per_edge; ++k) {
      BufferTreeNode node;
      node.parent = parent;
      node.edge_r_ohm = config.r_ohm_per_um * piece;
      node.edge_c_ff = config.c_ff_per_um * piece;
      node.candidate = true;
      const bool last = (k + 1 == config.candidates_per_edge);
      if (last) {
        node.is_sink = true;
        node.sink_cap_ff =
            rng.uniform(config.sink_cap_min_ff, config.sink_cap_max_ff);
        node.name = "sink" + std::to_string(s);
      }
      parent = tree.add_node(std::move(node));
      attach.push_back(parent);
    }
  }
  return tree;
}

}  // namespace rip::dp
