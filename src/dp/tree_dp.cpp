#include "dp/tree_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dp/pareto.hpp"
#include "util/error.hpp"

namespace rip::dp {

BufferTree::BufferTree() {
  BufferTreeNode root;
  root.parent = -1;
  root.name = "root";
  nodes_.push_back(root);
  children_.emplace_back();
}

std::int32_t BufferTree::add_node(BufferTreeNode node) {
  RIP_REQUIRE(node.parent >= 0 &&
                  node.parent < static_cast<std::int32_t>(nodes_.size()),
              "tree node parent must exist");
  RIP_REQUIRE(node.edge_r_ohm >= 0 && node.edge_c_ff >= 0,
              "edge RC must be non-negative");
  if (node.is_sink) {
    RIP_REQUIRE(node.sink_cap_ff >= 0, "sink cap must be non-negative");
    ++sink_count_;
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  children_.emplace_back();
  children_[static_cast<std::size_t>(nodes_.back().parent)].push_back(id);
  return id;
}

double TreeSolution::total_width_u() const {
  double p = 0;
  for (const double w : width_u) p += w;
  return p;
}

std::size_t TreeSolution::repeater_count() const {
  std::size_t n = 0;
  for (const double w : width_u)
    if (w > 0) ++n;
  return n;
}

namespace {

/// Tree labels form a DAG: merged labels have two parents.
struct TreeLabel {
  double cap_ff = 0;
  double q_fs = 0;
  double width_u = 0;
  std::int32_t left = -1;    ///< arena index (child branch / downstream)
  std::int32_t right = -1;   ///< arena index (second branch on a merge)
  std::int32_t node = -1;    ///< node where a repeater was inserted
  std::int16_t buffer = -1;  ///< library index of that repeater
  std::int16_t count = 0;    ///< downstream repeater count (tie-breaks)
};

Label to_flat(const TreeLabel& t) {
  Label l;
  l.cap_ff = t.cap_ff;
  l.q_fs = t.q_fs;
  l.width_u = t.width_u;
  return l;
}

double gate_delay_fs(const tech::RepeaterDevice& device, double w,
                     double cap_ff) {
  return device.rs_ohm * device.cp_ff + device.rs_ohm / w * cap_ff;
}

/// Prune a set of tree labels via the flat-label pruner, preserving the
/// surviving tree labels.
void prune_tree_labels(std::vector<TreeLabel>& labels, bool use_width,
                       std::vector<Label>& flat_scratch) {
  if (labels.size() <= 1) return;
  flat_scratch.clear();
  flat_scratch.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Label f = to_flat(labels[i]);
    f.parent = static_cast<std::int32_t>(i);  // remember origin
    flat_scratch.push_back(f);
  }
  prune_dominated(flat_scratch, use_width);
  std::vector<TreeLabel> kept;
  kept.reserve(flat_scratch.size());
  for (const Label& f : flat_scratch)
    kept.push_back(labels[static_cast<std::size_t>(f.parent)]);
  labels = std::move(kept);
}

void collect_buffers(const std::vector<TreeLabel>& arena, std::int32_t idx,
                     TreeSolution& solution,
                     const RepeaterLibrary& library) {
  // Iterative DFS over the label DAG.
  std::vector<std::int32_t> stack{idx};
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    if (cur < 0) continue;
    const TreeLabel& l = arena[static_cast<std::size_t>(cur)];
    if (l.buffer >= 0) {
      solution.width_u[static_cast<std::size_t>(l.node)] =
          library.widths_u()[static_cast<std::size_t>(l.buffer)];
    }
    stack.push_back(l.left);
    stack.push_back(l.right);
  }
}

}  // namespace

TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(driver_width_u > 0, "driver width must be positive");
  RIP_REQUIRE(tree.sink_count() > 0, "tree has no sinks");
  const bool power_mode = (options.mode == Mode::kMinPower);
  if (power_mode) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }

  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == nodes.size(),
                "allowed_buffers must parallel the tree nodes");
    for (const auto& allowed : *options.allowed_buffers) {
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }
  std::vector<std::int16_t> all_indices(library.size());
  for (std::size_t b = 0; b < library.size(); ++b)
    all_indices[b] = static_cast<std::int16_t>(b);

  TreeDpResult result;
  result.stats.positions = nodes.size();

  std::vector<TreeLabel> arena;
  std::vector<std::vector<TreeLabel>> node_labels(nodes.size());
  std::vector<Label> flat_scratch;

  // Children have larger indices than parents (enforced by add_node), so
  // a reverse index sweep is a bottom-up traversal.
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    const auto& kids = tree.children()[ni];
    std::vector<TreeLabel> labels;

    if (kids.empty()) {
      RIP_REQUIRE(node.is_sink, "leaf node is not a sink");
      TreeLabel seed;
      seed.cap_ff = node.sink_cap_ff;
      seed.q_fs = power_mode ? options.timing_target_fs : 0.0;
      labels.push_back(seed);
    } else {
      // Merge children branch sets: C adds, q takes the min, p adds.
      labels = std::move(node_labels[static_cast<std::size_t>(kids[0])]);
      for (std::size_t k = 1; k < kids.size(); ++k) {
        auto& other = node_labels[static_cast<std::size_t>(kids[k])];
        // Materialize the operands in the arena once, so merged labels
        // can reference them for reconstruction.
        std::vector<std::int32_t> a_idx;
        std::vector<std::int32_t> b_idx;
        a_idx.reserve(labels.size());
        b_idx.reserve(other.size());
        for (const TreeLabel& a : labels) {
          arena.push_back(a);
          a_idx.push_back(static_cast<std::int32_t>(arena.size() - 1));
        }
        for (const TreeLabel& b : other) {
          arena.push_back(b);
          b_idx.push_back(static_cast<std::int32_t>(arena.size() - 1));
        }
        std::vector<TreeLabel> merged;
        merged.reserve(labels.size() * other.size());
        for (std::size_t i = 0; i < labels.size(); ++i) {
          for (std::size_t j = 0; j < other.size(); ++j) {
            const TreeLabel& a = labels[i];
            const TreeLabel& b = other[j];
            TreeLabel m;
            m.cap_ff = a.cap_ff + b.cap_ff;
            m.q_fs = std::min(a.q_fs, b.q_fs);
            m.width_u = a.width_u + b.width_u;
            m.count = static_cast<std::int16_t>(a.count + b.count);
            m.left = a_idx[i];
            m.right = b_idx[j];
            merged.push_back(m);
          }
        }
        result.stats.labels_created += merged.size();
        prune_tree_labels(merged, power_mode, flat_scratch);
        labels = std::move(merged);
        other.clear();
        other.shrink_to_fit();
      }
      // A sink can also be an internal tap: add its pin cap.
      if (node.is_sink) {
        for (TreeLabel& l : labels) l.cap_ff += node.sink_cap_ff;
      }
    }

    // Optional repeater at this node.
    const std::vector<std::int16_t>* allowed =
        options.allowed_buffers != nullptr ? &(*options.allowed_buffers)[ni]
                                           : &all_indices;
    if (node.candidate && !allowed->empty()) {
      const std::size_t base = labels.size();
      for (std::size_t i = 0; i < base; ++i) {
        const TreeLabel down = labels[i];
        arena.push_back(down);
        const auto down_idx = static_cast<std::int32_t>(arena.size() - 1);
        for (const std::int16_t b : *allowed) {
          const double w = library.widths_u()[static_cast<std::size_t>(b)];
          TreeLabel up;
          up.cap_ff = device.co_ff * w;
          up.q_fs = down.q_fs - gate_delay_fs(device, w, down.cap_ff);
          up.width_u = down.width_u + w;
          up.left = down_idx;
          up.node = static_cast<std::int32_t>(ni);
          up.buffer = b;
          up.count = static_cast<std::int16_t>(down.count + 1);
          labels.push_back(up);
        }
      }
      result.stats.labels_created += allowed->size() * base;
      prune_tree_labels(labels, power_mode, flat_scratch);
    }

    // Traverse the edge to the parent (lumped pi: half the edge cap on
    // each side contributes r * (C + c/2) to the Elmore delay).
    if (node.parent >= 0 && (node.edge_r_ohm > 0 || node.edge_c_ff > 0)) {
      for (TreeLabel& l : labels) {
        l.q_fs -= node.edge_r_ohm * (l.cap_ff + 0.5 * node.edge_c_ff);
        l.cap_ff += node.edge_c_ff;
      }
    }
    result.stats.labels_peak =
        std::max(result.stats.labels_peak, labels.size());
    node_labels[ni] = std::move(labels);
  }

  // Driver at the root.
  auto& root_labels = node_labels[0];
  RIP_ASSERT(!root_labels.empty(), "tree DP lost all labels");
  const double target = power_mode ? options.timing_target_fs : 0.0;
  const TreeLabel* best = nullptr;
  const TreeLabel* best_delay = nullptr;
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  for (const TreeLabel& l : root_labels) {
    const double q_final =
        l.q_fs - gate_delay_fs(device, driver_width_u, l.cap_ff);
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = &l;
    }
    if (power_mode && q_final >= -options.slack_tolerance_fs) {
      const bool better =
          l.width_u < best_width ||
          (l.width_u == best_width &&
           (l.count < best_count ||
            (l.count == best_count && q_final > best_q)));
      if (better) {
        best_width = l.width_u;
        best_count = l.count;
        best_q = q_final;
        best = &l;
      }
    }
  }

  auto reconstruct = [&](const TreeLabel& l) {
    TreeSolution s;
    s.width_u.assign(nodes.size(), 0.0);
    if (l.buffer >= 0) {
      s.width_u[static_cast<std::size_t>(l.node)] =
          library.widths_u()[static_cast<std::size_t>(l.buffer)];
    }
    collect_buffers(arena, l.left, s, library);
    collect_buffers(arena, l.right, s, library);
    return s;
  };

  result.min_delay_fs = target - best_delay_q;
  result.min_delay_solution = reconstruct(*best_delay);
  if (power_mode) {
    if (best != nullptr) {
      result.status = Status::kOptimal;
      result.solution = reconstruct(*best);
      result.total_width_u = best->width_u;
      result.delay_fs = target - best_q;
    } else {
      result.status = Status::kInfeasible;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    result.solution = result.min_delay_solution;
    result.total_width_u = result.solution.total_width_u();
    result.delay_fs = result.min_delay_fs;
  }
  return result;
}

double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(solution.width_u.size() == nodes.size(),
              "solution size does not match tree");
  // Bottom-up evaluation mirroring the DP but over a fixed assignment:
  // carry (C, d_worst) per node where d_worst is the worst delay from
  // this node down to any sink below it.
  std::vector<double> cap(nodes.size(), 0.0);
  std::vector<double> delay(nodes.size(), 0.0);
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    double c = node.is_sink ? node.sink_cap_ff : 0.0;
    double d = 0.0;
    for (const auto kid : tree.children()[ni]) {
      c += cap[static_cast<std::size_t>(kid)];
      d = std::max(d, delay[static_cast<std::size_t>(kid)]);
    }
    const double w = solution.width_u[ni];
    if (w > 0) {
      RIP_REQUIRE(node.candidate, "repeater placed at a non-candidate node");
      d += device.rs_ohm * device.cp_ff + device.rs_ohm / w * c;
      c = device.co_ff * w;
    }
    if (node.parent >= 0) {
      d += node.edge_r_ohm * (c + 0.5 * node.edge_c_ff);
      c += node.edge_c_ff;
    }
    cap[ni] = c;
    delay[ni] = d;
  }
  return delay[0] + device.rs_ohm * device.cp_ff +
         device.rs_ohm / driver_width_u * cap[0];
}

BufferTree random_buffer_tree(const RandomTreeConfig& config, Rng& rng) {
  RIP_REQUIRE(config.sink_count >= 1, "tree needs at least one sink");
  RIP_REQUIRE(config.candidates_per_edge >= 1,
              "need at least one candidate per edge");
  BufferTree tree;
  // Attachment points: nodes new branches may sprout from.
  std::vector<std::int32_t> attach{0};
  for (int s = 0; s < config.sink_count; ++s) {
    const std::int32_t from = attach[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(attach.size()) - 1))];
    const double length =
        rng.uniform(config.edge_length_min_um, config.edge_length_max_um);
    const double piece = length / config.candidates_per_edge;
    std::int32_t parent = from;
    for (int k = 0; k < config.candidates_per_edge; ++k) {
      BufferTreeNode node;
      node.parent = parent;
      node.edge_r_ohm = config.r_ohm_per_um * piece;
      node.edge_c_ff = config.c_ff_per_um * piece;
      node.candidate = true;
      const bool last = (k + 1 == config.candidates_per_edge);
      if (last) {
        node.is_sink = true;
        node.sink_cap_ff =
            rng.uniform(config.sink_cap_min_ff, config.sink_cap_max_ff);
        node.name = "sink" + std::to_string(s);
      }
      parent = tree.add_node(std::move(node));
      attach.push_back(parent);
    }
  }
  return tree;
}

}  // namespace rip::dp
