#include "dp/tree_dp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "dp/kernel_ops.hpp"
#include "dp/pareto.hpp"
#include "dp/workspace.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace rip::dp {

BufferTree::BufferTree() {
  BufferTreeNode root;
  root.parent = -1;
  root.name = "root";
  nodes_.push_back(root);
  children_.emplace_back();
}

std::int32_t BufferTree::add_node(BufferTreeNode node) {
  RIP_REQUIRE(node.parent >= 0 &&
                  node.parent < static_cast<std::int32_t>(nodes_.size()),
              "tree node parent must exist");
  RIP_REQUIRE(node.edge_r_ohm >= 0 && node.edge_c_ff >= 0,
              "edge RC must be non-negative");
  if (node.is_sink) {
    RIP_REQUIRE(node.sink_cap_ff >= 0, "sink cap must be non-negative");
    ++sink_count_;
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  children_.emplace_back();
  children_[static_cast<std::size_t>(nodes_.back().parent)].push_back(id);
  return id;
}

double TreeSolution::total_width_u() const {
  double p = 0;
  for (const double w : width_u) p += w;
  return p;
}

std::size_t TreeSolution::repeater_count() const {
  std::size_t n = 0;
  for (const double w : width_u)
    if (w > 0) ++n;
  return n;
}

namespace {

/// Append one reconstruction-arena entry and return its index. Buffer
/// entries carry (left = downstream label's arena index, node, buffer);
/// junction entries carry (left, right) and node/buffer -1.
std::int32_t arena_push(Workspace& ws, std::int32_t left, std::int32_t right,
                        std::int32_t node, std::int16_t buffer) {
  ws.tree_a_left.push_back(left);
  ws.tree_a_right.push_back(right);
  ws.tree_a_node.push_back(node);
  ws.tree_a_buffer.push_back(buffer);
  return static_cast<std::int32_t>(ws.tree_a_left.size() - 1);
}

/// Copy one frontier's contents into another, preserving the
/// destination's vector capacities (assign never shrinks capacity, so
/// once a slot has served its role it stays allocation-free). The
/// kernel copies merge results from the scratch back into the role's
/// pool slot instead of swapping, so capacities never migrate between
/// slots — see the tree pool comment in workspace.hpp.
void copy_frontier(ChainFrontier& dst, const ChainFrontier& src) {
  dst.cap_ff.assign(src.cap_ff.begin(), src.cap_ff.end());
  dst.q_fs.assign(src.q_fs.begin(), src.q_fs.end());
  dst.width_u.assign(src.width_u.begin(), src.width_u.end());
  dst.count.assign(src.count.begin(), src.count.end());
  dst.node.assign(src.node.begin(), src.node.end());
}

/// Merge two branch frontiers at a junction, both sorted by
/// (C asc, q desc, w asc), leaving the merged frontier in `a` (and `b`
/// cleared). The cross product (C adds, q takes the min, w adds) is
/// never materialized: with rows keyed by the smaller side, row i
/// (label i crossed with every label of the larger, C-ascending side)
/// is itself a stream sorted by (C asc, q desc), so a binary heap of
/// row cursors pops the n*m pairs in frontier order and each pair is
/// dominance-tested on the spot. Exact (C, q) ties pop consecutively
/// and are buffered so only the min-width (then min-index)
/// representative reaches the staircase — the single survivor a full
/// sort-and-sweep would keep.
///
/// One deliberate approximation: when two *different* column caps round
/// to the same summed C, a row stream's q-monotonicity can break within
/// that bitwise-equal-C run, so a pop there may arrive after a
/// lower-q sibling and survive despite being dominated by it. The
/// staircase only ever rejects genuinely dominated labels (everything
/// inserted has <= C, >= q, <= w), so no non-dominated label is ever
/// lost — the frontier just keeps a stray dominated label on such
/// rounding collisions, which the next junction or candidate sweep
/// filters. The tree-oracle battery pins optimality either way.
///
/// A reconstruction-arena join entry is appended only for survivors
/// whose *both* sides carry downstream repeaters; otherwise the merged
/// label simply inherits the non-empty side's arena index.
void merge_junction(Workspace& ws, ChainFrontier& a, ChainFrontier& b,
                    bool power_mode, DpStats& stats) {
  const bool a_rows = a.size() <= b.size();
  const ChainFrontier& ra = a_rows ? a : b;  // row side (heap of |ra| rows)
  const ChainFrontier& rb = a_rows ? b : a;  // column side, walked per row
  const std::size_t n = ra.size();
  const std::size_t m = rb.size();
  ws.tree_rowpos.assign(n, 0);
  ws.tree_pair_cap.resize(n);
  ws.tree_pair_q.resize(n);
  ws.tree_order.resize(n);
  const double* __restrict rac = ra.cap_ff.data();
  const double* __restrict raq = ra.q_fs.data();
  const double* __restrict raw = ra.width_u.data();
  const double* __restrict rbc = rb.cap_ff.data();
  const double* __restrict rbq = rb.q_fs.data();
  const double* __restrict rbw = rb.width_u.data();
  double* __restrict kc = ws.tree_pair_cap.data();
  double* __restrict kq = ws.tree_pair_q.data();
  std::int32_t* __restrict pos = ws.tree_rowpos.data();
  std::int32_t* heap = ws.tree_order.data();
  RIP_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    kc[i] = rac[i] + rbc[0];
    kq[i] = std::min(raq[i], rbq[0]);
  }
  for (std::size_t i = 0; i < n; ++i)
    heap[i] = static_cast<std::int32_t>(i);

  // Min-heap on each row's cached current key, frontier order (C asc,
  // q desc); the row index breaks exact ties deterministically (the
  // pending-cluster buffer below resolves them value-wise).
  const auto row_before = [&](std::int32_t x, std::int32_t y) {
    const auto xi = static_cast<std::size_t>(x);
    const auto yi = static_cast<std::size_t>(y);
    if (kc[xi] != kc[yi]) return kc[xi] < kc[yi];
    if (kq[xi] != kq[yi]) return kq[xi] > kq[yi];
    return x < y;
  };
  const auto sift_down = [&](std::size_t hn, std::size_t at) {
    const std::int32_t v = heap[at];
    while (true) {
      std::size_t kid = 2 * at + 1;
      if (kid >= hn) break;
      if (kid + 1 < hn && row_before(heap[kid + 1], heap[kid])) ++kid;
      if (!row_before(heap[kid], v)) break;
      heap[at] = heap[kid];
      at = kid;
    }
    heap[at] = v;
  };
  for (std::size_t at = n / 2; at-- > 0;) sift_down(n, at);

  ChainFrontier& out = ws.tree_scratch;
  out.clear();
  out.reserve(std::max(n, m));
  ws.frontier.clear();
  double best_q = -std::numeric_limits<double>::infinity();

  // Pending (C, q) cluster: its min-width representative, with row/col
  // provenance. Flushed to the staircase when the next distinct key
  // pops (all pairs of an exact key pop consecutively).
  bool have_pend = false;
  double pend_c = 0;
  double pend_q = 0;
  double pend_w = 0;
  std::int64_t pend_k = 0;
  std::size_t pend_i = 0;
  std::size_t pend_j = 0;
  const auto flush = [&] {
    const bool survives =
        power_mode ? ws.frontier.try_insert(pend_q, pend_w) : pend_q > best_q;
    if (!survives) return;
    best_q = pend_q;
    const std::size_t ia = a_rows ? pend_i : pend_j;
    const std::size_t ib = a_rows ? pend_j : pend_i;
    const std::int32_t la = a.node[ia];
    const std::int32_t lb = b.node[ib];
    const std::int32_t idx = la < 0   ? lb
                             : lb < 0 ? la
                                      : arena_push(ws, la, lb, -1, -1);
    out.push(pend_c, pend_q, pend_w,
             static_cast<std::int16_t>(a.count[ia] + b.count[ib]), idx);
  };

  std::size_t hn = n;
  while (hn > 0) {
    const std::int32_t i = heap[0];
    const auto ii = static_cast<std::size_t>(i);
    const auto j = static_cast<std::size_t>(pos[ii]);
    const double c = kc[ii];
    const double q = kq[ii];
    const double w = raw[ii] + rbw[j];
    const auto k = static_cast<std::int64_t>(ii) *
                       static_cast<std::int64_t>(m) +
                   static_cast<std::int64_t>(j);
    if (have_pend && c == pend_c && q == pend_q) {
      if (w < pend_w || (w == pend_w && k < pend_k)) {
        pend_w = w;
        pend_k = k;
        pend_i = ii;
        pend_j = j;
      }
    } else {
      if (have_pend) flush();
      pend_c = c;
      pend_q = q;
      pend_w = w;
      pend_k = k;
      pend_i = ii;
      pend_j = j;
      have_pend = true;
    }
    const std::size_t jn = j + 1;
    if (jn < m) {
      pos[ii] = static_cast<std::int32_t>(jn);
      kc[ii] = rac[ii] + rbc[jn];
      kq[ii] = std::min(raq[ii], rbq[jn]);
      sift_down(hn, 0);
    } else {
      heap[0] = heap[--hn];
      if (hn > 0) sift_down(hn, 0);
    }
  }
  if (have_pend) flush();

  stats.labels_created += n * m;
  stats.labels_pruned += n * m - out.size();
  copy_frontier(a, out);
  b.clear();
}

/// The candidate step's merge: sweep the pass-through run (the frontier
/// itself) and the expansion run (ws.expanded, built by
/// kernel::expand_candidate) in their combined sorted order through the
/// dominance staircase, materializing survivors into the scratch
/// frontier which is then swapped into `front`. Identical arithmetic
/// and tie rules to the chain kernel's merge (exact ties take the
/// pass-through); only the arena shape differs.
void merge_expanded(Workspace& ws, ChainFrontier& front, std::int32_t ni,
                    bool power_mode) {
  ChainFrontier& back = ws.tree_scratch;
  const std::size_t fn = front.size();
  const std::size_t gn = ws.expanded.size();
  back.clear();
  back.reserve(fn + gn);
  ws.frontier.clear();
  double best_q = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < fn || j < gn) {
    bool from_front;
    if (j >= gn) {
      from_front = true;
    } else if (i >= fn) {
      from_front = false;
    } else {
      // (C asc, q desc, w asc); exact ties take the pass-through.
      const ExpandLabel& g = ws.expanded[j];
      if (front.cap_ff[i] != g.cap_ff) {
        from_front = front.cap_ff[i] < g.cap_ff;
      } else if (front.q_fs[i] != g.q_fs) {
        from_front = front.q_fs[i] > g.q_fs;
      } else {
        from_front = front.width_u[i] <= g.width_u;
      }
    }
    if (from_front) {
      const double q = front.q_fs[i];
      const double w = front.width_u[i];
      const bool survives =
          power_mode ? ws.frontier.try_insert(q, w) : q > best_q;
      if (survives) {
        best_q = q;
        back.push(front.cap_ff[i], q, w, front.count[i], front.node[i]);
      }
      ++i;
    } else {
      const ExpandLabel& g = ws.expanded[j];
      const bool survives =
          power_mode ? ws.frontier.try_insert(g.q_fs, g.width_u)
                     : g.q_fs > best_q;
      if (survives) {
        best_q = g.q_fs;
        const auto origin = static_cast<std::size_t>(g.origin);
        const std::int32_t idx =
            arena_push(ws, front.node[origin], -1, ni, g.buffer);
        back.push(g.cap_ff, g.q_fs, g.width_u,
                  static_cast<std::int16_t>(front.count[origin] + 1), idx);
      }
      ++j;
    }
  }
  copy_frontier(front, back);
}

/// Iterative DFS over the survivor arena DAG: record each buffer
/// entry's width at its node.
void collect_buffers(const Workspace& ws, std::int32_t idx,
                     TreeSolution& solution, const RepeaterLibrary& library,
                     std::vector<std::int32_t>& stack) {
  stack.clear();
  if (idx >= 0) stack.push_back(idx);
  while (!stack.empty()) {
    const auto cur = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    if (ws.tree_a_buffer[cur] >= 0) {
      solution.width_u[static_cast<std::size_t>(ws.tree_a_node[cur])] =
          library.widths_u()[static_cast<std::size_t>(ws.tree_a_buffer[cur])];
    }
    if (ws.tree_a_right[cur] >= 0) stack.push_back(ws.tree_a_right[cur]);
    if (ws.tree_a_left[cur] >= 0) stack.push_back(ws.tree_a_left[cur]);
  }
}

/// Physical total width of a label, re-summed from its arena DAG in
/// upstream-before-downstream order — on a path-shaped tree this is the
/// exact summation order of the chain kernel's arena walk, so the two
/// kernels agree bit for bit. Only the non-identity objectives use
/// this: on the identity path the label's accumulated value IS the
/// total width.
double arena_total_width(Workspace& ws, std::int32_t idx,
                         const RepeaterLibrary& library) {
  double w = 0;
  auto& stack = ws.tree_stack;
  stack.clear();
  if (idx >= 0) stack.push_back(idx);
  while (!stack.empty()) {
    const auto cur = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    if (ws.tree_a_buffer[cur] >= 0) {
      w += library.widths_u()[static_cast<std::size_t>(
          ws.tree_a_buffer[cur])];
    }
    if (ws.tree_a_right[cur] >= 0) stack.push_back(ws.tree_a_right[cur]);
    if (ws.tree_a_left[cur] >= 0) stack.push_back(ws.tree_a_left[cur]);
  }
  return w;
}

}  // namespace

TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options) {
  return run_tree_dp(tree, device, driver_width_u, library, options,
                     Workspace::local());
}

TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options, Workspace& ws) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(driver_width_u > 0, "driver width must be positive");
  RIP_REQUIRE(tree.sink_count() > 0, "tree has no sinks");
  const bool power_mode = (options.mode == Mode::kMinPower);
  if (power_mode) {
    RIP_REQUIRE(options.timing_target_fs > 0,
                "kMinPower needs a positive timing target");
  }

  if (options.allowed_buffers != nullptr) {
    RIP_REQUIRE(options.allowed_buffers->size() == nodes.size(),
                "allowed_buffers must parallel the tree nodes");
    for (const auto& allowed : *options.allowed_buffers) {
      RIP_REQUIRE(std::is_sorted(allowed.begin(), allowed.end()),
                  "allowed_buffers lists must be sorted ascending");
      for (const auto b : allowed) {
        RIP_REQUIRE(b >= 0 && static_cast<std::size_t>(b) < library.size(),
                    "allowed buffer index out of library range");
      }
    }
  }

  // Objective backend: the tree carries no route length or net name, so
  // the profile is synthetic — anonymous, zero length, wire cap = total
  // edge + sink capacitance (enough for cap-driven cost derivations).
  tech::ChainCost cost;
  if (options.backend != nullptr) {
    tech::NetProfile profile;
    for (const auto& node : nodes) {
      profile.wire_cap_ff += node.edge_c_ff;
      if (node.is_sink) profile.wire_cap_ff += node.sink_cap_ff;
    }
    cost = kernel::checked_chain_cost(options.backend, profile);
  }
  const bool identity = kernel::identity_cost_table(cost);

  // Per-solve precompute, shared with the chain kernel: input loads,
  // driving resistances, and objective costs per library width, plus the
  // intrinsic delay.
  library.fill_device_terms(device, ws.lib_load_ff, ws.lib_rs_over_w);
  library.fill_cost_terms(cost, ws.lib_cost);
  const double intrinsic_fs = device.rs_ohm * device.cp_ff;
  ws.all_buffers.resize(library.size());
  for (std::size_t b = 0; b < library.size(); ++b)
    ws.all_buffers[b] = static_cast<std::int16_t>(b);

  TreeDpResult result;
  result.stats.positions = nodes.size();
  result.stats.workspace_reuses = ws.stats_.solves();

  // Grow-only frontier pool (a shrinking resize would destroy pooled
  // capacity), the node -> slot map, and a fresh reconstruction arena.
  if (ws.tree_frontiers.size() < nodes.size())
    ws.tree_frontiers.resize(nodes.size());
  ws.tree_slot.resize(nodes.size());
  ws.tree_a_left.clear();
  ws.tree_a_right.clear();
  ws.tree_a_node.clear();
  ws.tree_a_buffer.clear();

  const double seed_q = kernel::seed_q_fs(cost);

  // Children have larger indices than parents (enforced by add_node), so
  // a reverse index sweep is a bottom-up traversal. Each node's alive
  // set lives in its pool slot, sorted by (C asc, q desc, w asc)
  // throughout — junction merges, candidate expansion, and wire
  // propagation all preserve the invariant, exactly like the chain
  // sweep.
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    const auto& kids = tree.children()[ni];
    // The subtree frontier lives in the slot of its leftmost descendant
    // leaf — it follows the first child up without ever moving, and the
    // physical buffer serving each node is a pure function of the
    // topology (no capacity migration between solves).
    const std::int32_t slot =
        kids.empty() ? static_cast<std::int32_t>(ni)
                     : ws.tree_slot[static_cast<std::size_t>(kids[0])];
    ws.tree_slot[ni] = slot;
    ChainFrontier& front = ws.tree_frontiers[static_cast<std::size_t>(slot)];

    if (kids.empty()) {
      RIP_REQUIRE(node.is_sink, "leaf node is not a sink");
      // Seed at the sink, target-relative like the chain's receiver
      // seed: q = 0 minus any backend receiver penalty, charged once
      // per sink (e.g. a sense amp at every leaf).
      front.clear();
      front.push(node.sink_cap_ff, seed_q, 0.0, 0, -1);
      ++result.stats.labels_created;
    } else {
      // Merge children branch sets: C adds, q takes the min, p adds.
      // The first child's frontier is already in place (same slot);
      // every further child staircase-merges into it.
      for (std::size_t k = 1; k < kids.size(); ++k) {
        merge_junction(
            ws, front,
            ws.tree_frontiers[static_cast<std::size_t>(
                ws.tree_slot[static_cast<std::size_t>(kids[k])])],
            power_mode, result.stats);
      }
      // A sink can also be an internal tap: add its pin cap (a constant
      // shift keeps the sort order).
      if (node.is_sink) {
        double* __restrict cap = front.cap_ff.data();
        const double pin = node.sink_cap_ff;
        const std::size_t fn = front.size();
        RIP_SIMD_LOOP
        for (std::size_t i = 0; i < fn; ++i) cap[i] += pin;
      }
    }

    // Optional repeater at this node: per-group expansion + staircase
    // merge, shared with the chain kernel's candidate step.
    const std::vector<std::int16_t>& allowed =
        !cost.allow_repeaters              ? kernel::kNoBuffers
        : options.allowed_buffers != nullptr ? (*options.allowed_buffers)[ni]
                                             : ws.all_buffers;
    if (node.candidate && !allowed.empty()) {
      const std::size_t fn = front.size();
      kernel::expand_candidate(ws, front, allowed, ws.lib_cost, intrinsic_fs,
                               power_mode);
      merge_expanded(ws, front, static_cast<std::int32_t>(ni), power_mode);
      result.stats.labels_created += allowed.size() * fn;
      result.stats.labels_pruned +=
          fn * (1 + allowed.size()) - front.size();
    }

    // Traverse the edge to the parent: the same affine interval map as
    // the chain's wire propagation, over one lumped RC piece.
    if (node.parent >= 0) {
      kernel::propagate_frontier(
          front, kernel::edge_affine(node.edge_r_ohm, node.edge_c_ff));
    }
    result.stats.labels_peak =
        std::max(result.stats.labels_peak, front.size());
  }

  // Driver gate at the root, applied in place: afterwards q_fs[i] holds
  // the label's target-relative final slack (feasibility at a target is
  // q_rel + target >= -tol and the realized worst-sink delay is -q_rel).
  ChainFrontier& root =
      ws.tree_frontiers[static_cast<std::size_t>(ws.tree_slot[0])];
  RIP_ASSERT(root.size() > 0, "tree DP lost all labels");
  {
    const double driver_rs_over_w = device.rs_ohm / driver_width_u;
    double* __restrict q = root.q_fs.data();
    const double* __restrict cap = root.cap_ff.data();
    const std::size_t rn = root.size();
    RIP_SIMD_LOOP
    for (std::size_t i = 0; i < rn; ++i) {
      q[i] = q[i] - (intrinsic_fs + driver_rs_over_w * cap[i]);
    }
  }

  // Selection: feasibility scan, min-cost (power) / max-slack (delay),
  // with the chain's exact tie order (width, then count, then slack).
  const double target = power_mode ? options.timing_target_fs : 0.0;
  std::int32_t best = -1;
  std::int32_t best_delay = -1;
  double best_width = std::numeric_limits<double>::infinity();
  int best_count = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  double best_delay_q = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < root.size(); ++i) {
    const double q_final = root.q_fs[i];
    if (q_final > best_delay_q) {
      best_delay_q = q_final;
      best_delay = static_cast<std::int32_t>(i);
    }
    if (power_mode && q_final + target >= -options.slack_tolerance_fs) {
      const bool better =
          root.width_u[i] < best_width ||
          (root.width_u[i] == best_width &&
           (root.count[i] < best_count ||
            (root.count[i] == best_count && q_final > best_q)));
      if (better) {
        best_width = root.width_u[i];
        best_count = root.count[i];
        best_q = q_final;
        best = static_cast<std::int32_t>(i);
      }
    }
  }

  result.stats.arena_peak = ws.tree_a_left.size();

  auto reconstruct = [&](std::size_t label) {
    TreeSolution s;
    s.width_u.assign(nodes.size(), 0.0);
    collect_buffers(ws, root.node[label], s, library, ws.tree_stack);
    return s;
  };

  const auto delay_i = static_cast<std::size_t>(best_delay);
  result.min_delay_fs = -best_delay_q;
  if (options.reconstruct_solutions) {
    result.min_delay_solution = reconstruct(delay_i);
  }
  if (power_mode) {
    if (best >= 0) {
      const auto best_i = static_cast<std::size_t>(best);
      result.status = Status::kOptimal;
      if (options.reconstruct_solutions) result.solution = reconstruct(best_i);
      result.total_width_u =
          identity ? root.width_u[best_i]
                   : arena_total_width(ws, root.node[best_i], library);
      result.objective_cost = root.width_u[best_i];
      result.delay_fs = -best_q;
    } else {
      result.status = Status::kInfeasible;
      result.delay_fs = result.min_delay_fs;
    }
  } else {
    result.status = Status::kOptimal;
    if (options.reconstruct_solutions)
      result.solution = result.min_delay_solution;
    result.total_width_u =
        identity ? root.width_u[delay_i]
                 : arena_total_width(ws, root.node[delay_i], library);
    result.objective_cost = root.width_u[delay_i];
    result.delay_fs = result.min_delay_fs;
  }

  ++ws.stats_.tree_solves;
  ws.stats_.labels_created += result.stats.labels_created;
  ws.stats_.labels_pruned += result.stats.labels_pruned;
  ws.stats_.peak_frontier_labels =
      std::max(ws.stats_.peak_frontier_labels, result.stats.labels_peak);
  ws.stats_.peak_arena_labels =
      std::max(ws.stats_.peak_arena_labels, result.stats.arena_peak);
  return result;
}

double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution) {
  return tree_delay_fs(tree, device, driver_width_u, solution,
                       Workspace::local());
}

double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution,
                     Workspace& ws) {
  const auto& nodes = tree.nodes();
  RIP_REQUIRE(solution.width_u.size() == nodes.size(),
              "solution size does not match tree");
  // Bottom-up evaluation mirroring the DP but over a fixed assignment:
  // carry (C, d_worst) per node where d_worst is the worst delay from
  // this node down to any sink below it.
  ws.tree_cap.assign(nodes.size(), 0.0);
  ws.tree_delay.assign(nodes.size(), 0.0);
  std::vector<double>& cap = ws.tree_cap;
  std::vector<double>& delay = ws.tree_delay;
  for (std::size_t ni = nodes.size(); ni-- > 0;) {
    const auto& node = nodes[ni];
    double c = node.is_sink ? node.sink_cap_ff : 0.0;
    double d = 0.0;
    for (const auto kid : tree.children()[ni]) {
      c += cap[static_cast<std::size_t>(kid)];
      d = std::max(d, delay[static_cast<std::size_t>(kid)]);
    }
    const double w = solution.width_u[ni];
    if (w > 0) {
      RIP_REQUIRE(node.candidate, "repeater placed at a non-candidate node");
      d += device.rs_ohm * device.cp_ff + device.rs_ohm / w * c;
      c = device.co_ff * w;
    }
    if (node.parent >= 0) {
      d += node.edge_r_ohm * (c + 0.5 * node.edge_c_ff);
      c += node.edge_c_ff;
    }
    cap[ni] = c;
    delay[ni] = d;
  }
  return delay[0] + device.rs_ohm * device.cp_ff +
         device.rs_ohm / driver_width_u * cap[0];
}

BufferTree random_buffer_tree(const RandomTreeConfig& config, Rng& rng) {
  RIP_REQUIRE(config.sink_count >= 1, "tree needs at least one sink");
  RIP_REQUIRE(config.candidates_per_edge >= 1,
              "need at least one candidate per edge");
  BufferTree tree;
  // Attachment points: nodes new branches may sprout from.
  std::vector<std::int32_t> attach{0};
  for (int s = 0; s < config.sink_count; ++s) {
    const std::int32_t from = attach[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(attach.size()) - 1))];
    const double length =
        rng.uniform(config.edge_length_min_um, config.edge_length_max_um);
    const double piece = length / config.candidates_per_edge;
    std::int32_t parent = from;
    for (int k = 0; k < config.candidates_per_edge; ++k) {
      BufferTreeNode node;
      node.parent = parent;
      node.edge_r_ohm = config.r_ohm_per_um * piece;
      node.edge_c_ff = config.c_ff_per_um * piece;
      node.candidate = true;
      const bool last = (k + 1 == config.candidates_per_edge);
      if (last) {
        node.is_sink = true;
        node.sink_cap_ff =
            rng.uniform(config.sink_cap_min_ff, config.sink_cap_max_ff);
        node.name = "sink" + std::to_string(s);
      }
      parent = tree.add_node(std::move(node));
      attach.push_back(parent);
    }
  }
  return tree;
}

}  // namespace rip::dp
