#pragma once

/// @file kernel_ops.hpp
/// SoA frontier primitives shared by the chain and tree DP kernels.
///
/// Both kernels sweep the same label algebra over a ChainFrontier kept
/// sorted by (C asc, q desc, w asc): affine wire propagation, per-group
/// candidate expansion, and staircase dominance. The chain kernel walks
/// a candidate list; the tree kernel walks nodes bottom-up and adds a
/// junction merge — everything else is these shared primitives, so a
/// path-shaped tree reproduces the chain solve bit for bit (which
/// tests/tree_oracle_property_test.cpp pins).
///
/// Internal header: included by the kernels only, not part of the
/// public dp/ API surface.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "dp/workspace.hpp"
#include "net/net.hpp"
#include "tech/objective.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace rip::dp::kernel {

/// The allowed list used when the backend forbids repeater insertion
/// (tech::ChainCost::allow_repeaters == false): every candidate expands
/// zero buffer groups, so the sweep degenerates to pure wire
/// propagation of the seed labels.
inline const std::vector<std::int16_t> kNoBuffers;

/// Validate a backend's per-net cost coefficients (identity when no
/// backend is set). Coefficients must be non-negative: a negative width
/// weight would break the kernel's monotone group ordering.
inline tech::ChainCost checked_chain_cost(const tech::ObjectiveBackend* backend,
                                          const tech::NetProfile& profile) {
  if (backend == nullptr) return tech::ChainCost{};
  const tech::ChainCost cost = backend->chain_cost(profile);
  RIP_REQUIRE(cost.width_weight >= 0 && cost.per_repeater >= 0,
              "objective backend produced negative cost coefficients");
  RIP_REQUIRE(cost.receiver_penalty_fs >= 0,
              "objective backend produced a negative receiver penalty");
  return cost;
}

/// True when the label arrays' third dimension is plain total width —
/// the paper's objective. (Narrower than ChainCost::is_identity(): the
/// receiver penalty and the allow flag shift q / restrict insertion but
/// do not reshape the accumulated value.)
inline bool identity_cost_table(const tech::ChainCost& cost) {
  return cost.width_weight == 1.0 && cost.per_repeater == 0.0;
}

/// Seed required arrival time, target-relative: 0 in both modes, minus
/// any backend receiver penalty. The zero guard keeps the seed at +0.0
/// on the default path (-0.0 would survive to the final slack and print
/// as "-0.000").
inline double seed_q_fs(const tech::ChainCost& cost) {
  return cost.receiver_penalty_fs == 0.0 ? 0.0 : -cost.receiver_penalty_fs;
}

/// Affine coefficients of wire propagation across one candidate interval.
/// Carrying a label upstream over the interval's pieces applies, piece by
/// piece, q -= r*(C + c/2); C += c. Composed over the whole interval that
/// is exactly
///   q -= R_tot * C + K;   C += C_tot
/// with K = sum_k r_k * (c_0 + ... + c_{k-1} + 0.5*c_k) over pieces
/// ordered downstream->upstream. The coefficients depend only on the
/// interval, so they are computed once and applied to every alive label —
/// two fused multiply-adds per label instead of a loop over pieces.
struct WireAffine {
  double r_tot = 0;  ///< total interval resistance [Ohm]
  double c_tot = 0;  ///< total interval capacitance [fF]
  double k = 0;      ///< label-independent Elmore term [fs]
};

inline WireAffine interval_affine(const std::vector<net::WirePiece>& pieces) {
  WireAffine a;
  // pieces are ordered upstream->downstream; accumulate from the
  // downstream end, mirroring the label's traversal order.
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    const double r = it->r_ohm_per_um * it->length_um;
    const double c = it->c_ff_per_um * it->length_um;
    a.k += r * (a.c_tot + 0.5 * c);
    a.r_tot += r;
    a.c_tot += c;
  }
  return a;
}

/// The affine map of a single lumped RC tree edge. Bit-identical to
/// interval_affine over a one-piece interval with the same totals:
/// r * (0.0 + 0.5*c) == r * (0.5*c) for every non-negative c.
inline WireAffine edge_affine(double r_ohm, double c_ff) {
  return WireAffine{r_ohm, c_ff, r_ohm * (0.5 * c_ff)};
}

/// Apply the interval map to the whole frontier (contiguous SoA arrays).
inline void propagate_frontier(ChainFrontier& front, const WireAffine& wire) {
  if (wire.r_tot == 0 && wire.c_tot == 0) return;
  double* __restrict cap = front.cap_ff.data();
  double* __restrict q = front.q_fs.data();
  const std::size_t n = front.size();
  RIP_SIMD_LOOP
  for (std::size_t i = 0; i < n; ++i) {
    q[i] -= wire.r_tot * cap[i] + wire.k;
    cap[i] += wire.c_tot;
  }
}

/// Build the buffer-insertion labels of one candidate into ws.expanded,
/// already dominance-filtered *within* each buffer group and ordered so
/// that ws.expanded is sorted by (C asc, q desc, w asc).
///
/// The structural shortcut the whole kernel leans on: every label of
/// group b shares the same downstream capacitance (the buffer's input
/// load co*w_b), and the allowed buffer list is width-ascending, so the
/// groups concatenate into a sorted run without any global sort. Within
/// a group, equal C reduces dominance to the (q, w) staircase: sort the
/// group (24-byte entries, cache-resident) by (q desc, w asc) and keep
/// the strictly-falling-width prefix sweep. In delay mode (no width
/// dimension) the staircase collapses to the single max-q label, found
/// by a linear scan — no sort at all.
inline void expand_candidate(Workspace& ws, const ChainFrontier& front,
                             const std::vector<std::int16_t>& allowed,
                             const std::vector<double>& cost_u,
                             double intrinsic_fs, bool use_width) {
  const std::size_t fn = front.size();
  ws.expanded.clear();
  // Lower-bound reserve only: the retained workspace capacity converges
  // to the true survivor watermark after warm-up, which is far below
  // the fn * |allowed| worst case — reserving that would pin megabytes
  // of never-used arena per thread.
  ws.expanded.reserve(fn + allowed.size());
  const double* __restrict cap = front.cap_ff.data();
  const double* __restrict q = front.q_fs.data();
  const double* __restrict w = front.width_u.data();
  for (const std::int16_t b : allowed) {
    const auto bi = static_cast<std::size_t>(b);
    const double load = ws.lib_load_ff[bi];
    const double rs_over_w = ws.lib_rs_over_w[bi];
    const double wb = cost_u[bi];
    if (!use_width) {
      // Delay mode: only the group's best q can survive (ties: the
      // smallest width, matching the (q desc, w asc) sort order).
      double best_q = -std::numeric_limits<double>::infinity();
      double best_w = std::numeric_limits<double>::infinity();
      std::int32_t best_i = -1;
      for (std::size_t i = 0; i < fn; ++i) {
        const double up_q = q[i] - (intrinsic_fs + rs_over_w * cap[i]);
        const double up_w = w[i] + wb;
        if (up_q > best_q || (up_q == best_q && up_w < best_w)) {
          best_q = up_q;
          best_w = up_w;
          best_i = static_cast<std::int32_t>(i);
        }
      }
      ws.expanded.push_back(ExpandLabel{load, best_q, best_w, best_i, b});
      continue;
    }
    ws.group.clear();
    ws.group.reserve(fn);
    for (std::size_t i = 0; i < fn; ++i) {
      ws.group.push_back(
          GroupEntry{q[i] - (intrinsic_fs + rs_over_w * cap[i]), w[i] + wb,
                     static_cast<std::int32_t>(i)});
    }
    std::sort(ws.group.begin(), ws.group.end(),
              [](const GroupEntry& a, const GroupEntry& c) {
                if (a.q_fs != c.q_fs) return a.q_fs > c.q_fs;
                return a.width_u < c.width_u;
              });
    // Sweeping q descending, a label survives the group staircase iff
    // its width strictly undercuts everything seen.
    double min_w = std::numeric_limits<double>::infinity();
    for (const GroupEntry& e : ws.group) {
      if (e.width_u < min_w) {
        min_w = e.width_u;
        ws.expanded.push_back(
            ExpandLabel{load, e.q_fs, e.width_u, e.origin, b});
      }
    }
  }
}

}  // namespace rip::dp::kernel
