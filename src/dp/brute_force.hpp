#pragma once

/// @file brute_force.hpp
/// Exhaustive enumeration of every repeater assignment over a candidate
/// set — exponential, test-only. Used by the property tests to prove the
/// DP engine optimal on small instances (the DP must return exactly the
/// enumerated optimum) and to validate the pruning rules.

#include <vector>

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::dp {

/// Result of exhaustive search.
struct BruteForceResult {
  bool feasible = false;
  net::RepeaterSolution solution;  ///< min-width feasible assignment
  double total_width_u = 0;
  double delay_fs = 0;             ///< Elmore delay of `solution`
  double min_delay_fs = 0;         ///< best delay over all assignments
  net::RepeaterSolution min_delay_solution;
  std::size_t assignments = 0;     ///< how many assignments were evaluated
};

/// Enumerate all (|library|+1)^|candidates| assignments. Throws if that
/// count exceeds `max_assignments` (guards against accidental blow-up in
/// tests). Delays are evaluated with the independent rc::BufferedChain
/// evaluator, so agreement with the DP also validates the DP's
/// incremental Elmore bookkeeping. The first overload uses this thread's
/// Workspace::local() for its per-assignment repeater scratch; the
/// second reuses the caller's.
BruteForceResult brute_force(const net::Net& net,
                             const tech::RepeaterDevice& device,
                             const RepeaterLibrary& library,
                             const std::vector<double>& candidates_um,
                             double timing_target_fs,
                             std::size_t max_assignments = 2'000'000);
BruteForceResult brute_force(const net::Net& net,
                             const tech::RepeaterDevice& device,
                             const RepeaterLibrary& library,
                             const std::vector<double>& candidates_um,
                             double timing_target_fs,
                             std::size_t max_assignments, Workspace& ws);

}  // namespace rip::dp
