#include "dp/min_delay.hpp"

#include "dp/workspace.hpp"
#include "net/candidates.hpp"
#include "rc/buffered_chain.hpp"

namespace rip::dp {

MinDelayResult min_delay(const net::Net& net,
                         const tech::RepeaterDevice& device,
                         const MinDelayOptions& options) {
  return min_delay(net, device, options, Workspace::local());
}

MinDelayResult min_delay(const net::Net& net,
                         const tech::RepeaterDevice& device,
                         const MinDelayOptions& options, Workspace& ws) {
  const RepeaterLibrary library = RepeaterLibrary::range(
      options.min_width_u, options.max_width_u, options.granularity_u);
  const auto candidates = net::uniform_candidates(net, options.pitch_um);

  ChainDpOptions dp_options;
  dp_options.mode = Mode::kMinDelay;
  const ChainDpResult dp =
      run_chain_dp(net, device, library, candidates, dp_options, ws);

  MinDelayResult result;
  result.tau_min_fs = dp.delay_fs;
  result.solution = dp.solution;
  result.unbuffered_delay_fs =
      rc::elmore_delay_fs(net, net::RepeaterSolution{}, device);
  return result;
}

}  // namespace rip::dp
