#pragma once

/// @file tree_dp.hpp
/// Power-aware buffer insertion on interconnect *trees* — the extension
/// the paper announces as future work ("We are currently extending our
/// hybrid scheme to the design of low-power interconnect trees",
/// Section 7). This generalizes the chain DP: labels are merged at
/// branch points (C adds, q takes the min, p adds) with the same 3-D
/// Pareto pruning.
///
/// The kernel is built from the same SoA primitives as the chain DP
/// (dp/kernel_ops.hpp): per-subtree frontiers live in role-stable
/// dp::Workspace pool slots (zero steady-state allocations per solve),
/// straight-line passes vectorize over the contiguous frontier arrays,
/// junction merges stream the child cross product through a heap of
/// sorted rows, and objective backends flow through the shared lib_cost
/// table. A root-to-sink path tree therefore reproduces run_chain_dp
/// bit for bit; tests/tree_oracle_property_test.cpp pins that and the
/// kernel's optimality against an exhaustive tree oracle.
///
/// Because REFINE's closed-form width equations are chain-specific, the
/// tree hybrid here ("tree-RIP-lite", see rip::core) refines widths by
/// greedy discrete descent instead; DESIGN.md records this as our
/// interpretation of the future-work direction.

#include <cstdint>
#include <string>
#include <vector>

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "tech/technology.hpp"
#include "util/rng.hpp"

namespace rip::dp {

class Workspace;

/// A node of a routing tree for buffering. The edge to the parent is a
/// lumped RC (r, c); node 0 is the root (driver output, edge ignored).
struct BufferTreeNode {
  std::int32_t parent = -1;
  double edge_r_ohm = 0;    ///< resistance of the edge to the parent
  double edge_c_ff = 0;     ///< capacitance of the edge to the parent
  bool is_sink = false;     ///< leaf with a receiving gate
  double sink_cap_ff = 0;   ///< input capacitance of the sink gate
  bool candidate = false;   ///< may a repeater be inserted here?
  std::string name;
};

/// A routing tree; children must be added after their parents.
class BufferTree {
 public:
  BufferTree();

  /// Add a node; returns its index. The root is index 0 and always exists.
  std::int32_t add_node(BufferTreeNode node);

  const std::vector<BufferTreeNode>& nodes() const { return nodes_; }
  const std::vector<std::vector<std::int32_t>>& children() const {
    return children_;
  }
  std::size_t sink_count() const { return sink_count_; }

 private:
  std::vector<BufferTreeNode> nodes_;
  std::vector<std::vector<std::int32_t>> children_;
  std::size_t sink_count_ = 0;
};

/// A buffering of a tree: width per node (0 = no repeater).
struct TreeSolution {
  std::vector<double> width_u;  ///< indexed by tree node

  double total_width_u() const;
  std::size_t repeater_count() const;
};

/// Result of the tree DP.
struct TreeDpResult {
  Status status = Status::kInfeasible;
  TreeSolution solution;
  double delay_fs = 0;        ///< worst sink delay of `solution`
  double total_width_u = 0;
  /// Objective cost of `solution` under the active backend (equals
  /// total_width_u on the identity objective; 0 when infeasible). The
  /// tree backend profile is synthetic: anonymous name, zero length,
  /// wire cap = total edge + sink capacitance.
  double objective_cost = 0;
  double min_delay_fs = 0;    ///< best achievable worst-sink delay
  TreeSolution min_delay_solution;
  DpStats stats;
};

/// Run power-aware (kMinPower) or min-delay (kMinDelay) buffering over
/// the tree with a driver of width `driver_width_u` at the root. The
/// first overload solves on this thread's Workspace::local(); the second
/// reuses the caller's workspace arenas (label pools, prune scratch, the
/// flat Pareto frontier) across solves.
TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options);
TreeDpResult run_tree_dp(const BufferTree& tree,
                         const tech::RepeaterDevice& device,
                         double driver_width_u,
                         const RepeaterLibrary& library,
                         const ChainDpOptions& options, Workspace& ws);

/// Evaluate the worst-sink Elmore delay of a buffered tree — an
/// independent check of the DP bookkeeping (used in tests, and by the
/// tree hybrid's greedy descent, which calls it thousands of times: the
/// workspace overload reuses the two bottom-up sweep vectors).
double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution);
double tree_delay_fs(const BufferTree& tree,
                     const tech::RepeaterDevice& device,
                     double driver_width_u, const TreeSolution& solution,
                     Workspace& ws);

/// Parameters for the random tree generator (test/bench workloads).
struct RandomTreeConfig {
  int sink_count = 8;
  double edge_length_min_um = 400.0;
  double edge_length_max_um = 1200.0;
  double r_ohm_per_um = 0.108;
  double c_ff_per_um = 0.21;
  double sink_cap_min_ff = 5.0;
  double sink_cap_max_ff = 40.0;
  /// Each edge is split into this many candidate nodes.
  int candidates_per_edge = 3;
};

/// Generate a random topology: a binary-ish tree grown by attaching sinks
/// to random existing nodes, each edge subdivided into candidate nodes.
BufferTree random_buffer_tree(const RandomTreeConfig& config, Rng& rng);

}  // namespace rip::dp
