#pragma once

/// @file chain_dp.hpp
/// Dynamic-programming repeater insertion on a two-pin chain.
///
/// This is the engine behind both the Lillis-style low-power baseline
/// ([14] in the paper) and stages 1 and 3 of Algorithm RIP. It sweeps the
/// candidate locations from the receiver toward the driver, carrying a
/// pruned set of labels (downstream capacitance C, required arrival time
/// q, downstream repeater width p); at each candidate it may insert any
/// repeater of the library.
///
/// Two modes:
///  - kMinPower: minimize total repeater width subject to the timing
///    target (the LPRI problem). Pseudo-polynomial: label count grows
///    with library granularity, which is exactly the cost the paper's
///    hybrid scheme attacks.
///  - kMinDelay: classic van Ginneken maximum-slack recursion, used to
///    compute tau_min for setting timing targets.
///
/// The kernel is allocation-free in steady state: all label storage is
/// structure-of-arrays inside a reusable dp::Workspace (workspace.hpp),
/// wire propagation across a candidate interval is a precomputed affine
/// map `q -= R_tot*C + K; C += C_tot` applied to the contiguous frontier,
/// and dominance pruning runs over a sorted flat-vector Pareto staircase.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dp/library.hpp"
#include "dp/workspace.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/objective.hpp"
#include "tech/technology.hpp"

namespace rip::dp {

/// Optimization objective.
enum class Mode {
  kMinPower,  ///< min total width subject to delay <= timing target
  kMinDelay,  ///< min delay (timing target ignored)
};

/// Outcome of a DP run.
enum class Status {
  kOptimal,     ///< a feasible solution was found (always, in kMinDelay)
  kInfeasible,  ///< no feasible labeling meets the target (kMinPower)
};

/// Engine options.
struct ChainDpOptions {
  Mode mode = Mode::kMinPower;
  double timing_target_fs = 0;  ///< required in kMinPower mode
  /// Feasibility slack tolerance [fs]; labels with q_final >= -tolerance
  /// are accepted (guards against float round-off at the boundary).
  double slack_tolerance_fs = 1e-6;
  /// Optional per-candidate restriction: allowed_buffers[i] lists the
  /// library indices that may be inserted at candidate i, sorted
  /// ascending (the kernel concatenates the per-buffer label groups
  /// into a capacitance-sorted run, which is only a sorted run when the
  /// indices — and therefore the widths and input loads — ascend;
  /// run_chain_dp rejects unsorted lists). Empty list = no repeater
  /// allowed there; nullptr = the whole library everywhere.
  /// RIP's stage 3 uses this to tie each REFINE repeater's bracketed
  /// widths to its own location window, which collapses the
  /// pseudo-polynomial width lattice the final DP would otherwise
  /// explore.
  const std::vector<std::vector<std::int16_t>>* allowed_buffers = nullptr;
  /// Skip building the RepeaterSolution outputs; status, widths, delays,
  /// and stats are still filled. Stat-only sweeps and the kernel bench
  /// use this so steady-state solves on a reused workspace perform zero
  /// heap allocations.
  bool reconstruct_solutions = true;
  /// Objective backend (tech/objective.hpp). nullptr = the paper's
  /// Eq. 3/4 objective (minimize total width) with bit-identical results
  /// to the pre-backend kernels. A backend reshapes the label's third
  /// dimension from total width into its affine per-net cost, may charge
  /// a fixed receiver-side delay penalty, and may forbid repeater
  /// insertion entirely (the low-swing design point). In kMinPower mode
  /// the DP then minimizes that cost subject to the target; in kMinDelay
  /// mode the cost only breaks slack ties. The derived coefficients are
  /// folded into chain_solve_key, so cached frontiers never collide
  /// across backends.
  const tech::ObjectiveBackend* backend = nullptr;
};

/// Label-count statistics (for the scaling benchmarks and the kernel
/// bench). All fields are a deterministic function of the solver inputs
/// except `workspace_reuses`, which reports how warm the workspace was.
struct DpStats {
  std::size_t labels_created = 0;   ///< labels materialized over the sweep
  std::size_t labels_peak = 0;      ///< largest pruned set at any position
  std::size_t positions = 0;        ///< candidate count
  std::size_t labels_pruned = 0;    ///< labels removed by dominance pruning
  std::size_t arena_peak = 0;       ///< reconstruction-arena entries kept
  /// Solves this workspace had already served before this one (the
  /// arena-reuse observability counter; 0 = cold workspace).
  std::size_t workspace_reuses = 0;

  /// Fraction of created labels that pruning discarded.
  double prune_ratio() const {
    return labels_created == 0
               ? 0.0
               : static_cast<double>(labels_pruned) /
                     static_cast<double>(labels_created);
  }
};

/// Result of a DP run.
struct ChainDpResult {
  Status status = Status::kInfeasible;
  /// Min-power (or min-delay) solution; empty when infeasible.
  net::RepeaterSolution solution;
  /// Delay of `solution` per the DP's Elmore bookkeeping [fs], including
  /// any backend receiver penalty.
  double delay_fs = 0;
  /// Total repeater width of `solution` [u].
  double total_width_u = 0;
  /// Objective cost of `solution` under the active backend. Equals
  /// total_width_u on the identity objective (backend == nullptr or
  /// Paper2005Backend); 0 when infeasible.
  double objective_cost = 0;
  /// The minimum-delay labeling found during the same sweep; populated in
  /// kMinPower mode even when infeasible (best-effort diagnostics).
  net::RepeaterSolution min_delay_solution;
  double min_delay_fs = 0;
  DpStats stats;
};

/// Run the chain DP. Candidate positions must be sorted ascending and lie
/// strictly inside (0, L); illegal positions (inside forbidden zones) are
/// rejected with rip::Error — generate candidates with
/// net::uniform_candidates / net::window_candidates.
///
/// The first overload solves on this thread's Workspace::local(); the
/// second reuses the caller's workspace (its prior contents never affect
/// the result — only how much memory is already warm).
ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options);
ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options, Workspace& ws);

// ---------------------------------------------------------------------------
// Target-independent frontier solves (the solve-cache substrate)
// ---------------------------------------------------------------------------
//
// The sweep carries q *relative to the timing target*: the seed label
// starts at q = 0 in both modes and every update subtracts terms that
// depend only on C, never on q itself. The swept frontier is therefore a
// pure function of (net, device, library, candidates, mode,
// allowed_buffers) — the timing target enters only in the final label
// selection, as `q_rel + target >= -tolerance`. That is what makes a
// solved frontier reusable across targets: caching it turns every
// subsequent target on the same net into an O(frontier) selection walk.

/// A completed frontier solve: the post-driver label arrays plus the
/// reconstruction arena, detached from any workspace. `q_fs[i]` is label
/// i's *target-relative* final slack (driver gate already applied);
/// feasibility at a target is `q_fs[i] + target >= -tolerance` and the
/// realized delay is `-q_fs[i]`.
struct ChainFrontierSolve {
  std::vector<double> q_fs;
  /// Objective value per label: total repeater width on the identity
  /// objective, the backend's affine cost otherwise (see identity_cost).
  std::vector<double> width_u;
  std::vector<std::int16_t> count;    ///< repeater count per label
  std::vector<std::int32_t> node;     ///< arena node per label (-1 = none)
  std::vector<std::int32_t> a_parent; ///< reconstruction arena
  std::vector<std::int32_t> a_pos;
  std::vector<std::int16_t> a_buffer;
  /// Stats of the solve that built this frontier. `workspace_reuses` is
  /// canonicalized to 0: a cached frontier has no meaningful warmth.
  DpStats stats;
  /// True when width_u holds plain total widths (identity objective).
  /// select_from_frontier uses this to decide whether total_width_u can
  /// be read off the label or must be re-summed from the arena.
  bool identity_cost = true;

  std::size_t size() const { return q_fs.size(); }
  /// Approximate retained footprint, for the cache's byte accounting.
  std::size_t bytes() const;
};

/// Canonical cache key: hashes everything `solve_chain_frontier` reads —
/// net geometry (segments, zones, terminal widths), device, library
/// widths, candidate positions, mode, allowed_buffers, and (when a
/// backend is set) the backend fingerprint plus its derived per-net cost
/// coefficients — and excludes
/// the selection-time knobs (timing target, slack tolerance,
/// reconstruct_solutions). Two calls with equal keys produce bit-identical
/// frontiers; the cache compares by hash only (see util/hash.hpp for the
/// collision trade).
std::uint64_t chain_solve_key(const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const RepeaterLibrary& library,
                              const std::vector<double>& candidates_um,
                              const ChainDpOptions& options);

/// Abstract frontier cache consulted by run_chain_dp_cached. The concrete
/// sharded LRU implementation lives in eval/solve_cache.hpp (the dp layer
/// stays dependency-free). Implementations must be thread-safe.
class ChainSolveCache {
 public:
  virtual ~ChainSolveCache() = default;
  /// Returns the cached solve for `key`, or nullptr on miss.
  virtual std::shared_ptr<const ChainFrontierSolve> lookup(
      std::uint64_t key) = 0;
  /// Inserts `solve` under `key` and returns the stored entry. If another
  /// thread raced the same key in first, the *existing* entry is returned
  /// (equal keys mean bit-identical frontiers, so either copy is correct —
  /// but callers must select from the returned entry so every caller
  /// answers from the same arrays).
  virtual std::shared_ptr<const ChainFrontierSolve> insert(
      std::uint64_t key, ChainFrontierSolve solve) = 0;
};

/// Run the full sweep and return the detached frontier (no selection).
/// Validates inputs like run_chain_dp except that no timing target is
/// required — the frontier is target-independent.
ChainFrontierSolve solve_chain_frontier(const net::Net& net,
                                        const tech::RepeaterDevice& device,
                                        const RepeaterLibrary& library,
                                        const std::vector<double>& candidates_um,
                                        const ChainDpOptions& options,
                                        Workspace& ws);

/// Answer one target from a solved frontier: feasibility scan, min-width
/// (or max-slack) label selection, and solution reconstruction. Runs the
/// exact same arithmetic as the tail of run_chain_dp on the exact same
/// label arrays, so a cache hit is bit-identical to a cold solve.
ChainDpResult select_from_frontier(const ChainFrontierSolve& solve,
                                   const RepeaterLibrary& library,
                                   const std::vector<double>& candidates_um,
                                   const ChainDpOptions& options);

/// run_chain_dp with an optional frontier cache. `cache == nullptr`
/// degrades to plain run_chain_dp. On a miss the frontier is solved into
/// `ws`, copied into the cache, and the result selected from the stored
/// entry; on a hit the workspace is untouched and only the selection walk
/// runs. Results are bit-identical to the uncached path in every field
/// except stats.workspace_reuses (cached stats report 0 warmth).
ChainDpResult run_chain_dp_cached(const net::Net& net,
                                  const tech::RepeaterDevice& device,
                                  const RepeaterLibrary& library,
                                  const std::vector<double>& candidates_um,
                                  const ChainDpOptions& options, Workspace& ws,
                                  ChainSolveCache* cache);

// ---------------------------------------------------------------------------
// Incremental suffix re-solve
// ---------------------------------------------------------------------------
//
// The sweep runs receiver -> driver, so a checkpoint taken after the last
// k candidates answers any edit that only changes the net *upstream* of
// those candidates (moved/added/removed candidate positions, a different
// driver width, rerouted upstream segments): reload the checkpoint and
// sweep only the remaining prefix. `suffix_key` fingerprints everything
// the checkpointed labels depend on — the suffix candidates, downstream
// geometry, receiver width, device, library, mode — and chain_dp_resume
// refuses a prefix whose fingerprint does not match the new query, so a
// stale checkpoint fails loudly instead of returning a wrong frontier.

/// Mid-sweep checkpoint after processing the last `suffix_candidates`
/// candidate positions (receiver side). Detached from any workspace.
struct ChainPrefix {
  std::size_t total_candidates = 0;   ///< candidate count when captured
  std::size_t suffix_candidates = 0;  ///< trailing candidates baked in
  double downstream_pos_um = 0;       ///< sweep position of the checkpoint
  ChainFrontier frontier;             ///< pre-driver label set
  std::vector<std::int32_t> a_parent;
  std::vector<std::int32_t> a_pos;
  std::vector<std::int16_t> a_buffer;
  DpStats stats;                      ///< sweep stats accumulated so far
  std::uint64_t suffix_key = 0;       ///< consistency fingerprint
};

/// Sweep only the last `suffix_candidates` positions and capture the
/// checkpoint. `suffix_candidates` may be 0 (checkpoint = seed label) up
/// to candidates_um.size() (everything but the driver leg baked in).
ChainPrefix chain_dp_prefix(const net::Net& net,
                            const tech::RepeaterDevice& device,
                            const RepeaterLibrary& library,
                            const std::vector<double>& candidates_um,
                            const ChainDpOptions& options,
                            std::size_t suffix_candidates, Workspace& ws);

/// Resume from `prefix` against a (possibly edited) query whose trailing
/// `prefix.suffix_candidates` candidates and downstream geometry are
/// unchanged: sweeps only the remaining prefix candidates and finishes at
/// the driver. Bit-identical to a full run_chain_dp on the same inputs.
/// Throws rip::Error if the prefix's fingerprint does not match.
ChainDpResult chain_dp_resume(const ChainPrefix& prefix, const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const RepeaterLibrary& library,
                              const std::vector<double>& candidates_um,
                              const ChainDpOptions& options, Workspace& ws);

}  // namespace rip::dp
