#pragma once

/// @file chain_dp.hpp
/// Dynamic-programming repeater insertion on a two-pin chain.
///
/// This is the engine behind both the Lillis-style low-power baseline
/// ([14] in the paper) and stages 1 and 3 of Algorithm RIP. It sweeps the
/// candidate locations from the receiver toward the driver, carrying a
/// pruned set of labels (downstream capacitance C, required arrival time
/// q, downstream repeater width p); at each candidate it may insert any
/// repeater of the library.
///
/// Two modes:
///  - kMinPower: minimize total repeater width subject to the timing
///    target (the LPRI problem). Pseudo-polynomial: label count grows
///    with library granularity, which is exactly the cost the paper's
///    hybrid scheme attacks.
///  - kMinDelay: classic van Ginneken maximum-slack recursion, used to
///    compute tau_min for setting timing targets.
///
/// The kernel is allocation-free in steady state: all label storage is
/// structure-of-arrays inside a reusable dp::Workspace (workspace.hpp),
/// wire propagation across a candidate interval is a precomputed affine
/// map `q -= R_tot*C + K; C += C_tot` applied to the contiguous frontier,
/// and dominance pruning runs over a sorted flat-vector Pareto staircase.

#include <cstddef>
#include <vector>

#include "dp/library.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::dp {

class Workspace;

/// Optimization objective.
enum class Mode {
  kMinPower,  ///< min total width subject to delay <= timing target
  kMinDelay,  ///< min delay (timing target ignored)
};

/// Outcome of a DP run.
enum class Status {
  kOptimal,     ///< a feasible solution was found (always, in kMinDelay)
  kInfeasible,  ///< no feasible labeling meets the target (kMinPower)
};

/// Engine options.
struct ChainDpOptions {
  Mode mode = Mode::kMinPower;
  double timing_target_fs = 0;  ///< required in kMinPower mode
  /// Feasibility slack tolerance [fs]; labels with q_final >= -tolerance
  /// are accepted (guards against float round-off at the boundary).
  double slack_tolerance_fs = 1e-6;
  /// Optional per-candidate restriction: allowed_buffers[i] lists the
  /// library indices that may be inserted at candidate i, sorted
  /// ascending (the kernel concatenates the per-buffer label groups
  /// into a capacitance-sorted run, which is only a sorted run when the
  /// indices — and therefore the widths and input loads — ascend;
  /// run_chain_dp rejects unsorted lists). Empty list = no repeater
  /// allowed there; nullptr = the whole library everywhere.
  /// RIP's stage 3 uses this to tie each REFINE repeater's bracketed
  /// widths to its own location window, which collapses the
  /// pseudo-polynomial width lattice the final DP would otherwise
  /// explore.
  const std::vector<std::vector<std::int16_t>>* allowed_buffers = nullptr;
  /// Skip building the RepeaterSolution outputs; status, widths, delays,
  /// and stats are still filled. Stat-only sweeps and the kernel bench
  /// use this so steady-state solves on a reused workspace perform zero
  /// heap allocations.
  bool reconstruct_solutions = true;
};

/// Label-count statistics (for the scaling benchmarks and the kernel
/// bench). All fields are a deterministic function of the solver inputs
/// except `workspace_reuses`, which reports how warm the workspace was.
struct DpStats {
  std::size_t labels_created = 0;   ///< labels materialized over the sweep
  std::size_t labels_peak = 0;      ///< largest pruned set at any position
  std::size_t positions = 0;        ///< candidate count
  std::size_t labels_pruned = 0;    ///< labels removed by dominance pruning
  std::size_t arena_peak = 0;       ///< reconstruction-arena entries kept
  /// Solves this workspace had already served before this one (the
  /// arena-reuse observability counter; 0 = cold workspace).
  std::size_t workspace_reuses = 0;

  /// Fraction of created labels that pruning discarded.
  double prune_ratio() const {
    return labels_created == 0
               ? 0.0
               : static_cast<double>(labels_pruned) /
                     static_cast<double>(labels_created);
  }
};

/// Result of a DP run.
struct ChainDpResult {
  Status status = Status::kInfeasible;
  /// Min-power (or min-delay) solution; empty when infeasible.
  net::RepeaterSolution solution;
  /// Delay of `solution` per the DP's Elmore bookkeeping [fs].
  double delay_fs = 0;
  /// Total repeater width of `solution` [u].
  double total_width_u = 0;
  /// The minimum-delay labeling found during the same sweep; populated in
  /// kMinPower mode even when infeasible (best-effort diagnostics).
  net::RepeaterSolution min_delay_solution;
  double min_delay_fs = 0;
  DpStats stats;
};

/// Run the chain DP. Candidate positions must be sorted ascending and lie
/// strictly inside (0, L); illegal positions (inside forbidden zones) are
/// rejected with rip::Error — generate candidates with
/// net::uniform_candidates / net::window_candidates.
///
/// The first overload solves on this thread's Workspace::local(); the
/// second reuses the caller's workspace (its prior contents never affect
/// the result — only how much memory is already warm).
ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options);
ChainDpResult run_chain_dp(const net::Net& net,
                           const tech::RepeaterDevice& device,
                           const RepeaterLibrary& library,
                           const std::vector<double>& candidates_um,
                           const ChainDpOptions& options, Workspace& ws);

}  // namespace rip::dp
