#include "dp/pareto.hpp"

#include <algorithm>

namespace rip::dp {

bool dominates(const Label& a, const Label& b, bool use_width) {
  if (a.cap_ff > b.cap_ff) return false;
  if (a.q_fs < b.q_fs) return false;
  if (use_width && a.width_u > b.width_u) return false;
  return true;
}

bool FlatFrontier::try_insert(double q_fs, double width_u) {
  // First staircase point with q' >= q; if its width is no larger, the
  // candidate is dominated.
  const std::size_t pos = static_cast<std::size_t>(
      std::lower_bound(q_.begin(), q_.end(), q_fs) - q_.begin());
  if (pos < q_.size() && w_[pos] <= width_u) return false;

  // The new point dominates the points with q' <= q and width' >= width.
  // Widths ascend with q, so those are exactly the contiguous run
  // [lo, pos) — plus an exact-q entry at pos (its width must be larger,
  // or we would have pruned above).
  std::size_t hi = pos;
  if (hi < q_.size() && q_[hi] == q_fs) ++hi;
  const std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(w_.begin(), w_.begin() + static_cast<std::ptrdiff_t>(pos),
                       width_u) -
      w_.begin());
  if (lo < hi) {
    // Overwrite the first evicted slot, splice out the rest.
    q_[lo] = q_fs;
    w_[lo] = width_u;
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
             q_.begin() + static_cast<std::ptrdiff_t>(hi));
    w_.erase(w_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
             w_.begin() + static_cast<std::ptrdiff_t>(hi));
  } else {
    q_.insert(q_.begin() + static_cast<std::ptrdiff_t>(lo), q_fs);
    w_.insert(w_.begin() + static_cast<std::ptrdiff_t>(lo), width_u);
  }
  return true;
}

void prune_dominated(std::vector<Label>& labels, bool use_width) {
  thread_local FlatFrontier frontier;
  prune_dominated(labels, use_width, frontier);
}

void prune_dominated(std::vector<Label>& labels, bool use_width,
                     FlatFrontier& frontier) {
  if (labels.size() <= 1) return;
  // Sort by C ascending; ties by q descending, then width ascending.
  // After this, a label can only be dominated by one that precedes it.
  std::sort(labels.begin(), labels.end(), [&](const Label& a, const Label& b) {
    if (a.cap_ff != b.cap_ff) return a.cap_ff < b.cap_ff;
    if (a.q_fs != b.q_fs) return a.q_fs > b.q_fs;
    return a.width_u < b.width_u;
  });

  // Compact survivors toward the front in place; kept <= i always, so
  // the write never clobbers an unread label.
  std::size_t kept = 0;
  if (!use_width) {
    // 2-D: keep a label iff its q strictly exceeds the best q seen.
    double best_q = -1e300;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i].q_fs > best_q) {
        best_q = labels[i].q_fs;
        if (kept != i) labels[kept] = labels[i];
        ++kept;
      }
    }
  } else {
    // 3-D: a label survives iff the (q, width) staircase over all labels
    // seen so far (all of which have C <= current C) does not dominate it.
    frontier.clear();
    frontier.reserve(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (frontier.try_insert(labels[i].q_fs, labels[i].width_u)) {
        if (kept != i) labels[kept] = labels[i];
        ++kept;
      }
    }
  }
  labels.resize(kept);
}

}  // namespace rip::dp
