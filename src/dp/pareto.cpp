#include "dp/pareto.hpp"

#include <algorithm>
#include <map>

namespace rip::dp {

bool dominates(const Label& a, const Label& b, bool use_width) {
  if (a.cap_ff > b.cap_ff) return false;
  if (a.q_fs < b.q_fs) return false;
  if (use_width && a.width_u > b.width_u) return false;
  return true;
}

void prune_dominated(std::vector<Label>& labels, bool use_width) {
  if (labels.size() <= 1) return;
  // Sort by C ascending; ties by q descending, then width ascending.
  // After this, a label can only be dominated by one that precedes it.
  std::sort(labels.begin(), labels.end(), [&](const Label& a, const Label& b) {
    if (a.cap_ff != b.cap_ff) return a.cap_ff < b.cap_ff;
    if (a.q_fs != b.q_fs) return a.q_fs > b.q_fs;
    return a.width_u < b.width_u;
  });

  std::vector<Label> kept;
  kept.reserve(labels.size());

  if (!use_width) {
    // 2-D: keep a label iff its q strictly exceeds the best q seen.
    double best_q = -1e300;
    for (const Label& l : labels) {
      if (l.q_fs > best_q) {
        kept.push_back(l);
        best_q = l.q_fs;
      }
    }
  } else {
    // 3-D: maintain the staircase frontier of (q, width) over all labels
    // seen so far (all of which have C <= current C). A new label is
    // dominated iff some seen label has q' >= q and width' <= width.
    // The frontier keeps only points not dominated by another seen point,
    // so ordered by q ascending the widths are strictly ascending.
    std::map<double, double> frontier;  // q -> width
    for (const Label& l : labels) {
      auto it = frontier.lower_bound(l.q_fs);  // first q' >= q
      if (it != frontier.end() && it->second <= l.width_u) {
        continue;  // dominated
      }
      kept.push_back(l);
      // Insert (q, width); drop frontier points with q' <= q and
      // width' >= width, which the new point dominates. That includes an
      // exact-q entry (its width must be larger, or we'd have pruned).
      if (it != frontier.end() && it->first == l.q_fs) {
        it = frontier.erase(it);
      }
      while (it != frontier.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= l.width_u) {
          it = frontier.erase(prev);
        } else {
          break;
        }
      }
      frontier.emplace(l.q_fs, l.width_u);
    }
  }
  labels = std::move(kept);
}

}  // namespace rip::dp
