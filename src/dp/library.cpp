#include "dp/library.hpp"

#include <algorithm>
#include <cmath>

#include "tech/objective.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"

namespace rip::dp {

RepeaterLibrary::RepeaterLibrary(std::vector<double> widths_u)
    : widths_u_(std::move(widths_u)) {
  RIP_REQUIRE(!widths_u_.empty(), "repeater library must not be empty");
  for (const double w : widths_u_)
    RIP_REQUIRE(w > 0, "library widths must be positive");
  std::sort(widths_u_.begin(), widths_u_.end());
  constexpr double kDedupTolU = 1e-9;
  widths_u_.erase(std::unique(widths_u_.begin(), widths_u_.end(),
                              [](double a, double b) {
                                return std::abs(a - b) < kDedupTolU;
                              }),
                  widths_u_.end());
}

double RepeaterLibrary::round_to_library(double w) const {
  auto it = std::lower_bound(widths_u_.begin(), widths_u_.end(), w);
  if (it == widths_u_.end()) return widths_u_.back();
  if (it == widths_u_.begin()) return widths_u_.front();
  const double hi = *it;
  const double lo = *(it - 1);
  return (w - lo < hi - w) ? lo : hi;
}

void RepeaterLibrary::fill_device_terms(const tech::RepeaterDevice& device,
                                        std::vector<double>& load_ff,
                                        std::vector<double>& rs_over_w) const {
  const std::size_t n = widths_u_.size();
  load_ff.resize(n);
  rs_over_w.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    load_ff[b] = device.co_ff * widths_u_[b];
    rs_over_w[b] = device.rs_ohm / widths_u_[b];
  }
}

void RepeaterLibrary::fill_cost_terms(const tech::ChainCost& cost,
                                      std::vector<double>& cost_u) const {
  if (cost.width_weight == 1.0 && cost.per_repeater == 0.0) {
    // Identity objective: the cost table must be bit-equal to the width
    // table (1.0 * w + 0.0 is exact in IEEE, but a verbatim copy states
    // the intent).
    cost_u.assign(widths_u_.begin(), widths_u_.end());
    return;
  }
  const std::size_t n = widths_u_.size();
  cost_u.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    cost_u[b] = cost.width_weight * widths_u_[b] + cost.per_repeater;
  }
}

RepeaterLibrary RepeaterLibrary::uniform(double min_width_u,
                                         double granularity_u, int count) {
  RIP_REQUIRE(min_width_u > 0, "library min width must be positive");
  RIP_REQUIRE(granularity_u > 0, "library granularity must be positive");
  RIP_REQUIRE(count >= 1, "library must have at least one width");
  std::vector<double> widths;
  widths.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) widths.push_back(min_width_u + i * granularity_u);
  return RepeaterLibrary(std::move(widths));
}

RepeaterLibrary RepeaterLibrary::range(double min_width_u, double max_width_u,
                                       double granularity_u) {
  RIP_REQUIRE(granularity_u > 0, "library granularity must be positive");
  RIP_REQUIRE(min_width_u > 0 && min_width_u <= max_width_u,
              "library width range out of order");
  std::vector<double> widths;
  double w = std::ceil(min_width_u / granularity_u - 1e-12) * granularity_u;
  if (w < min_width_u) w = min_width_u;
  for (; w <= max_width_u + 1e-12; w += granularity_u) widths.push_back(w);
  RIP_REQUIRE(!widths.empty(),
              "width range contains no multiple of the granularity");
  return RepeaterLibrary(std::move(widths));
}

RepeaterLibrary RepeaterLibrary::from_rounding(
    const std::vector<double>& continuous, double granularity_u,
    double min_width_u, double max_width_u) {
  RIP_REQUIRE(!continuous.empty(), "no continuous widths to round");
  RIP_REQUIRE(granularity_u > 0, "granularity must be positive");
  RIP_REQUIRE(min_width_u > 0 && min_width_u <= max_width_u,
              "width bounds out of order");
  std::vector<double> widths;
  widths.reserve(2 * continuous.size());
  for (const double w : continuous) {
    const double lo = std::floor(w / granularity_u) * granularity_u;
    const double hi = std::ceil(w / granularity_u) * granularity_u;
    widths.push_back(std::clamp(lo, min_width_u, max_width_u));
    widths.push_back(std::clamp(hi, min_width_u, max_width_u));
  }
  return RepeaterLibrary(std::move(widths));
}

}  // namespace rip::dp
