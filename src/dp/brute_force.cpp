#include "dp/brute_force.hpp"

#include <cmath>
#include <limits>

#include "dp/workspace.hpp"
#include "rc/buffered_chain.hpp"
#include "util/error.hpp"

namespace rip::dp {

BruteForceResult brute_force(const net::Net& net,
                             const tech::RepeaterDevice& device,
                             const RepeaterLibrary& library,
                             const std::vector<double>& candidates_um,
                             double timing_target_fs,
                             std::size_t max_assignments) {
  return brute_force(net, device, library, candidates_um, timing_target_fs,
                     max_assignments, Workspace::local());
}

BruteForceResult brute_force(const net::Net& net,
                             const tech::RepeaterDevice& device,
                             const RepeaterLibrary& library,
                             const std::vector<double>& candidates_um,
                             double timing_target_fs,
                             std::size_t max_assignments, Workspace& ws) {
  const std::size_t choices = library.size() + 1;  // widths or "no repeater"
  double estimate = 1.0;
  for (std::size_t i = 0; i < candidates_um.size(); ++i)
    estimate *= static_cast<double>(choices);
  RIP_REQUIRE(estimate <= static_cast<double>(max_assignments),
              "brute force would enumerate too many assignments");

  BruteForceResult result;
  result.min_delay_fs = std::numeric_limits<double>::infinity();
  double best_width = std::numeric_limits<double>::infinity();
  double best_delay_at_width = std::numeric_limits<double>::infinity();

  // Mixed-radix counter over candidates; digit 0 = no repeater, digit k
  // = library width k-1. The expansion buffer lives in the workspace so
  // the enumeration loop reuses one capacity across assignments.
  std::vector<std::size_t> digits(candidates_um.size(), 0);
  ws.repeaters.reserve(candidates_um.size());
  while (true) {
    ws.repeaters.clear();
    for (std::size_t i = 0; i < digits.size(); ++i) {
      if (digits[i] > 0) {
        ws.repeaters.push_back(net::Repeater{
            candidates_um[i], library.widths_u()[digits[i] - 1]});
      }
    }
    net::RepeaterSolution solution(ws.repeaters);
    const double delay = rc::elmore_delay_fs(net, solution, device);
    const double width = solution.total_width_u();
    ++result.assignments;

    if (delay < result.min_delay_fs) {
      result.min_delay_fs = delay;
      result.min_delay_solution = solution;
    }
    if (delay <= timing_target_fs &&
        (width < best_width ||
         (width == best_width && delay < best_delay_at_width))) {
      best_width = width;
      best_delay_at_width = delay;
      result.feasible = true;
      result.solution = solution;
      result.total_width_u = width;
      result.delay_fs = delay;
    }

    // Advance the counter.
    std::size_t i = 0;
    for (; i < digits.size(); ++i) {
      if (++digits[i] < choices) break;
      digits[i] = 0;
    }
    if (i == digits.size()) break;
    if (digits.empty()) break;
  }
  return result;
}

}  // namespace rip::dp
