#pragma once

/// @file sharded_sweep.hpp
/// The generic sharded-sweep surface behind Table 1, Table 2 and
/// Fig. 7. All three experiments share one shape: two flat case spaces
/// (RIP solves and DP-baseline solves), each split round-robin across
/// processes (eval::shard_case_indices) and fanned out over the
/// persistent scheduler within a process; the reduction runs only at
/// merge time, serially, in the original input order — so any
/// (shard_count, jobs) combination reproduces the serial bits.
///
/// run_sweep_slice solves one shard's slice of one flat case space;
/// reassemble_sweep_shards validates a full set of shards and scatters
/// their slices back into the full case spaces. The per-table runners
/// (eval/experiments.cpp) are thin adapters over these two templates:
/// they own only the case-space geometry (how a flat index decodes to
/// (net, granularity, target)), the solve body, and the reduction.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "eval/parallel.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

/// Solve this shard's round-robin slice of a `case_count`-sized flat
/// case space, fanning the slice out over `jobs` workers. `solve` maps
/// a *global* flat index to an outcome; it runs on scheduler worker
/// threads (use dp::Workspace::local() inside), must not touch shared
/// mutable state, and each call writes only its own slot — which is
/// what keeps every (jobs, shard) combination bit-identical to the
/// serial loop. Returns the slice's outcomes in ascending global order.
template <class Outcome, class Solve>
std::vector<Outcome> run_sweep_slice(std::size_t case_count, int jobs,
                                     int shard_index, int shard_count,
                                     Solve&& solve) {
  const auto mine = shard_case_indices(case_count, shard_index, shard_count);
  std::vector<Outcome> out(mine.size());
  parallel_for_indexed(mine.size(), jobs,
                       [&](std::size_t j) { out[j] = solve(mine[j]); });
  return out;
}

/// Validate a complete set of sweep shards and scatter each shard's
/// `rip`/`dp` slices into the full-size case spaces (`rip_runs` and
/// `dp_runs`, pre-sized by the caller). A Shard must carry
/// `shard_index`, `shard_count`, and `rip`/`dp` outcome vectors.
/// `check_meta(shard)` is the experiment's own consistency check
/// (e.g. every shard saw the same workload); it should throw on
/// disagreement. Throws rip::Error if shards are missing, duplicated,
/// out of range, from different splits, or slice sizes do not match
/// the round-robin assignment.
template <class Shard, class Outcome, class CheckMeta>
void reassemble_sweep_shards(std::span<const Shard> shards,
                             std::vector<Outcome>& rip_runs,
                             std::vector<Outcome>& dp_runs,
                             CheckMeta&& check_meta) {
  RIP_REQUIRE(!shards.empty(), "merge needs at least one shard");
  const int shard_count = shards.front().shard_count;
  RIP_REQUIRE(static_cast<int>(shards.size()) == shard_count,
              "merge needs every shard of the split");
  std::vector<bool> seen(static_cast<std::size_t>(shard_count), false);
  for (const Shard& shard : shards) {
    RIP_REQUIRE(shard.shard_count == shard_count,
                "shards come from different splits");
    RIP_REQUIRE(shard.shard_index >= 0 && shard.shard_index < shard_count,
                "shard index out of range");
    RIP_REQUIRE(!seen[static_cast<std::size_t>(shard.shard_index)],
                "duplicate shard " + std::to_string(shard.shard_index));
    seen[static_cast<std::size_t>(shard.shard_index)] = true;
    check_meta(shard);
    const auto rip_mine =
        shard_case_indices(rip_runs.size(), shard.shard_index, shard_count);
    RIP_REQUIRE(shard.rip.size() == rip_mine.size(),
                "shard RIP case count mismatch");
    for (std::size_t j = 0; j < rip_mine.size(); ++j) {
      rip_runs[rip_mine[j]] = shard.rip[j];
    }
    const auto dp_mine =
        shard_case_indices(dp_runs.size(), shard.shard_index, shard_count);
    RIP_REQUIRE(shard.dp.size() == dp_mine.size(),
                "shard DP case count mismatch");
    for (std::size_t j = 0; j < dp_mine.size(); ++j) {
      dp_runs[dp_mine[j]] = shard.dp[j];
    }
  }
}

}  // namespace rip::eval
