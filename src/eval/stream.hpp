#pragma once

/// @file stream.hpp
/// The bounded-memory streaming sweep driver: pull (net, target) cases
/// incrementally from an on-disk netlist (net/netlist_io.hpp), feed
/// them through the asynchronous EvalService, and emit one CSV row per
/// case in input order — with peak memory independent of how many
/// records the file holds.
///
/// Memory model: at most `window()` records are alive at once — each
/// in-flight record owns its Net; the driver stops reading whenever the
/// window is full, blocks on the OLDEST in-flight case, writes its row,
/// and frees it before reading another record. Backpressure composes:
/// the service's own bounded queue (ServiceOptions::max_pending, from
/// StreamOptions::max_pending) throttles submission, and the reorder
/// window (sized from max_pending) bounds retained results. A
/// million-net file therefore streams at the same peak RSS as a
/// ten-thousand-net file (bench/bench_stream.cpp measures exactly
/// that ratio and fails if it drifts).
///
/// Checkpoint/resume protocol: every `checkpoint_every` processed
/// records the driver flushes the output (and the quarantine sidecar)
/// and atomically replaces the checkpoint file with
///
///     ripckpt 2
///     input_bytes  <input file size, sanity check on resume>
///     input_offset <byte offset of the first unprocessed record>
///     next_index   <index of the first unprocessed record>
///     output_bytes <output size covering exactly the processed rows>
///     errors_bytes <sidecar size covering the processed quarantines>
///     quarantined  <records quarantined so far>
///     crc32 <hex>  <CRC-32 of every preceding byte>
///
/// Durability: the temp file is fsynced before the atomic rename, and
/// the previous checkpoint is rotated to `<path>.prev` first — so a
/// kill at ANY instant (mid-temp-write, between the rotation and the
/// rename, after the rename) leaves at least one checkpoint whose CRC
/// verifies. Resume validates the CRC and degrades: a corrupt or torn
/// checkpoint falls back to `.prev`; if neither verifies, the run
/// restarts cleanly with a warning rather than trusting torn state.
/// v1 checkpoints (no CRC, no sidecar fields) are still readable.
///
/// A checkpoint cut is always a processed-record boundary: records <
/// next_index are fully accounted (a CSV row, or a quarantine row),
/// records >= next_index will be (re-)read and (re-)solved after a
/// resume. Resuming seeks the reader to input_offset, truncates the
/// output and sidecar back to their checkpointed byte counts
/// (discarding rows a killed run may have written past the last
/// checkpoint), and continues; because every solve is deterministic and
/// rows are written in input order, a resumed run's final output is
/// byte-identical to an uninterrupted run's. Solves after a crash are
/// repeated, never skipped — the protocol re-does work, it never
/// invents or loses rows.
///
/// Fault tolerance: with `errors_path` set, a record that fails —
/// malformed on disk, I/O error while reading, a solve that throws, or
/// a blown `deadline_ms` budget — is quarantined instead of aborting
/// the sweep: one row `idx,name,class,detail` goes to the sidecar
/// (class in {io, malformed, solve, deadline}) and the surviving rows
/// of the main CSV are byte-identical to an unfaulted run minus the
/// quarantined indices. Without `errors_path`, the first failure
/// propagates (the pre-quarantine behavior). InjectedCrash always
/// propagates — it simulates a process kill, which no recovery layer
/// may swallow. Transient failures are retried first per `retry`.
///
/// Rows carry only deterministic fields (no wall clock):
///     idx,name,tau_t_ns,rip_u,dp_u,impr_pct
/// Infeasible solves render as VIOL, like the sweep tables.

#include <cstdint>
#include <string>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/context.hpp"
#include "eval/service.hpp"
#include "tech/technology.hpp"

namespace rip::eval {

/// Knobs of the streaming driver.
struct StreamOptions {
  /// Worker threads of the underlying EvalService (1 = serial on the
  /// dispatcher, 0 = all hardware threads).
  int jobs = 1;
  /// Bounded-queue backpressure of the service AND the sizing input of
  /// the reorder window (window = max(2 * max_pending, 16); 0 =
  /// unbounded queue with the default 256-record window).
  std::size_t max_pending = 64;
  /// Write a checkpoint every this many completed rows (0 = never).
  /// Requires checkpoint_path when non-zero.
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint file location; the temp file is `checkpoint_path +
  /// ".tmp"` in the same directory so the rename is atomic.
  std::string checkpoint_path;
  /// Resume from checkpoint_path instead of starting over. The
  /// checkpoint must match the input file (size check); the output file
  /// is truncated back to the checkpointed byte count.
  bool resume = false;
  /// Test/fault-injection hook: stop cleanly after this many rows have
  /// been written THIS run (0 = run to EOF) — without writing a final
  /// checkpoint, exactly like a kill would. The checkpoint on disk then
  /// trails the output, which is what resume must cope with.
  std::uint64_t stop_after = 0;
  /// Target for records that carry none (tau_t_fs == 0 in the file):
  /// default_target_x * tau_min, with tau_min solved per net inside the
  /// worker (expensive — prefer stored targets for big files).
  double default_target_x = 1.5;
  /// Quarantine sidecar CSV (`idx,name,class,detail`). Non-empty
  /// enables quarantine: failed records become sidecar rows and the
  /// sweep continues. Empty (default) keeps fail-fast behavior.
  std::string errors_path;
  /// Cooperative per-case deadline in milliseconds (0 = none), checked
  /// between solve stages on the worker. With quarantine enabled a
  /// blown budget quarantines the record with class "deadline".
  double deadline_ms = 0;
  /// Transient-failure retry policy of the underlying EvalService:
  /// util::TransientError (flaky I/O, injected 'err' faults) re-runs
  /// the case with deterministic backoff before it counts as failed.
  RetryPolicy retry;
  /// Solver options applied to every case.
  core::RipOptions rip;
  core::BaselineOptions baseline =
      core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  /// Ambient solve state (cache/backend); `context.workspace` must stay
  /// nullptr — cases evaluate on service workers' thread-local
  /// workspaces.
  SolveContext context;
};

/// Outcome of one run_stream call.
struct StreamResult {
  /// Rows written by THIS run (excludes rows restored via resume and
  /// quarantined records).
  std::uint64_t rows_written = 0;
  /// Records quarantined to the errors sidecar by THIS run.
  std::uint64_t rows_quarantined = 0;
  /// Record index the run started at (0, or the checkpoint's
  /// next_index — rows written plus records quarantined before it).
  std::uint64_t resumed_from = 0;
  /// Total records now accounted for: resumed_from + rows_written +
  /// rows_quarantined. With no quarantined records this is exactly the
  /// CSV row count on disk.
  std::uint64_t rows_total = 0;
  /// Records quarantined in total, including runs before a resume.
  std::uint64_t quarantined_total = 0;
  /// True if the input was drained to EOF (false = stop_after fired).
  bool finished = false;
  /// Checkpoints written by this run.
  std::uint64_t checkpoints_written = 0;
  double elapsed_s = 0;
};

/// Stream every record of `input_path` (text or binary netlist) through
/// the evaluation service and write one CSV row per record to
/// `output_path`. See the file comment for the memory and checkpoint
/// contracts. Throws rip::Error (netlist failures arrive as
/// net::NetlistError with file + record context).
StreamResult run_stream(const tech::Technology& tech,
                        const std::string& input_path,
                        const std::string& output_path,
                        const StreamOptions& options = {});

}  // namespace rip::eval
