#pragma once

/// @file stream.hpp
/// The bounded-memory streaming sweep driver: pull (net, target) cases
/// incrementally from an on-disk netlist (net/netlist_io.hpp), feed
/// them through the asynchronous EvalService, and emit one CSV row per
/// case in input order — with peak memory independent of how many
/// records the file holds.
///
/// Memory model: at most `window()` records are alive at once — each
/// in-flight record owns its Net; the driver stops reading whenever the
/// window is full, blocks on the OLDEST in-flight case, writes its row,
/// and frees it before reading another record. Backpressure composes:
/// the service's own bounded queue (ServiceOptions::max_pending, from
/// StreamOptions::max_pending) throttles submission, and the reorder
/// window (sized from max_pending) bounds retained results. A
/// million-net file therefore streams at the same peak RSS as a
/// ten-thousand-net file (bench/bench_stream.cpp measures exactly
/// that ratio and fails if it drifts).
///
/// Checkpoint/resume protocol: every `checkpoint_every` written rows
/// the driver flushes the output and atomically replaces the
/// checkpoint file (write temp + rename) with
///
///     ripckpt 1
///     input_bytes  <input file size, sanity check on resume>
///     input_offset <byte offset of the first unwritten record>
///     next_index   <index of the first unwritten record>
///     output_bytes <output size covering exactly that many rows>
///
/// A checkpoint cut is always a written-row boundary: rows < next_index
/// are fully on disk, records >= next_index will be (re-)read and
/// (re-)solved after a resume. Resuming seeks the reader to
/// input_offset, truncates the output back to output_bytes (discarding
/// rows a killed run may have written past the last checkpoint), and
/// continues; because every solve is deterministic and rows are written
/// in input order, a resumed run's final output is byte-identical to an
/// uninterrupted run's. Solves after a crash are repeated, never
/// skipped — the protocol re-does work, it never invents or loses rows.
///
/// Rows carry only deterministic fields (no wall clock):
///     idx,name,tau_t_ns,rip_u,dp_u,impr_pct
/// Infeasible solves render as VIOL, like the sweep tables.

#include <cstdint>
#include <string>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/context.hpp"
#include "tech/technology.hpp"

namespace rip::eval {

/// Knobs of the streaming driver.
struct StreamOptions {
  /// Worker threads of the underlying EvalService (1 = serial on the
  /// dispatcher, 0 = all hardware threads).
  int jobs = 1;
  /// Bounded-queue backpressure of the service AND the sizing input of
  /// the reorder window (window = max(2 * max_pending, 16); 0 =
  /// unbounded queue with the default 256-record window).
  std::size_t max_pending = 64;
  /// Write a checkpoint every this many completed rows (0 = never).
  /// Requires checkpoint_path when non-zero.
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint file location; the temp file is `checkpoint_path +
  /// ".tmp"` in the same directory so the rename is atomic.
  std::string checkpoint_path;
  /// Resume from checkpoint_path instead of starting over. The
  /// checkpoint must match the input file (size check); the output file
  /// is truncated back to the checkpointed byte count.
  bool resume = false;
  /// Test/fault-injection hook: stop cleanly after this many rows have
  /// been written THIS run (0 = run to EOF) — without writing a final
  /// checkpoint, exactly like a kill would. The checkpoint on disk then
  /// trails the output, which is what resume must cope with.
  std::uint64_t stop_after = 0;
  /// Target for records that carry none (tau_t_fs == 0 in the file):
  /// default_target_x * tau_min, with tau_min solved per net inside the
  /// worker (expensive — prefer stored targets for big files).
  double default_target_x = 1.5;
  /// Solver options applied to every case.
  core::RipOptions rip;
  core::BaselineOptions baseline =
      core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  /// Ambient solve state (cache/backend); `context.workspace` must stay
  /// nullptr — cases evaluate on service workers' thread-local
  /// workspaces.
  SolveContext context;
};

/// Outcome of one run_stream call.
struct StreamResult {
  /// Rows written by THIS run (excludes rows restored via resume).
  std::uint64_t rows_written = 0;
  /// Index the run started at (0, or the checkpoint's next_index).
  std::uint64_t resumed_from = 0;
  /// Total rows now on disk (resumed_from + rows_written).
  std::uint64_t rows_total = 0;
  /// True if the input was drained to EOF (false = stop_after fired).
  bool finished = false;
  /// Checkpoints written by this run.
  std::uint64_t checkpoints_written = 0;
  double elapsed_s = 0;
};

/// Stream every record of `input_path` (text or binary netlist) through
/// the evaluation service and write one CSV row per record to
/// `output_path`. See the file comment for the memory and checkpoint
/// contracts. Throws rip::Error (netlist failures arrive as
/// net::NetlistError with file + record context).
StreamResult run_stream(const tech::Technology& tech,
                        const std::string& input_path,
                        const std::string& output_path,
                        const StreamOptions& options = {});

}  // namespace rip::eval
