#pragma once

/// @file experiments.hpp
/// Runners that regenerate every table and figure of the paper's
/// evaluation (Section 6). Each returns a structured result that the
/// bench binaries print via util::Table; EXPERIMENTS.md records the
/// paper-vs-measured comparison.

#include <span>
#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/context.hpp"
#include "eval/solve_cache.hpp"
#include "eval/workload.hpp"
#include "tech/technology.hpp"
#include "util/table.hpp"

namespace rip::dp {
class Workspace;
}  // namespace rip::dp

namespace rip::eval {

/// One (net, target) comparison of RIP against a DP baseline.
struct CaseResult {
  double tau_t_fs = 0;
  bool rip_feasible = false;
  bool dp_feasible = false;
  double rip_width_u = 0;
  double dp_width_u = 0;
  double rip_runtime_s = 0;
  double dp_runtime_s = 0;
  /// (p_DP - p_RIP) / p_DP * 100; meaningful only when both feasible.
  double improvement_pct = 0;
};

/// Run RIP and one baseline on a single (net, target) case under one
/// SolveContext (eval/context.hpp): `context.workspace` is the DP arena
/// set both solvers reuse (nullptr = the calling thread's
/// dp::Workspace::local() — the path scheduler workers take, so every
/// participant of a parallel sweep reuses its own arenas case after
/// case); `context.cache` optionally shares a frontier cache between
/// the target-independent DP solves (RIP's coarse stage and the whole
/// baseline) — with it, re-running a cached net at a new target costs a
/// frontier walk instead of two DP sweeps, bit-identical to the
/// uncached path; `context.backend` selects the objective both solvers
/// minimize (nullptr = the paper's, bit-identical to before).
CaseResult run_case(const net::Net& net, const tech::Technology& tech,
                    double tau_t_fs, const core::RipOptions& rip_options,
                    const core::BaselineOptions& baseline_options,
                    const SolveContext& context = {});

// ---------------------------------------------------------------- Table 1

/// Configuration for Table 1 (power reduction for two-pin nets).
struct Table1Config {
  int net_count = 20;
  int targets_per_net = 20;
  std::uint64_t seed = 2005;
  /// Baseline library: size 10, min width 10u (paper Section 6), at each
  /// of these granularities. The first one also reports the violation
  /// count V_DP.
  std::vector<double> granularities_u = {10.0, 20.0, 40.0};
  int baseline_library_size = 10;
  double baseline_min_width_u = 10.0;
  double pitch_um = 200.0;
  core::RipOptions rip;
  /// Worker threads for the (net, target, granularity) sweep; 1 = the
  /// serial reference path, 0 = all hardware threads. Results are
  /// bit-identical at any job count (see eval/parallel.hpp).
  int jobs = 1;
  /// Objective backend every solve of the sweep minimizes; nullptr =
  /// the paper's objective (bit-identical to before backends existed).
  /// Must outlive the run; shards of one split must agree on it.
  const tech::ObjectiveBackend* backend = nullptr;
};

/// Per-granularity aggregate for one net.
struct Table1Cell {
  double delta_max_pct = 0;   ///< max improvement over feasible targets
  double delta_mean_pct = 0;  ///< mean improvement over feasible targets
  int dp_violations = 0;      ///< targets the DP could not meet
  int compared = 0;           ///< targets where both schemes were feasible
};

/// One row (one net) of Table 1.
struct Table1Row {
  std::string net_name;
  std::vector<Table1Cell> cells;  ///< one per granularity
  int rip_violations = 0;         ///< should stay 0 (paper's claim)
};

/// The full table plus the Ave row.
struct Table1Result {
  std::vector<Table1Row> rows;
  Table1Row average;
  std::vector<double> granularities_u;
};

Table1Result run_table1(const tech::Technology& tech,
                        const Table1Config& config);

/// Render in the paper's column layout.
Table to_table(const Table1Result& result);

// ------------------------------------------------- Table 1 sharding

/// The reduced per-solve record Table 1's aggregation needs. Sharded
/// runs ship these across processes instead of full solver results.
struct SolveOutcome {
  bool feasible = false;
  double width_u = 0;
};

/// One shard of the Table 1 sweep: the outcomes of the cases this
/// shard owns, in ascending global order. The RIP flat case space is
/// net x target, the DP space net x granularity x target; both are
/// split round-robin (flat index k belongs to shard k % shard_count),
/// so one giant net does not land wholesale on one shard.
struct Table1Shard {
  int shard_index = 0;
  int shard_count = 1;
  /// Full workload net names (identical in every shard — the workload
  /// is regenerated deterministically per process).
  std::vector<std::string> net_names;
  std::vector<SolveOutcome> rip;  ///< this shard's net x target cases
  std::vector<SolveOutcome> dp;   ///< this shard's net x g x target cases
};

/// Solve only this shard's slice of the Table 1 sweep. Workload
/// generation (cheap, deterministic) runs in every shard; the DP/RIP
/// solves (the actual cost) are split. run_table1(config) is exactly
/// run_table1_shard(0, 1) + merge_table1_shards, so a sharded run
/// merged over all shards is bit-identical to the unsharded table.
Table1Shard run_table1_shard(const tech::Technology& tech,
                             const Table1Config& config, int shard_index,
                             int shard_count);

/// Reassemble every shard (any order; all shards of one split must be
/// present) and run the serial input-order reduction — the same code
/// path, and therefore the same bits, as the unsharded runner.
Table1Result merge_table1_shards(const Table1Config& config,
                                 std::span<const Table1Shard> shards);

// ---------------------------------------------------------------- Table 2

/// Configuration for Table 2 (power savings vs. speedup tradeoff).
struct Table2Config {
  int net_count = 20;
  int targets_per_net = 20;
  std::uint64_t seed = 2005;
  std::vector<double> granularities_u = {40.0, 30.0, 20.0, 10.0};
  double range_min_width_u = 10.0;
  double range_max_width_u = 400.0;
  double pitch_um = 200.0;
  core::RipOptions rip;
  /// Worker threads (see Table1Config::jobs). Width/improvement columns
  /// are bit-identical at any job count; runtime columns are per-task
  /// wall clock measured inside the worker.
  int jobs = 1;
  /// Objective backend (see Table1Config::backend); nullptr = paper's.
  const tech::ObjectiveBackend* backend = nullptr;
};

/// One row (one baseline granularity) of Table 2.
struct Table2Row {
  double granularity_u = 0;
  double delta_mean_pct = 0;  ///< mean RIP improvement over the DP
  double dp_runtime_s = 0;    ///< mean DP runtime per design
  double rip_runtime_s = 0;   ///< mean RIP runtime per design
  double speedup = 0;         ///< dp_runtime / rip_runtime
  int compared = 0;
};

struct Table2Result {
  std::vector<Table2Row> rows;
};

Table2Result run_table2(const tech::Technology& tech,
                        const Table2Config& config);

Table to_table(const Table2Result& result);

// ------------------------------------------------- Table 2 sharding

/// The per-solve record Table 2's aggregation needs: feasibility and
/// width for the quality columns, plus the per-task wall clock for the
/// runtime/speedup columns (measured inside the worker, so it survives
/// sharding and parallelism).
struct TimedSolveOutcome {
  bool feasible = false;
  double width_u = 0;
  double runtime_s = 0;
};

/// One shard of the Table 2 sweep — the same round-robin split Table 1
/// got: the RIP flat case space is net x target, the DP space
/// granularity x net x target (granularity-major, matching the
/// unsharded runner's loop order); flat index k belongs to shard
/// k % shard_count.
struct Table2Shard {
  int shard_index = 0;
  int shard_count = 1;
  /// Full workload net names (identical in every shard — the workload
  /// is regenerated deterministically per process).
  std::vector<std::string> net_names;
  std::vector<TimedSolveOutcome> rip;  ///< this shard's net x target cases
  std::vector<TimedSolveOutcome> dp;   ///< this shard's g x net x target cases
};

/// Solve only this shard's slice of the Table 2 sweep. Workload
/// generation (cheap, deterministic) runs in every shard; the solves
/// are split. run_table2(config) is exactly run_table2_shard(0, 1) +
/// merge_table2_shards, so a sharded run merged over all shards is
/// bit-identical to the unsharded table (runtime columns are wall
/// clock, but remain genuine per-task measurements).
Table2Shard run_table2_shard(const tech::Technology& tech,
                             const Table2Config& config, int shard_index,
                             int shard_count);

/// Reassemble every shard (any order; all shards of one split must be
/// present) and run the serial input-order reduction — the same code
/// path, and therefore the same bits, as the unsharded runner.
Table2Result merge_table2_shards(const Table2Config& config,
                                 std::span<const Table2Shard> shards);

// ---------------------------------------------------------------- Fig. 7

/// Configuration for Fig. 7 (improvement vs. timing constraint).
struct Fig7Config {
  std::uint64_t seed = 2005;
  int net_index = 0;        ///< which workload net to sweep
  int points = 21;          ///< samples across [1.05, 2.05] * tau_min
  /// The two library granularities of Fig. 7(a) and (b).
  std::vector<double> granularities_u = {10.0, 40.0};
  int baseline_library_size = 10;
  double baseline_min_width_u = 10.0;
  double pitch_um = 200.0;
  core::RipOptions rip;
  /// Worker threads (see Table1Config::jobs).
  int jobs = 1;
  /// Objective backend (see Table1Config::backend); nullptr = paper's.
  const tech::ObjectiveBackend* backend = nullptr;
};

/// One sample of one series.
struct Fig7Point {
  double tau_t_fs = 0;
  double tau_t_over_tau_min = 0;
  bool dp_feasible = false;
  double improvement_pct = 0;  ///< meaningful only when dp_feasible
};

/// One series (one granularity).
struct Fig7Series {
  double granularity_u = 0;
  std::vector<Fig7Point> points;
};

struct Fig7Result {
  std::string net_name;
  double tau_min_fs = 0;
  std::vector<Fig7Series> series;
};

Fig7Result run_fig7(const tech::Technology& tech, const Fig7Config& config);

Table to_table(const Fig7Result& result);

// -------------------------------------------------- Fig. 7 sharding

/// One shard of the Fig. 7 sweep. The RIP flat case space is the
/// target sweep, the DP space granularity x target (granularity-major,
/// matching the unsharded runner); both split round-robin.
struct Fig7Shard {
  int shard_index = 0;
  int shard_count = 1;
  /// Swept net and its minimum delay (identical in every shard).
  std::string net_name;
  double tau_min_fs = 0;
  std::vector<SolveOutcome> rip;  ///< this shard's target cases
  std::vector<SolveOutcome> dp;   ///< this shard's g x target cases
};

/// Solve only this shard's slice of the Fig. 7 sweep. run_fig7(config)
/// is exactly run_fig7_shard(0, 1) + merge_fig7_shards.
Fig7Shard run_fig7_shard(const tech::Technology& tech,
                         const Fig7Config& config, int shard_index,
                         int shard_count);

/// Reassemble every shard and run the serial reduction — bit-identical
/// to the unsharded figure.
Fig7Result merge_fig7_shards(const Fig7Config& config,
                             std::span<const Fig7Shard> shards);

}  // namespace rip::eval
