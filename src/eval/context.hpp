#pragma once

/// @file context.hpp
/// eval::SolveContext — the one bundle of ambient solve state threaded
/// through the evaluation layer. run_case, run_cases (BatchOptions),
/// EvalService (ServiceOptions) and rip_cli all accept the same struct,
/// so adding a new piece of ambient state (as the objective backend was)
/// means one new field here instead of another trailing default on
/// every signature in the stack.
///
/// Every field is nullable and nullptr means "the default":
///   workspace == nullptr  -> the calling thread's dp::Workspace::local()
///   cache     == nullptr  -> no frontier caching
///   backend   == nullptr  -> the paper's minimum-total-width objective,
///                            bit-identical to before backends existed
///
/// The batch engines (run_cases, EvalService) evaluate on scheduler
/// worker threads and hand each participant its own thread-local
/// workspace — they reject a non-null `workspace`, which would be a
/// data race. Pass a workspace only to the single-threaded run_case.

#include <cstdint>

#include "eval/solve_cache.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"

namespace rip::dp {
class Workspace;
}  // namespace rip::dp

namespace rip::tech {
class ObjectiveBackend;
}  // namespace rip::tech

namespace rip::eval {

/// Ambient state for one or many (net, target) evaluations. Cheap to
/// copy; owns nothing. Whatever it points at must outlive every solve
/// run under it.
struct SolveContext {
  /// DP arena set both solvers of a case reuse; nullptr = the calling
  /// thread's dp::Workspace::local().
  dp::Workspace* workspace = nullptr;
  /// Shared Pareto-frontier cache consulted by the target-independent
  /// DP solves (RIP's coarse stage, the whole baseline); nullptr
  /// disables caching. Results are bit-identical with or without it.
  SolveCache* cache = nullptr;
  /// Objective backend (tech/objective.hpp) minimized by every DP solve
  /// and by RIP's stage arbitration; nullptr = the paper's objective.
  const tech::ObjectiveBackend* backend = nullptr;
  /// Cooperative per-case deadline checked between solve stages;
  /// nullptr = no deadline. A blown deadline throws DeadlineExceeded
  /// from run_case (never a partial result).
  const Deadline* deadline = nullptr;
  /// Stable identity for this case at the solve.* fault points (record
  /// index in a stream, case index in a batch), so injected faults hit
  /// the same cases at any job count. kFaultAutoKey = per-point arrival
  /// order (schedule-dependent).
  std::uint64_t fault_key = kFaultAutoKey;
};

}  // namespace rip::eval
