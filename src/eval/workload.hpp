#pragma once

/// @file workload.hpp
/// The experimental workload of Section 6: a population of random
/// two-pin nets (4-10 segments of 1000-2500 um on metal4/metal5, one
/// forbidden zone of 20-40% of the length), each designed 20 times with
/// timing targets from 1.05*tau_min to 2.05*tau_min.

#include <cstdint>
#include <vector>

#include "dp/min_delay.hpp"
#include "net/generator.hpp"
#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::eval {

/// A generated net plus its minimum achievable delay.
struct WorkloadNet {
  net::Net net;
  double tau_min_fs = 0;
};

/// Deterministic workload: `net_count` nets drawn from `config` with
/// per-net seeds derived from `seed`, each with tau_min computed via the
/// delay-mode DP (dp::min_delay). The default tau_min grid matches the
/// DP schemes' 200 um location pitch so that every scheme's target is
/// achievable on its own placement grid.
///
/// The per-net generators are split off the master seed serially, then
/// the per-net tau_min solves fan out over `jobs` worker threads
/// (util::parallel_for_indexed); any job count yields the same workload
/// bit for bit. jobs=1 is the serial path, 0 = all hardware threads.
std::vector<WorkloadNet> make_paper_workload(
    const tech::Technology& tech, int net_count = 20,
    std::uint64_t seed = 2005,
    const net::RandomNetConfig& config = {},
    const dp::MinDelayOptions& min_delay = {10.0, 400.0, 10.0, 200.0},
    int jobs = 1);

/// The paper's target sweep: `count` evenly spaced multipliers from
/// `lo_factor` to `hi_factor` (inclusive) applied to tau_min.
std::vector<double> timing_targets_fs(double tau_min_fs, int count = 20,
                                      double lo_factor = 1.05,
                                      double hi_factor = 2.05);

}  // namespace rip::eval
