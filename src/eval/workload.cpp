#include "eval/workload.hpp"

#include <optional>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

std::vector<WorkloadNet> make_paper_workload(
    const tech::Technology& tech, int net_count, std::uint64_t seed,
    const net::RandomNetConfig& config,
    const dp::MinDelayOptions& min_delay, int jobs) {
  RIP_REQUIRE(net_count >= 1, "workload needs at least one net");
  // The master stream must be consumed serially so net i's generator is
  // independent of the job count; each child stream is then on its own.
  Rng master(seed);
  std::vector<Rng> net_rngs;
  net_rngs.reserve(static_cast<std::size_t>(net_count));
  for (int i = 0; i < net_count; ++i) net_rngs.push_back(master.split());

  std::vector<std::optional<WorkloadNet>> slots(
      static_cast<std::size_t>(net_count));
  parallel_for_indexed(slots.size(), jobs, [&](std::size_t i) {
    net::Net n = net::random_net(tech, config, net_rngs[i],
                                 "net_" + std::to_string(i + 1));
    const auto md = dp::min_delay(n, tech.device(), min_delay);
    slots[i] = WorkloadNet{std::move(n), md.tau_min_fs};
  });

  std::vector<WorkloadNet> workload;
  workload.reserve(slots.size());
  for (auto& slot : slots) workload.push_back(std::move(*slot));
  return workload;
}

std::vector<double> timing_targets_fs(double tau_min_fs, int count,
                                      double lo_factor, double hi_factor) {
  RIP_REQUIRE(tau_min_fs > 0, "tau_min must be positive");
  RIP_REQUIRE(count >= 1, "need at least one target");
  RIP_REQUIRE(lo_factor > 0 && lo_factor <= hi_factor,
              "target factor range out of order");
  std::vector<double> targets;
  targets.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    targets.push_back(lo_factor * tau_min_fs);
    return targets;
  }
  const double step = (hi_factor - lo_factor) / (count - 1);
  for (int k = 0; k < count; ++k) {
    targets.push_back((lo_factor + step * k) * tau_min_fs);
  }
  return targets;
}

}  // namespace rip::eval
