#include "eval/workload.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rip::eval {

std::vector<WorkloadNet> make_paper_workload(
    const tech::Technology& tech, int net_count, std::uint64_t seed,
    const net::RandomNetConfig& config,
    const dp::MinDelayOptions& min_delay) {
  RIP_REQUIRE(net_count >= 1, "workload needs at least one net");
  std::vector<WorkloadNet> workload;
  workload.reserve(static_cast<std::size_t>(net_count));
  Rng master(seed);
  for (int i = 0; i < net_count; ++i) {
    Rng net_rng = master.split();
    net::Net n = net::random_net(tech, config, net_rng,
                                 "net_" + std::to_string(i + 1));
    const auto md = dp::min_delay(n, tech.device(), min_delay);
    workload.push_back(WorkloadNet{std::move(n), md.tau_min_fs});
  }
  return workload;
}

std::vector<double> timing_targets_fs(double tau_min_fs, int count,
                                      double lo_factor, double hi_factor) {
  RIP_REQUIRE(tau_min_fs > 0, "tau_min must be positive");
  RIP_REQUIRE(count >= 1, "need at least one target");
  RIP_REQUIRE(lo_factor > 0 && lo_factor <= hi_factor,
              "target factor range out of order");
  std::vector<double> targets;
  targets.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    targets.push_back(lo_factor * tau_min_fs);
    return targets;
  }
  const double step = (hi_factor - lo_factor) / (count - 1);
  for (int k = 0; k < count; ++k) {
    targets.push_back((lo_factor + step * k) * tau_min_fs);
  }
  return targets;
}

}  // namespace rip::eval
