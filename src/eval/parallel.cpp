#include "eval/parallel.hpp"

#include "eval/service.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

int case_shard(std::size_t case_index, int shard_count) {
  RIP_REQUIRE(shard_count >= 1, "shard count must be >= 1");
  return static_cast<int>(case_index %
                          static_cast<std::size_t>(shard_count));
}

std::vector<std::size_t> shard_case_indices(std::size_t case_count,
                                            int shard_index,
                                            int shard_count) {
  RIP_REQUIRE(shard_count >= 1, "shard count must be >= 1");
  RIP_REQUIRE(shard_index >= 0 && shard_index < shard_count,
              "shard index out of range");
  std::vector<std::size_t> indices;
  const auto step = static_cast<std::size_t>(shard_count);
  for (std::size_t i = static_cast<std::size_t>(shard_index);
       i < case_count; i += step) {
    indices.push_back(i);
  }
  return indices;
}

std::vector<CaseResult> run_cases(const tech::Technology& tech,
                                  std::span<const Case> cases,
                                  const BatchOptions& options) {
  for (const Case& c : cases) {
    RIP_REQUIRE(c.net != nullptr, "batch case without a net");
  }
  const auto mine = shard_case_indices(cases.size(), options.shard_index,
                                       options.shard_count);
  // The blocking engine is a thin wrapper over the async EvalService:
  // submit this shard's cases as one batch and wait — there is exactly
  // one execution path for batch evaluation. The service evaluates each
  // case with run_case (whose WallTimers start inside the worker, so
  // the per-case runtime columns measure the task, not the batch) and
  // results() returns them in submission == input order. Like the
  // pre-service engine, a failure aborts the batch early (remaining
  // cases are skipped via cancel-on-failure) and the lowest failing
  // index's exception is rethrown here.
  RIP_REQUIRE(options.context.workspace == nullptr,
              "run_cases evaluates on worker-local workspaces; "
              "BatchOptions::context.workspace must stay nullptr");
  ServiceOptions service_options;
  service_options.jobs = options.jobs;
  service_options.chunk = options.chunk;
  service_options.context = options.context;
  EvalService service(tech, service_options);
  std::vector<Case> shard_cases;
  shard_cases.reserve(mine.size());
  for (const std::size_t i : mine) shard_cases.push_back(cases[i]);
  return service
      .submit_batch(shard_cases, Priority::kNormal, {},
                    /*cancel_remaining_on_failure=*/true)
      .results();
}

std::vector<CaseResult> merge_shards(
    std::span<const std::vector<CaseResult>> shards) {
  RIP_REQUIRE(!shards.empty(), "merge_shards needs at least one shard");
  const int shard_count = static_cast<int>(shards.size());
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<CaseResult> merged(total);
  for (int s = 0; s < shard_count; ++s) {
    const auto indices = shard_case_indices(total, s, shard_count);
    RIP_REQUIRE(shards[static_cast<std::size_t>(s)].size() ==
                    indices.size(),
                "shard " + std::to_string(s) +
                    " result count does not match the round-robin "
                    "assignment");
    for (std::size_t j = 0; j < indices.size(); ++j) {
      merged[indices[j]] = shards[static_cast<std::size_t>(s)][j];
    }
  }
  return merged;
}

std::vector<CaseResult> merge_shards(std::span<const CaseShard> shards) {
  RIP_REQUIRE(!shards.empty(), "merge_shards needs at least one shard");
  const int shard_count = shards.front().shard_count;
  RIP_REQUIRE(shard_count >= 1, "merge_shards shard_count must be >= 1");
  RIP_REQUIRE(static_cast<std::size_t>(shard_count) == shards.size(),
              "merge_shards got " + std::to_string(shards.size()) +
                  " shards of a shard_count=" + std::to_string(shard_count) +
                  " split");
  std::vector<bool> seen(static_cast<std::size_t>(shard_count), false);
  std::size_t total = 0;
  for (const CaseShard& shard : shards) {
    RIP_REQUIRE(shard.shard_count == shard_count,
                "merge_shards shards disagree on shard_count (" +
                    std::to_string(shard.shard_count) + " vs " +
                    std::to_string(shard_count) + ")");
    RIP_REQUIRE(shard.shard_index >= 0 && shard.shard_index < shard_count,
                "merge_shards shard_index " +
                    std::to_string(shard.shard_index) +
                    " out of range [0, " + std::to_string(shard_count) + ")");
    const auto idx = static_cast<std::size_t>(shard.shard_index);
    RIP_REQUIRE(!seen[idx], "merge_shards got shard " +
                                std::to_string(shard.shard_index) + " twice");
    seen[idx] = true;
    total += shard.results.size();
  }
  // All indices present follows from: count shards, unique, in range.
  std::vector<CaseResult> merged(total);
  for (const CaseShard& shard : shards) {
    const auto indices =
        shard_case_indices(total, shard.shard_index, shard_count);
    RIP_REQUIRE(shard.results.size() == indices.size(),
                "shard " + std::to_string(shard.shard_index) +
                    " result count does not match the round-robin "
                    "assignment");
    for (std::size_t j = 0; j < indices.size(); ++j) {
      merged[indices[j]] = shard.results[j];
    }
  }
  return merged;
}

}  // namespace rip::eval
