#include "eval/parallel.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

std::vector<CaseResult> run_cases(const tech::Technology& tech,
                                  std::span<const Case> cases,
                                  const BatchOptions& options) {
  for (const Case& c : cases) {
    RIP_REQUIRE(c.net != nullptr, "batch case without a net");
  }
  std::vector<CaseResult> results(cases.size());
  parallel_for_indexed(cases.size(), options.jobs, [&](std::size_t i) {
    const Case& c = cases[i];
    // run_case starts its WallTimers inside this worker, so the
    // per-case runtime columns measure the task, not the batch.
    results[i] = run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline);
  });
  return results;
}

}  // namespace rip::eval
