#include "eval/service.hpp"

#include "dp/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>

namespace rip::eval {
namespace detail {

/// Shared state of one batch (or one single submission). Kept alive by
/// the BatchHandle, the queued entries, and any in-flight round, so it
/// outlives the service when handles do.
struct BatchState {
  std::vector<std::promise<CaseResult>> promises;
  /// Populated for submit_batch only; single submissions hand their
  /// plain future straight to the caller and never build a handle.
  std::vector<std::shared_future<CaseResult>> futures;

  std::atomic<std::size_t> settled{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> cancelled{0};

  std::function<void()> on_complete;
  std::shared_ptr<ServiceState> service;  ///< for cancel(); may outlive it
  /// Once a case of this batch fails, settle the batch's remaining
  /// not-yet-run cases as cancelled instead of evaluating them — the
  /// early-abort discipline the blocking engine (run_cases) wants.
  bool cancel_on_failure = false;

  /// Once-guard for complete_batch: the completion callback (and the
  /// all_done hand-off) must fire exactly once even if a late cancel()
  /// races the final case's settle — both can observe settled == size,
  /// but only the exchange winner completes the batch.
  std::atomic<bool> completion_fired{false};

  std::mutex mutex;
  std::condition_variable done_cv;
  bool all_done = false;  ///< settled == size and on_complete returned
};

/// One queued evaluation: a thunk plus its slot in a batch. The queue
/// is FIFO; a dispatch round stable-sorts its snapshot by priority, so
/// FIFO order is preserved within each priority class.
struct QueueEntry {
  std::function<CaseResult()> solve;
  std::shared_ptr<BatchState> batch;
  std::size_t slot = 0;
  Priority priority = Priority::kNormal;
  /// When the entry was accepted — settle() turns it into queue time.
  std::chrono::steady_clock::time_point enqueued;
};

/// The queue and dispatch flags shared by the service, its dispatcher
/// thread, scheduler completion callbacks, and outstanding handles.
struct ServiceState {
  mutable std::mutex mutex;
  std::condition_variable work_cv;   ///< wakes the dispatcher
  std::condition_variable space_cv;  ///< wakes backpressure-blocked submits
  std::deque<QueueEntry> queue;      ///< pending (accepted, not started)
  bool paused = false;
  bool stopping = false;
  bool round_in_flight = false;
  RetryPolicy retry;                 ///< immutable after construction
  std::atomic<std::uint64_t> evaluated{0};  ///< cases actually run
  std::atomic<std::uint64_t> retries{0};    ///< transient re-runs
  LatencyHistogram queue_time;  ///< accepted -> picked up by a worker
  LatencyHistogram run_time;    ///< evaluation wall time (all attempts)
};

namespace {

/// The batch is fully settled: run the completion callback (exceptions
/// from it are swallowed — it runs on a service thread with nowhere to
/// propagate), then release wait_all(). Guarded so it runs exactly once
/// per batch no matter how many paths observe the final settle.
void complete_batch(BatchState& batch) {
  if (batch.completion_fired.exchange(true)) return;
  if (batch.on_complete) {
    try {
      batch.on_complete();
    } catch (...) {
    }
  }
  {
    std::lock_guard<std::mutex> lock(batch.mutex);
    batch.all_done = true;
  }
  batch.done_cv.notify_all();
}

/// Count one settled case; the last one completes the batch.
void finish_slot(BatchState& batch) {
  if (batch.settled.fetch_add(1) + 1 == batch.promises.size()) {
    complete_batch(batch);
  }
}

/// Run an entry's thunk under the service's retry policy: transient
/// errors (util::TransientError — flaky I/O, injected 'err' faults)
/// are retried with deterministic exponential backoff, everything else
/// propagates on the first throw.
CaseResult solve_with_retry(ServiceState& service, QueueEntry& entry) {
  const RetryPolicy& retry = service.retry;
  for (int attempt = 1;; ++attempt) {
    try {
      return entry.solve();
    } catch (const TransientError&) {
      if (attempt >= retry.max_attempts) throw;
      service.retries.fetch_add(1, std::memory_order_relaxed);
      if (retry.base.count() > 0) {
        std::this_thread::sleep_for(retry.base * (std::int64_t{1}
                                                  << (attempt - 1)));
      }
    }
  }
}

/// Evaluate one queue entry and settle its promise. Never throws: the
/// thunk's exception becomes the future's exception and nothing else —
/// which is what keeps one failing case from touching its neighbours.
void settle(ServiceState& service, QueueEntry& entry) {
  BatchState& batch = *entry.batch;
  if (batch.cancel_on_failure && batch.failed.load() > 0) {
    // A sibling already failed: cooperative skip, like the scheduler
    // cancelling a region's unclaimed chunks after a failure.
    {
      std::promise<CaseResult> promise =
          std::move(batch.promises[entry.slot]);
      promise.set_exception(std::make_exception_ptr(CancelledError()));
    }
    batch.cancelled.fetch_add(1);
    finish_slot(batch);
    return;
  }
  {
    // Move the promise out and let it die here, on the settling
    // thread: once the result is set, the consumer's future must hold
    // the last reference to the shared state, so a stored exception is
    // destroyed on the thread that read it — never concurrently with
    // that read (the same exception-lifetime discipline the
    // scheduler's blocking path uses when it moves the region error
    // out before rethrowing).
    std::promise<CaseResult> promise =
        std::move(batch.promises[entry.slot]);
    const auto started = std::chrono::steady_clock::now();
    service.queue_time.record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            started - entry.enqueued)
            .count()));
    // Record run_time and count the evaluation BEFORE settling the
    // promise: the instant set_value/set_exception runs, a consumer
    // blocked in future.get() may wake and read stats(), and the
    // counters must already reflect this case.
    const auto book_evaluation = [&] {
      service.run_time.record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - started)
              .count()));
      service.evaluated.fetch_add(1, std::memory_order_relaxed);
    };
    try {
      CaseResult result = solve_with_retry(service, entry);
      book_evaluation();
      promise.set_value(std::move(result));
      batch.completed.fetch_add(1);
    } catch (...) {
      book_evaluation();
      promise.set_exception(std::current_exception());
      batch.failed.fetch_add(1);
    }
  }
  finish_slot(batch);
}

/// Remove queued entries (all of them, or only `only`'s) and fail their
/// futures with CancelledError. Promises are settled outside the
/// service lock — batch callbacks may run arbitrary user code.
std::size_t cancel_queued(ServiceState& service, const BatchState* only) {
  std::vector<QueueEntry> removed;
  {
    std::lock_guard<std::mutex> lock(service.mutex);
    auto& queue = service.queue;
    for (auto it = queue.begin(); it != queue.end();) {
      if (only == nullptr || it->batch.get() == only) {
        removed.push_back(std::move(*it));
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (removed.empty()) return 0;
  // The queue shrank (backpressure space) and may have emptied (a
  // draining destructor could be waiting on that).
  service.space_cv.notify_all();
  service.work_cv.notify_all();
  for (QueueEntry& entry : removed) {
    {
      // Same promise-dies-on-the-settling-thread rule as settle().
      std::promise<CaseResult> promise =
          std::move(entry.batch->promises[entry.slot]);
      promise.set_exception(std::make_exception_ptr(CancelledError()));
    }
    entry.batch->cancelled.fetch_add(1);
    finish_slot(*entry.batch);
  }
  return removed.size();
}

std::shared_ptr<BatchState> make_batch_state(
    std::size_t size, std::function<void()> on_complete,
    std::shared_ptr<ServiceState> service) {
  auto batch = std::make_shared<BatchState>();
  batch->promises.resize(size);
  batch->futures.reserve(size);
  for (auto& promise : batch->promises) {
    batch->futures.push_back(promise.get_future().share());
  }
  batch->on_complete = std::move(on_complete);
  batch->service = std::move(service);
  return batch;
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------ BatchHandle

std::size_t BatchHandle::size() const {
  return state_ ? state_->promises.size() : 0;
}

std::shared_future<CaseResult> BatchHandle::future(std::size_t i) const {
  RIP_REQUIRE(state_ != nullptr && i < state_->futures.size(),
              "batch future index out of range");
  return state_->futures[i];
}

std::size_t BatchHandle::settled() const {
  return state_ ? state_->settled.load() : 0;
}
std::size_t BatchHandle::completed() const {
  return state_ ? state_->completed.load() : 0;
}
std::size_t BatchHandle::failed() const {
  return state_ ? state_->failed.load() : 0;
}
std::size_t BatchHandle::cancelled() const {
  return state_ ? state_->cancelled.load() : 0;
}

void BatchHandle::wait_all() const {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_cv.wait(lock, [&] { return state_->all_done; });
}

std::vector<CaseResult> BatchHandle::results() const {
  wait_all();
  std::vector<CaseResult> out;
  out.reserve(size());
  // Ascending order; a real failure outranks cancellations (which may
  // themselves be fallout of that failure under cancel-on-failure), so
  // remember the first CancelledError and keep scanning for a failure.
  std::exception_ptr first_cancelled;
  for (std::size_t i = 0; i < size(); ++i) {
    try {
      out.push_back(future(i).get());
    } catch (const CancelledError&) {
      if (!first_cancelled) first_cancelled = std::current_exception();
    }
  }
  if (first_cancelled) std::rethrow_exception(first_cancelled);
  return out;
}

std::size_t BatchHandle::cancel() {
  if (!state_ || !state_->service) return 0;
  return detail::cancel_queued(*state_->service, state_.get());
}

// ------------------------------------------------------------ EvalService

EvalService::EvalService(const tech::Technology& tech,
                         const ServiceOptions& options)
    : tech_(&tech),
      options_(options),
      state_(std::make_shared<detail::ServiceState>()) {
  RIP_REQUIRE(options_.context.workspace == nullptr,
              "EvalService evaluates on service-thread-local workspaces; "
              "ServiceOptions::context.workspace must stay nullptr");
  RIP_REQUIRE(options_.retry.max_attempts >= 1,
              "ServiceOptions::retry.max_attempts must be >= 1");
  state_->paused = options.start_paused;
  state_->retry = options_.retry;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

EvalService::~EvalService() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
    state_->paused = false;  // a paused service still drains
  }
  state_->work_cv.notify_all();
  state_->space_cv.notify_all();
  dispatcher_.join();
}

void EvalService::enqueue(std::function<CaseResult()> solve,
                          const std::shared_ptr<detail::BatchState>& batch,
                          std::size_t slot, Priority priority) {
  // Local copies: keep the state (and the bound we wait on) alive
  // through the blocking wait even if the service object is
  // (erroneously) destroyed mid-submit — the predicate must not read
  // through `this` once we may have been woken by a destructor.
  const std::shared_ptr<detail::ServiceState> state = state_;
  const std::size_t max_pending = options_.max_pending;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    RIP_REQUIRE(!state->stopping, "submit on a destructing EvalService");
    if (max_pending > 0) {
      state->space_cv.wait(lock, [&] {
        return state->queue.size() < max_pending || state->stopping;
      });
      RIP_REQUIRE(!state->stopping,
                  "EvalService destroyed while a submit was blocked");
    }
    detail::QueueEntry entry;
    entry.solve = std::move(solve);
    entry.batch = batch;
    entry.slot = slot;
    entry.priority = priority;
    entry.enqueued = std::chrono::steady_clock::now();
    state->queue.push_back(std::move(entry));
  }
  state->work_cv.notify_all();
}

std::future<CaseResult> EvalService::submit_fn(
    std::function<CaseResult()> fn, Priority priority) {
  RIP_REQUIRE(static_cast<bool>(fn), "submit_fn needs a callable");
  auto batch = std::make_shared<detail::BatchState>();
  batch->promises.resize(1);
  batch->service = state_;
  std::future<CaseResult> future = batch->promises[0].get_future();
  enqueue(std::move(fn), batch, 0, priority);
  return future;
}

std::future<CaseResult> EvalService::submit(const Case& c,
                                            Priority priority) {
  RIP_REQUIRE(c.net != nullptr, "submitted case without a net");
  const tech::Technology& tech = *tech_;
  const SolveContext context = options_.context;
  return submit_fn(
      [c, &tech, context] {
        // Evaluated on a service thread: hand the solve that thread's
        // own DP workspace, so each scheduler participant reuses its
        // arenas across every case it runs or steals; the service-wide
        // frontier cache and objective backend (if any) are shared by
        // all of them. The deadline lives on this thread's stack for
        // exactly one attempt — a retry starts a fresh budget.
        SolveContext ctx = context;
        ctx.workspace = &dp::Workspace::local();
        const Deadline deadline(c.deadline_ms);
        if (deadline.active()) ctx.deadline = &deadline;
        return run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline, ctx);
      },
      priority);
}

BatchHandle EvalService::submit_batch(const std::vector<Case>& cases,
                                      Priority priority,
                                      std::function<void()> on_complete,
                                      bool cancel_remaining_on_failure) {
  for (const Case& c : cases) {
    RIP_REQUIRE(c.net != nullptr, "batch case without a net");
  }
  auto batch = detail::make_batch_state(cases.size(), std::move(on_complete),
                                        state_);
  batch->cancel_on_failure = cancel_remaining_on_failure;
  if (cases.empty()) {
    // Nothing will ever settle it: complete (callback included) now,
    // synchronously on the submitting thread.
    detail::complete_batch(*batch);
    return BatchHandle(batch);
  }
  const tech::Technology& tech = *tech_;
  const SolveContext context = options_.context;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case c = cases[i];
    enqueue(
        [c, i, &tech, context] {
          // Same per-participant workspace/context/deadline hand-off as
          // submit(). The batch slot is the case's stable fault-point
          // key (unless the caller pinned one), so keyed solve.* faults
          // hit the same cases at any job count.
          SolveContext ctx = context;
          ctx.workspace = &dp::Workspace::local();
          if (ctx.fault_key == kFaultAutoKey) ctx.fault_key = i;
          const Deadline deadline(c.deadline_ms);
          if (deadline.active()) ctx.deadline = &deadline;
          return run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline, ctx);
        },
        batch, i, priority);
  }
  return BatchHandle(batch);
}

void EvalService::pause() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->paused = true;
}

void EvalService::resume() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->paused = false;
  }
  state_->work_cv.notify_all();
}

std::size_t EvalService::pending_count() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->queue.size();
}

bool EvalService::round_in_flight() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->round_in_flight;
}

std::size_t EvalService::cancel_pending() {
  return detail::cancel_queued(*state_, nullptr);
}

ServiceStats EvalService::stats() const {
  ServiceStats out;
  out.cases_evaluated = state_->evaluated.load();
  out.retries = state_->retries.load();
  out.queue_time = state_->queue_time.snapshot();
  out.run_time = state_->run_time.snapshot();
  if (options_.context.cache != nullptr) {
    out.cache_attached = true;
    out.cache = options_.context.cache->stats();
  }
  return out;
}

void EvalService::dispatcher_loop() {
  detail::ServiceState& s = *state_;
  const int jobs = resolve_jobs(options_.jobs);
  for (;;) {
    std::vector<detail::QueueEntry> round;
    {
      std::unique_lock<std::mutex> lock(s.mutex);
      s.work_cv.wait(lock, [&] {
        if (s.round_in_flight) return false;  // one round at a time
        if (!s.queue.empty() && (!s.paused || s.stopping)) return true;
        return s.stopping && s.queue.empty();
      });
      if (s.queue.empty()) return;  // stopping, fully drained
      round.assign(std::make_move_iterator(s.queue.begin()),
                   std::make_move_iterator(s.queue.end()));
      s.queue.clear();
      // High priority first; stable keeps FIFO within each priority.
      std::stable_sort(round.begin(), round.end(),
                       [](const detail::QueueEntry& a,
                          const detail::QueueEntry& b) {
                         return static_cast<int>(a.priority) >
                                static_cast<int>(b.priority);
                       });
      s.round_in_flight = true;
    }
    s.space_cv.notify_all();  // the queue just emptied

    auto tasks =
        std::make_shared<std::vector<detail::QueueEntry>>(std::move(round));
    if (jobs <= 1 || tasks->size() == 1) {
      // Serial rounds run right here and never touch (or create) the
      // scheduler — the service-side mirror of the jobs=1 bypass rule.
      for (detail::QueueEntry& entry : *tasks) detail::settle(s, entry);
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.round_in_flight = false;
      }
    } else {
      // Hand the round to pool workers and go back to accepting
      // submissions; the completion hook reopens dispatch. settle()
      // never throws, so the region error is always null.
      const std::shared_ptr<detail::ServiceState> state = state_;
      Scheduler::global().submit_region(
          tasks->size(), jobs,
          [tasks, state](std::size_t i) {
            detail::settle(*state, (*tasks)[i]);
          },
          [state, tasks](std::exception_ptr) {
            {
              std::lock_guard<std::mutex> lock(state->mutex);
              state->round_in_flight = false;
            }
            state->work_cv.notify_all();
          },
          options_.chunk);
    }
  }
}

}  // namespace rip::eval
