#include "eval/stream.hpp"

#include <charconv>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <utility>

#include "dp/min_delay.hpp"
#include "eval/experiments.hpp"
#include "eval/service.hpp"
#include "net/netlist_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace rip::eval {

namespace {

constexpr const char* kCheckpointMagic = "ripckpt 1";

/// The resume cut: everything a killed run needs to continue
/// byte-identically. All quantities refer to a written-row boundary.
struct Checkpoint {
  std::uint64_t input_bytes = 0;   ///< input file size (identity check)
  std::uint64_t input_offset = 0;  ///< byte offset of first unwritten record
  std::uint64_t next_index = 0;    ///< index of first unwritten record
  std::uint64_t output_bytes = 0;  ///< output size covering rows < next_index
};

std::uint64_t parse_u64(const std::string& s, const std::string& context) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  RIP_REQUIRE(res.ec == std::errc() && res.ptr == s.data() + s.size(),
              context + ": malformed unsigned integer '" + s + "'");
  return v;
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path);
  RIP_REQUIRE(in.good(), "cannot open checkpoint file: " + path);
  std::string line;
  RIP_REQUIRE(std::getline(in, line) && trim(line) == kCheckpointMagic,
              path + ": not a ripckpt 1 checkpoint file");
  Checkpoint ck;
  bool have_input_bytes = false, have_offset = false, have_index = false,
       have_output = false;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    RIP_REQUIRE(tokens.size() == 2,
                path + ": malformed checkpoint line '" + t + "'");
    const std::string context = path + " " + tokens[0];
    if (tokens[0] == "input_bytes") {
      ck.input_bytes = parse_u64(tokens[1], context);
      have_input_bytes = true;
    } else if (tokens[0] == "input_offset") {
      ck.input_offset = parse_u64(tokens[1], context);
      have_offset = true;
    } else if (tokens[0] == "next_index") {
      ck.next_index = parse_u64(tokens[1], context);
      have_index = true;
    } else if (tokens[0] == "output_bytes") {
      ck.output_bytes = parse_u64(tokens[1], context);
      have_output = true;
    } else {
      throw Error(path + ": unknown checkpoint key '" + tokens[0] + "'");
    }
  }
  RIP_REQUIRE(have_input_bytes && have_offset && have_index && have_output,
              path + ": checkpoint is missing required keys");
  return ck;
}

/// Atomic replace: write the sibling temp file, fsync-by-close, rename
/// over the target. A kill between any two steps leaves either the old
/// checkpoint or the new one, never a torn file.
void write_checkpoint(const std::string& path, const Checkpoint& ck) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    RIP_REQUIRE(out.good(), "cannot write checkpoint temp file: " + tmp);
    out << kCheckpointMagic << "\n"
        << "input_bytes " << ck.input_bytes << "\n"
        << "input_offset " << ck.input_offset << "\n"
        << "next_index " << ck.next_index << "\n"
        << "output_bytes " << ck.output_bytes << "\n";
    out.flush();
    RIP_REQUIRE(out.good(), "checkpoint write failed: " + tmp);
  }
  RIP_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename checkpoint " + tmp + " -> " + path);
}

std::uint64_t file_size_of(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  RIP_REQUIRE(!ec, "cannot stat " + path + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

/// One deterministic CSV row. No wall-clock fields, so an interrupted
/// and a straight-through run produce identical bytes.
std::string format_row(std::uint64_t index, const std::string& name,
                       const CaseResult& r) {
  std::string row = std::to_string(index);
  row += ',';
  row += name;
  row += ',';
  row += fmt_f(units::fs_to_ns(r.tau_t_fs), 3);
  row += ',';
  row += r.rip_feasible ? fmt_f(r.rip_width_u, 0) : "VIOL";
  row += ',';
  row += r.dp_feasible ? fmt_f(r.dp_width_u, 0) : "VIOL";
  row += ',';
  row += (r.rip_feasible && r.dp_feasible) ? fmt_f(r.improvement_pct, 2)
                                           : "-";
  row += '\n';
  return row;
}

constexpr const char* kHeader = "idx,name,tau_t_ns,rip_u,dp_u,impr_pct\n";

/// A record in flight: its identity plus the future of its result. The
/// Net itself is owned by the evaluation thunk (shared_ptr), so it dies
/// as soon as the case has run and the round is retired — the window
/// never pins more than window_cap nets.
struct InFlight {
  std::uint64_t index = 0;
  std::uint64_t start_offset = 0;  ///< where this record begins on disk
  std::string name;
  std::future<CaseResult> future;
};

}  // namespace

StreamResult run_stream(const tech::Technology& tech,
                        const std::string& input_path,
                        const std::string& output_path,
                        const StreamOptions& options) {
  RIP_REQUIRE(options.context.workspace == nullptr,
              "run_stream evaluates on service threads; context.workspace "
              "must be nullptr");
  RIP_REQUIRE(options.checkpoint_every == 0 || !options.checkpoint_path.empty(),
              "checkpoint_every > 0 requires checkpoint_path");
  RIP_REQUIRE(!options.resume || !options.checkpoint_path.empty(),
              "resume requires checkpoint_path");
  RIP_REQUIRE(options.default_target_x > 0,
              "default_target_x must be positive");

  WallTimer timer;
  net::NetlistReader reader(input_path);
  const std::uint64_t input_bytes = file_size_of(input_path);

  StreamResult result;
  std::uint64_t output_bytes = 0;

  // Resume: seek the reader to the checkpointed record boundary and cut
  // the output back to the matching byte count, discarding any rows a
  // killed run wrote past its last checkpoint. A missing checkpoint
  // file under --resume means "nothing saved yet": start fresh.
  bool fresh = true;
  if (options.resume && std::filesystem::exists(options.checkpoint_path)) {
    const Checkpoint ck = read_checkpoint(options.checkpoint_path);
    RIP_REQUIRE(ck.input_bytes == input_bytes,
                "checkpoint " + options.checkpoint_path + " was taken on a " +
                    std::to_string(ck.input_bytes) + "-byte input, but " +
                    input_path + " is " + std::to_string(input_bytes) +
                    " bytes");
    RIP_REQUIRE(std::filesystem::exists(output_path),
                "resume: output file " + output_path + " does not exist");
    const std::uint64_t have = file_size_of(output_path);
    RIP_REQUIRE(have >= ck.output_bytes,
                "resume: output file " + output_path + " (" +
                    std::to_string(have) + " bytes) is shorter than the "
                    "checkpoint's " + std::to_string(ck.output_bytes) +
                    " bytes — wrong file?");
    std::error_code ec;
    std::filesystem::resize_file(output_path, ck.output_bytes, ec);
    RIP_REQUIRE(!ec, "resume: cannot truncate " + output_path + ": " +
                         ec.message());
    reader.seek(ck.input_offset, ck.next_index);
    result.resumed_from = ck.next_index;
    output_bytes = ck.output_bytes;
    fresh = false;
  }

  std::ofstream out(output_path, fresh
                                     ? std::ios::binary | std::ios::trunc
                                     : std::ios::binary | std::ios::app);
  RIP_REQUIRE(out.good(), "cannot open output file: " + output_path);
  if (fresh) {
    out << kHeader;
    output_bytes = std::string(kHeader).size();
  }

  ServiceOptions service_options;
  service_options.jobs = options.jobs;
  service_options.max_pending = options.max_pending;
  service_options.context = options.context;
  EvalService service(tech, service_options);

  // The reorder window: big enough to keep the service fed past the
  // head-of-line wait, small enough to bound resident records.
  const std::size_t window_cap =
      options.max_pending == 0
          ? 256
          : std::max<std::size_t>(2 * options.max_pending, 16);

  std::deque<InFlight> window;
  std::uint64_t rows_total = result.resumed_from;
  bool eof = false;
  bool stopped = false;

  const auto submit_record = [&](net::NetlistRecord&& record,
                                 std::uint64_t index,
                                 std::uint64_t start_offset) {
    InFlight f;
    f.index = index;
    f.start_offset = start_offset;
    f.name = record.net.name();
    const auto net = std::make_shared<const net::Net>(std::move(record.net));
    const double stored_target = record.tau_t_fs;
    // The thunk owns the net; target resolution (possibly a tau_min
    // solve) happens on the worker so the read loop stays cheap.
    f.future = service.submit_fn([&tech, &options, net, stored_target] {
      double tau_t_fs = stored_target;
      if (tau_t_fs <= 0) {
        const auto md = dp::min_delay(*net, tech.device());
        tau_t_fs = options.default_target_x * md.tau_min_fs;
      }
      return run_case(*net, tech, tau_t_fs, options.rip, options.baseline,
                      options.context);
    });
    window.push_back(std::move(f));
  };

  while (true) {
    // Fill: read and submit until the window is full or the input ends.
    while (!eof && window.size() < window_cap) {
      const std::uint64_t start_offset = reader.offset();
      const std::uint64_t index = reader.index();
      auto record = reader.next();
      if (!record.has_value()) {
        eof = true;
        break;
      }
      submit_record(std::move(*record), index, start_offset);
    }
    if (window.empty()) break;  // input drained and every row written

    // Drain: block on the oldest case, write its row, free its slot.
    InFlight front = std::move(window.front());
    window.pop_front();
    const CaseResult case_result = front.future.get();
    const std::string row = format_row(front.index, front.name, case_result);
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
    RIP_REQUIRE(out.good(), "write failed on " + output_path);
    output_bytes += row.size();
    ++result.rows_written;
    rows_total = result.resumed_from + result.rows_written;

    if (options.checkpoint_every > 0 &&
        rows_total % options.checkpoint_every == 0) {
      out.flush();
      RIP_REQUIRE(out.good(), "flush failed on " + output_path);
      Checkpoint ck;
      ck.input_bytes = input_bytes;
      ck.input_offset =
          window.empty() ? reader.offset() : window.front().start_offset;
      ck.next_index = rows_total;
      ck.output_bytes = output_bytes;
      write_checkpoint(options.checkpoint_path, ck);
      ++result.checkpoints_written;
    }

    if (options.stop_after > 0 &&
        result.rows_written >= options.stop_after && (!eof || !window.empty())) {
      // Simulated kill: abandon the in-flight tail (the service drains
      // it on destruction; the rows are simply never written) and do
      // NOT write a parting checkpoint — resume must recover from the
      // last periodic one, exactly as after a real crash.
      stopped = true;
      service.cancel_pending();
      break;
    }
  }

  result.finished = !stopped;
  result.rows_total = rows_total;

  if (result.finished && options.checkpoint_every > 0) {
    // Final checkpoint: marks the whole input as written, so a resume
    // of a completed run is a no-op with byte-identical output.
    out.flush();
    RIP_REQUIRE(out.good(), "flush failed on " + output_path);
    Checkpoint ck;
    ck.input_bytes = input_bytes;
    ck.input_offset = reader.offset();
    ck.next_index = rows_total;
    ck.output_bytes = output_bytes;
    write_checkpoint(options.checkpoint_path, ck);
    ++result.checkpoints_written;
  }

  out.flush();
  RIP_REQUIRE(out.good(), "flush failed on " + output_path);
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace rip::eval
