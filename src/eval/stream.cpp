#include "eval/stream.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "dp/min_delay.hpp"
#include "eval/experiments.hpp"
#include "eval/service.hpp"
#include "net/netlist_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace rip::eval {

namespace {

constexpr const char* kCheckpointMagicV1 = "ripckpt 1";
constexpr const char* kCheckpointMagicV2 = "ripckpt 2";

/// The resume cut: everything a killed run needs to continue
/// byte-identically. All quantities refer to a processed-record
/// boundary (a record is processed when its CSV row — or its
/// quarantine row — is on disk).
struct Checkpoint {
  std::uint64_t input_bytes = 0;   ///< input file size (identity check)
  std::uint64_t input_offset = 0;  ///< byte offset of first unprocessed record
  std::uint64_t next_index = 0;    ///< index of first unprocessed record
  std::uint64_t output_bytes = 0;  ///< output size covering those rows
  std::uint64_t errors_bytes = 0;  ///< sidecar size covering those rows
  std::uint64_t quarantined = 0;   ///< records quarantined so far
};

std::uint64_t parse_u64(const std::string& s, const std::string& context) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  RIP_REQUIRE(res.ec == std::errc() && res.ptr == s.data() + s.size(),
              context + ": malformed unsigned integer '" + s + "'");
  return v;
}

/// Render the checkpoint body (everything the trailing CRC line covers).
std::string checkpoint_payload(const Checkpoint& ck) {
  std::string payload = kCheckpointMagicV2;
  payload += '\n';
  payload += "input_bytes " + std::to_string(ck.input_bytes) + "\n";
  payload += "input_offset " + std::to_string(ck.input_offset) + "\n";
  payload += "next_index " + std::to_string(ck.next_index) + "\n";
  payload += "output_bytes " + std::to_string(ck.output_bytes) + "\n";
  payload += "errors_bytes " + std::to_string(ck.errors_bytes) + "\n";
  payload += "quarantined " + std::to_string(ck.quarantined) + "\n";
  return payload;
}

std::string crc32_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

/// Parse and verify a checkpoint file (v2 with CRC, or legacy v1).
/// Throws rip::Error on anything unreadable, malformed, or
/// CRC-corrupt — the caller decides whether that is fatal or a
/// degradation to the `.prev` checkpoint.
Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RIP_REQUIRE(in.good(), "cannot open checkpoint file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  const std::size_t eol = content.find('\n');
  RIP_REQUIRE(eol != std::string::npos, path + ": truncated checkpoint file");
  const std::string magic = trim(content.substr(0, eol));
  const bool v2 = magic == kCheckpointMagicV2;
  RIP_REQUIRE(v2 || magic == kCheckpointMagicV1,
              path + ": not a ripckpt checkpoint file");

  std::string body = content;
  if (v2) {
    // The last line must be `crc32 <hex>` and it must verify over every
    // preceding byte — a torn temp file or a bit flip fails here.
    const std::size_t crc_pos = content.rfind("crc32 ");
    RIP_REQUIRE(crc_pos != std::string::npos && crc_pos > 0 &&
                    content[crc_pos - 1] == '\n',
                path + ": checkpoint is missing its crc32 trailer");
    const std::string stored = trim(content.substr(crc_pos + 6));
    const std::string computed = crc32_hex(crc32(content.data(), crc_pos));
    RIP_REQUIRE(stored == computed, path + ": checkpoint CRC mismatch (stored " +
                                        stored + ", computed " + computed + ")");
    body = content.substr(0, crc_pos);
  }

  Checkpoint ck;
  bool have_input_bytes = false, have_offset = false, have_index = false,
       have_output = false;
  std::istringstream lines(body);
  std::string line;
  std::getline(lines, line);  // the magic line
  while (std::getline(lines, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    RIP_REQUIRE(tokens.size() == 2,
                path + ": malformed checkpoint line '" + t + "'");
    const std::string context = path + " " + tokens[0];
    if (tokens[0] == "input_bytes") {
      ck.input_bytes = parse_u64(tokens[1], context);
      have_input_bytes = true;
    } else if (tokens[0] == "input_offset") {
      ck.input_offset = parse_u64(tokens[1], context);
      have_offset = true;
    } else if (tokens[0] == "next_index") {
      ck.next_index = parse_u64(tokens[1], context);
      have_index = true;
    } else if (tokens[0] == "output_bytes") {
      ck.output_bytes = parse_u64(tokens[1], context);
      have_output = true;
    } else if (tokens[0] == "errors_bytes") {
      ck.errors_bytes = parse_u64(tokens[1], context);
    } else if (tokens[0] == "quarantined") {
      ck.quarantined = parse_u64(tokens[1], context);
    } else {
      throw Error(path + ": unknown checkpoint key '" + tokens[0] + "'");
    }
  }
  RIP_REQUIRE(have_input_bytes && have_offset && have_index && have_output,
              path + ": checkpoint is missing required keys");
  return ck;
}

/// Durable atomic replace. The temp file is written with POSIX I/O and
/// fsynced before any rename, the previous checkpoint is rotated to
/// `<path>.prev` first, and only then is the temp renamed over the
/// target — so a kill at ANY instant leaves at least one checkpoint
/// whose CRC verifies (the old one, the rotated one, or the new one).
/// `ordinal` is the 1-based checkpoint count of this run: the key of
/// the ckpt.write / ckpt.rename / ckpt.commit fault points.
void write_checkpoint(const std::string& path, const Checkpoint& ck,
                      std::uint64_t ordinal) {
  const std::string payload = checkpoint_payload(ck);
  const std::string trailer =
      "crc32 " + crc32_hex(crc32(payload.data(), payload.size())) + "\n";
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  RIP_REQUIRE(fd >= 0, "cannot write checkpoint temp file: " + tmp);
  const auto write_all = [&](const char* data, std::size_t size) {
    while (size > 0) {
      const ssize_t n = ::write(fd, data, size);
      if (n < 0) {
        ::close(fd);
        throw Error("checkpoint write failed: " + tmp);
      }
      data += n;
      size -= static_cast<std::size_t>(n);
    }
  };
  try {
    // ckpt.write fires mid-payload: a 'crash' here leaves a torn temp
    // file that the CRC check rejects — the committed checkpoint is
    // untouched.
    const std::size_t half = payload.size() / 2;
    write_all(payload.data(), half);
    fire_fault("ckpt.write", ordinal);
    write_all(payload.data() + half, payload.size() - half);
    write_all(trailer.data(), trailer.size());
    RIP_REQUIRE(::fsync(fd) == 0, "cannot fsync checkpoint " + tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  if (std::filesystem::exists(path)) {
    const std::string prev = path + ".prev";
    RIP_REQUIRE(std::rename(path.c_str(), prev.c_str()) == 0,
                "cannot rotate checkpoint " + path + " -> " + prev);
  }
  // ckpt.rename fires between the rotation and the commit: a 'crash'
  // here leaves only `.prev`, which resume degrades to.
  fire_fault("ckpt.rename", ordinal);
  RIP_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename checkpoint " + tmp + " -> " + path);
  // ckpt.commit fires after the rename: a 'crash' here finds the new
  // checkpoint already durable.
  fire_fault("ckpt.commit", ordinal);
}

std::uint64_t file_size_of(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  RIP_REQUIRE(!ec, "cannot stat " + path + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

/// One deterministic CSV row. No wall-clock fields, so an interrupted
/// and a straight-through run produce identical bytes.
std::string format_row(std::uint64_t index, const std::string& name,
                       const CaseResult& r) {
  std::string row = std::to_string(index);
  row += ',';
  row += name;
  row += ',';
  row += fmt_f(units::fs_to_ns(r.tau_t_fs), 3);
  row += ',';
  row += r.rip_feasible ? fmt_f(r.rip_width_u, 0) : "VIOL";
  row += ',';
  row += r.dp_feasible ? fmt_f(r.dp_width_u, 0) : "VIOL";
  row += ',';
  row += (r.rip_feasible && r.dp_feasible) ? fmt_f(r.improvement_pct, 2)
                                           : "-";
  row += '\n';
  return row;
}

constexpr const char* kHeader = "idx,name,tau_t_ns,rip_u,dp_u,impr_pct\n";
constexpr const char* kErrorsHeader = "idx,name,class,detail\n";

/// Keep a free-text field inside one CSV cell: commas become
/// semicolons, newlines become spaces.
std::string csv_sanitize(std::string s) {
  for (char& c : s) {
    if (c == ',') c = ';';
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string format_error_row(std::uint64_t index, const std::string& name,
                             const std::string& error_class,
                             const std::string& detail) {
  std::string row = std::to_string(index);
  row += ',';
  row += csv_sanitize(name);
  row += ',';
  row += error_class;
  row += ',';
  row += csv_sanitize(detail);
  row += '\n';
  return row;
}

/// A record in flight: its identity plus the future of its result. The
/// Net itself is owned by the evaluation thunk (shared_ptr), so it dies
/// as soon as the case has run and the round is retired — the window
/// never pins more than window_cap nets. A record whose READ already
/// failed recoverably enters the window as a sentinel (no future, a
/// fail_class instead) so quarantine rows drain in index order with
/// everything else.
struct InFlight {
  std::uint64_t index = 0;
  std::uint64_t start_offset = 0;  ///< where this record begins on disk
  std::string name;
  std::future<CaseResult> future;
  std::string fail_class;   ///< non-empty = failed at read (io/malformed)
  std::string fail_detail;
};

}  // namespace

StreamResult run_stream(const tech::Technology& tech,
                        const std::string& input_path,
                        const std::string& output_path,
                        const StreamOptions& options) {
  RIP_REQUIRE(options.context.workspace == nullptr,
              "run_stream evaluates on service threads; context.workspace "
              "must be nullptr");
  RIP_REQUIRE(options.checkpoint_every == 0 || !options.checkpoint_path.empty(),
              "checkpoint_every > 0 requires checkpoint_path");
  RIP_REQUIRE(!options.resume || !options.checkpoint_path.empty(),
              "resume requires checkpoint_path");
  RIP_REQUIRE(options.default_target_x > 0,
              "default_target_x must be positive");
  RIP_REQUIRE(options.retry.max_attempts >= 1,
              "retry.max_attempts must be >= 1");
  const bool quarantine = !options.errors_path.empty();

  WallTimer timer;
  net::NetlistReader reader(input_path);
  const std::uint64_t input_bytes = file_size_of(input_path);

  StreamResult result;
  std::uint64_t output_bytes = 0;
  std::uint64_t errors_bytes = 0;
  std::uint64_t quarantined_before = 0;  ///< from the resumed checkpoint

  // Resume: pick the newest checkpoint whose CRC verifies — the main
  // file, or `.prev` if the main one is torn/corrupt (a kill mid-write
  // can leave exactly that). If neither verifies, restart cleanly with
  // a warning rather than trusting torn state. A mismatched input size
  // on a VALID checkpoint is still a hard error (wrong file, not
  // corruption). A missing checkpoint under --resume means "nothing
  // saved yet": start fresh.
  bool fresh = true;
  std::optional<Checkpoint> ck;
  if (options.resume) {
    const std::string candidates[] = {options.checkpoint_path,
                                      options.checkpoint_path + ".prev"};
    for (const std::string& candidate : candidates) {
      if (!std::filesystem::exists(candidate)) continue;
      try {
        ck = read_checkpoint(candidate);
        break;
      } catch (const Error& e) {
        std::fprintf(stderr, "rip: ignoring unusable checkpoint: %s\n",
                     e.what());
      }
    }
  }
  if (ck.has_value()) {
    RIP_REQUIRE(ck->input_bytes == input_bytes,
                "checkpoint " + options.checkpoint_path + " was taken on a " +
                    std::to_string(ck->input_bytes) + "-byte input, but " +
                    input_path + " is " + std::to_string(input_bytes) +
                    " bytes");
    RIP_REQUIRE(std::filesystem::exists(output_path),
                "resume: output file " + output_path + " does not exist");
    const std::uint64_t have = file_size_of(output_path);
    RIP_REQUIRE(have >= ck->output_bytes,
                "resume: output file " + output_path + " (" +
                    std::to_string(have) + " bytes) is shorter than the "
                    "checkpoint's " + std::to_string(ck->output_bytes) +
                    " bytes — wrong file?");
    std::error_code ec;
    std::filesystem::resize_file(output_path, ck->output_bytes, ec);
    RIP_REQUIRE(!ec, "resume: cannot truncate " + output_path + ": " +
                         ec.message());
    reader.seek(ck->input_offset, ck->next_index);
    result.resumed_from = ck->next_index;
    output_bytes = ck->output_bytes;
    quarantined_before = ck->quarantined;
    fresh = false;
  }

  std::ofstream out(output_path, fresh
                                     ? std::ios::binary | std::ios::trunc
                                     : std::ios::binary | std::ios::app);
  RIP_REQUIRE(out.good(), "cannot open output file: " + output_path);
  if (fresh) {
    out << kHeader;
    output_bytes = std::string(kHeader).size();
  }

  // The quarantine sidecar follows the output's resume discipline:
  // truncate back to the checkpointed byte count, or start fresh when
  // the checkpoint predates the sidecar (a v1 checkpoint) or the file
  // is gone.
  std::ofstream err_out;
  if (quarantine) {
    bool err_fresh = true;
    if (!fresh && ck->errors_bytes > 0 &&
        std::filesystem::exists(options.errors_path) &&
        file_size_of(options.errors_path) >= ck->errors_bytes) {
      std::error_code ec;
      std::filesystem::resize_file(options.errors_path, ck->errors_bytes, ec);
      RIP_REQUIRE(!ec, "resume: cannot truncate " + options.errors_path +
                           ": " + ec.message());
      errors_bytes = ck->errors_bytes;
      err_fresh = false;
    }
    err_out.open(options.errors_path,
                 err_fresh ? std::ios::binary | std::ios::trunc
                           : std::ios::binary | std::ios::app);
    RIP_REQUIRE(err_out.good(),
                "cannot open errors file: " + options.errors_path);
    if (err_fresh) {
      err_out << kErrorsHeader;
      errors_bytes = std::string(kErrorsHeader).size();
    }
  }

  ServiceOptions service_options;
  service_options.jobs = options.jobs;
  service_options.max_pending = options.max_pending;
  service_options.retry = options.retry;
  service_options.context = options.context;
  EvalService service(tech, service_options);

  // The reorder window: big enough to keep the service fed past the
  // head-of-line wait, small enough to bound resident records.
  const std::size_t window_cap =
      options.max_pending == 0
          ? 256
          : std::max<std::size_t>(2 * options.max_pending, 16);

  std::deque<InFlight> window;
  std::uint64_t records_done = result.resumed_from;
  bool eof = false;
  bool stopped = false;

  const auto submit_record = [&](net::NetlistRecord&& record,
                                 std::uint64_t index,
                                 std::uint64_t start_offset) {
    InFlight f;
    f.index = index;
    f.start_offset = start_offset;
    f.name = record.net.name();
    const auto net = std::make_shared<const net::Net>(std::move(record.net));
    const double stored_target = record.tau_t_fs;
    // The thunk owns the net; target resolution (possibly a tau_min
    // solve) happens on the worker so the read loop stays cheap. The
    // record index keys the solve.* fault points (same records fault at
    // any job count) and the deadline lives for exactly one attempt —
    // a retry starts a fresh budget.
    f.future = service.submit_fn([&tech, &options, net, stored_target, index] {
      double tau_t_fs = stored_target;
      if (tau_t_fs <= 0) {
        const auto md = dp::min_delay(*net, tech.device());
        tau_t_fs = options.default_target_x * md.tau_min_fs;
      }
      SolveContext ctx = options.context;
      ctx.fault_key = index;
      const Deadline deadline(options.deadline_ms);
      if (deadline.active()) ctx.deadline = &deadline;
      return run_case(*net, tech, tau_t_fs, options.rip, options.baseline,
                      ctx);
    });
    window.push_back(std::move(f));
  };

  while (true) {
    // Fill: read and submit until the window is full or the input ends.
    // A recoverable read failure (malformed record, injected I/O error)
    // becomes a failed-at-read sentinel in the window when quarantine
    // is on — the reader has already advanced to the next record
    // boundary, so the sweep continues.
    while (!eof && window.size() < window_cap) {
      const std::uint64_t start_offset = reader.offset();
      const std::uint64_t index = reader.index();
      std::optional<net::NetlistRecord> record;
      try {
        record = reader.next();
      } catch (const net::NetlistError& e) {
        if (!quarantine || !e.recoverable()) throw;
        InFlight f;
        f.index = index;
        f.start_offset = start_offset;
        f.name = e.net_name();
        f.fail_class = e.error_class();
        f.fail_detail = e.what();
        window.push_back(std::move(f));
        continue;
      }
      if (!record.has_value()) {
        eof = true;
        break;
      }
      submit_record(std::move(*record), index, start_offset);
    }
    if (window.empty()) break;  // input drained and every row written

    // Drain: block on the oldest case, write its row — or its
    // quarantine row — and free its slot.
    InFlight front = std::move(window.front());
    window.pop_front();
    std::string row;
    std::string error_class;
    std::string error_detail;
    if (!front.fail_class.empty()) {
      error_class = front.fail_class;
      error_detail = front.fail_detail;
    } else {
      try {
        const CaseResult case_result = front.future.get();
        row = format_row(front.index, front.name, case_result);
      } catch (const DeadlineExceeded& e) {
        if (!quarantine) throw;
        error_class = "deadline";
        error_detail = e.what();
      } catch (const Error& e) {
        if (!quarantine) throw;
        error_class = "solve";
        error_detail = e.what();
      }
      // Anything that is not a rip::Error — above all InjectedCrash,
      // the simulated process kill — propagates: quarantine recovers
      // from bad records, never from a dying process.
    }
    if (!row.empty()) {
      out.write(row.data(), static_cast<std::streamsize>(row.size()));
      RIP_REQUIRE(out.good(), "write failed on " + output_path);
      output_bytes += row.size();
      ++result.rows_written;
    } else {
      const std::string err_row = format_error_row(front.index, front.name,
                                                   error_class, error_detail);
      err_out.write(err_row.data(),
                    static_cast<std::streamsize>(err_row.size()));
      RIP_REQUIRE(err_out.good(), "write failed on " + options.errors_path);
      errors_bytes += err_row.size();
      ++result.rows_quarantined;
    }
    records_done =
        result.resumed_from + result.rows_written + result.rows_quarantined;

    if (options.checkpoint_every > 0 &&
        records_done % options.checkpoint_every == 0) {
      out.flush();
      RIP_REQUIRE(out.good(), "flush failed on " + output_path);
      if (quarantine) {
        err_out.flush();
        RIP_REQUIRE(err_out.good(), "flush failed on " + options.errors_path);
      }
      Checkpoint next;
      next.input_bytes = input_bytes;
      next.input_offset =
          window.empty() ? reader.offset() : window.front().start_offset;
      next.next_index = records_done;
      next.output_bytes = output_bytes;
      next.errors_bytes = errors_bytes;
      next.quarantined = quarantined_before + result.rows_quarantined;
      write_checkpoint(options.checkpoint_path, next,
                       result.checkpoints_written + 1);
      ++result.checkpoints_written;
    }

    if (options.stop_after > 0 &&
        result.rows_written >= options.stop_after && (!eof || !window.empty())) {
      // Simulated kill: abandon the in-flight tail (the service drains
      // it on destruction; the rows are simply never written) and do
      // NOT write a parting checkpoint — resume must recover from the
      // last periodic one, exactly as after a real crash.
      stopped = true;
      service.cancel_pending();
      break;
    }
  }

  result.finished = !stopped;
  result.rows_total = records_done;
  result.quarantined_total = quarantined_before + result.rows_quarantined;

  if (result.finished && options.checkpoint_every > 0) {
    // Final checkpoint: marks the whole input as processed, so a resume
    // of a completed run is a no-op with byte-identical output.
    out.flush();
    RIP_REQUIRE(out.good(), "flush failed on " + output_path);
    if (quarantine) {
      err_out.flush();
      RIP_REQUIRE(err_out.good(), "flush failed on " + options.errors_path);
    }
    Checkpoint final_ck;
    final_ck.input_bytes = input_bytes;
    final_ck.input_offset = reader.offset();
    final_ck.next_index = records_done;
    final_ck.output_bytes = output_bytes;
    final_ck.errors_bytes = errors_bytes;
    final_ck.quarantined = result.quarantined_total;
    write_checkpoint(options.checkpoint_path, final_ck,
                     result.checkpoints_written + 1);
    ++result.checkpoints_written;
  }

  out.flush();
  RIP_REQUIRE(out.good(), "flush failed on " + output_path);
  if (quarantine) {
    err_out.flush();
    RIP_REQUIRE(err_out.good(), "flush failed on " + options.errors_path);
  }
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace rip::eval
