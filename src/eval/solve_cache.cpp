#include "eval/solve_cache.hpp"

#include <algorithm>
#include <utility>

#include "util/fault.hpp"
#include "util/hash.hpp"

namespace rip::eval {

SolveCache::SolveCache(const SolveCacheOptions& options) {
  capacity_ = std::max<std::size_t>(1, options.capacity);
  // Clamp shards to capacity: a capacity-1 cache must behave as one
  // strict global LRU, not as N shards that each think they may hold an
  // entry.
  const std::size_t shards =
      std::clamp<std::size_t>(options.shard_count, 1, capacity_);
  shard_capacity_ = (capacity_ + shards - 1) / shards;
  if (options.max_bytes > 0) {
    shard_byte_budget_ = std::max<std::uint64_t>(1, options.max_bytes / shards);
  }
  ttl_ = options.ttl;
  shards_ = std::vector<Shard>(shards);
}

SolveCache::Shard& SolveCache::shard_of(std::uint64_t key) {
  // Re-mix so the stripe does not correlate with unordered_map's bucket
  // choice (which typically uses the low bits of the same key).
  const std::uint64_t mixed = Hash64::mix(key);
  return shards_[static_cast<std::size_t>(mixed >> 32) % shards_.size()];
}

std::shared_ptr<const dp::ChainFrontierSolve> SolveCache::lookup(
    std::uint64_t key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  // Lazy TTL expiry: an over-age entry answers nothing and is dropped on
  // the spot (the caller re-solves and re-inserts a fresh frontier).
  if (ttl_.count() > 0 &&
      std::chrono::steady_clock::now() - it->second.stored_at >= ttl_) {
    shard.bytes -= it->second.solve->bytes();
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
    ++shard.ttl_evictions;
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.solve;
}

void SolveCache::evict_lru(Shard& shard) {
  const std::uint64_t victim = shard.lru.back();
  const auto vit = shard.map.find(victim);
  shard.bytes -= vit->second.solve->bytes();
  shard.map.erase(vit);
  shard.lru.pop_back();
  ++shard.evictions;
}

std::shared_ptr<const dp::ChainFrontierSolve> SolveCache::insert(
    std::uint64_t key, dp::ChainFrontierSolve solve) {
  // Injected insert failure: the solve is still handed back to the
  // caller (results stay correct); it just is not retained, so the
  // cache degrades to extra misses — never to wrong answers.
  if (fire_fault_soft("cache.insert", key)) {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.insert_failures;
    return std::make_shared<const dp::ChainFrontierSolve>(std::move(solve));
  }
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Another thread solved the same key first. Equal keys mean
    // bit-identical frontiers, so keep the resident entry (callers
    // select from the returned pointer, so everyone answers from the
    // same arrays) and drop the duplicate.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.solve;
  }
  while (shard.map.size() >= shard_capacity_) {
    evict_lru(shard);
  }
  auto stored =
      std::make_shared<const dp::ChainFrontierSolve>(std::move(solve));
  shard.lru.push_front(key);
  shard.bytes += stored->bytes();
  shard.map.emplace(key, Entry{stored, shard.lru.begin(),
                               std::chrono::steady_clock::now()});
  ++shard.insertions;
  // Byte budget: evict LRU tails until under budget, but never the entry
  // just stored — a single oversized frontier must pass through, not
  // pin the insert path in a livelock.
  while (shard_byte_budget_ > 0 && shard.bytes > shard_byte_budget_ &&
         shard.map.size() > 1) {
    evict_lru(shard);
  }
  return stored;
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.ttl_evictions += shard.ttl_evictions;
    out.insert_failures += shard.insert_failures;
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace rip::eval
