#pragma once

/// @file parallel.hpp
/// The parallel batch-evaluation engine. The paper's whole evaluation
/// (Tables 1-2, Fig. 7) is an embarrassingly parallel sweep over
/// (net, target, scheme) cases; this module fans those cases out over
/// the persistent util::Scheduler while keeping results bit-identical
/// to the serial loop: every case writes only its own slot and
/// reductions stay serial in input order.
///
/// On top of the in-process fan-out (`jobs`, `chunk`), a batch can be
/// split across processes or machines: `shard_index`/`shard_count`
/// select a deterministic round-robin subset of the cases
/// (case i belongs to shard i % shard_count), each shard runs
/// independently, and merge_shards() reassembles the full result
/// vector bit-identical to an unsharded run. eval::run_table1/
/// run_table2/run_fig7, rip_cli (`sweep`/`compare` `--shard I/N`) and
/// the bench binaries all sit on top of this via `--jobs`/`--shard`.
///
/// run_cases itself is a thin blocking wrapper over the asynchronous
/// eval::EvalService (eval/service.hpp): it submits the shard's cases
/// as one batch and waits, so the blocking and async front-ends share
/// one execution path.
///
/// Memory model: every case's DP solves run on the evaluating thread's
/// own dp::Workspace (the service hands each scheduler participant its
/// Workspace::local()), so a long sweep performs zero steady-state
/// allocations in the DP kernel regardless of how cases are stolen
/// across workers. Workspace state never leaks into results — any
/// (jobs, chunk, shard) combination stays bit-identical to the serial
/// loop.

#include <cstddef>
#include <span>
#include <vector>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/context.hpp"
#include "eval/experiments.hpp"
#include "tech/technology.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

/// One unit of batch work: a net, a timing target, and both schemes'
/// options. The pointed-to net must outlive the run_cases call.
/// BaselineOptions carries a repeater library and so has no default
/// state — build cases with aggregate init:
///   Case{&net, tau_t_fs, core::RipOptions{}, baseline}
struct Case {
  const net::Net* net;
  double tau_t_fs;
  core::RipOptions rip;
  core::BaselineOptions baseline;
  /// Cooperative per-case deadline in milliseconds (<= 0 = none). The
  /// evaluating thread checks it between solve stages; a blown budget
  /// fails this case's future with util::DeadlineExceeded without
  /// touching its batch neighbours. Each retry attempt (see
  /// ServiceOptions::retry) gets a fresh budget.
  double deadline_ms = 0;
};

/// Knobs of the batch engine.
struct BatchOptions {
  /// Worker threads: 1 = serial on the calling thread (the reference
  /// path the golden tests pin), 0 = one per hardware thread.
  int jobs = 1;
  /// Chunking/stealing policy for the in-process fan-out. Any policy
  /// yields bit-identical results; it only changes load balance.
  ChunkPolicy chunk;
  /// Cross-process sharding: this process evaluates only the cases with
  /// case_shard(i, shard_count) == shard_index. Defaults to the single,
  /// unsharded shard.
  int shard_index = 0;
  int shard_count = 1;
  /// Ambient solve state (eval/context.hpp): the shared frontier cache
  /// every case's target-independent DP solves consult, and the
  /// objective backend every solve minimizes. `context.workspace` must
  /// stay nullptr — each scheduler participant evaluates on its own
  /// dp::Workspace::local(). Everything pointed at must outlive the
  /// run_cases call.
  SolveContext context;
};

/// Deterministic case→shard assignment: case i belongs to shard
/// i % shard_count. Every case lands in exactly one shard.
int case_shard(std::size_t case_index, int shard_count);

/// Global indices owned by one shard, in ascending (input) order.
std::vector<std::size_t> shard_case_indices(std::size_t case_count,
                                            int shard_index,
                                            int shard_count);

/// Evaluate this shard's cases (RIP + the DP baseline) and return their
/// results in input order — with the default unsharded options, that is
/// every case. Runtimes (`rip_runtime_s`, `dp_runtime_s`) are wall
/// clock measured inside the worker, per task — never around the whole
/// batch — so Table 1/2 runtime columns stay meaningful at any job
/// count. jobs=1 is the plain serial loop; jobs>1 is bit-identical
/// because cases are independent and each writes only its own slot.
std::vector<CaseResult> run_cases(const tech::Technology& tech,
                                  std::span<const Case> cases,
                                  const BatchOptions& options = {});

/// Reassemble per-shard run_cases outputs (element s = shard s's
/// results, all from the same shard_count = shards.size() split) into
/// the full batch result, bit-identical to an unsharded run. Throws if
/// the shard sizes are inconsistent with the round-robin assignment.
/// NOTE: this positional overload has no way to notice two equal-size
/// shards passed in the wrong slots — prefer the CaseShard overload
/// below, which carries each shard's own index/count metadata and
/// rejects every inconsistent combination instead of mis-interleaving.
std::vector<CaseResult> merge_shards(
    std::span<const std::vector<CaseResult>> shards);

/// A shard's results together with the split metadata it was produced
/// under — what a sharded driver should ship between processes so the
/// merge can *verify* the reassembly instead of trusting argument order.
struct CaseShard {
  int shard_index = 0;
  int shard_count = 1;
  std::vector<CaseResult> results;
};

/// Metadata-checked merge: shards may arrive in any order. Throws
/// rip::Error if any shard disagrees on shard_count, an index is
/// duplicated, out of range, or missing, or a shard's result count does
/// not match its round-robin slice.
std::vector<CaseResult> merge_shards(std::span<const CaseShard> shards);

}  // namespace rip::eval
