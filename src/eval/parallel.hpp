#pragma once

/// @file parallel.hpp
/// The parallel batch-evaluation engine. The paper's whole evaluation
/// (Tables 1-2, Fig. 7) is an embarrassingly parallel sweep over
/// (net, target, scheme) cases; this module fans those cases out over a
/// util::ThreadPool while keeping results bit-identical to the serial
/// loop: every case writes only its own slot and reductions stay serial
/// in input order. `eval::run_table1/run_table2/run_fig7`, rip_cli and
/// the bench binaries all sit on top of it via the `--jobs` knob.

#include <span>
#include <vector>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "eval/experiments.hpp"
#include "tech/technology.hpp"

namespace rip::eval {

/// One unit of batch work: a net, a timing target, and both schemes'
/// options. The pointed-to net must outlive the run_cases call.
/// BaselineOptions carries a repeater library and so has no default
/// state — build cases with aggregate init:
///   Case{&net, tau_t_fs, core::RipOptions{}, baseline}
struct Case {
  const net::Net* net;
  double tau_t_fs;
  core::RipOptions rip;
  core::BaselineOptions baseline;
};

/// Knobs of the batch engine.
struct BatchOptions {
  /// Worker threads: 1 = serial on the calling thread (the reference
  /// path the golden tests pin), 0 = one per hardware thread.
  int jobs = 1;
};

/// Evaluate every case (RIP + the DP baseline) and return results in
/// input order. Runtimes (`rip_runtime_s`, `dp_runtime_s`) are wall
/// clock measured inside the worker, per task — never around the whole
/// batch — so Table 1/2 runtime columns stay meaningful at any job
/// count. jobs=1 is the plain serial loop; jobs>1 is bit-identical
/// because cases are independent and each writes only its own slot.
std::vector<CaseResult> run_cases(const tech::Technology& tech,
                                  std::span<const Case> cases,
                                  const BatchOptions& options = {});

}  // namespace rip::eval
