#pragma once

/// @file solve_cache.hpp
/// Sharded, thread-safe LRU cache of Pareto-frontier solves.
///
/// Production traffic against a repeater-insertion service is dominated
/// by near-duplicate queries: the same nets re-solved at slightly
/// different timing targets while a caller explores the power/delay
/// trade-off. The chain DP already computes the *complete* frontier per
/// solve, and PR 6's target-relative kernel makes that frontier
/// independent of the target — so caching one solve answers every target
/// on that net with an O(frontier) selection walk instead of a DP run.
///
/// Design:
///  - Keyed on dp::chain_solve_key — a canonical 64-bit hash of (net
///    geometry, device, library contents, candidates, mode,
///    allowed_buffers), compared by hash only (util/hash.hpp documents
///    the collision trade).
///  - Sharded: N independently-locked shards, each an unordered_map plus
///    an intrusive LRU list. The shard stripe is derived by re-mixing the
///    key (Hash64::mix) so it does not correlate with the map's bucket
///    index. Concurrent solvers on different nets almost never contend.
///  - Values are shared_ptr<const ChainFrontierSolve>: a hit hands out a
///    reference without copying, and an entry evicted mid-use stays alive
///    until its last reader drops it.
///  - Capacity is a global entry bound, enforced per shard
///    (ceil(capacity/shards) each). With capacity <= shards the shard
///    count collapses to 1 so eviction pressure behaves as a strict
///    global LRU (the capacity-1 property tests rely on this).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dp/chain_dp.hpp"

namespace rip::eval {

struct SolveCacheOptions {
  /// Maximum retained entries across all shards (>= 1).
  std::size_t capacity = 1024;
  /// Requested shard count; clamped to [1, capacity]. More shards =
  /// less lock contention, slightly sloppier per-shard LRU capacity.
  std::size_t shard_count = 16;
  /// Byte budget across all shards (0 = unbounded). Enforced per shard
  /// (budget/shards each) by LRU eviction on insert, so a long-lived
  /// service under an adversarial key stream degrades hit rate instead
  /// of growing without bound. A shard always keeps at least its newest
  /// entry, so one oversized frontier cannot wedge the cache.
  std::uint64_t max_bytes = 0;
  /// Entry time-to-live (0 = entries never expire). Expiry is lazy: a
  /// lookup that finds an entry older than the TTL drops it and counts
  /// a miss plus a ttl_eviction. Keeps long-lived services from
  /// answering from arbitrarily stale frontiers after re-tuning.
  std::chrono::nanoseconds ttl{0};
};

/// Counter snapshot, summed over shards. Monotonic except entries/bytes.
struct SolveCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< entries stored (racing dups excluded)
  std::uint64_t evictions = 0;   ///< LRU evictions (capacity or byte budget)
  std::uint64_t ttl_evictions = 0;   ///< entries dropped as expired
  std::uint64_t insert_failures = 0; ///< inserts dropped (injected faults)
  std::uint64_t entries = 0;     ///< currently resident entries
  std::uint64_t bytes = 0;       ///< approximate resident footprint

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// The concrete dp::ChainSolveCache. Thread-safe; const lookups still
/// take the shard lock (they update LRU order and counters).
class SolveCache final : public dp::ChainSolveCache {
 public:
  explicit SolveCache(const SolveCacheOptions& options = {});

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  std::shared_ptr<const dp::ChainFrontierSolve> lookup(
      std::uint64_t key) override;
  std::shared_ptr<const dp::ChainFrontierSolve> insert(
      std::uint64_t key, dp::ChainFrontierSolve solve) override;

  /// Drop every entry (counters other than entries/bytes are kept).
  void clear();

  SolveCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const dp::ChainFrontierSolve> solve;
    std::list<std::uint64_t>::iterator lru_it;
    std::chrono::steady_clock::time_point stored_at;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
    /// Front = most recently used; back = eviction victim.
    std::list<std::uint64_t> lru;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t ttl_evictions = 0;
    std::uint64_t insert_failures = 0;
    std::uint64_t bytes = 0;
  };

  Shard& shard_of(std::uint64_t key);
  void evict_lru(Shard& shard);

  std::size_t capacity_ = 1;
  std::size_t shard_capacity_ = 1;
  std::uint64_t shard_byte_budget_ = 0;  ///< 0 = unbounded
  std::chrono::nanoseconds ttl_{0};
  std::vector<Shard> shards_;
};

}  // namespace rip::eval
