#include "eval/experiments.hpp"

#include <cmath>

#include "dp/workspace.hpp"
#include "eval/parallel.hpp"
#include "eval/sharded_sweep.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace rip::eval {

CaseResult run_case(const net::Net& net, const tech::Technology& tech,
                    double tau_t_fs, const core::RipOptions& rip_options,
                    const core::BaselineOptions& baseline_options,
                    const SolveContext& context) {
  dp::Workspace& ws = context.workspace != nullptr ? *context.workspace
                                                   : dp::Workspace::local();
  CaseResult out;
  out.tau_t_fs = tau_t_fs;

  // Injected worker faults, keyed by the case's stable identity so the
  // same cases fault at any job count: a latency spike first (so a
  // spike can push a deadlined case over its budget), then an error.
  fire_fault("solve.delay", context.fault_key);
  fire_fault("solve.err", context.fault_key);
  const Deadline* deadline = context.deadline;
  if (deadline != nullptr) deadline->check("case start");

  WallTimer timer;
  const core::RipResult rip =
      core::rip_insert(net, tech.device(), tau_t_fs, rip_options, ws,
                       context.cache, context.backend);
  out.rip_runtime_s = timer.seconds();
  out.rip_feasible = rip.status == dp::Status::kOptimal;
  out.rip_width_u = rip.total_width_u;

  if (deadline != nullptr) deadline->check("between RIP and baseline");

  timer.reset();
  const dp::ChainDpResult dp =
      core::run_baseline(net, tech.device(), tau_t_fs, baseline_options, ws,
                         context.cache, context.backend);
  out.dp_runtime_s = timer.seconds();
  out.dp_feasible = dp.status == dp::Status::kOptimal;
  out.dp_width_u = dp.total_width_u;

  if (out.rip_feasible && out.dp_feasible && out.dp_width_u > 0) {
    out.improvement_pct =
        (out.dp_width_u - out.rip_width_u) / out.dp_width_u * 100.0;
  }
  return out;
}

// ------------------------------------------------------------------ Table 1

// All three experiments are thin adapters over the generic sharded
// sweep (eval/sharded_sweep.hpp): each owns only its case-space
// geometry (how a flat index decodes to (net, granularity, target)),
// the solve bodies, and the serial merge-time reduction. Every solve
// runs on the evaluating worker's own dp::Workspace::local() and may
// minimize a pluggable objective backend (config.backend); the
// reductions run serially in the original input order, so any
// (shard_count, jobs) combination reproduces the serial bits.

Table1Shard run_table1_shard(const tech::Technology& tech,
                             const Table1Config& config, int shard_index,
                             int shard_count) {
  RIP_REQUIRE(!config.granularities_u.empty(),
              "table 1 needs at least one granularity");
  const auto workload =
      make_paper_workload(tech, config.net_count, config.seed, {},
                          {10.0, 400.0, 10.0, 200.0}, config.jobs);

  const std::size_t net_n = workload.size();
  const std::size_t tgt_n = static_cast<std::size_t>(config.targets_per_net);
  const std::size_t g_n = config.granularities_u.size();

  std::vector<std::vector<double>> targets;
  targets.reserve(net_n);
  for (const auto& wn : workload) {
    targets.push_back(
        timing_targets_fs(wn.tau_min_fs, config.targets_per_net));
  }

  Table1Shard shard;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  for (const auto& wn : workload) shard.net_names.push_back(wn.net.name());

  // RIP runs once per (net, target); each baseline granularity reuses it.
  shard.rip = run_sweep_slice<SolveOutcome>(
      net_n * tgt_n, config.jobs, shard_index, shard_count,
      [&](std::size_t k) {
        const std::size_t ni = k / tgt_n;
        const std::size_t ti = k % tgt_n;
        const auto rip = core::rip_insert(
            workload[ni].net, tech.device(), targets[ni][ti], config.rip,
            dp::Workspace::local(), nullptr, config.backend);
        return SolveOutcome{rip.status == dp::Status::kOptimal,
                            rip.total_width_u};
      });

  std::vector<core::BaselineOptions> baselines;
  baselines.reserve(g_n);
  for (const double g : config.granularities_u) {
    baselines.push_back(core::BaselineOptions::uniform_library(
        config.baseline_min_width_u, g, config.baseline_library_size,
        config.pitch_um));
  }
  shard.dp = run_sweep_slice<SolveOutcome>(
      net_n * g_n * tgt_n, config.jobs, shard_index, shard_count,
      [&](std::size_t k) {
        const std::size_t ni = k / (g_n * tgt_n);
        const std::size_t gi = (k / tgt_n) % g_n;
        const std::size_t ti = k % tgt_n;
        const auto dp = core::run_baseline(
            workload[ni].net, tech.device(), targets[ni][ti], baselines[gi],
            dp::Workspace::local(), nullptr, config.backend);
        return SolveOutcome{dp.status == dp::Status::kOptimal,
                            dp.total_width_u};
      });
  return shard;
}

Table1Result merge_table1_shards(const Table1Config& config,
                                 std::span<const Table1Shard> shards) {
  RIP_REQUIRE(!shards.empty(), "merge needs at least one shard");
  const std::size_t net_n = shards.front().net_names.size();
  const std::size_t tgt_n = static_cast<std::size_t>(config.targets_per_net);
  const std::size_t g_n = config.granularities_u.size();

  // Reassemble the full flat case spaces from the round-robin slices.
  std::vector<SolveOutcome> rip_runs(net_n * tgt_n);
  std::vector<SolveOutcome> dp_runs(net_n * g_n * tgt_n);
  reassemble_sweep_shards(shards, rip_runs, dp_runs,
                          [&](const Table1Shard& shard) {
                            RIP_REQUIRE(
                                shard.net_names == shards.front().net_names,
                                "shards disagree on the workload");
                          });

  Table1Result result;
  result.granularities_u = config.granularities_u;
  std::vector<RunningStats> avg_max(g_n);
  std::vector<RunningStats> avg_mean(g_n);
  RunningStats avg_violations;

  for (std::size_t ni = 0; ni < net_n; ++ni) {
    Table1Row row;
    row.net_name = shards.front().net_names[ni];
    for (std::size_t ti = 0; ti < tgt_n; ++ti) {
      if (!rip_runs[ni * tgt_n + ti].feasible) ++row.rip_violations;
    }

    for (std::size_t gi = 0; gi < g_n; ++gi) {
      Table1Cell cell;
      RunningStats improvements;
      for (std::size_t ti = 0; ti < tgt_n; ++ti) {
        const auto& dp = dp_runs[(ni * g_n + gi) * tgt_n + ti];
        if (!dp.feasible) {
          ++cell.dp_violations;
          continue;
        }
        const auto& rip = rip_runs[ni * tgt_n + ti];
        if (rip.feasible && dp.width_u > 0) {
          improvements.add((dp.width_u - rip.width_u) / dp.width_u * 100.0);
          ++cell.compared;
        }
      }
      if (improvements.count() > 0) {
        cell.delta_max_pct = improvements.max();
        cell.delta_mean_pct = improvements.mean();
      }
      avg_max[gi].add(cell.delta_max_pct);
      avg_mean[gi].add(cell.delta_mean_pct);
      if (gi == 0) avg_violations.add(cell.dp_violations);
      row.cells.push_back(cell);
    }
    result.rows.push_back(std::move(row));
  }

  result.average.net_name = "Ave";
  for (std::size_t gi = 0; gi < g_n; ++gi) {
    Table1Cell cell;
    cell.delta_max_pct = avg_max[gi].mean();
    cell.delta_mean_pct = avg_mean[gi].mean();
    cell.dp_violations =
        gi == 0 ? static_cast<int>(std::lround(avg_violations.mean())) : 0;
    result.average.cells.push_back(cell);
  }
  return result;
}

Table1Result run_table1(const tech::Technology& tech,
                        const Table1Config& config) {
  const Table1Shard shard = run_table1_shard(tech, config, 0, 1);
  return merge_table1_shards(config, {&shard, 1});
}

Table to_table(const Table1Result& result) {
  std::vector<std::string> headers{"Net"};
  for (std::size_t gi = 0; gi < result.granularities_u.size(); ++gi) {
    const std::string g = fmt_f(result.granularities_u[gi], 0);
    headers.push_back("dMax%(g=" + g + "u)");
    if (gi == 0) headers.push_back("V_DP(g=" + g + "u)");
    else headers.push_back("dMean%(g=" + g + "u)");
  }
  Table table(headers);
  auto emit = [&](const Table1Row& row) {
    std::vector<std::string> cells{row.net_name};
    for (std::size_t gi = 0; gi < row.cells.size(); ++gi) {
      cells.push_back(fmt_f(row.cells[gi].delta_max_pct, 2));
      if (gi == 0) {
        cells.push_back(std::to_string(row.cells[gi].dp_violations));
      } else {
        cells.push_back(fmt_f(row.cells[gi].delta_mean_pct, 2));
      }
    }
    table.add_row(std::move(cells));
  };
  for (const auto& row : result.rows) emit(row);
  emit(result.average);
  return table;
}

// ------------------------------------------------------------------ Table 2

Table2Shard run_table2_shard(const tech::Technology& tech,
                             const Table2Config& config, int shard_index,
                             int shard_count) {
  RIP_REQUIRE(!config.granularities_u.empty(),
              "table 2 needs at least one granularity");
  const auto workload =
      make_paper_workload(tech, config.net_count, config.seed, {},
                          {10.0, 400.0, 10.0, 200.0}, config.jobs);

  const std::size_t net_n = workload.size();
  const std::size_t tgt_n = static_cast<std::size_t>(config.targets_per_net);
  const std::size_t g_n = config.granularities_u.size();

  std::vector<std::vector<double>> all_targets;
  all_targets.reserve(net_n);
  for (const auto& wn : workload) {
    all_targets.push_back(
        timing_targets_fs(wn.tau_min_fs, config.targets_per_net));
  }

  Table2Shard shard;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  for (const auto& wn : workload) shard.net_names.push_back(wn.net.name());

  // RIP runs once per (net, target); every granularity row reuses it.
  // Runtimes are wall clock per task, taken inside the worker. The DP
  // flat space is granularity x net x target — granularity-major, the
  // unsharded loop order.
  shard.rip = run_sweep_slice<TimedSolveOutcome>(
      net_n * tgt_n, config.jobs, shard_index, shard_count,
      [&](std::size_t k) {
        const std::size_t ni = k / tgt_n;
        const std::size_t ti = k % tgt_n;
        WallTimer timer;
        const auto rip = core::rip_insert(
            workload[ni].net, tech.device(), all_targets[ni][ti], config.rip,
            dp::Workspace::local(), nullptr, config.backend);
        TimedSolveOutcome oc;
        oc.runtime_s = timer.seconds();
        oc.feasible = rip.status == dp::Status::kOptimal;
        oc.width_u = rip.total_width_u;
        return oc;
      });

  std::vector<core::BaselineOptions> baselines;
  baselines.reserve(g_n);
  for (const double g : config.granularities_u) {
    baselines.push_back(core::BaselineOptions::range_library(
        config.range_min_width_u, config.range_max_width_u, g,
        config.pitch_um));
  }
  shard.dp = run_sweep_slice<TimedSolveOutcome>(
      g_n * net_n * tgt_n, config.jobs, shard_index, shard_count,
      [&](std::size_t k) {
        const std::size_t gi = k / (net_n * tgt_n);
        const std::size_t ni = (k / tgt_n) % net_n;
        const std::size_t ti = k % tgt_n;
        WallTimer timer;
        const auto dp = core::run_baseline(
            workload[ni].net, tech.device(), all_targets[ni][ti],
            baselines[gi], dp::Workspace::local(), nullptr, config.backend);
        TimedSolveOutcome oc;
        oc.runtime_s = timer.seconds();
        oc.feasible = dp.status == dp::Status::kOptimal;
        oc.width_u = dp.total_width_u;
        return oc;
      });
  return shard;
}

Table2Result merge_table2_shards(const Table2Config& config,
                                 std::span<const Table2Shard> shards) {
  RIP_REQUIRE(!shards.empty(), "merge needs at least one shard");
  const std::size_t net_n = shards.front().net_names.size();
  const std::size_t tgt_n = static_cast<std::size_t>(config.targets_per_net);
  const std::size_t g_n = config.granularities_u.size();

  std::vector<TimedSolveOutcome> rip_runs(net_n * tgt_n);
  std::vector<TimedSolveOutcome> dp_runs(g_n * net_n * tgt_n);
  reassemble_sweep_shards(shards, rip_runs, dp_runs,
                          [&](const Table2Shard& shard) {
                            RIP_REQUIRE(
                                shard.net_names == shards.front().net_names,
                                "shards disagree on the workload");
                          });

  RunningStats rip_time;
  for (const auto& oc : rip_runs) rip_time.add(oc.runtime_s);

  Table2Result result;
  for (std::size_t gi = 0; gi < g_n; ++gi) {
    Table2Row row;
    row.granularity_u = config.granularities_u[gi];
    RunningStats improvements;
    RunningStats dp_time;
    for (std::size_t ni = 0; ni < net_n; ++ni) {
      for (std::size_t ti = 0; ti < tgt_n; ++ti) {
        const auto& dp = dp_runs[(gi * net_n + ni) * tgt_n + ti];
        dp_time.add(dp.runtime_s);
        const auto& rip = rip_runs[ni * tgt_n + ti];
        if (dp.feasible && rip.feasible && dp.width_u > 0) {
          improvements.add((dp.width_u - rip.width_u) / dp.width_u * 100.0);
        }
      }
    }
    row.compared = static_cast<int>(improvements.count());
    if (row.compared > 0) row.delta_mean_pct = improvements.mean();
    row.dp_runtime_s = dp_time.mean();
    row.rip_runtime_s = rip_time.mean();
    row.speedup =
        row.rip_runtime_s > 0 ? row.dp_runtime_s / row.rip_runtime_s : 0;
    result.rows.push_back(row);
  }
  return result;
}

Table2Result run_table2(const tech::Technology& tech,
                        const Table2Config& config) {
  const Table2Shard shard = run_table2_shard(tech, config, 0, 1);
  return merge_table2_shards(config, {&shard, 1});
}

Table to_table(const Table2Result& result) {
  Table table({"g_DP(u)", "delta%", "T_DP(s)", "T_RIP(s)", "Speedup"});
  for (const auto& row : result.rows) {
    table.add_row({fmt_f(row.granularity_u, 0), fmt_f(row.delta_mean_pct, 1),
                   fmt_f(row.dp_runtime_s, 4), fmt_f(row.rip_runtime_s, 4),
                   fmt_f(row.speedup, 1)});
  }
  return table;
}

// ------------------------------------------------------------------ Fig. 7

Fig7Shard run_fig7_shard(const tech::Technology& tech,
                         const Fig7Config& config, int shard_index,
                         int shard_count) {
  RIP_REQUIRE(!config.granularities_u.empty(),
              "fig 7 needs at least one granularity");
  const auto workload =
      make_paper_workload(tech, config.net_index + 1, config.seed, {},
                          {10.0, 400.0, 10.0, 200.0}, config.jobs);
  const auto& wn = workload.back();

  Fig7Shard shard;
  shard.shard_index = shard_index;
  shard.shard_count = shard_count;
  shard.net_name = wn.net.name();
  shard.tau_min_fs = wn.tau_min_fs;

  const auto targets = timing_targets_fs(wn.tau_min_fs, config.points);
  const std::size_t tgt_n = targets.size();
  const std::size_t g_n = config.granularities_u.size();

  // RIP once per target; both series reuse it. The DP flat space is
  // granularity x target (granularity-major, the unsharded loop order).
  shard.rip = run_sweep_slice<SolveOutcome>(
      tgt_n, config.jobs, shard_index, shard_count, [&](std::size_t k) {
        const auto rip = core::rip_insert(
            wn.net, tech.device(), targets[k], config.rip,
            dp::Workspace::local(), nullptr, config.backend);
        return SolveOutcome{rip.status == dp::Status::kOptimal,
                            rip.total_width_u};
      });

  std::vector<core::BaselineOptions> baselines;
  baselines.reserve(g_n);
  for (const double g : config.granularities_u) {
    baselines.push_back(core::BaselineOptions::uniform_library(
        config.baseline_min_width_u, g, config.baseline_library_size,
        config.pitch_um));
  }
  shard.dp = run_sweep_slice<SolveOutcome>(
      g_n * tgt_n, config.jobs, shard_index, shard_count,
      [&](std::size_t k) {
        const std::size_t gi = k / tgt_n;
        const std::size_t ti = k % tgt_n;
        const auto dp = core::run_baseline(
            wn.net, tech.device(), targets[ti], baselines[gi],
            dp::Workspace::local(), nullptr, config.backend);
        return SolveOutcome{dp.status == dp::Status::kOptimal,
                            dp.total_width_u};
      });
  return shard;
}

Fig7Result merge_fig7_shards(const Fig7Config& config,
                             std::span<const Fig7Shard> shards) {
  RIP_REQUIRE(!shards.empty(), "merge needs at least one shard");
  const double tau_min_fs = shards.front().tau_min_fs;
  const auto targets = timing_targets_fs(tau_min_fs, config.points);
  const std::size_t tgt_n = targets.size();
  const std::size_t g_n = config.granularities_u.size();

  std::vector<SolveOutcome> rip_runs(tgt_n);
  std::vector<SolveOutcome> dp_runs(g_n * tgt_n);
  reassemble_sweep_shards(shards, rip_runs, dp_runs,
                          [&](const Fig7Shard& shard) {
                            RIP_REQUIRE(
                                shard.net_name == shards.front().net_name &&
                                    shard.tau_min_fs == tau_min_fs,
                                "shards disagree on the swept net");
                          });

  Fig7Result result;
  result.net_name = shards.front().net_name;
  result.tau_min_fs = tau_min_fs;
  for (std::size_t gi = 0; gi < g_n; ++gi) {
    Fig7Series series;
    series.granularity_u = config.granularities_u[gi];
    for (std::size_t ti = 0; ti < tgt_n; ++ti) {
      const auto& dp = dp_runs[gi * tgt_n + ti];
      const auto& rip = rip_runs[ti];
      Fig7Point point;
      point.tau_t_fs = targets[ti];
      point.tau_t_over_tau_min = targets[ti] / tau_min_fs;
      point.dp_feasible = dp.feasible;
      if (point.dp_feasible && rip.feasible && dp.width_u > 0) {
        point.improvement_pct =
            (dp.width_u - rip.width_u) / dp.width_u * 100.0;
      }
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

Fig7Result run_fig7(const tech::Technology& tech, const Fig7Config& config) {
  const Fig7Shard shard = run_fig7_shard(tech, config, 0, 1);
  return merge_fig7_shards(config, {&shard, 1});
}

Table to_table(const Fig7Result& result) {
  std::vector<std::string> headers{"tau_t(ns)", "tau_t/tau_min"};
  for (const auto& s : result.series) {
    headers.push_back("impr%(g=" + fmt_f(s.granularity_u, 0) + "u)");
  }
  Table table(headers);
  if (result.series.empty()) return table;
  const std::size_t n = result.series.front().points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p0 = result.series.front().points[i];
    std::vector<std::string> cells{
        fmt_f(units::fs_to_ns(p0.tau_t_fs), 3),
        fmt_f(p0.tau_t_over_tau_min, 3)};
    for (const auto& s : result.series) {
      const auto& p = s.points[i];
      cells.push_back(p.dp_feasible ? fmt_f(p.improvement_pct, 2)
                                    : std::string("VIOL"));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace rip::eval
