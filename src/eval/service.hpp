#pragma once

/// @file service.hpp
/// The asynchronous batch-evaluation service: a submit/future front-end
/// over the persistent work-stealing scheduler (util/thread_pool.hpp).
/// Where eval::run_cases blocks the caller for the whole batch, an
/// EvalService accepts cases one at a time or in batches, returns a
/// future per case, and evaluates them in the background — the shape an
/// iterative optimization loop (resubmit, refine, resubmit) or a
/// network front-end needs. run_cases itself is now a thin blocking
/// wrapper over this service, so there is exactly one execution path.
///
/// Scheduling model:
///   - Pending cases sit in one bounded queue (ServiceOptions::
///     max_pending; submit blocks when it is full — backpressure).
///   - A single dispatcher thread drains the queue in rounds: all
///     currently queued cases, ordered by priority (high first) and
///     FIFO within a priority, become one scheduler region. While a
///     round is in flight new submissions queue up for the next round,
///     so a high-priority case submitted mid-round runs before every
///     lower-priority case that is still queued.
///   - jobs == 1 evaluates the round serially on the dispatcher thread
///     and never creates the scheduler (the same bypass rule as
///     parallel_for_indexed); jobs > 1 hands the round to pool workers
///     via Scheduler::submit_region and the dispatcher keeps accepting.
///   - Queued (not yet started) cases can be cancelled cooperatively:
///     their futures fail with CancelledError. Started cases always run
///     to completion.
///   - Destruction drains: every accepted case is evaluated (or was
///     cancelled) and every future is ready before the destructor
///     returns. Call cancel_pending() first for a fast shutdown.
///
/// Determinism: a case's result depends only on the Case itself — the
/// service adds no shared state to the evaluation — so any submission
/// order, job count, chunk policy, priority mix, or round split yields
/// results bit-identical to the serial loop, exactly like the
/// index-addressed-slot discipline of the blocking engine. The RNG
/// splits that build workloads happen before cases are submitted, so
/// the seed-2005 golden pins hold through the service.

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "eval/context.hpp"
#include "eval/experiments.hpp"
#include "eval/parallel.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {

/// Scheduling priority of a submission. Priorities order queued cases
/// between dispatch rounds; within one priority, submission (FIFO)
/// order is kept.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

/// Transient-failure retry policy. An evaluation that throws a
/// util::TransientError (flaky I/O, an injected 'err' fault) is re-run
/// up to max_attempts times total, sleeping base * 2^(attempt-1)
/// between attempts — deterministic backoff, no jitter, so test runs
/// are reproducible. Non-transient errors (including DeadlineExceeded
/// and injected 'fail' faults) are never retried.
struct RetryPolicy {
  /// Total attempts per case, including the first (>= 1; 1 = no retry).
  int max_attempts = 1;
  /// Backoff unit: sleep base * 2^(attempt-1) after failed attempt N.
  std::chrono::milliseconds base{1};
};

/// Knobs of the async service.
struct ServiceOptions {
  /// Worker threads per dispatch round: 1 = evaluate serially on the
  /// dispatcher thread (never creates the scheduler), 0 = one per
  /// hardware thread.
  int jobs = 1;
  /// Chunking/stealing policy for rounds run on the scheduler. Any
  /// policy yields bit-identical results; it only changes load balance.
  ChunkPolicy chunk;
  /// Bounded-queue backpressure: submit blocks while this many cases
  /// are already queued (not yet started). 0 = unbounded.
  std::size_t max_pending = 0;
  /// Construct with dispatch paused (submissions queue up but nothing
  /// runs until resume()) — for tests and staged startup.
  bool start_paused = false;
  /// Transient-failure retry policy applied to every evaluation.
  RetryPolicy retry;
  /// Ambient solve state (eval/context.hpp): the shared frontier cache
  /// consulted by every case's target-independent DP solves (results
  /// are bit-identical with or without it; EvalService::stats()
  /// surfaces its counters) and the objective backend every case
  /// minimizes. `context.workspace` must stay nullptr — each service
  /// thread evaluates on its own dp::Workspace::local(). Everything
  /// pointed at must outlive the service.
  SolveContext context;
};

/// Observability snapshot of a service (EvalService::stats()).
struct ServiceStats {
  /// Cases this service has evaluated to completion or failure
  /// (cancelled cases are not evaluations and are not counted).
  std::uint64_t cases_evaluated = 0;
  /// Transient-failure re-runs performed under ServiceOptions::retry
  /// (an evaluation that succeeds on attempt 3 counts 2 retries).
  std::uint64_t retries = 0;
  /// Latency distributions: time a case sat queued before a worker
  /// picked it up, and time the evaluation itself ran (all attempts of
  /// a retried case count as one run). Quantiles are upper bounds of
  /// power-of-two buckets; count/mean/max are exact.
  LatencySnapshot queue_time;
  LatencySnapshot run_time;
  /// Whether a SolveCache is attached; `cache` is all zeros otherwise.
  bool cache_attached = false;
  SolveCacheStats cache;
};

/// Thrown through the future of a case that was cancelled before it
/// started (BatchHandle::cancel / EvalService::cancel_pending).
class CancelledError : public Error {
 public:
  CancelledError() : Error("evaluation case cancelled before it started") {}
};

namespace detail {
struct BatchState;
struct ServiceState;
}  // namespace detail

/// One submitted batch: per-case futures, progress counters, and
/// cooperative cancellation. Handles are cheap shared references to the
/// batch's state and stay valid after the service is destroyed.
class BatchHandle {
 public:
  BatchHandle() = default;

  /// Cases in the batch (0 for a default-constructed handle).
  std::size_t size() const;

  /// The future of case `i` (batch submission order). shared_future, so
  /// it can be read repeatedly and by multiple threads. Throws the
  /// case's exception on get(): the evaluation failure, or
  /// CancelledError if the case was cancelled before it started.
  std::shared_future<CaseResult> future(std::size_t i) const;

  /// Progress counters. settled == completed + failed + cancelled;
  /// the batch is done when settled() == size().
  std::size_t settled() const;
  std::size_t completed() const;  ///< evaluated successfully
  std::size_t failed() const;     ///< evaluation threw
  std::size_t cancelled() const;  ///< cancelled before starting

  /// Block until every case is settled AND the batch completion
  /// callback (if any) has returned.
  void wait_all() const;

  /// wait_all, then collect the results in submission order. If any
  /// case failed, rethrows the exception of the lowest failed index —
  /// the same lowest-failing-index discipline as the blocking engine
  /// (cancellations, which may be fallout of that failure under
  /// cancel-on-failure, never mask it). If cases were only cancelled,
  /// rethrows the lowest one's CancelledError.
  std::vector<CaseResult> results() const;

  /// Cooperatively cancel every case of this batch that has not yet
  /// started; their futures fail with CancelledError. Cases already
  /// dispatched run to completion. Returns how many were cancelled.
  /// Safe to call at any time, including after the service is gone.
  std::size_t cancel();

 private:
  friend class EvalService;
  explicit BatchHandle(std::shared_ptr<detail::BatchState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::BatchState> state_;
};

/// The asynchronous batch-evaluation service. One instance owns one
/// dispatcher thread and serves any number of submitters concurrently;
/// all public methods are thread-safe. The Technology (and every
/// submitted Case's net) must outlive the service.
///
/// Reentrancy rule: evaluation thunks and batch completion callbacks
/// run on service threads (the dispatcher, or a pool worker of the
/// in-flight round). They may submit follow-up work, but on a service
/// with a bounded queue (max_pending > 0) such a submit can block on
/// backpressure that only the very thread doing the submitting would
/// relieve — a deadlock the destructor then inherits. A driver loop
/// that resubmits from callbacks must use an unbounded queue or hand
/// the follow-up submission to a consumer thread.
class EvalService {
 public:
  explicit EvalService(const tech::Technology& tech,
                       const ServiceOptions& options = {});
  /// Drains: blocks until every accepted case is settled, then joins
  /// the dispatcher. Every future handed out is ready afterwards.
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Submit one case (RIP + DP baseline, eval::run_case). Blocks while
  /// the pending queue is full. The returned future yields the
  /// CaseResult or rethrows the evaluation's exception.
  std::future<CaseResult> submit(const Case& c,
                                 Priority priority = Priority::kNormal);

  /// Submit an arbitrary evaluation thunk on the same queue — the
  /// escape hatch for RIP-only sweeps (rip_cli sweep --async) and for
  /// tests that need gates or failure injection. The thunk runs exactly
  /// once on a service thread; its return value (or exception) settles
  /// the future. Side-effect-only thunks may return CaseResult{}.
  std::future<CaseResult> submit_fn(std::function<CaseResult()> fn,
                                    Priority priority = Priority::kNormal);

  /// Submit a batch of cases (one queue entry each, FIFO within the
  /// batch). `on_complete`, if given, runs exactly once after the last
  /// case of the batch settles — every future is ready by then — and
  /// before wait_all() returns; it runs on a service thread (or on the
  /// submitting thread for an empty batch). Blocks while the pending
  /// queue is full; earlier cases of the batch may already be running
  /// while later ones are still being enqueued. With
  /// `cancel_remaining_on_failure`, a failing case makes the batch's
  /// remaining not-yet-run cases settle as cancelled instead of being
  /// evaluated — the early-abort behavior run_cases relies on.
  BatchHandle submit_batch(const std::vector<Case>& cases,
                           Priority priority = Priority::kNormal,
                           std::function<void()> on_complete = {},
                           bool cancel_remaining_on_failure = false);

  /// Pause/resume dispatch. While paused, submissions are accepted (and
  /// backpressure still applies) but no new round starts; a round
  /// already in flight finishes. Destruction resumes automatically.
  void pause();
  void resume();

  /// Cases queued but not yet dispatched (the backpressure quantity).
  std::size_t pending_count() const;

  /// True while a dispatch round is being evaluated.
  bool round_in_flight() const;

  /// Cancel every queued (not yet started) case across all batches;
  /// their futures fail with CancelledError. Returns how many were
  /// cancelled.
  std::size_t cancel_pending();

  /// Counter snapshot: evaluated cases plus, when a SolveCache is
  /// attached, its hit/miss/eviction/entry/byte counters.
  ServiceStats stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  void dispatcher_loop();
  void enqueue(std::function<CaseResult()> solve,
               const std::shared_ptr<detail::BatchState>& batch,
               std::size_t slot, Priority priority);

  const tech::Technology* tech_;
  ServiceOptions options_;
  std::shared_ptr<detail::ServiceState> state_;
  std::thread dispatcher_;
};

}  // namespace rip::eval
