#pragma once

/// @file table.hpp
/// Column-aligned text tables and CSV emission for the benchmark
/// harnesses. Each bench binary prints the rows of the paper table it
/// regenerates through this writer, so the output is both human-readable
/// and machine-parsable.

#include <iosfwd>
#include <string>
#include <vector>

namespace rip {

/// A simple table: header row plus data rows of strings.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns (two-space gutters).
  void print(std::ostream& os) const;

  /// Render as CSV (no quoting — cells must not contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rip
