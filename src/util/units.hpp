#pragma once

/// @file units.hpp
/// Unit conventions used throughout the RIP library.
///
/// All physical quantities are plain `double`s with a fixed unit convention,
/// chosen so that the products that appear in Elmore delay come out in a
/// single consistent time unit with no conversion factors:
///
///   - length:       micrometers (um)
///   - resistance:   ohms (Ohm)
///   - capacitance:  femtofarads (fF)
///   - time:         femtoseconds (fs)   — because Ohm * fF = fs exactly
///   - repeater width: multiples of the minimal repeater width "u"
///                     (dimensionless; the paper's `u`)
///
/// Variable names carry the unit as a suffix (`length_um`, `cap_ff`,
/// `delay_fs`, `width_u`) so that mismatched arithmetic is visible at the
/// call site.

namespace rip::units {

/// Femtoseconds per nanosecond.
inline constexpr double kFsPerNs = 1.0e6;

/// Femtoseconds per picosecond.
inline constexpr double kFsPerPs = 1.0e3;

/// Femtofarads per picofarad.
inline constexpr double kFfPerPf = 1.0e3;

/// Convert nanoseconds to the library time unit (fs).
constexpr double ns_to_fs(double ns) { return ns * kFsPerNs; }

/// Convert the library time unit (fs) to nanoseconds.
constexpr double fs_to_ns(double fs) { return fs / kFsPerNs; }

/// Convert picoseconds to fs.
constexpr double ps_to_fs(double ps) { return ps * kFsPerPs; }

/// Convert fs to picoseconds.
constexpr double fs_to_ps(double fs) { return fs / kFsPerPs; }

}  // namespace rip::units
