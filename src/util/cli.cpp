#include "util/cli.hpp"

#include <cstdint>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rip {

CliArgs CliArgs::parse(int argc, const char* const* argv,
                       const std::set<std::string>& boolean_flags) {
  CliArgs args;
  int i = 1;  // skip program name
  // Leading positional = subcommand.
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string token = argv[i];
    RIP_REQUIRE(starts_with(token, "--"),
                "unexpected positional argument '" + token + "'");
    const std::string name = token.substr(2);
    RIP_REQUIRE(!name.empty(), "empty option name");
    if (boolean_flags.count(name) > 0) {
      args.flags_.insert(name);
      continue;
    }
    RIP_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
    args.options_[name] = argv[++i];
  }
  return args;
}

bool CliArgs::has(const std::string& name) const {
  touched_.insert(name);
  return flags_.count(name) > 0 || options_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  touched_.insert(name);
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double CliArgs::get_double_or(const std::string& name,
                              double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_double(*v, "--" + name);
}

int CliArgs::get_int_or(const std::string& name, int fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_int(*v, "--" + name);
}

std::string CliArgs::require(const std::string& name) const {
  const auto v = get(name);
  RIP_REQUIRE(v.has_value(), "missing required option --" + name);
  return *v;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (touched_.count(name) == 0) out.push_back(name);
  }
  for (const auto& name : flags_) {
    if (touched_.count(name) == 0) out.push_back(name);
  }
  return out;
}

int parallel_jobs(const CliArgs& args, int fallback) {
  const int jobs = args.get_int_or("jobs", fallback);
  RIP_REQUIRE(jobs >= 0, "--jobs must be >= 0 (0 = all hardware threads)");
  return resolve_jobs(jobs);
}

ShardSpec shard_option(const CliArgs& args, const std::string& name) {
  const auto value = args.get(name);
  if (!value) return {};
  // Strict digits-only parse with one uniform message shape, so every
  // binary that takes --shard rejects every malformed spec — negative
  // values, I >= N, trailing garbage ("0/2x"), signs, spaces — the same
  // way: "--shard expects I/N with integers 0 <= I < N ...: <why>".
  const auto fail = [&](const std::string& why) {
    throw Error("--" + name + " expects I/N with integers 0 <= I < N (e.g. "
                "--" + name + " 0/2): " + why + " in '" + *value + "'");
  };
  const auto parse_field = [&](const std::string& text,
                               const char* which) -> int {
    if (text.empty()) fail(std::string("empty ") + which);
    long parsed = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') {
        // One message covers signs, spaces, and trailing garbage alike.
        fail(std::string("non-digit character in ") + which);
      }
      parsed = parsed * 10 + (c - '0');
      if (parsed > std::numeric_limits<int>::max()) {
        fail(std::string(which) + std::string(" out of range"));
      }
    }
    return static_cast<int>(parsed);
  };
  const auto slash = value->find('/');
  if (slash == std::string::npos) fail("missing '/'");
  ShardSpec spec;
  spec.index = parse_field(value->substr(0, slash), "index");
  spec.count = parse_field(value->substr(slash + 1), "count");
  if (spec.count < 1) fail("count must be >= 1");
  if (spec.index >= spec.count) fail("index must be < count");
  return spec;
}

std::uint64_t count_option(const CliArgs& args, const std::string& name,
                           std::uint64_t fallback,
                           std::uint64_t min_value) {
  const auto value = args.get(name);
  if (!value) return fallback;
  // Same strict digits-only discipline and message shape as
  // shard_option: "--every -5", "--max-pending 0", "--stop-after 3x"
  // all fail loudly and uniformly instead of silently truncating.
  const auto fail = [&](const std::string& why) {
    throw Error("--" + name + " expects an integer >= " +
                std::to_string(min_value) + " (e.g. --" + name + " " +
                std::to_string(min_value > 0 ? min_value : 1) + "): " + why +
                " in '" + *value + "'");
  };
  if (value->empty()) fail("empty value");
  std::uint64_t parsed = 0;
  for (const char c : *value) {
    if (c < '0' || c > '9') fail("non-digit character");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (parsed > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      fail("value out of range");
    }
    parsed = parsed * 10 + digit;
  }
  if (parsed < min_value) {
    fail("value must be >= " + std::to_string(min_value));
  }
  return parsed;
}

}  // namespace rip
