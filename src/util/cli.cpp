#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace rip {

CliArgs CliArgs::parse(int argc, const char* const* argv,
                       const std::set<std::string>& boolean_flags) {
  CliArgs args;
  int i = 1;  // skip program name
  // Leading positional = subcommand.
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string token = argv[i];
    RIP_REQUIRE(starts_with(token, "--"),
                "unexpected positional argument '" + token + "'");
    const std::string name = token.substr(2);
    RIP_REQUIRE(!name.empty(), "empty option name");
    if (boolean_flags.count(name) > 0) {
      args.flags_.insert(name);
      continue;
    }
    RIP_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
    args.options_[name] = argv[++i];
  }
  return args;
}

bool CliArgs::has(const std::string& name) const {
  touched_.insert(name);
  return flags_.count(name) > 0 || options_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  touched_.insert(name);
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double CliArgs::get_double_or(const std::string& name,
                              double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_double(*v, "--" + name);
}

int CliArgs::get_int_or(const std::string& name, int fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_int(*v, "--" + name);
}

std::string CliArgs::require(const std::string& name) const {
  const auto v = get(name);
  RIP_REQUIRE(v.has_value(), "missing required option --" + name);
  return *v;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (touched_.count(name) == 0) out.push_back(name);
  }
  for (const auto& name : flags_) {
    if (touched_.count(name) == 0) out.push_back(name);
  }
  return out;
}

int parallel_jobs(const CliArgs& args, int fallback) {
  const int jobs = args.get_int_or("jobs", fallback);
  RIP_REQUIRE(jobs >= 0, "--jobs must be >= 0 (0 = all hardware threads)");
  return resolve_jobs(jobs);
}

ShardSpec shard_option(const CliArgs& args, const std::string& name) {
  const auto value = args.get(name);
  if (!value) return {};
  const auto slash = value->find('/');
  RIP_REQUIRE(slash != std::string::npos,
              "--" + name + " expects I/N (e.g. --" + name + " 0/2)");
  ShardSpec spec;
  spec.index = parse_int(value->substr(0, slash), "--" + name + " index");
  spec.count = parse_int(value->substr(slash + 1), "--" + name + " count");
  RIP_REQUIRE(spec.count >= 1, "--" + name + " count must be >= 1");
  RIP_REQUIRE(spec.index >= 0 && spec.index < spec.count,
              "--" + name + " index must be in [0, count)");
  return spec;
}

}  // namespace rip
