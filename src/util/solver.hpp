#pragma once

/// @file solver.hpp
/// Scalar root finding and small linear-system solvers used by the
/// analytical repeater-width solver (REFINE) and the transient simulator.

#include <functional>
#include <vector>

namespace rip {

/// Result of a scalar root search.
struct RootResult {
  double x = 0.0;        ///< Final abscissa.
  double fx = 0.0;       ///< Residual f(x) at the final abscissa.
  int iterations = 0;    ///< Iterations consumed.
  bool converged = false;
};

/// Options for `bisect`.
struct BisectOptions {
  double x_tol = 1e-12;   ///< Stop when the bracket is narrower than this (relative).
  double f_tol = 0.0;     ///< Stop when |f| <= f_tol (0 disables).
  int max_iterations = 200;
};

/// Find a root of `f` in [lo, hi] by bisection. Requires f(lo) and f(hi)
/// to have opposite signs (or one of them to be zero). Monotonicity is not
/// required, but with a monotone f the returned root is unique.
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, const BisectOptions& opts = {});

/// Options for `newton_raphson`.
struct NewtonOptions {
  double x_tol = 1e-12;
  double f_tol = 1e-12;
  int max_iterations = 100;
  /// If the Newton step leaves [lo, hi], fall back to bisecting the
  /// bracket. lo > hi disables the safeguard.
  double lo = 1.0;
  double hi = 0.0;
};

/// Safeguarded Newton–Raphson on a scalar function with analytic
/// derivative. `fdf(x)` returns {f(x), f'(x)}.
RootResult newton_raphson(
    const std::function<std::pair<double, double>(double)>& fdf, double x0,
    const NewtonOptions& opts = {});

/// Solve a tridiagonal system in place via the Thomas algorithm.
///
/// The system is: lower[i] * x[i-1] + diag[i] * x[i] + upper[i] * x[i+1]
/// = rhs[i], with lower[0] and upper[n-1] ignored. Returns the solution
/// vector. Throws rip::Error on size mismatch or a (numerically) singular
/// pivot. Used by the backward-Euler transient simulator on RC ladders.
std::vector<double> solve_tridiagonal(std::vector<double> lower,
                                      std::vector<double> diag,
                                      std::vector<double> upper,
                                      std::vector<double> rhs);

}  // namespace rip
