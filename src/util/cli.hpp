#pragma once

/// @file cli.hpp
/// A small command-line argument parser for the rip_cli tool and other
/// executables: one positional subcommand followed by `--key value`
/// options and `--flag` booleans.
///
///     rip_cli solve --net my.net --target-ns 2.5 --spice out.sp

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace rip {

/// Parsed command line.
class CliArgs {
 public:
  /// Parse argv. The first non-flag token becomes the subcommand (may be
  /// empty). Throws rip::Error on a malformed line (option without value,
  /// unexpected extra positionals).
  /// @param boolean_flags  names (without "--") that take no value.
  static CliArgs parse(int argc, const char* const* argv,
                       const std::set<std::string>& boolean_flags = {});

  const std::string& command() const { return command_; }

  /// True if --name was given (as a boolean flag or with a value).
  bool has(const std::string& name) const;

  /// Value of --name, or nullopt.
  std::optional<std::string> get(const std::string& name) const;

  /// Value of --name, or `fallback`.
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;

  /// Numeric accessors; throw rip::Error on malformed numbers.
  double get_double_or(const std::string& name, double fallback) const;
  int get_int_or(const std::string& name, int fallback) const;

  /// Value of a mandatory option; throws with a helpful message.
  std::string require(const std::string& name) const;

  /// Option names that were parsed but never read — lets tools reject
  /// typos ("--targt-ns") instead of silently ignoring them.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> options_;
  std::set<std::string> flags_;
  mutable std::set<std::string> touched_;
};

/// The standard `--jobs N` option shared by every parallel-capable
/// binary (rip_cli, the bench runners): N >= 1 worker threads taken
/// literally, 0 meaning one per hardware thread. Returns the resolved
/// thread count; throws rip::Error on a negative or malformed value.
int parallel_jobs(const CliArgs& args, int fallback = 1);

/// One process's slice of a cross-process sweep split.
struct ShardSpec {
  int index = 0;  ///< this process's shard, 0-based
  int count = 1;  ///< total shards in the split
};

/// The standard `--shard I/N` option shared by every shard-capable
/// binary: shard I of N (0 <= I < N). Absent means the single,
/// unsharded shard 0/1. Throws rip::Error on a malformed spec.
ShardSpec shard_option(const CliArgs& args,
                       const std::string& name = "shard");

/// Strict unsigned-count option: digits only (no signs, spaces, or
/// trailing garbage), value >= `min_value`; absent returns `fallback`
/// unvalidated (so 0-means-unbounded defaults survive a min of 1).
/// Rejections share one uniform message shape, in the same style as
/// shard_option: "--NAME expects an integer >= MIN ...: <why> in '<v>'".
std::uint64_t count_option(const CliArgs& args, const std::string& name,
                           std::uint64_t fallback,
                           std::uint64_t min_value = 0);

}  // namespace rip
