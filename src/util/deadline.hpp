#pragma once

/// @file deadline.hpp
/// Cooperative per-case deadlines. A `Deadline` is a steady-clock
/// budget; long-running solve stages call `check("stage")` at safe
/// points and a blown budget surfaces as `DeadlineExceeded` — an
/// ordinary (non-transient) rip::Error, so it settles a future or
/// quarantines a record without poisoning the batch, and is never
/// retried (re-running an over-budget case would blow the budget
/// again).

#include <chrono>
#include <string>

#include "util/error.hpp"

namespace rip {

/// Thrown by Deadline::check when the budget has elapsed.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

class Deadline {
 public:
  /// An inactive deadline: check() never throws.
  Deadline() = default;

  /// Starts the clock now. A non-positive budget means no deadline.
  explicit Deadline(double budget_ms) {
    if (budget_ms > 0.0) {
      active_ = true;
      budget_ms_ = budget_ms;
      expires_at_ = std::chrono::steady_clock::now() +
                    std::chrono::nanoseconds(
                        static_cast<std::int64_t>(budget_ms * 1e6));
    }
  }

  bool active() const { return active_; }

  bool expired() const {
    return active_ && std::chrono::steady_clock::now() >= expires_at_;
  }

  /// Throw DeadlineExceeded if the budget is gone; `stage` names the
  /// cooperative check point for the error message.
  void check(const char* stage) const {
    if (expired()) {
      throw DeadlineExceeded("case deadline of " +
                             std::to_string(budget_ms_) + " ms exceeded at " +
                             stage);
    }
  }

 private:
  bool active_ = false;
  double budget_ms_ = 0.0;
  std::chrono::steady_clock::time_point expires_at_{};
};

}  // namespace rip
