#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rip {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  RIP_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::min() const {
  RIP_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  RIP_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double percentile(std::vector<double> sample, double q) {
  RIP_REQUIRE(!sample.empty(), "percentile of empty sample");
  RIP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

}  // namespace rip
