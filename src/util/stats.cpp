#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace rip {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  RIP_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::min() const {
  RIP_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  RIP_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double percentile(std::vector<double> sample, double q) {
  RIP_REQUIRE(!sample.empty(), "percentile of empty sample");
  RIP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  // Bucket b holds latencies in [2^(b-1), 2^b) ns; bucket 0 holds 0 ns.
  const int bucket = std::bit_width(ns);
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot snap;
  std::array<std::uint64_t, kBuckets> counts{};
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    snap.count += counts[b];
  }
  if (snap.count == 0) return snap;
  const double to_ms = 1e-6;
  snap.mean_ms = static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
                 static_cast<double>(snap.count) * to_ms;
  snap.max_ms =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * to_ms;
  const auto quantile = [&](double q) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(snap.count - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) {
        // Report the bucket's upper bound: 2^b - 1 ns (bucket 0 is 0).
        const double upper_ns =
            b == 0 ? 0.0 : std::ldexp(1.0, b) - 1.0;
        return upper_ns * to_ms;
      }
    }
    return snap.max_ms;
  };
  snap.p50_ms = quantile(0.50);
  snap.p90_ms = quantile(0.90);
  snap.p99_ms = quantile(0.99);
  return snap;
}

}  // namespace rip
