#pragma once

/// @file simd.hpp
/// Portable vectorization hint for the straight-line SoA kernel loops.
///
/// RIP_SIMD_LOOP asserts that the loop that follows carries no
/// cross-iteration dependence, so the compiler may vectorize it without
/// emitting a runtime alias check. It is a pure hint: no flag here (and
/// no -ffast-math anywhere in the build) permits reassociation or any
/// other value change, so a vectorized loop produces bit-identical
/// results to its scalar form — which the golden and bit-identity tests
/// pin. Pair it with __restrict-qualified pointers so scalar fallbacks
/// are equally unencumbered.
#if defined(__clang__)
#define RIP_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define RIP_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define RIP_SIMD_LOOP
#endif
