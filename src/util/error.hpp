#pragma once

/// @file error.hpp
/// Error handling primitives for the RIP library.
///
/// All recoverable errors (bad input files, invalid nets, infeasible
/// configurations the caller could have produced) throw `rip::Error`.
/// Internal invariant violations use `RIP_ASSERT`, which also throws so
/// that tests can exercise failure paths without aborting the process.

#include <stdexcept>
#include <string>

namespace rip {

/// Exception type for all errors raised by the RIP library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Marker base for errors a retry policy may treat as transient: the
/// operation failed for a reason that could succeed on a clean retry
/// (an injected transient fault, a flaky I/O layer). Permanent errors
/// (bad input, invariant violations, deadline overruns) stay plain
/// `Error` and are never retried.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace rip

/// Validate a caller-supplied precondition; throws rip::Error on failure.
#define RIP_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rip::detail::raise("precondition", #cond, __FILE__, __LINE__, msg); \
  } while (0)

/// Validate an internal invariant; throws rip::Error on failure.
#define RIP_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond))                                                          \
      ::rip::detail::raise("invariant", #cond, __FILE__, __LINE__, msg);  \
  } while (0)
