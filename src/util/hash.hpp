#pragma once

/// @file hash.hpp
/// Canonical 64-bit hashing for cache keys.
///
/// The solve cache (eval/solve_cache.hpp) keys a Pareto-frontier solve on
/// everything the frontier depends on — net topology, device, library
/// contents, candidate positions, solver options minus the timing target.
/// Those inputs are heterogeneous (doubles, ints, strings, nested
/// vectors), so this header provides one small streaming hasher that
/// mixes each word with a splitmix64 finalizer — cheap, allocation-free,
/// and with far better avalanche behavior than FNV on double-heavy input
/// (doubles that differ only in low mantissa bits must not collide into
/// clustered buckets, or the cache's hash-striped shards degenerate).
///
/// Keys are compared by hash only: a 64-bit collision between two
/// *different* solves would return the wrong frontier. With the mixer
/// below and realistic cache populations (<= millions of entries) the
/// collision probability is ~n^2 / 2^65 — negligible, and the standard
/// trade for fixed-size keys.

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace rip {

/// Streaming 64-bit hasher. Feed words with operator<<; read `value()`.
/// Deterministic across runs and platforms (no ASLR-dependent state).
class Hash64 {
 public:
  Hash64() = default;
  explicit Hash64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t value() const { return state_; }

  Hash64& operator<<(std::uint64_t v) {
    state_ = mix(state_ ^ (v + 0x9e3779b97f4a7c15ULL));
    return *this;
  }
  Hash64& operator<<(std::int64_t v) {
    return *this << static_cast<std::uint64_t>(v);
  }
  Hash64& operator<<(std::uint32_t v) {
    return *this << static_cast<std::uint64_t>(v);
  }
  Hash64& operator<<(int v) {
    return *this << static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  }
  Hash64& operator<<(bool v) {
    return *this << static_cast<std::uint64_t>(v ? 1 : 0);
  }

  /// Doubles hash by bit pattern: two targets that differ in one ulp are
  /// different keys (the cache must never blur inputs), and +0.0/-0.0
  /// hash differently — callers canonicalize if they ever care.
  Hash64& operator<<(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return *this << bits;
  }

  Hash64& operator<<(std::string_view s) {
    *this << s.size();
    // Word-at-a-time over the bytes; the tail is zero-padded.
    while (s.size() >= 8) {
      std::uint64_t w;
      std::memcpy(&w, s.data(), 8);
      *this << w;
      s.remove_prefix(8);
    }
    if (!s.empty()) {
      std::uint64_t w = 0;
      std::memcpy(&w, s.data(), s.size());
      *this << w;
    }
    return *this;
  }

  template <typename T>
  Hash64& operator<<(std::span<const T> values) {
    *this << values.size();
    for (const T& v : values) *this << v;
    return *this;
  }

  /// splitmix64 finalizer (public: the solve cache reuses it to derive
  /// its shard stripe from a key without correlating with bucket order).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_ = 0x2005c41b0c7e5f17ULL;  ///< arbitrary fixed seed
};

}  // namespace rip
