#pragma once

/// @file strings.hpp
/// Small string helpers (formatting, trimming, splitting) shared by the
/// tech/net file parsers and the table writers. libstdc++ 12 does not ship
/// std::format, so numeric formatting goes through snprintf wrappers.

#include <string>
#include <vector>

namespace rip {

/// printf-style double with fixed decimals, e.g. fmt_f(3.14159, 2) == "3.14".
std::string fmt_f(double v, int decimals);

/// Fixed decimals followed by a unit suffix, e.g. "12.50 ns".
std::string fmt_unit(double v, int decimals, const std::string& unit);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Split on any run of ASCII whitespace; no empty tokens.
std::vector<std::string> split_ws(const std::string& s);

/// Split on every occurrence of `delim`; keeps empty tokens, so
/// "a,,b" -> {"a", "", "b"} and "" -> {""}.
std::vector<std::string> split_on(const std::string& s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Parse a double, throwing rip::Error with `context` on failure.
double parse_double(const std::string& s, const std::string& context);

/// Parse an int, throwing rip::Error with `context` on failure.
int parse_int(const std::string& s, const std::string& context);

}  // namespace rip
