#include "util/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rip {
namespace {

enum class FaultAction { kErr, kFail, kCrash, kDelay };
enum class TriggerKind { kAlways, kAtKey, kProbability };

struct FaultRule {
  std::string point;
  FaultAction action = FaultAction::kErr;
  std::chrono::nanoseconds delay{0};
  TriggerKind trigger = TriggerKind::kAlways;
  std::uint64_t at = 0;
  double probability = 0.0;
};

struct PointState {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<FaultRule> rules;
  std::map<std::string, PointState> points;
  std::uint64_t seed = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) from (seed, point, key): the
/// same triple always fires (or not) regardless of thread schedule.
double hash_unit(std::uint64_t seed, const char* point, std::uint64_t key) {
  std::uint64_t h = splitmix64(seed);
  for (const char* p = point; *p != '\0'; ++p) {
    h = splitmix64(h ^ static_cast<unsigned char>(*p));
  }
  h = splitmix64(h ^ key);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_spec(const std::string& entry, const std::string& why) {
  throw Error("bad fault spec entry '" + entry + "': " + why +
              " (expected point:action[@trigger], e.g. netlist.read:err@17)");
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::uint64_t parse_u64_or(const std::string& entry, const std::string& s,
                           const std::string& what) {
  if (!all_digits(s)) bad_spec(entry, what + " must be a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) {
    bad_spec(entry, what + " out of range");
  }
  return static_cast<std::uint64_t>(v);
}

/// Parse '50ms' / '200us' / '3s' / '750ns'; returns false if `s` is not
/// a duration at all (so the caller can reject it as an unknown action).
bool parse_duration(const std::string& entry, const std::string& s,
                    std::chrono::nanoseconds* out) {
  std::size_t digits = 0;
  while (digits < s.size() && s[digits] >= '0' && s[digits] <= '9') ++digits;
  if (digits == 0) return false;
  const std::string suffix = s.substr(digits);
  std::uint64_t scale = 0;
  if (suffix == "ns") {
    scale = 1;
  } else if (suffix == "us") {
    scale = 1000;
  } else if (suffix == "ms") {
    scale = 1000 * 1000;
  } else if (suffix == "s") {
    scale = 1000ull * 1000 * 1000;
  } else {
    return false;
  }
  const std::uint64_t value =
      parse_u64_or(entry, s.substr(0, digits), "duration");
  *out = std::chrono::nanoseconds(value * scale);
  return true;
}

FaultRule parse_entry(const std::string& entry) {
  FaultRule rule;
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos || colon == 0) {
    bad_spec(entry, "missing 'point:' prefix");
  }
  rule.point = entry.substr(0, colon);

  std::string action = entry.substr(colon + 1);
  const std::size_t at = action.find('@');
  std::string trigger;
  if (at != std::string::npos) {
    trigger = action.substr(at + 1);
    action = action.substr(0, at);
  }

  if (action == "err") {
    rule.action = FaultAction::kErr;
  } else if (action == "fail") {
    rule.action = FaultAction::kFail;
  } else if (action == "crash") {
    rule.action = FaultAction::kCrash;
  } else if (parse_duration(entry, action, &rule.delay)) {
    rule.action = FaultAction::kDelay;
  } else {
    bad_spec(entry, "unknown action '" + action +
                        "' (expected err, fail, crash, or a duration "
                        "like 50ms)");
  }

  if (at == std::string::npos) {
    rule.trigger = TriggerKind::kAlways;
  } else if (trigger.rfind("p=", 0) == 0) {
    const std::string prob = trigger.substr(2);
    errno = 0;
    char* end = nullptr;
    const double p = std::strtod(prob.c_str(), &end);
    if (prob.empty() || end != prob.c_str() + prob.size() ||
        errno == ERANGE || !(p >= 0.0 && p <= 1.0)) {
      bad_spec(entry, "probability must be a number in [0,1]");
    }
    rule.trigger = TriggerKind::kProbability;
    rule.probability = p;
  } else {
    rule.trigger = TriggerKind::kAtKey;
    rule.at = parse_u64_or(entry, trigger, "trigger");
  }
  return rule;
}

std::vector<FaultRule> parse_spec(const std::string& spec) {
  std::vector<FaultRule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    if (!entry.empty()) rules.push_back(parse_entry(entry));
    start = end + 1;
  }
  return rules;
}

// Env pickup at load time: any binary that links a fault point gets
// RIP_FAULTS honored without CLI plumbing. A malformed spec fails the
// process immediately — injection is an explicit opt-in, and silently
// ignoring a typo'd spec would un-test the very paths it targets.
const bool g_env_config = [] {
  try {
    FaultInjector::configure_from_env();
  } catch (const Error& e) {
    std::fprintf(stderr, "rip: %s\n", e.what());
    std::_Exit(2);
  }
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> g_faults_enabled{false};

void fire_fault_slow(const char* point, std::uint64_t key, bool soft,
                     bool* out_fired) {
  // Collect matched actions under the lock, run them after releasing it
  // (delays must not serialize other points; throws must not poison the
  // registry mutex).
  std::vector<std::pair<FaultAction, std::chrono::nanoseconds>> matched;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(registry().mutex);
    seed = registry().seed;
    PointState& state = registry().points[point];
    const std::uint64_t arrival = state.hits++;
    const std::uint64_t effective_key = (key == kFaultAutoKey) ? arrival : key;
    for (const FaultRule& rule : registry().rules) {
      if (rule.point != point) continue;
      bool match = false;
      switch (rule.trigger) {
        case TriggerKind::kAlways:
          match = true;
          break;
        case TriggerKind::kAtKey:
          match = (effective_key == rule.at);
          break;
        case TriggerKind::kProbability:
          match = hash_unit(seed, point, effective_key) < rule.probability;
          break;
      }
      if (match) {
        ++state.fired;
        matched.emplace_back(rule.action, rule.delay);
      }
    }
  }
  for (const auto& [action, delay] : matched) {
    switch (action) {
      case FaultAction::kDelay:
        std::this_thread::sleep_for(delay);
        break;
      case FaultAction::kCrash:
        throw InjectedCrash(std::string("injected crash at fault point '") +
                            point + "'");
      case FaultAction::kErr:
        if (soft) {
          if (out_fired != nullptr) *out_fired = true;
          break;
        }
        throw InjectedFault(
            std::string("injected transient fault at fault point '") + point +
            "'");
      case FaultAction::kFail:
        if (soft) {
          if (out_fired != nullptr) *out_fired = true;
          break;
        }
        throw InjectedFailure(std::string("injected failure at fault point '") +
                              point + "'");
    }
  }
}

}  // namespace detail

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::vector<FaultRule> rules = parse_spec(spec);  // may throw; no state yet
  std::lock_guard<std::mutex> lock(registry().mutex);
  registry().rules = std::move(rules);
  registry().points.clear();
  registry().seed = seed;
  detail::g_faults_enabled.store(!registry().rules.empty(),
                                 std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("RIP_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::uint64_t seed = 0;
  if (const char* seed_env = std::getenv("RIP_FAULTS_SEED")) {
    const std::string s(seed_env);
    seed = parse_u64_or("RIP_FAULTS_SEED=" + s, s, "seed");
  }
  configure(spec, seed);
}

void FaultInjector::reset() { configure("", 0); }

bool FaultInjector::enabled() {
  return detail::g_faults_enabled.load(std::memory_order_relaxed);
}

std::map<std::string, FaultPointStats> FaultInjector::stats() {
  std::map<std::string, FaultPointStats> out;
  std::lock_guard<std::mutex> lock(registry().mutex);
  for (const auto& [name, state] : registry().points) {
    out[name] = FaultPointStats{state.hits, state.fired};
  }
  return out;
}

}  // namespace rip
