#pragma once

/// @file stats.hpp
/// Streaming statistics used by the experiment harnesses to aggregate
/// per-net / per-target metrics into the rows the paper reports
/// (ΔMax, ΔMean, averages over the net population).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rip {

/// Welford streaming accumulator: count / mean / min / max / stddev.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. Throws on an empty sample.
double percentile(std::vector<double> sample, double q);

/// Point-in-time view of a LatencyHistogram, in milliseconds. The
/// percentiles are bucket-resolution estimates (each log2 bucket
/// reports its upper bound), good to ~2x — plenty for capacity
/// planning, free of locks on the record path.
struct LatencySnapshot {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
};

/// Lock-free latency histogram: log2-bucketed nanosecond counts (the
/// buckets cover the full uint64 range) with exact count/mean/max.
/// record() is wait-free (relaxed atomics plus one CAS loop for the
/// max) and safe from any number of threads; snapshot() is a racy but
/// self-consistent-enough read for metrics.
class LatencyHistogram {
 public:
  void record_ns(std::uint64_t ns);
  LatencySnapshot snapshot() const;

 private:
  // bit_width of a uint64 spans 0..64 inclusive.
  static constexpr int kBuckets = 65;
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

}  // namespace rip
