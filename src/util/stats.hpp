#pragma once

/// @file stats.hpp
/// Streaming statistics used by the experiment harnesses to aggregate
/// per-net / per-target metrics into the rows the paper reports
/// (ΔMax, ΔMean, averages over the net population).

#include <cstddef>
#include <vector>

namespace rip {

/// Welford streaming accumulator: count / mean / min / max / stddev.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. Throws on an empty sample.
double percentile(std::vector<double> sample, double q);

}  // namespace rip
