#pragma once

/// @file crc32.hpp
/// Header-only CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320), the
/// checksum guarding `ripckpt 2` checkpoint payloads. Matches zlib's
/// crc32() for the same bytes, so checkpoints can be verified with
/// standard tooling, without linking zlib here.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rip {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC of `size` bytes, continuing from `crc` (pass the previous return
/// value to checksum data in chunks; start from the default 0).
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrc32Table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t crc = 0) {
  return crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace rip
