#include "util/strings.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "util/error.hpp"

namespace rip {

std::string fmt_f(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_unit(double v, int decimals, const std::string& unit) {
  return fmt_f(v, decimals) + " " + unit;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_on(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t end = s.find(delim, begin);
    if (end == std::string::npos) {
      out.push_back(s.substr(begin));
      return out;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

double parse_double(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    RIP_REQUIRE(pos == s.size(), "trailing characters in number: " + context);
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("expected a number, got '" + s + "' (" + context + ")");
  } catch (const std::out_of_range&) {
    throw Error("number out of range: '" + s + "' (" + context + ")");
  }
}

int parse_int(const std::string& s, const std::string& context) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    RIP_REQUIRE(pos == s.size(), "trailing characters in integer: " + context);
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("expected an integer, got '" + s + "' (" + context + ")");
  } catch (const std::out_of_range&) {
    throw Error("integer out of range: '" + s + "' (" + context + ")");
  }
}

}  // namespace rip
