#pragma once

/// @file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Experiments in the paper are defined over a population of randomly
/// generated nets (Section 6). To make every table and figure exactly
/// reproducible we use our own xoshiro256** generator seeded through
/// splitmix64, rather than `std::mt19937` whose distributions are not
/// portable across standard library implementations.

#include <cstdint>

namespace rip {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across
/// platforms; all random workloads in the repository derive from this.
class Rng {
 public:
  /// Construct from a 64-bit seed. Two Rng objects with the same seed
  /// produce identical streams.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p);

  /// Derive an independent child generator (useful for per-net seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace rip
