#pragma once

/// @file timer.hpp
/// Wall-clock timing for the runtime columns of Table 2 (T_DP, speedup).

#include <chrono>

namespace rip {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rip
