#include "util/solver.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace rip {

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, const BisectOptions& opts) {
  RIP_REQUIRE(lo <= hi, "bisect: bracket out of order");
  double flo = f(lo);
  double fhi = f(hi);
  RootResult r;
  if (flo == 0.0) {
    r = {lo, 0.0, 0, true};
    return r;
  }
  if (fhi == 0.0) {
    r = {hi, 0.0, 0, true};
    return r;
  }
  RIP_REQUIRE(std::signbit(flo) != std::signbit(fhi),
              "bisect: f(lo) and f(hi) must differ in sign");
  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    ++r.iterations;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
    r.x = 0.5 * (lo + hi);
    r.fx = fmid;
    const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
    if (hi - lo <= opts.x_tol * scale ||
        (opts.f_tol > 0.0 && std::abs(fmid) <= opts.f_tol)) {
      r.converged = true;
      return r;
    }
  }
  return r;
}

RootResult newton_raphson(
    const std::function<std::pair<double, double>(double)>& fdf, double x0,
    const NewtonOptions& opts) {
  RootResult r;
  double x = x0;
  double lo = opts.lo;
  double hi = opts.hi;
  const bool bracketed = lo <= hi;
  for (int it = 0; it < opts.max_iterations; ++it) {
    auto [fx, dfx] = fdf(x);
    r.x = x;
    r.fx = fx;
    r.iterations = it + 1;
    if (std::abs(fx) <= opts.f_tol) {
      r.converged = true;
      return r;
    }
    double step;
    if (dfx != 0.0 && std::isfinite(dfx)) {
      step = -fx / dfx;
    } else if (bracketed) {
      step = 0.5 * (lo + hi) - x;  // degenerate derivative: bisect
    } else {
      return r;  // cannot make progress
    }
    double xn = x + step;
    if (bracketed) {
      // Keep the bracket tight using the sign of f at x.
      auto [flo, unused_dlo] = fdf(lo);
      (void)unused_dlo;
      if (std::signbit(fx) == std::signbit(flo)) {
        lo = x;
      } else {
        hi = x;
      }
      if (xn < lo || xn > hi) xn = 0.5 * (lo + hi);
    }
    if (std::abs(xn - x) <=
        opts.x_tol * std::max(std::abs(x), 1.0)) {
      r.x = xn;
      r.converged = true;
      return r;
    }
    x = xn;
  }
  return r;
}

std::vector<double> solve_tridiagonal(std::vector<double> lower,
                                      std::vector<double> diag,
                                      std::vector<double> upper,
                                      std::vector<double> rhs) {
  const std::size_t n = diag.size();
  RIP_REQUIRE(n > 0, "solve_tridiagonal: empty system");
  RIP_REQUIRE(lower.size() == n && upper.size() == n && rhs.size() == n,
              "solve_tridiagonal: band size mismatch");
  // Forward elimination.
  for (std::size_t i = 1; i < n; ++i) {
    RIP_REQUIRE(diag[i - 1] != 0.0, "solve_tridiagonal: singular pivot");
    const double m = lower[i] / diag[i - 1];
    diag[i] -= m * upper[i - 1];
    rhs[i] -= m * rhs[i - 1];
  }
  RIP_REQUIRE(diag[n - 1] != 0.0, "solve_tridiagonal: singular pivot");
  // Back substitution.
  std::vector<double> x(n);
  x[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = (rhs[i] - upper[i] * x[i + 1]) / diag[i];
  }
  return x;
}

}  // namespace rip
