#pragma once

/// @file fault.hpp
/// Deterministic, seed-driven fault injection for the DP → service →
/// stream pipeline. Production binaries pay one relaxed atomic load per
/// fault point when injection is disabled (the default); a spec turns
/// named points into injected errors, crashes, or latency spikes so
/// every failure path can be driven on demand and pinned by tests.
///
/// Spec grammar (env `RIP_FAULTS` / CLI `--faults`):
///
///   spec    := entry (';' entry)*
///   entry   := point ':' action ['@' trigger]
///   action  := 'err'      -- throw InjectedFault (transient, retryable)
///            | 'fail'     -- throw InjectedFailure (permanent)
///            | 'crash'    -- throw InjectedCrash (simulated process kill;
///                            NOT a rip::Error, so no recovery layer
///                            swallows it)
///            | duration   -- sleep that long (latency spike), e.g.
///                            '50ms', '200us', '1s'
///   trigger := N          -- fire when the point's key equals N (call
///                            sites pass a stable identity: record index,
///                            checkpoint ordinal; points without a key
///                            use their per-point arrival counter)
///            | 'p='F      -- fire with deterministic probability F in
///                            [0,1], hashed from (seed, point, key)
///            | (absent)   -- fire on every hit
///
/// Example: "netlist.read:err@17;solve.delay:50ms@p=0.01;ckpt.rename:crash@2"
///
/// Keyed triggers make the faulted record set independent of thread
/// schedule: the same records fault at jobs 1 and jobs 8.
///
/// Registered points: netlist.read, netlist.write, solve.err,
/// solve.delay, cache.insert, ckpt.write, ckpt.rename, ckpt.commit.

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace rip {

/// A transient injected error: retry policies may treat it like any
/// flaky-I/O failure and re-run the operation (spec action 'err').
class InjectedFault : public TransientError {
 public:
  explicit InjectedFault(const std::string& what) : TransientError(what) {}
};

/// A permanent injected error (spec action 'fail'): recovery layers see
/// an ordinary rip::Error that retrying cannot fix.
class InjectedFailure : public Error {
 public:
  explicit InjectedFailure(const std::string& what) : Error(what) {}
};

/// A simulated process kill (spec action 'crash'). Deliberately NOT a
/// rip::Error: quarantine/retry layers that catch rip::Error must let it
/// propagate exactly like a real SIGKILL would end the process.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Sentinel key: use the fault point's per-point arrival counter.
inline constexpr std::uint64_t kFaultAutoKey = ~std::uint64_t{0};

struct FaultPointStats {
  std::uint64_t hits = 0;   ///< times the point was reached while enabled
  std::uint64_t fired = 0;  ///< times a rule matched and its action ran
};

/// Process-wide fault-point registry. All methods are thread-safe.
class FaultInjector {
 public:
  /// Replace the active spec (empty spec disables injection) and reset
  /// all per-point counters. Throws rip::Error on a malformed spec.
  static void configure(const std::string& spec, std::uint64_t seed = 0);

  /// Configure from `RIP_FAULTS` / `RIP_FAULTS_SEED`; a no-op when the
  /// variable is unset or empty. Runs automatically at load time in any
  /// binary that links a fault point.
  static void configure_from_env();

  /// Disable injection and clear the spec and all counters.
  static void reset();

  static bool enabled();

  /// Per-point hit/fire counters (points are created on first hit).
  static std::map<std::string, FaultPointStats> stats();
};

namespace detail {

extern std::atomic<bool> g_faults_enabled;

void fire_fault_slow(const char* point, std::uint64_t key, bool soft,
                     bool* out_fired);

}  // namespace detail

/// Hit a fault point. Zero-cost when injection is disabled (one relaxed
/// atomic load). May throw InjectedFault / InjectedFailure /
/// InjectedCrash or sleep, per the active spec.
inline void fire_fault(const char* point,
                       std::uint64_t key = kFaultAutoKey) {
  if (detail::g_faults_enabled.load(std::memory_order_relaxed)) {
    detail::fire_fault_slow(point, key, /*soft=*/false, nullptr);
  }
}

/// Like fire_fault, but 'err'/'fail' actions return true instead of
/// throwing — for call sites where failure is a degraded result, not an
/// exception (e.g. a cache insert that is dropped). 'crash' still
/// throws and delays still sleep.
inline bool fire_fault_soft(const char* point,
                            std::uint64_t key = kFaultAutoKey) {
  if (!detail::g_faults_enabled.load(std::memory_order_relaxed)) {
    return false;
  }
  bool fired = false;
  detail::fire_fault_slow(point, key, /*soft=*/true, &fired);
  return fired;
}

}  // namespace rip
