#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace rip {
namespace {

// Growth cap for the persistent pool: enough for any sane --jobs value
// while bounding a pathological request. The calling thread always
// participates, so jobs=N needs at most N-1 pool workers.
constexpr int kMaxWorkers = 256;

std::atomic<bool> g_scheduler_exists{false};

/// Serial, deterministic chunk plan: contiguous [begin, end) ranges
/// covering [0, count) exactly once. `participants` is only a sizing
/// hint — the plan never depends on which thread runs what.
std::vector<std::pair<std::size_t, std::size_t>> make_chunks(
    std::size_t count, std::size_t participants, const ChunkPolicy& policy) {
  const std::size_t p = std::max<std::size_t>(participants, 1);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  auto fixed = [&](std::size_t grain) {
    for (std::size_t b = 0; b < count; b += grain) {
      chunks.emplace_back(b, std::min(b + grain, count));
    }
  };
  switch (policy.mode) {
    case ChunkPolicy::Mode::kStatic:
      fixed(std::max<std::size_t>(
          policy.grain != 0 ? policy.grain : (count + p - 1) / p, 1));
      break;
    case ChunkPolicy::Mode::kDynamic:
      fixed(std::max<std::size_t>(
          policy.grain != 0 ? policy.grain : count / (8 * p), 1));
      break;
    case ChunkPolicy::Mode::kGuided: {
      const std::size_t floor = std::max<std::size_t>(policy.grain, 1);
      std::size_t b = 0;
      while (b < count) {
        const std::size_t size =
            std::min(std::max((count - b) / (2 * p), floor), count - b);
        chunks.emplace_back(b, b + size);
        b += size;
      }
      break;
    }
  }
  return chunks;
}

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One parallel_for call. Shared between the caller and the pool
/// workers that join it; kept alive by shared_ptr until the last
/// participant leaves, so late joiners of a finished region are no-ops.
struct Scheduler::Region {
  const std::function<void(std::size_t)>* fn = nullptr;
  /// Async (submit_region) regions own their task function — the
  /// submitting caller is long gone by the time workers run it — and
  /// carry a completion callback fired by the last finisher. Blocking
  /// regions leave both empty and borrow `fn` from the caller's frame.
  std::function<void(std::size_t)> owned_fn;
  std::function<void(std::exception_ptr)> on_complete;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;

  /// Per-participant work deque. The owner pops from the front
  /// (ascending indices, cache-friendly); thieves steal from the back —
  /// the Chase-Lev owner/thief discipline, with a per-deque mutex
  /// instead of the lock-free CAS dance (chunks are coarse enough that
  /// the lock is not a bottleneck, and it keeps TSan trivially clean).
  struct WorkDeque {
    std::mutex mutex;
    std::deque<std::size_t> chunk_ids;
  };
  std::vector<std::unique_ptr<WorkDeque>> deques;

  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  std::mutex mutex;
  std::condition_variable done;
  bool finished = false;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

Scheduler& Scheduler::global() {
  static Scheduler instance;
  g_scheduler_exists.store(true, std::memory_order_release);
  return instance;
}

bool Scheduler::exists() {
  return g_scheduler_exists.load(std::memory_order_acquire);
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int Scheduler::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void Scheduler::ensure_workers(int target) {
  target = std::min(target, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Scheduler::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: stale join tasks for
      // finished regions are no-ops and must not outlive the pool.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Scheduler::run_region(const std::shared_ptr<Region>& region,
                           int participant) {
  Region& r = *region;
  const int fanout = static_cast<int>(r.deques.size());

  auto pop_own = [&]() -> std::optional<std::size_t> {
    auto& dq = *r.deques[static_cast<std::size_t>(participant)];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.chunk_ids.empty()) return std::nullopt;
    const std::size_t id = dq.chunk_ids.front();
    dq.chunk_ids.pop_front();
    return id;
  };
  auto steal = [&]() -> std::optional<std::size_t> {
    for (int k = 1; k < fanout; ++k) {
      auto& dq = *r.deques[static_cast<std::size_t>((participant + k) %
                                                    fanout)];
      std::lock_guard<std::mutex> lock(dq.mutex);
      if (dq.chunk_ids.empty()) continue;
      const std::size_t id = dq.chunk_ids.back();
      dq.chunk_ids.pop_back();
      return id;
    }
    return std::nullopt;
  };

  for (;;) {
    auto id = pop_own();
    if (!id) id = steal();
    // Every deque is empty: whatever remains is in flight on other
    // participants, who will finish it — safe to leave.
    if (!id) return;

    const auto [begin, end] = r.chunks[*id];
    for (std::size_t i = begin; i < end; ++i) {
      if (r.cancelled.load(std::memory_order_relaxed)) break;
      try {
        (*r.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (i < r.error_index) {
          r.error_index = i;
          r.error = std::current_exception();
        }
        r.cancelled.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (r.remaining.fetch_sub(1) == 1) {
      // Take the exception out of the region before the callback for
      // the same lifetime reason as the blocking path below: the
      // exception object must not be co-owned by a region another
      // participant can release while the callback reads it.
      std::exception_ptr error;
      {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.finished = true;
        if (r.on_complete) {
          error = std::move(r.error);
          r.error = nullptr;
        }
      }
      r.done.notify_all();
      if (r.on_complete) r.on_complete(error);
    }
  }
}

// Cut the region into chunks and deal them round-robin across
// per-participant deques: ascending chunks interleave across
// participants, so contiguous hot spots spread out even before any
// steal happens. No locks needed — workers have not seen the region.
// Returns the participant count (min(resolved, chunks), at least 1).
int Scheduler::prepare_region(Region& region, std::size_t count,
                              std::size_t resolved,
                              const ChunkPolicy& policy) {
  region.chunks = make_chunks(count, std::min(resolved, count), policy);
  const int fanout = static_cast<int>(std::max<std::size_t>(
      std::min<std::size_t>(resolved, region.chunks.size()), 1));
  region.remaining.store(region.chunks.size());
  region.deques.reserve(static_cast<std::size_t>(fanout));
  for (int p = 0; p < fanout; ++p) {
    region.deques.push_back(std::make_unique<Region::WorkDeque>());
  }
  for (std::size_t c = 0; c < region.chunks.size(); ++c) {
    region.deques[c % static_cast<std::size_t>(fanout)]
        ->chunk_ids.push_back(c);
  }
  return fanout;
}

void Scheduler::enqueue_participants(const std::shared_ptr<Region>& region,
                                     int first_participant, int fanout) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int p = first_participant; p < fanout; ++p) {
      queue_.push_back([region, p] { run_region(region, p); });
    }
  }
  task_ready_.notify_all();
}

void Scheduler::parallel_for_indexed(
    std::size_t count, int jobs, const std::function<void(std::size_t)>& fn,
    const ChunkPolicy& policy) {
  if (count == 0) return;
  const std::size_t resolved =
      static_cast<std::size_t>(resolve_jobs(jobs));
  if (resolved <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  const int fanout = prepare_region(*region, count, resolved, policy);
  if (fanout <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  ensure_workers(fanout - 1);
  // Participant 0 is the caller; only 1..fanout-1 go to the pool.
  enqueue_participants(region, 1, fanout);

  // The caller is participant 0 and keeps popping/stealing until no
  // chunk is left unclaimed — it can drain the whole region alone if
  // the pool is busy, which is what makes nested calls deadlock-free.
  run_region(region, 0);

  std::unique_lock<std::mutex> lock(region->mutex);
  region->done.wait(lock, [&] { return region->finished; });
  // Take the exception out of the region before rethrowing: late pool
  // workers may still drop their (stale) region references, and the
  // exception object must not be co-owned by anything another thread
  // can release while the caller is reading it.
  std::exception_ptr error = std::move(region->error);
  region->error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void Scheduler::submit_region(
    std::size_t count, int jobs, std::function<void(std::size_t)> fn,
    std::function<void(std::exception_ptr)> on_complete,
    const ChunkPolicy& policy) {
  if (count == 0) {
    if (on_complete) on_complete(nullptr);
    return;
  }
  const std::size_t resolved =
      static_cast<std::size_t>(resolve_jobs(jobs));

  auto region = std::make_shared<Region>();
  region->owned_fn = std::move(fn);
  region->fn = &region->owned_fn;
  region->on_complete = std::move(on_complete);
  const int fanout = prepare_region(*region, count, resolved, policy);

  // Every participant is a pool worker — the caller returns without
  // touching the region, so a single-participant region still needs
  // one worker (unlike the blocking path, where the caller is p0).
  ensure_workers(fanout);
  enqueue_participants(region, 0, fanout);
}

void parallel_for_indexed(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(count, jobs, ChunkPolicy{}, fn);
}

void parallel_for_indexed(std::size_t count, int jobs,
                          const ChunkPolicy& policy,
                          const std::function<void(std::size_t)>& fn) {
  const int resolved = resolve_jobs(jobs);
  if (resolved <= 1 || count <= 1) {
    // Serial reference path: never touches (or creates) the scheduler.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  Scheduler::global().parallel_for_indexed(count, resolved, fn, policy);
}

}  // namespace rip
