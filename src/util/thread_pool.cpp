#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace rip {

int resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  RIP_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RIP_REQUIRE(!stop_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping, so the destructor completes
      // every submitted task before joining.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  const int fanout = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(thread_count()), count));
  shared->pending = fanout;

  // `fn` is only referenced while this call blocks on `done`, so the
  // reference capture is safe.
  auto body = [shared, count, &fn] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= count || shared->cancelled.load(std::memory_order_relaxed)) {
        break;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (i < shared->error_index) {
          shared->error_index = i;
          shared->error = std::current_exception();
        }
        shared->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      last = --shared->pending == 0;
    }
    if (last) shared->done.notify_all();
  };
  for (int t = 0; t < fanout; ++t) submit(body);

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done.wait(lock, [&] { return shared->pending == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

void parallel_for_indexed(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn) {
  const int resolved = resolve_jobs(jobs);
  if (resolved <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(resolved), count)));
  pool.parallel_for_indexed(count, fn);
}

}  // namespace rip
