#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace rip {
namespace {

// Growth cap for the persistent pool: enough for any sane --jobs value
// while bounding a pathological request. The calling thread always
// participates, so jobs=N needs at most N-1 pool workers.
constexpr int kMaxWorkers = 256;

std::atomic<bool> g_scheduler_exists{false};

/// Serial, deterministic chunk plan: contiguous [begin, end) ranges
/// covering [0, count) exactly once. `participants` is only a sizing
/// hint — the plan never depends on which thread runs what.
std::vector<std::pair<std::size_t, std::size_t>> make_chunks(
    std::size_t count, std::size_t participants, const ChunkPolicy& policy) {
  const std::size_t p = std::max<std::size_t>(participants, 1);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  auto fixed = [&](std::size_t grain) {
    for (std::size_t b = 0; b < count; b += grain) {
      chunks.emplace_back(b, std::min(b + grain, count));
    }
  };
  switch (policy.mode) {
    case ChunkPolicy::Mode::kStatic:
      fixed(std::max<std::size_t>(
          policy.grain != 0 ? policy.grain : (count + p - 1) / p, 1));
      break;
    case ChunkPolicy::Mode::kDynamic:
      fixed(std::max<std::size_t>(
          policy.grain != 0 ? policy.grain : count / (8 * p), 1));
      break;
    case ChunkPolicy::Mode::kGuided: {
      const std::size_t floor = std::max<std::size_t>(policy.grain, 1);
      std::size_t b = 0;
      while (b < count) {
        const std::size_t size =
            std::min(std::max((count - b) / (2 * p), floor), count - b);
        chunks.emplace_back(b, b + size);
        b += size;
      }
      break;
    }
  }
  return chunks;
}

}  // namespace

int resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One parallel_for call. Shared between the caller and the pool
/// workers that join it; kept alive by shared_ptr until the last
/// participant leaves, so late joiners of a finished region are no-ops.
struct Scheduler::Region {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;

  /// Per-participant work deque. The owner pops from the front
  /// (ascending indices, cache-friendly); thieves steal from the back —
  /// the Chase-Lev owner/thief discipline, with a per-deque mutex
  /// instead of the lock-free CAS dance (chunks are coarse enough that
  /// the lock is not a bottleneck, and it keeps TSan trivially clean).
  struct WorkDeque {
    std::mutex mutex;
    std::deque<std::size_t> chunk_ids;
  };
  std::vector<std::unique_ptr<WorkDeque>> deques;

  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  std::mutex mutex;
  std::condition_variable done;
  bool finished = false;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

Scheduler& Scheduler::global() {
  static Scheduler instance;
  g_scheduler_exists.store(true, std::memory_order_release);
  return instance;
}

bool Scheduler::exists() {
  return g_scheduler_exists.load(std::memory_order_acquire);
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int Scheduler::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void Scheduler::ensure_workers(int target) {
  target = std::min(target, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Scheduler::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: stale join tasks for
      // finished regions are no-ops and must not outlive the pool.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Scheduler::run_region(const std::shared_ptr<Region>& region,
                           int participant) {
  Region& r = *region;
  const int fanout = static_cast<int>(r.deques.size());

  auto pop_own = [&]() -> std::optional<std::size_t> {
    auto& dq = *r.deques[static_cast<std::size_t>(participant)];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.chunk_ids.empty()) return std::nullopt;
    const std::size_t id = dq.chunk_ids.front();
    dq.chunk_ids.pop_front();
    return id;
  };
  auto steal = [&]() -> std::optional<std::size_t> {
    for (int k = 1; k < fanout; ++k) {
      auto& dq = *r.deques[static_cast<std::size_t>((participant + k) %
                                                    fanout)];
      std::lock_guard<std::mutex> lock(dq.mutex);
      if (dq.chunk_ids.empty()) continue;
      const std::size_t id = dq.chunk_ids.back();
      dq.chunk_ids.pop_back();
      return id;
    }
    return std::nullopt;
  };

  for (;;) {
    auto id = pop_own();
    if (!id) id = steal();
    // Every deque is empty: whatever remains is in flight on other
    // participants, who will finish it — safe to leave.
    if (!id) return;

    const auto [begin, end] = r.chunks[*id];
    for (std::size_t i = begin; i < end; ++i) {
      if (r.cancelled.load(std::memory_order_relaxed)) break;
      try {
        (*r.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (i < r.error_index) {
          r.error_index = i;
          r.error = std::current_exception();
        }
        r.cancelled.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (r.remaining.fetch_sub(1) == 1) {
      {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.finished = true;
      }
      r.done.notify_all();
    }
  }
}

void Scheduler::parallel_for_indexed(
    std::size_t count, int jobs, const std::function<void(std::size_t)>& fn,
    const ChunkPolicy& policy) {
  if (count == 0) return;
  const std::size_t resolved =
      static_cast<std::size_t>(resolve_jobs(jobs));
  if (resolved <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->chunks = make_chunks(count, std::min(resolved, count), policy);
  const int fanout = static_cast<int>(
      std::min<std::size_t>(resolved, region->chunks.size()));
  if (fanout <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  region->remaining.store(region->chunks.size());
  region->deques.reserve(static_cast<std::size_t>(fanout));
  for (int p = 0; p < fanout; ++p) {
    region->deques.push_back(std::make_unique<Region::WorkDeque>());
  }
  // Round-robin distribution: ascending chunks interleave across
  // participants, so contiguous hot spots spread out even before any
  // steal happens. No locks needed — workers have not seen the region.
  for (std::size_t c = 0; c < region->chunks.size(); ++c) {
    region->deques[c % static_cast<std::size_t>(fanout)]
        ->chunk_ids.push_back(c);
  }

  ensure_workers(fanout - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int p = 1; p < fanout; ++p) {
      queue_.push_back([region, p] { run_region(region, p); });
    }
  }
  task_ready_.notify_all();

  // The caller is participant 0 and keeps popping/stealing until no
  // chunk is left unclaimed — it can drain the whole region alone if
  // the pool is busy, which is what makes nested calls deadlock-free.
  run_region(region, 0);

  std::unique_lock<std::mutex> lock(region->mutex);
  region->done.wait(lock, [&] { return region->finished; });
  // Take the exception out of the region before rethrowing: late pool
  // workers may still drop their (stale) region references, and the
  // exception object must not be co-owned by anything another thread
  // can release while the caller is reading it.
  std::exception_ptr error = std::move(region->error);
  region->error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void parallel_for_indexed(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(count, jobs, ChunkPolicy{}, fn);
}

void parallel_for_indexed(std::size_t count, int jobs,
                          const ChunkPolicy& policy,
                          const std::function<void(std::size_t)>& fn) {
  const int resolved = resolve_jobs(jobs);
  if (resolved <= 1 || count <= 1) {
    // Serial reference path: never touches (or creates) the scheduler.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  Scheduler::global().parallel_for_indexed(count, resolved, fn, policy);
}

}  // namespace rip
