#pragma once

/// @file thread_pool.hpp
/// The persistent per-process scheduler behind every batch evaluation
/// path (eval/parallel.hpp, the table runners, the bench binaries).
/// PR 2's spin-up-per-call pool is retired: a lazily-initialized
/// process-wide Scheduler keeps its workers alive across calls, cuts
/// each `parallel_for_indexed` region into chunks (ChunkPolicy), and
/// balances uneven per-index costs by work stealing between
/// per-participant deques. Design rules, unchanged since PR 2:
///
///   - workers communicate only through index-addressed result slots,
///     so a parallel run is bit-identical to the serial loop no matter
///     how chunks are scheduled or stolen across threads;
///   - exceptions propagate: the exception of the lowest failing index
///     (among those that ran) is rethrown on the calling thread and
///     indices not yet claimed are skipped;
///   - `jobs == 1` never touches the scheduler — it is the plain serial
///     loop on the calling thread, byte-for-byte the pre-pool path.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rip {

/// Resolve a user-facing `--jobs` value: N >= 1 is taken literally;
/// 0 or negative means "one per hardware thread" (at least 1).
int resolve_jobs(int jobs);

/// How a parallel_for region is cut into contiguous index chunks.
/// Chunking is computed serially up front, so the chunk list — and
/// therefore which indices exist — is identical at any job count; only
/// which thread runs a chunk varies, which the index-addressed-slot
/// rule makes invisible.
struct ChunkPolicy {
  enum class Mode {
    kStatic,   ///< fixed chunks assigned round-robin; grain 0 = count/P
    kDynamic,  ///< fixed `grain`-sized chunks, stolen freely (default)
    kGuided,   ///< decreasing chunk sizes: remaining/(2P), floor `grain`
  };
  Mode mode = Mode::kDynamic;
  /// Indices per chunk; 0 picks an automatic grain (dynamic:
  /// count/(8P), static: count/P, guided: 1), always at least 1.
  std::size_t grain = 0;
};

/// Persistent per-process scheduler. Workers are started lazily on the
/// first parallel region that needs them and are reused by every later
/// call (no per-call thread spin-up); the pool only ever grows, up to
/// the largest `jobs` requested (capped), and is joined at process
/// exit. Each region gets per-participant deques: a participant pops
/// its own deque from the front and steals from the back of others'
/// (Chase-Lev-style owner/thief ends), so one giant case among many
/// tiny ones no longer serializes a worker's whole static slice.
///
/// The calling thread always participates as a worker of its own
/// region and drains whatever the pool does not take — nested
/// `parallel_for_indexed` calls from inside a worker therefore cannot
/// deadlock even when every pool worker is busy.
class Scheduler {
 public:
  /// The process-wide instance, created on first use.
  static Scheduler& global();

  /// True once global() has been called (the singleton exists). jobs=1
  /// paths never create it.
  static bool exists();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Pool workers currently alive (excludes calling threads).
  int worker_count() const;

  /// Run fn(0) .. fn(count-1) using up to `jobs` threads (this one plus
  /// pool workers) and block until every index has run or the region
  /// was cancelled by a failure. On failure the exception of the lowest
  /// failing index (among those that ran) is rethrown here.
  void parallel_for_indexed(std::size_t count, int jobs,
                            const std::function<void(std::size_t)>& fn,
                            const ChunkPolicy& policy = {});

  /// Non-blocking region submission — the hook the async evaluation
  /// service (eval/service.hpp) sits on. The region runs entirely on up
  /// to `jobs` pool workers; the caller never participates and returns
  /// as soon as the region is enqueued. When the last chunk has run,
  /// `on_complete` is invoked exactly once — from whichever participant
  /// finishes last — with the exception of the region's lowest failing
  /// index, or nullptr when every index succeeded. The region owns
  /// moved-in copies of `fn` and `on_complete`, so the caller's state
  /// may go away as soon as this returns; anything `fn` writes to must
  /// live until `on_complete` fires. count == 0 invokes on_complete
  /// (with nullptr) synchronously on the calling thread.
  void submit_region(std::size_t count, int jobs,
                     std::function<void(std::size_t)> fn,
                     std::function<void(std::exception_ptr)> on_complete,
                     const ChunkPolicy& policy = {});

 private:
  Scheduler() = default;

  struct Region;
  static int prepare_region(Region& region, std::size_t count,
                            std::size_t resolved, const ChunkPolicy& policy);
  static void run_region(const std::shared_ptr<Region>& region,
                         int participant);
  void enqueue_participants(const std::shared_ptr<Region>& region,
                            int first_participant, int fanout);
  void ensure_workers(int target);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The standard entry point. After resolve_jobs, `jobs == 1` (or
/// count <= 1) runs the serial loop on the calling thread — the
/// reference path the golden tests pin — without ever creating the
/// scheduler; otherwise the call goes through Scheduler::global().
void parallel_for_indexed(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn);

/// Same, with an explicit chunking/stealing policy.
void parallel_for_indexed(std::size_t count, int jobs,
                          const ChunkPolicy& policy,
                          const std::function<void(std::size_t)>& fn);

}  // namespace rip
