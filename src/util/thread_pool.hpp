#pragma once

/// @file thread_pool.hpp
/// A fixed-size worker pool plus the `parallel_for_indexed` helper that
/// every batch evaluation path (eval/parallel.hpp, the table runners,
/// the bench binaries) is built on. Design rules:
///
///   - workers communicate only through index-addressed result slots,
///     so a parallel run is bit-identical to the serial loop no matter
///     how indices are scheduled across threads;
///   - exceptions propagate: the exception of the lowest failing index
///     is rethrown on the calling thread and unclaimed indices are
///     skipped;
///   - `jobs == 1` never touches a thread — it is the plain serial
///     loop on the calling thread, byte-for-byte the pre-pool path.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rip {

/// Resolve a user-facing `--jobs` value: N >= 1 is taken literally;
/// 0 or negative means "one per hardware thread" (at least 1).
int resolve_jobs(int jobs);

/// Fixed-size thread pool. Workers start in the constructor and are
/// joined in the destructor after draining every queued task.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task (FIFO). Tasks must not throw out of the pool — use
  /// parallel_for_indexed for exception-aware batches.
  void submit(std::function<void()> task);

  /// Run fn(0) .. fn(count-1) across the pool's workers and block until
  /// every index has run or one has thrown. Indices are claimed
  /// dynamically, so `fn` must only write through index-addressed slots
  /// to stay deterministic. On failure the exception of the lowest
  /// failing index (among those that ran) is rethrown here and indices
  /// not yet claimed are skipped.
  void parallel_for_indexed(std::size_t count,
                            const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stop_ = false;
};

/// One-shot helper. After resolve_jobs, `jobs == 1` (or count <= 1)
/// runs the serial loop on the calling thread — the reference path the
/// golden tests pin — otherwise a pool of min(jobs, count) workers
/// lives for the duration of the loop.
void parallel_for_indexed(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn);

}  // namespace rip
