#include "util/rng.hpp"

#include "util/error.hpp"

namespace rip {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RIP_REQUIRE(lo <= hi, "uniform() bounds out of order");
  return lo + (hi - lo) * uniform01();
}

int Rng::uniform_int(int lo, int hi) {
  RIP_REQUIRE(lo <= hi, "uniform_int() bounds out of order");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64,
  // so the bias is far below anything observable in our workloads.
  return lo + static_cast<int>(next_u64() % span);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace rip
