#pragma once

/// @file stage_quantities.hpp
/// The lumped per-stage wire totals that appear in the paper's analysis:
/// R_{i-1} (total wire resistance between repeaters i-1 and i) and C_i
/// (total wire capacitance between repeaters i and i+1), Fig. 3. Both the
/// width solver (Eq. 8) and the location derivatives (Eqs. 17/18) consume
/// these.

#include <vector>

#include "net/net.hpp"

namespace rip::analytical {

/// Wire totals for the n+1 stages induced by n repeater positions.
/// stage_r[i] / stage_c[i] cover the span from position i to position
/// i+1, where position 0 is the driver and position n+1 the receiver.
struct StageQuantities {
  std::vector<double> stage_r_ohm;  ///< size n+1
  std::vector<double> stage_c_ff;   ///< size n+1
};

/// Compute stage totals for sorted repeater positions strictly inside
/// (0, L).
StageQuantities stage_quantities(const net::Net& net,
                                 const std::vector<double>& positions_um);

}  // namespace rip::analytical
