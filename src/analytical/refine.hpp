#pragma once

/// @file refine.hpp
/// Algorithm REFINE (Fig. 5 of the paper): iteratively re-solve the
/// optimal continuous widths (width_solver.hpp) and move repeaters along
/// the net (movement.hpp) until the total-width improvement per
/// iteration drops below epsilon_0.
///
/// REFINE assumes the repeater count and ordering of the initial solution
/// (from the coarse DP) and treats widths as continuous; RIP then rounds
/// the result back into a discrete library (core/rip.hpp).

#include <vector>

#include "analytical/movement.hpp"
#include "analytical/width_solver.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::analytical {

/// REFINE knobs (paper defaults where specified).
struct RefineOptions {
  double epsilon0 = 1e-3;  ///< relative total-width improvement threshold
  int max_iterations = 120;  ///< movement iterations across all scales
  /// Movement runs coarse-to-fine: the base step is multiplied by each
  /// scale in turn and iterated to convergence before dropping to the
  /// next. Large early steps escape shallow basins; the final scale is
  /// the paper's preselected distance.
  std::vector<double> step_scales = {8.0, 4.0, 2.0, 1.0};
  MoveOptions move;
  WidthSolveOptions width_solve;
};

/// Result of a REFINE run.
struct RefineResult {
  /// Final placement with *continuous* widths.
  std::vector<double> positions_um;
  std::vector<double> widths_u;
  double lambda = 0;
  double delay_fs = 0;          ///< Elmore delay at the final solution
  double total_width_u = 0;
  int iterations = 0;           ///< movement iterations executed
  bool width_solve_ok = false;  ///< initial width solve converged
  /// Total width after each width solve (monotone non-increasing).
  std::vector<double> width_history_u;

  /// Convenience: the result as a RepeaterSolution.
  net::RepeaterSolution solution() const;
};

/// Run REFINE from an initial discrete solution. If the initial width
/// solve fails (tau_t below the continuous optimum for this repeater
/// count/placement), returns with width_solve_ok == false and the initial
/// solution untouched — RIP falls back to the DP result in that case.
RefineResult refine(const net::Net& net, const tech::RepeaterDevice& device,
                    const net::RepeaterSolution& initial, double tau_t_fs,
                    const RefineOptions& options = {});

}  // namespace rip::analytical
