#pragma once

/// @file movement.hpp
/// REFINE's repeater movement step (Fig. 5, lines 4-5).
///
/// At a power-optimal placement, the one-sided derivatives of the total
/// delay with respect to each repeater location satisfy (with lambda > 0)
///   (d tau / d x_i)+ >= 0   and   (d tau / d x_i)- <= 0      (Eqs. 22-23)
/// with the explicit forms of Eqs. (17)-(18). If the right-hand
/// derivative is negative, moving the repeater downstream reduces delay,
/// creating slack that the width re-solve converts into smaller
/// repeaters (Eq. 13); symmetrically for the left-hand derivative.

#include <vector>

#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::analytical {

/// One-sided location derivatives of tau_total for one repeater [fs/um].
struct LocationDerivatives {
  double right = 0;  ///< (d tau / d x_i)+, Eq. (17)
  double left = 0;   ///< (d tau / d x_i)-, Eq. (18)
};

/// Evaluate Eqs. (17)/(18) for every repeater at the given placement.
std::vector<LocationDerivatives> location_derivatives(
    const net::Net& net, const tech::RepeaterDevice& device,
    const std::vector<double>& positions_um,
    const std::vector<double>& widths_u);

/// Movement policy knobs.
struct MoveOptions {
  double step_um = 50.0;     ///< the paper's "preselected distance"
  double min_separation_um = 1.0;  ///< keep repeaters apart and off pins
  /// Section 7 extension: allow a move that lands inside a forbidden
  /// zone to hop to the zone's far boundary instead of being skipped.
  bool allow_zone_hop = false;
};

/// Apply one movement pass, mutating `positions_um`. A repeater moves
/// downstream if its right derivative is negative, upstream if its left
/// derivative is positive (the larger violation wins when both), and
/// stays put when the move would enter a forbidden zone (unless hopping
/// is enabled), cross a neighbour, or leave the net. Returns how many
/// repeaters moved.
int move_repeaters(const net::Net& net, const tech::RepeaterDevice& device,
                   std::vector<double>& positions_um,
                   const std::vector<double>& widths_u,
                   const MoveOptions& options);

}  // namespace rip::analytical
