#include "analytical/movement.hpp"

#include <algorithm>
#include <cmath>

#include "analytical/stage_quantities.hpp"
#include "util/error.hpp"

namespace rip::analytical {

std::vector<LocationDerivatives> location_derivatives(
    const net::Net& net, const tech::RepeaterDevice& device,
    const std::vector<double>& positions_um,
    const std::vector<double>& widths_u) {
  RIP_REQUIRE(positions_um.size() == widths_u.size(),
              "positions/widths size mismatch");
  const StageQuantities stage = stage_quantities(net, positions_um);
  const double rs = device.rs_ohm;
  const double co = device.co_ff;
  const std::size_t n = positions_um.size();

  std::vector<LocationDerivatives> derivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = widths_u[i];
    const double w_prev = (i == 0) ? net.driver_width_u() : widths_u[i - 1];
    const double w_next =
        (i + 1 == n) ? net.receiver_width_u() : widths_u[i + 1];
    const double r_up_total = stage.stage_r_ohm[i];      // R_{i-1}
    const double c_down_total = stage.stage_c_ff[i + 1]; // C_i

    // Eq. (17)/(18): same expression, evaluated with the per-unit-length
    // wire parameters just downstream (right) vs. just upstream (left)
    // of the repeater.
    auto one_sided = [&](const net::WirePiece& wire) {
      return co * wire.r_ohm_per_um * (w - w_next) +
             rs * wire.c_ff_per_um * (1.0 / w_prev - 1.0 / w) +
             wire.c_ff_per_um * r_up_total -
             wire.r_ohm_per_um * c_down_total;
    };
    derivs[i].right =
        one_sided(net.wire_at(positions_um[i], net::Side::kDownstream));
    derivs[i].left =
        one_sided(net.wire_at(positions_um[i], net::Side::kUpstream));
  }
  return derivs;
}

namespace {

/// Resolve a proposed move target against forbidden zones. Returns true
/// if the (possibly adjusted) target is usable.
bool resolve_zone(const net::Net& net, bool moving_downstream,
                  bool allow_zone_hop, double& target_um) {
  const int zone = net.zone_index_at(target_um);
  if (zone < 0) return true;
  if (!allow_zone_hop) return false;
  // Hop to the far boundary of the zone in the direction of motion
  // (boundaries themselves are legal placements).
  const auto& z = net.zones()[static_cast<std::size_t>(zone)];
  target_um = moving_downstream ? z.end_um : z.start_um;
  return true;
}

}  // namespace

int move_repeaters(const net::Net& net, const tech::RepeaterDevice& device,
                   std::vector<double>& positions_um,
                   const std::vector<double>& widths_u,
                   const MoveOptions& options) {
  RIP_REQUIRE(options.step_um > 0, "movement step must be positive");
  const auto derivs =
      location_derivatives(net, device, positions_um, widths_u);
  const double total = net.total_length_um();
  const std::size_t n = positions_um.size();
  int moved = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const bool want_down = derivs[i].right < 0;  // violates Eq. (22)
    const bool want_up = derivs[i].left > 0;     // violates Eq. (23)
    if (!want_down && !want_up) continue;
    bool downstream;
    if (want_down && want_up) {
      // Both violated: pick the direction promising the larger delay
      // reduction (Eq. 13 converts it into the larger width reduction).
      downstream = std::abs(derivs[i].right) >= std::abs(derivs[i].left);
    } else {
      downstream = want_down;
    }

    double target =
        positions_um[i] + (downstream ? options.step_um : -options.step_um);
    // Keep inside the net and away from the neighbours. The upstream
    // neighbour has already moved this pass; the downstream one has not.
    const double lo_bound =
        (i == 0 ? 0.0 : positions_um[i - 1]) + options.min_separation_um;
    const double hi_bound =
        (i + 1 == n ? total : positions_um[i + 1]) -
        options.min_separation_um;
    target = std::clamp(target, lo_bound, hi_bound);
    if (!resolve_zone(net, downstream, options.allow_zone_hop, target))
      continue;  // the paper's rule: skip moves into forbidden zones
    target = std::clamp(target, lo_bound, hi_bound);
    if (net.in_forbidden_zone(target)) continue;  // clamp re-entered a zone
    if (std::abs(target - positions_um[i]) < 1e-9) continue;
    positions_um[i] = target;
    ++moved;
  }
  return moved;
}

}  // namespace rip::analytical
