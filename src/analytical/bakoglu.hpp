#pragma once

/// @file bakoglu.hpp
/// Closed-form repeater insertion on a *uniform* line (Bakoglu-style,
/// [4] in the paper). For a line of total resistance R and capacitance C
/// driven through unit-repeater parameters (R_s, C_o, C_p), the
/// delay-optimal stage count and width minimize
///
///   tau(k, w) = k R_s C_p + R_s C / w + k R_s C_o + R C^2.../(2k) ...
///
/// evaluated exactly in optimal_uniform_insertion(). Used as an
/// independent sanity check of the DP's tau_min on uniform nets and as
/// the seed-quality reference in tests; not used by RIP itself (RIP's
/// stage 1 plays this role on non-uniform nets).

#include "tech/technology.hpp"

namespace rip::analytical {

/// Closed-form solution for a uniform line.
struct UniformInsertion {
  double stage_count = 0;   ///< optimal (continuous) number of stages k*
  double width_u = 0;       ///< optimal (continuous) repeater width w*
  double delay_fs = 0;      ///< resulting minimum delay
};

/// Compute k* = L sqrt(r c / (2 R_s (C_o + C_p))), w* = sqrt(R_s c /
/// (r C_o)) and the delay tau(k*, w*) for a uniform line of length
/// `length_um` with per-unit r, c. The driver/receiver are assumed to be
/// repeaters of the same optimal width (the classic repeated-line
/// abstraction).
UniformInsertion optimal_uniform_insertion(const tech::RepeaterDevice& device,
                                           double length_um,
                                           double r_ohm_per_um,
                                           double c_ff_per_um);

}  // namespace rip::analytical
