#include "analytical/stage_quantities.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rip::analytical {

StageQuantities stage_quantities(const net::Net& net,
                                 const std::vector<double>& positions_um) {
  RIP_REQUIRE(std::is_sorted(positions_um.begin(), positions_um.end()),
              "repeater positions must be sorted");
  const double total = net.total_length_um();
  for (const double x : positions_um) {
    RIP_REQUIRE(x > 0 && x < total, "repeater position outside the net");
  }
  StageQuantities q;
  q.stage_r_ohm.reserve(positions_um.size() + 1);
  q.stage_c_ff.reserve(positions_um.size() + 1);
  double from = 0.0;
  for (std::size_t i = 0; i <= positions_um.size(); ++i) {
    const double to = (i == positions_um.size()) ? total : positions_um[i];
    q.stage_r_ohm.push_back(net.resistance_between_ohm(from, to));
    q.stage_c_ff.push_back(net.capacitance_between_ff(from, to));
    from = to;
  }
  return q;
}

}  // namespace rip::analytical
