#include "analytical/refine.hpp"

#include <cmath>

#include "rc/buffered_chain.hpp"
#include "util/error.hpp"

namespace rip::analytical {

net::RepeaterSolution RefineResult::solution() const {
  std::vector<net::Repeater> reps;
  reps.reserve(positions_um.size());
  for (std::size_t i = 0; i < positions_um.size(); ++i)
    reps.push_back(net::Repeater{positions_um[i], widths_u[i]});
  return net::RepeaterSolution(std::move(reps));
}

RefineResult refine(const net::Net& net, const tech::RepeaterDevice& device,
                    const net::RepeaterSolution& initial, double tau_t_fs,
                    const RefineOptions& options) {
  RIP_REQUIRE(tau_t_fs > 0, "timing target must be positive");
  RefineResult result;
  for (const auto& r : initial.repeaters()) {
    result.positions_um.push_back(r.position_um);
    result.widths_u.push_back(r.width_u);
  }
  if (initial.empty()) {
    // Nothing to refine; report the unbuffered delay.
    result.width_solve_ok = true;
    result.delay_fs =
        rc::elmore_delay_fs(net, net::RepeaterSolution{}, device);
    return result;
  }

  // Line 1: optimal continuous widths and lambda for the DP placement.
  WidthSolveResult ws = solve_widths(net, device, result.positions_um,
                                     tau_t_fs, options.width_solve);
  if (!ws.converged) {
    result.width_solve_ok = false;
    return result;  // caller falls back to the DP solution
  }
  result.width_solve_ok = true;
  result.widths_u = ws.widths_u;
  result.lambda = ws.lambda;
  result.delay_fs = ws.delay_fs;
  result.total_width_u = ws.total_width_u;
  result.width_history_u.push_back(ws.total_width_u);

  // Lines 3-9: move repeaters, re-solve widths, until the improvement
  // stalls. Movement runs coarse-to-fine over step_scales; state reverts
  // if a step fails to improve, which keeps the width history monotone.
  double w_total = ws.total_width_u;
  int iterations = 0;
  for (const double scale : options.step_scales) {
    MoveOptions move = options.move;
    move.step_um *= scale;
    while (iterations < options.max_iterations) {
      std::vector<double> trial_positions = result.positions_um;
      const int moved = move_repeaters(net, device, trial_positions,
                                       result.widths_u, move);
      if (moved == 0) break;

      WidthSolveOptions ws_options = options.width_solve;
      ws_options.lambda_hint = result.lambda;
      WidthSolveResult trial = solve_widths(net, device, trial_positions,
                                            tau_t_fs, ws_options);
      if (!trial.converged || trial.total_width_u > w_total) {
        break;  // movement overshot at this scale: try a finer step
      }
      ++iterations;
      result.positions_um = std::move(trial_positions);
      result.widths_u = trial.widths_u;
      result.lambda = trial.lambda;
      result.delay_fs = trial.delay_fs;
      result.total_width_u = trial.total_width_u;
      result.width_history_u.push_back(trial.total_width_u);
      result.iterations = iterations;

      const double eps = (w_total - trial.total_width_u) / w_total;
      w_total = trial.total_width_u;
      if (eps < options.epsilon0) break;
    }
  }
  return result;
}

}  // namespace rip::analytical
