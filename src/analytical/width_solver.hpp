#pragma once

/// @file width_solver.hpp
/// The analytical width solve at the heart of REFINE (Fig. 5, lines 1
/// and 7): given fixed repeater positions, find the *continuous* widths
/// w_1..w_n and multiplier lambda satisfying the KKT system
///
///   tau_total(w) = tau_t                                  (Eq. 5)
///   1 + lambda * (C_o (R_{i-1} + R_s/w_{i-1})
///                 - R_s (C_i + C_o w_{i+1}) / w_i^2) = 0  (Eq. 8)
///
/// Structure of the solve: for fixed lambda the stationarity equations
/// give w_i = sqrt(lambda R_s (C_i + C_o w_{i+1}) /
///               (1 + lambda C_o (R_{i-1} + R_s/w_{i-1}))),
/// which a Gauss–Seidel sweep (i = n..1) drives to a fixed point; the
/// objective p + lambda*tau is a posynomial in w, so the fixed point is
/// the global minimizer and tau(lambda) is monotone decreasing — the
/// outer loop is a robust log-space bisection on lambda.

#include <vector>

#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::analytical {

/// Solver knobs.
struct WidthSolveOptions {
  double min_width_u = 1e-3;   ///< width floor during iteration
  double gs_tol = 1e-12;       ///< Gauss–Seidel relative convergence
  int gs_max_sweeps = 500;
  double delay_rel_tol = 1e-9; ///< |tau - tau_t| / tau_t convergence
  int lambda_max_iters = 200;
  double lambda_min = 1e-15;   ///< bracket lower bound [u/fs]
  double lambda_max = 1e9;     ///< bracket growth limit [u/fs]
  /// Warm start: a lambda expected to be near the solution (e.g. from
  /// the previous REFINE movement iteration). 0 disables.
  double lambda_hint = 0;
};

/// Solution of the KKT system.
struct WidthSolveResult {
  std::vector<double> widths_u;  ///< optimal continuous widths (size n)
  double lambda = 0;             ///< Lagrange multiplier [u/fs]
  double delay_fs = 0;           ///< Elmore delay at the solution
  double total_width_u = 0;      ///< sum of widths (the objective)
  bool converged = false;        ///< false if tau_t is unreachable with
                                 ///< this repeater count and placement
};

/// Solve for the optimal continuous widths at fixed positions.
/// Positions must be sorted, strictly inside (0, L). With n == 0 the
/// result has no widths and reports the unbuffered delay; it converges
/// iff that delay already meets tau_t.
WidthSolveResult solve_widths(const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const std::vector<double>& positions_um,
                              double tau_t_fs,
                              const WidthSolveOptions& options = {});

/// Residuals of Eq. (8) at (widths, lambda) — near zero at a converged
/// solution. Exposed for the property tests.
std::vector<double> kkt_residuals(const net::Net& net,
                                  const tech::RepeaterDevice& device,
                                  const std::vector<double>& positions_um,
                                  const std::vector<double>& widths_u,
                                  double lambda);

}  // namespace rip::analytical
