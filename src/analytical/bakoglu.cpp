#include "analytical/bakoglu.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rip::analytical {

UniformInsertion optimal_uniform_insertion(const tech::RepeaterDevice& device,
                                           double length_um,
                                           double r_ohm_per_um,
                                           double c_ff_per_um) {
  RIP_REQUIRE(length_um > 0, "line length must be positive");
  RIP_REQUIRE(r_ohm_per_um > 0 && c_ff_per_um > 0,
              "line RC must be positive");
  const double rs = device.rs_ohm;
  const double co = device.co_ff;
  const double cp = device.cp_ff;
  const double wire_r = r_ohm_per_um * length_um;
  const double wire_c = c_ff_per_um * length_um;

  // tau(k, w) = k R_s (C_p + C_o)            (intrinsic + gate loading)
  //           + R_s C_wire / w               (driving the wire)
  //           + R_wire C_wire / (2 k)        (distributed wire)
  //           + R_wire C_o w                 (wire driving gates)
  // d tau / dk = R_s (C_p + C_o) - R_wire C_wire / (2 k^2) = 0
  // d tau / dw = -R_s C_wire / w^2 + R_wire C_o = 0
  UniformInsertion out;
  out.stage_count = std::sqrt(wire_r * wire_c / (2.0 * rs * (co + cp)));
  out.width_u = std::sqrt(rs * wire_c / (wire_r * co));
  out.delay_fs = out.stage_count * rs * (cp + co) +
                 rs * wire_c / out.width_u +
                 wire_r * wire_c / (2.0 * out.stage_count) +
                 wire_r * co * out.width_u;
  return out;
}

}  // namespace rip::analytical
