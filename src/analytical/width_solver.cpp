#include "analytical/width_solver.hpp"

#include <algorithm>
#include <cmath>

#include "analytical/stage_quantities.hpp"
#include "rc/buffered_chain.hpp"
#include "util/error.hpp"

namespace rip::analytical {

namespace {

/// Elmore delay of the chain at given positions/widths.
double chain_delay_fs(const net::Net& net, const tech::RepeaterDevice& device,
                      const std::vector<double>& positions_um,
                      const std::vector<double>& widths_u) {
  std::vector<net::Repeater> reps;
  reps.reserve(positions_um.size());
  for (std::size_t i = 0; i < positions_um.size(); ++i)
    reps.push_back(net::Repeater{positions_um[i], widths_u[i]});
  return rc::elmore_delay_fs(net, net::RepeaterSolution(std::move(reps)),
                             device);
}

/// One lambda evaluation: Gauss–Seidel to the width fixed point (warm
/// started from `widths`), returning the resulting delay.
double widths_for_lambda(const net::Net& net,
                         const tech::RepeaterDevice& device,
                         const StageQuantities& stage,
                         const std::vector<double>& positions_um,
                         double lambda, const WidthSolveOptions& options,
                         std::vector<double>& widths) {
  const std::size_t n = widths.size();
  const double rs = device.rs_ohm;
  const double co = device.co_ff;
  const double wd = net.driver_width_u();
  const double wr = net.receiver_width_u();
  for (int sweep = 0; sweep < options.gs_max_sweeps; ++sweep) {
    double max_rel_change = 0.0;
    for (std::size_t i = n; i-- > 0;) {
      // Paper indices: repeater i+1 in 1-based terms. Stage i covers the
      // wire upstream of this repeater, stage i+1 the wire downstream.
      const double w_prev = (i == 0) ? wd : widths[i - 1];
      const double w_next = (i + 1 == n) ? wr : widths[i + 1];
      const double r_up = stage.stage_r_ohm[i];        // R_{i-1}
      const double c_down = stage.stage_c_ff[i + 1];   // C_i
      const double num = lambda * rs * (c_down + co * w_next);
      const double den = 1.0 + lambda * co * (r_up + rs / w_prev);
      const double w_new = std::max(options.min_width_u,
                                    std::sqrt(num / den));
      max_rel_change = std::max(
          max_rel_change, std::abs(w_new - widths[i]) /
                              std::max(widths[i], options.min_width_u));
      widths[i] = w_new;
    }
    if (max_rel_change < options.gs_tol) break;
  }
  return chain_delay_fs(net, device, positions_um, widths);
}

}  // namespace

WidthSolveResult solve_widths(const net::Net& net,
                              const tech::RepeaterDevice& device,
                              const std::vector<double>& positions_um,
                              double tau_t_fs,
                              const WidthSolveOptions& options) {
  RIP_REQUIRE(tau_t_fs > 0, "timing target must be positive");
  WidthSolveResult result;
  const std::size_t n = positions_um.size();
  if (n == 0) {
    result.delay_fs = chain_delay_fs(net, device, {}, {});
    result.converged = result.delay_fs <= tau_t_fs;
    return result;
  }

  const StageQuantities stage = stage_quantities(net, positions_um);
  std::vector<double> widths(n, 1.0);

  auto delay_at = [&](double lambda) {
    return widths_for_lambda(net, device, stage, positions_um, lambda,
                             options, widths);
  };

  // Bracket lambda: tau(lambda) is monotone decreasing. Small lambda ->
  // tiny widths -> huge delay; grow lambda until the target is met. A
  // lambda_hint narrows the initial bracket (the movement loop re-solves
  // with a nearly unchanged multiplier).
  double lo = options.lambda_min;
  if (options.lambda_hint > 0) {
    lo = std::clamp(options.lambda_hint / 100.0, options.lambda_min,
                    options.lambda_max);
  }
  double lo_delay = delay_at(lo);
  while (lo_delay <= tau_t_fs && lo > options.lambda_min) {
    lo = std::max(options.lambda_min, lo / 100.0);
    lo_delay = delay_at(lo);
  }
  if (lo_delay <= tau_t_fs) {
    // Even near-zero widths meet the target: the relaxation's optimum is
    // the width floor everywhere.
    result.widths_u = widths;
    result.lambda = lo;
    result.delay_fs = lo_delay;
    for (const double w : widths) result.total_width_u += w;
    result.converged = true;
    return result;
  }
  double hi = lo;
  double hi_delay = lo_delay;
  while (hi_delay > tau_t_fs && hi < options.lambda_max) {
    hi *= 10.0;
    hi_delay = delay_at(hi);
  }
  if (hi_delay > tau_t_fs) {
    // tau_t below the continuous minimum for this placement: infeasible.
    result.widths_u = widths;
    result.lambda = hi;
    result.delay_fs = hi_delay;
    for (const double w : widths) result.total_width_u += w;
    result.converged = false;
    return result;
  }

  // Log-space bisection on lambda.
  double mid = hi;
  double mid_delay = hi_delay;
  for (int it = 0; it < options.lambda_max_iters; ++it) {
    mid = std::sqrt(lo * hi);
    mid_delay = delay_at(mid);
    if (std::abs(mid_delay - tau_t_fs) <=
        options.delay_rel_tol * tau_t_fs) {
      break;
    }
    if (mid_delay > tau_t_fs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Land on the feasible side of the bracket.
  if (mid_delay > tau_t_fs) {
    mid = hi;
    mid_delay = delay_at(mid);
  }

  result.widths_u = widths;
  result.lambda = mid;
  result.delay_fs = mid_delay;
  for (const double w : widths) result.total_width_u += w;
  result.converged = true;
  return result;
}

std::vector<double> kkt_residuals(const net::Net& net,
                                  const tech::RepeaterDevice& device,
                                  const std::vector<double>& positions_um,
                                  const std::vector<double>& widths_u,
                                  double lambda) {
  RIP_REQUIRE(positions_um.size() == widths_u.size(),
              "positions/widths size mismatch");
  const StageQuantities stage = stage_quantities(net, positions_um);
  const std::size_t n = widths_u.size();
  const double rs = device.rs_ohm;
  const double co = device.co_ff;
  std::vector<double> residuals(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w_prev = (i == 0) ? net.driver_width_u() : widths_u[i - 1];
    const double w_next =
        (i + 1 == n) ? net.receiver_width_u() : widths_u[i + 1];
    const double w = widths_u[i];
    residuals[i] =
        1.0 + lambda * (co * (stage.stage_r_ohm[i] + rs / w_prev) -
                        rs * (stage.stage_c_ff[i + 1] + co * w_next) /
                            (w * w));
  }
  return residuals;
}

}  // namespace rip::analytical
