#pragma once

/// @file net_io.hpp
/// Text serialization of nets ("RIPNET v1"): a line-oriented format so
/// that routed nets can be exchanged with external tools.
///
///     ripnet 1
///     name net_7
///     driver 120
///     receiver 60
///     segment len_um 1500 r_ohm_per_um 0.108 c_ff_per_um 0.21 layer metal4
///     segment len_um 2100 r_ohm_per_um 0.088 c_ff_per_um 0.24 layer metal5
///     zone 900 2400
///
/// Lines beginning with '#' are comments. Segments appear in routed order
/// from the driver.

#include <iosfwd>
#include <string>

#include "net/net.hpp"

namespace rip::net {

/// Parse a net; throws rip::Error with a line number on malformed input.
/// A non-empty `source` (file name, stream label) prefixes every error
/// message as "<source>: ...", so failures deep in a scripted flow still
/// say which file was bad.
Net read_net(std::istream& is, const std::string& source = "");

/// Parse from a file path; errors are prefixed with the path.
Net read_net_file(const std::string& path);

/// Serialize; `read_net` round-trips the output.
void write_net(std::ostream& os, const Net& net);

}  // namespace rip::net
