#pragma once

/// @file candidates.hpp
/// Candidate repeater locations for the DP stages.
///
/// The baseline DP (Section 6 of the paper) uses locations uniformly
/// distributed along the net with a given pitch, excluding forbidden
/// zones. The final RIP stage instead uses a *small* set: each REFINE
/// location plus a window of neighbours at a finer pitch.

#include <vector>

#include "net/net.hpp"

namespace rip::net {

/// Positions k * pitch for k = 1, 2, ... strictly inside (0, L),
/// excluding positions strictly inside forbidden zones. Sorted ascending.
std::vector<double> uniform_candidates(const Net& net, double pitch_um);

/// For each center c, the positions c + j * pitch for j in
/// [-half_window, +half_window], clipped to (0, L), excluding forbidden
/// zones, merged over all centers, deduplicated (within 1e-6 um) and
/// sorted ascending. This is the "locations derived by REFINE plus N
/// locations before and after" set of RIP's final stage.
std::vector<double> window_candidates(const Net& net,
                                      const std::vector<double>& centers_um,
                                      int half_window, double pitch_um);

}  // namespace rip::net
