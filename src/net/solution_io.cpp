#include "net/solution_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rip::net {

ParsedSolution read_solution(std::istream& is) {
  std::string line;
  int line_no = 0;
  bool got_magic = false;
  std::string net_name;
  std::vector<Repeater> repeaters;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    const std::string& kind = tokens[0];
    if (kind == "ripsol") {
      RIP_REQUIRE(tokens.size() == 2 && tokens[1] == "1",
                  "unsupported ripsol version at line " +
                      std::to_string(line_no));
      got_magic = true;
    } else if (kind == "net") {
      RIP_REQUIRE(tokens.size() == 2,
                  "net takes one token at line " + std::to_string(line_no));
      net_name = tokens[1];
    } else if (kind == "repeater") {
      RIP_REQUIRE(tokens.size() == 5 && tokens[1] == "x_um" &&
                      tokens[3] == "w_u",
                  "repeater line must be 'repeater x_um <pos> w_u <width>' "
                  "at line " + std::to_string(line_no));
      repeaters.push_back(Repeater{parse_double(tokens[2], "x_um"),
                                   parse_double(tokens[4], "w_u")});
    } else {
      throw Error("unknown directive '" + kind + "' at line " +
                  std::to_string(line_no));
    }
  }
  RIP_REQUIRE(got_magic, "missing 'ripsol 1' header");
  ParsedSolution out;
  out.solution = RepeaterSolution(std::move(repeaters));
  out.net_name = std::move(net_name);
  return out;
}

ParsedSolution read_solution_file(const std::string& path) {
  std::ifstream in(path);
  RIP_REQUIRE(in.good(), "cannot open solution file: " + path);
  return read_solution(in);
}

void write_solution(std::ostream& os, const RepeaterSolution& solution,
                    const std::string& net_name) {
  os << "ripsol 1\n";
  if (!net_name.empty()) os << "net " << net_name << "\n";
  for (const auto& r : solution.repeaters()) {
    os << "repeater x_um " << r.position_um << " w_u " << r.width_u << "\n";
  }
}

}  // namespace rip::net
