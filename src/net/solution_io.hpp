#pragma once

/// @file solution_io.hpp
/// Text serialization of repeater solutions ("RIPSOL v1"), the hand-off
/// artifact between the optimizer and downstream flows (placement
/// legalization, SPICE validation):
///
///     ripsol 1
///     net my_net
///     repeater x_um 2250 w_u 80
///     repeater x_um 7000 w_u 90
///
/// Lines beginning with '#' are comments.

#include <iosfwd>
#include <string>

#include "net/solution.hpp"

namespace rip::net {

/// Parse a solution; throws rip::Error on malformed input. Returns the
/// solution and the net name it claims to buffer (empty if absent).
struct ParsedSolution {
  RepeaterSolution solution;
  std::string net_name;
};
ParsedSolution read_solution(std::istream& is);

/// Parse from a file path.
ParsedSolution read_solution_file(const std::string& path);

/// Serialize; `read_solution` round-trips the output.
void write_solution(std::ostream& os, const RepeaterSolution& solution,
                    const std::string& net_name);

}  // namespace rip::net
