#include "net/candidates.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rip::net {

std::vector<double> uniform_candidates(const Net& net, double pitch_um) {
  RIP_REQUIRE(pitch_um > 0, "candidate pitch must be positive");
  std::vector<double> out;
  const double total = net.total_length_um();
  out.reserve(static_cast<std::size_t>(total / pitch_um) + 1);
  for (double pos = pitch_um; pos < total; pos += pitch_um) {
    if (net.placement_legal(pos)) out.push_back(pos);
  }
  return out;
}

std::vector<double> window_candidates(const Net& net,
                                      const std::vector<double>& centers_um,
                                      int half_window, double pitch_um) {
  RIP_REQUIRE(half_window >= 0, "window size must be non-negative");
  RIP_REQUIRE(pitch_um > 0, "window pitch must be positive");
  std::vector<double> out;
  out.reserve(centers_um.size() * (2 * half_window + 1));
  for (const double c : centers_um) {
    for (int j = -half_window; j <= half_window; ++j) {
      const double pos = c + j * pitch_um;
      if (net.placement_legal(pos)) out.push_back(pos);
    }
  }
  std::sort(out.begin(), out.end());
  constexpr double kDedupTolUm = 1e-6;
  out.erase(std::unique(out.begin(), out.end(),
                        [](double a, double b) {
                          return std::abs(a - b) < kDedupTolUm;
                        }),
            out.end());
  return out;
}

}  // namespace rip::net
