#pragma once

/// @file generator.hpp
/// Random net population exactly matching Section 6 of the paper:
///   - 4..10 segments per net,
///   - each segment 1000..2500 um long,
///   - routed on metal4 / metal5 only,
///   - one forbidden zone of 20%..40% of the total length,
///   - zone location uniformly distributed along the net.
/// Driver/receiver widths are not specified by the paper; defaults are
/// plausible global-net endpoints and can be randomized within a range.

#include "net/net.hpp"
#include "tech/technology.hpp"
#include "util/rng.hpp"

namespace rip::net {

/// Distribution parameters for the random net generator (paper defaults).
struct RandomNetConfig {
  int min_segments = 4;
  int max_segments = 10;
  double min_segment_length_um = 1000.0;
  double max_segment_length_um = 2500.0;
  /// Layers to draw from (uniformly per segment).
  std::vector<std::string> layers = {"metal4", "metal5"};
  int zone_count = 1;
  double zone_fraction_min = 0.20;  ///< zone length as fraction of net length
  double zone_fraction_max = 0.40;
  double driver_width_min_u = 80.0;
  double driver_width_max_u = 160.0;
  double receiver_width_min_u = 30.0;
  double receiver_width_max_u = 80.0;
};

/// Draw one net from the population. Deterministic given `rng` state.
/// @param name  net name used in reports.
Net random_net(const tech::Technology& tech, const RandomNetConfig& config,
               Rng& rng, const std::string& name);

}  // namespace rip::net
