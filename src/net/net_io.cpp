#include "net/net_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rip::net {

namespace {
std::map<std::string, std::string> kv_pairs(
    const std::vector<std::string>& tokens, std::size_t from, int line_no) {
  RIP_REQUIRE((tokens.size() - from) % 2 == 0,
              "odd key/value list at line " + std::to_string(line_no));
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i + 1 < tokens.size(); i += 2)
    kv[tokens[i]] = tokens[i + 1];
  return kv;
}
}  // namespace

namespace {
Net read_net_impl(std::istream& is) {
  std::string line;
  int line_no = 0;
  bool got_magic = false;
  std::string name = "net";
  double driver = 0.0;
  double receiver = 0.0;
  std::vector<Segment> segments;
  std::vector<ForbiddenZone> zones;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    const std::string& kind = tokens[0];
    if (kind == "ripnet") {
      RIP_REQUIRE(
          tokens.size() == 2 && tokens[1] == "1",
          "unsupported ripnet version at line " + std::to_string(line_no));
      got_magic = true;
    } else if (kind == "name") {
      RIP_REQUIRE(tokens.size() == 2,
                  "name takes one token at line " + std::to_string(line_no));
      name = tokens[1];
    } else if (kind == "driver") {
      RIP_REQUIRE(tokens.size() == 2,
                  "driver takes one value at line " + std::to_string(line_no));
      driver = parse_double(tokens[1], "driver width");
    } else if (kind == "receiver") {
      RIP_REQUIRE(tokens.size() == 2, "receiver takes one value at line " +
                                          std::to_string(line_no));
      receiver = parse_double(tokens[1], "receiver width");
    } else if (kind == "segment") {
      const auto kv = kv_pairs(tokens, 1, line_no);
      Segment s;
      auto need = [&](const char* key) {
        const auto it = kv.find(key);
        RIP_REQUIRE(it != kv.end(), std::string("missing segment key '") +
                                        key + "' at line " +
                                        std::to_string(line_no));
        return parse_double(it->second, key);
      };
      s.length_um = need("len_um");
      s.r_ohm_per_um = need("r_ohm_per_um");
      s.c_ff_per_um = need("c_ff_per_um");
      if (const auto it = kv.find("layer"); it != kv.end()) s.layer = it->second;
      segments.push_back(std::move(s));
    } else if (kind == "zone") {
      RIP_REQUIRE(tokens.size() == 3,
                  "zone takes start and end at line " + std::to_string(line_no));
      zones.push_back(ForbiddenZone{parse_double(tokens[1], "zone start"),
                                    parse_double(tokens[2], "zone end")});
    } else {
      throw Error("unknown directive '" + kind + "' at line " +
                  std::to_string(line_no));
    }
  }
  RIP_REQUIRE(got_magic, "missing 'ripnet 1' header");
  return Net(name, driver, receiver, std::move(segments), std::move(zones));
}
}  // namespace

Net read_net(std::istream& is, const std::string& source) {
  if (source.empty()) return read_net_impl(is);
  // Every failure of the parse (and of Net's own invariant checks)
  // carries the source name, so a bad file in a long scripted flow is
  // identifiable from the message alone.
  try {
    return read_net_impl(is);
  } catch (const Error& e) {
    throw Error(source + ": " + e.what());
  }
}

Net read_net_file(const std::string& path) {
  std::ifstream in(path);
  // Plain Error, not RIP_REQUIRE: a missing file is an input mistake,
  // not a programming error, and the message is user-facing.
  if (!in.good()) throw Error("cannot open net file: " + path);
  return read_net(in, path);
}

void write_net(std::ostream& os, const Net& net) {
  os << "ripnet 1\n";
  os << "name " << net.name() << "\n";
  os << "driver " << net.driver_width_u() << "\n";
  os << "receiver " << net.receiver_width_u() << "\n";
  for (const auto& s : net.segments()) {
    os << "segment len_um " << s.length_um << " r_ohm_per_um "
       << s.r_ohm_per_um << " c_ff_per_um " << s.c_ff_per_um;
    if (!s.layer.empty()) os << " layer " << s.layer;
    os << "\n";
  }
  for (const auto& z : net.zones()) {
    os << "zone " << z.start_um << " " << z.end_um << "\n";
  }
}

}  // namespace rip::net
