#include "net/solution.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rip::net {

RepeaterSolution::RepeaterSolution(std::vector<Repeater> repeaters)
    : repeaters_(std::move(repeaters)) {
  std::sort(repeaters_.begin(), repeaters_.end(),
            [](const Repeater& a, const Repeater& b) {
              return a.position_um < b.position_um;
            });
  for (std::size_t i = 0; i < repeaters_.size(); ++i) {
    RIP_REQUIRE(repeaters_[i].width_u > 0,
                "repeater width must be positive");
    if (i > 0) {
      RIP_REQUIRE(repeaters_[i].position_um > repeaters_[i - 1].position_um,
                  "two repeaters at the same position");
    }
  }
}

double RepeaterSolution::total_width_u() const {
  double p = 0.0;
  for (const auto& r : repeaters_) p += r.width_u;
  return p;
}

bool RepeaterSolution::legal_for(const Net& net) const {
  return std::all_of(repeaters_.begin(), repeaters_.end(),
                     [&](const Repeater& r) {
                       return net.placement_legal(r.position_um);
                     });
}

}  // namespace rip::net
