#include "net/netlist_io.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "util/fault.hpp"
#include "util/strings.hpp"

namespace rip::net {

namespace {

constexpr char kBinaryMagic[4] = {'R', 'N', 'L', 'B'};
constexpr std::uint32_t kBinaryVersion = 1;
constexpr const char* kTextMagic = "ripnetlist";

std::string render(const std::string& path, std::int64_t record_index,
                   const std::string& detail) {
  std::string msg = path + ": ";
  if (record_index >= 0) msg += "record " + std::to_string(record_index) + ": ";
  return msg + detail;
}

struct RawSegment {
  double length_um = 0;
  double r_ohm_per_um = 0;
  double c_ff_per_um = 0;
  std::string layer;
};

struct RawRecord {
  std::string name;
  double driver_width_u = 0;
  double receiver_width_u = 0;
  double tau_t_fs = 0;
  std::vector<RawSegment> segments;
  std::vector<ForbiddenZone> zones;
};

/// Validate a fully parsed record and construct the immutable Net.
/// Every rejection — NaN/negative RC, bad widths, zone violations the
/// Net constructor raises — becomes a typed NetlistError carrying the
/// source name and record index, so hostile bytes can never surface as
/// a context-free precondition message or a partial record.
NetlistRecord finish_record(RawRecord&& raw, const std::string& label,
                            std::uint64_t index) {
  // By the time finish_record runs, the whole record was consumed from
  // the stream, so every rejection here is recoverable: the reader sits
  // at the next boundary and the caller may quarantine just this record.
  const auto fail = [&](const std::string& detail) -> void {
    throw NetlistError(label, static_cast<std::int64_t>(index), detail,
                       NetlistErrorKind::kMalformed, /*recoverable=*/true,
                       raw.name);
  };
  const auto check = [&](double v, const std::string& what) {
    if (!std::isfinite(v) || v <= 0) {
      fail(what + " must be finite and positive, got " +
           format_double_exact(v));
    }
  };
  if (raw.name.empty()) fail("record has an empty net name");
  check(raw.driver_width_u, "driver width");
  check(raw.receiver_width_u, "receiver width");
  if (!std::isfinite(raw.tau_t_fs) || raw.tau_t_fs < 0) {
    fail("timing target must be finite and >= 0 (0 = unset), got " +
         format_double_exact(raw.tau_t_fs));
  }
  if (raw.segments.empty()) fail("record has no segments");
  std::vector<Segment> segments;
  segments.reserve(raw.segments.size());
  for (std::size_t i = 0; i < raw.segments.size(); ++i) {
    const RawSegment& s = raw.segments[i];
    const std::string at = "segment " + std::to_string(i) + " ";
    check(s.length_um, at + "length (len_um)");
    check(s.r_ohm_per_um, at + "resistance (r_ohm_per_um)");
    check(s.c_ff_per_um, at + "capacitance (c_ff_per_um)");
    segments.push_back(
        Segment{s.length_um, s.r_ohm_per_um, s.c_ff_per_um, s.layer});
  }
  for (const ForbiddenZone& z : raw.zones) {
    if (!std::isfinite(z.start_um) || !std::isfinite(z.end_um)) {
      fail("zone bounds must be finite");
    }
  }
  std::string name = raw.name;  // keep for errors after the move below
  try {
    return NetlistRecord{Net(std::move(raw.name), raw.driver_width_u,
                             raw.receiver_width_u, std::move(segments),
                             std::move(raw.zones)),
                         raw.tau_t_fs};
  } catch (const NetlistError&) {
    throw;
  } catch (const Error& e) {
    throw NetlistError(label, static_cast<std::int64_t>(index),
                       std::string("invalid net: ") + e.what(),
                       NetlistErrorKind::kMalformed, /*recoverable=*/true,
                       std::move(name));
  }
}

/// Little-endian scalar encoders. The implementation assumes a
/// little-endian IEEE-754 host (every platform this repo targets); the
/// memcpy form keeps it alignment-safe and strict-aliasing-clean.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &v, sizeof(double));
  out.append(bytes, sizeof(double));
}

/// Bounds-checked cursor over one binary record payload. Any overrun
/// throws a typed "truncated record payload" NetlistError, so a short
/// or lying length prefix can never read out of bounds.
class PayloadCursor {
 public:
  PayloadCursor(const std::string& bytes, const std::string& label,
                std::uint64_t index)
      : bytes_(bytes), label_(label), index_(index) {}

  std::uint16_t u16(const char* what) {
    need(2, what);
    const auto b0 = static_cast<unsigned char>(bytes_[pos_]);
    const auto b1 = static_cast<unsigned char>(bytes_[pos_ + 1]);
    pos_ += 2;
    return static_cast<std::uint16_t>(b0 | (b1 << 8));
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  double f64(const char* what) {
    need(sizeof(double), what);
    double v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(double));
    pos_ += sizeof(double);
    return v;
  }

  std::string str(std::size_t len, const char* what) {
    need(len, what);
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n, const char* what) {
    // The full payload is in memory, so a cursor overrun means the
    // payload lies about its own contents — recoverable: the stream is
    // already past this record.
    if (bytes_.size() - pos_ < n) {
      throw NetlistError(
          label_, static_cast<std::int64_t>(index_),
          std::string("truncated record payload while reading ") + what,
          NetlistErrorKind::kMalformed, /*recoverable=*/true);
    }
  }

  const std::string& bytes_;
  const std::string& label_;
  std::uint64_t index_;
  std::size_t pos_ = 0;
};

}  // namespace

NetlistError::NetlistError(const std::string& path, std::int64_t record_index,
                           const std::string& detail, NetlistErrorKind kind,
                           bool recoverable, std::string net_name)
    : Error(render(path, record_index, detail)),
      path_(path),
      record_index_(record_index),
      kind_(kind),
      recoverable_(recoverable),
      net_name_(std::move(net_name)) {}

const char* NetlistError::error_class() const {
  switch (kind_) {
    case NetlistErrorKind::kFraming:
      return "framing";
    case NetlistErrorKind::kMalformed:
      return "malformed";
    case NetlistErrorKind::kIo:
      return "io";
  }
  return "framing";
}

std::string format_double_exact(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

// ------------------------------------------------------------- reader

NetlistReader::NetlistReader(const std::string& path)
    : file_(path, std::ios::binary), label_(path) {
  if (!file_.good()) {
    throw NetlistError(path, -1, "cannot open netlist file");
  }
  is_ = &file_;
  read_header();
}

NetlistReader::NetlistReader(std::istream& is, std::string label)
    : is_(&is), label_(std::move(label)) {
  read_header();
}

void NetlistReader::fail(const std::string& detail) const {
  throw NetlistError(label_, static_cast<std::int64_t>(index_), detail);
}

void NetlistReader::read_header() {
  // Sniff: the binary magic is exactly 4 bytes; anything else is
  // treated as text, whose first line must be the text magic.
  char magic[4] = {0, 0, 0, 0};
  is_->read(magic, 4);
  if (is_->gcount() == 4 && std::memcmp(magic, kBinaryMagic, 4) == 0) {
    format_ = NetlistFormat::kBinary;
    char vbytes[4];
    is_->read(vbytes, 4);
    if (is_->gcount() != 4) {
      throw NetlistError(label_, -1, "truncated binary netlist header");
    }
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i) {
      version |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(vbytes[i]))
                 << (8 * i);
    }
    if (version != kBinaryVersion) {
      throw NetlistError(label_, -1,
                         "unsupported binary netlist version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kBinaryVersion) + ")");
    }
    offset_ = 8;
    header_end_ = 8;
    return;
  }
  // Text path: rewind and take the header line whole.
  is_->clear();
  is_->seekg(0);
  std::string line;
  if (!std::getline(*is_, line)) {
    throw NetlistError(label_, -1, "empty netlist file (missing header)");
  }
  const auto tokens = split_ws(trim(line));
  if (tokens.empty() || tokens[0] != kTextMagic) {
    throw NetlistError(label_, -1,
                       "bad netlist magic (expected 'ripnetlist 1' or "
                       "binary 'RNLB')");
  }
  if (tokens.size() != 2 || tokens[1] != "1") {
    throw NetlistError(label_, -1, "unsupported ripnetlist version");
  }
  format_ = NetlistFormat::kText;
  offset_ = static_cast<std::uint64_t>(is_->tellg());
  header_end_ = offset_;
}

void NetlistReader::seek(std::uint64_t offset, std::uint64_t record_index) {
  const auto reject = [&](const std::string& why) {
    throw NetlistError(label_, static_cast<std::int64_t>(record_index),
                       "invalid resume offset " + std::to_string(offset) +
                           ": " + why);
  };
  // A stale or hand-edited checkpoint must fail here, typed, not as a
  // baffling parse error records later. Three checks: within the file,
  // past the header, and actually on a record boundary.
  is_->clear();
  is_->seekg(0, std::ios::end);
  const auto end_pos = is_->tellg();
  if (end_pos == std::streampos(-1)) reject("cannot determine file size");
  const std::uint64_t file_size = static_cast<std::uint64_t>(end_pos);
  if (offset > file_size) {
    reject("past end of file (" + std::to_string(file_size) + " bytes)");
  }
  if (offset < header_end_) reject("inside the file header");
  is_->clear();
  is_->seekg(static_cast<std::streamoff>(offset));
  if (!is_->good()) {
    reject("cannot seek to checkpoint offset");
  }
  if (offset < file_size) {
    // Boundary probe (position restored below). Binary: the next four
    // bytes must be a plausible length prefix whose payload fits the
    // file. Text: the next non-blank, non-comment line must open a
    // record.
    if (format_ == NetlistFormat::kBinary) {
      char prefix[4];
      is_->read(prefix, 4);
      bool plausible = is_->gcount() == 4;
      if (plausible) {
        std::uint32_t payload_bytes = 0;
        for (int i = 0; i < 4; ++i) {
          payload_bytes |= static_cast<std::uint32_t>(
                               static_cast<unsigned char>(prefix[i]))
                           << (8 * i);
        }
        plausible = payload_bytes > 0 &&
                    payload_bytes <= kMaxNetlistRecordBytes &&
                    offset + 4 + payload_bytes <= file_size;
      }
      if (!plausible) reject("does not address a record boundary");
    } else {
      std::string line;
      bool at_boundary = true;
      while (std::getline(*is_, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#') continue;
        const auto tokens = split_ws(t);
        at_boundary = tokens[0] == "net";
        break;
      }
      if (!at_boundary) reject("does not address a record boundary");
    }
    is_->clear();
    is_->seekg(static_cast<std::streamoff>(offset));
    if (!is_->good()) reject("cannot seek to checkpoint offset");
  }
  offset_ = offset;
  index_ = record_index;
}

std::optional<NetlistRecord> NetlistReader::next() {
  const std::uint64_t record_index = index_;
  auto record = format_ == NetlistFormat::kBinary ? next_binary()
                                                  : next_text();
  if (record.has_value()) {
    advance_boundary();
    // The injected I/O fault fires after the parse advanced the reader,
    // so an 'err' here is recoverable by construction: the record is
    // lost but the stream is intact. A 'fail' or 'crash' propagates raw.
    try {
      fire_fault("netlist.read", record_index);
    } catch (const TransientError& e) {
      throw NetlistError(label_, static_cast<std::int64_t>(record_index),
                         e.what(), NetlistErrorKind::kIo,
                         /*recoverable=*/true, record->net.name());
    }
  }
  return record;
}

/// One record was fully consumed (successfully or not): move index_ and
/// offset_ to the boundary the stream now sits on.
void NetlistReader::advance_boundary() {
  ++index_;
  const auto pos = is_->tellg();
  // tellg legitimately fails once EOF has been hit (the last record
  // may end exactly at EOF); keep the last good boundary then.
  if (pos != std::streampos(-1)) {
    offset_ = static_cast<std::uint64_t>(pos);
  }
}

std::optional<NetlistRecord> NetlistReader::next_text() {
  const std::uint64_t record_index = index_;
  RawRecord raw;
  bool in_record = false;
  bool done = false;
  bool skipping = false;  // body abandoned after a parse error
  bool have_driver = false;
  bool have_receiver = false;
  // First error of the record. The text format resyncs to the next lone
  // 'end' line (records always close with one) and throws AFTER
  // reaching the boundary, so the error is recoverable and only this
  // record is lost.
  std::string deferred;
  const auto soft_fail = [&](const std::string& detail) {
    if (deferred.empty()) deferred = detail;
    skipping = true;
  };

  std::string line;
  while (!done && std::getline(*is_, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tokens = split_ws(t);
    const std::string& kind = tokens[0];
    if (kind == "end") {
      if (!in_record && !skipping) {
        soft_fail("expected 'net <name>' at a record boundary, got 'end'");
      } else if (!skipping && tokens.size() != 1) {
        soft_fail("'end' takes no tokens");
      }
      done = true;
      continue;
    }
    if (skipping) continue;
    if (!in_record) {
      if (kind != "net") {
        soft_fail("expected 'net <name>' at a record boundary, got '" + kind +
                  "'");
        continue;
      }
      if (tokens.size() != 2) {
        soft_fail("'net' takes exactly one name token");
        continue;
      }
      raw.name = tokens[1];
      in_record = true;
      continue;
    }
    // Body directives throw plain Error (from parse_double or the local
    // body_fail); each becomes the record's deferred error.
    const auto body_fail = [](const std::string& detail) -> void {
      throw Error(detail);
    };
    try {
      const auto one_value = [&](const char* what) {
        if (tokens.size() != 2) {
          body_fail(std::string("'") + what + "' takes exactly one value");
        }
        return parse_double(tokens[1], what);
      };
      if (kind == "target_fs") {
        raw.tau_t_fs = one_value("target_fs");
      } else if (kind == "driver") {
        raw.driver_width_u = one_value("driver");
        have_driver = true;
      } else if (kind == "receiver") {
        raw.receiver_width_u = one_value("receiver");
        have_receiver = true;
      } else if (kind == "segment") {
        if ((tokens.size() - 1) % 2 != 0) {
          body_fail("odd segment key/value list");
        }
        RawSegment s;
        bool have_len = false, have_r = false, have_c = false;
        for (std::size_t i = 1; i + 1 < tokens.size(); i += 2) {
          const std::string& key = tokens[i];
          if (key == "len_um") {
            s.length_um = parse_double(tokens[i + 1], key);
            have_len = true;
          } else if (key == "r_ohm_per_um") {
            s.r_ohm_per_um = parse_double(tokens[i + 1], key);
            have_r = true;
          } else if (key == "c_ff_per_um") {
            s.c_ff_per_um = parse_double(tokens[i + 1], key);
            have_c = true;
          } else if (key == "layer") {
            s.layer = tokens[i + 1];
          } else {
            body_fail("unknown segment key '" + key + "'");
          }
        }
        if (!have_len || !have_r || !have_c) {
          body_fail("segment needs len_um, r_ohm_per_um and c_ff_per_um");
        }
        raw.segments.push_back(std::move(s));
      } else if (kind == "zone") {
        if (tokens.size() != 3) body_fail("'zone' takes start and end");
        raw.zones.push_back(
            ForbiddenZone{parse_double(tokens[1], "zone start"),
                          parse_double(tokens[2], "zone end")});
      } else {
        body_fail("unknown directive '" + kind + "'");
      }
    } catch (const Error& e) {
      soft_fail(e.what());
    }
  }

  if (!in_record && !skipping) {
    if (is_->bad()) {
      throw NetlistError(label_, static_cast<std::int64_t>(record_index),
                         "I/O error while reading", NetlistErrorKind::kIo);
    }
    return std::nullopt;  // clean EOF at a record boundary
  }
  if (!done && deferred.empty()) {
    deferred = "unexpected EOF inside record (missing 'end')";
  }
  if (deferred.empty() && !have_driver) {
    deferred = "record is missing a 'driver' line";
  }
  if (deferred.empty() && !have_receiver) {
    deferred = "record is missing a 'receiver' line";
  }
  if (!deferred.empty()) {
    advance_boundary();
    throw NetlistError(label_, static_cast<std::int64_t>(record_index),
                       deferred, NetlistErrorKind::kMalformed,
                       /*recoverable=*/done, raw.name);
  }
  try {
    return finish_record(std::move(raw), label_, record_index);
  } catch (const NetlistError&) {
    advance_boundary();  // validation failed at the boundary: skippable
    throw;
  }
}

std::optional<NetlistRecord> NetlistReader::next_binary() {
  char prefix[4];
  is_->read(prefix, 4);
  if (is_->gcount() == 0 && is_->eof()) return std::nullopt;  // boundary EOF
  if (is_->gcount() != 4) fail("truncated record length prefix");
  std::uint32_t payload_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    payload_bytes |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(prefix[i]))
                     << (8 * i);
  }
  if (payload_bytes > kMaxNetlistRecordBytes) {
    fail("oversized record length prefix " + std::to_string(payload_bytes) +
         " (limit " + std::to_string(kMaxNetlistRecordBytes) + " bytes)");
  }
  if (payload_bytes == 0) fail("empty record payload");
  std::string payload(payload_bytes, '\0');
  is_->read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (is_->gcount() != static_cast<std::streamsize>(payload_bytes)) {
    fail("unexpected EOF inside record payload (got " +
         std::to_string(is_->gcount()) + " of " +
         std::to_string(payload_bytes) + " bytes)");
  }

  // The payload is fully consumed from the stream: everything below is
  // a content failure of THIS record and recoverable — the next length
  // prefix is still trustworthy, so a caller may skip and read on.
  const std::uint64_t record_index = index_;
  try {
    PayloadCursor cur(payload, label_, record_index);
    RawRecord raw;
    const auto fail_record = [&](const std::string& detail) -> void {
      throw NetlistError(label_, static_cast<std::int64_t>(record_index),
                         detail, NetlistErrorKind::kMalformed,
                         /*recoverable=*/true, raw.name);
    };
    raw.name = cur.str(cur.u16("name length"), "record name");
    raw.driver_width_u = cur.f64("driver width");
    raw.receiver_width_u = cur.f64("receiver width");
    raw.tau_t_fs = cur.f64("timing target");
    const std::uint32_t segment_count = cur.u32("segment count");
    // A segment encodes to at least 26 bytes; a count the payload cannot
    // possibly hold is rejected up front instead of cursor-tripping later.
    if (segment_count > payload_bytes / 26) {
      fail_record("segment count " + std::to_string(segment_count) +
                  " exceeds record payload");
    }
    raw.segments.reserve(segment_count);
    for (std::uint32_t i = 0; i < segment_count; ++i) {
      RawSegment s;
      s.length_um = cur.f64("segment length");
      s.r_ohm_per_um = cur.f64("segment resistance");
      s.c_ff_per_um = cur.f64("segment capacitance");
      s.layer = cur.str(cur.u16("layer length"), "segment layer");
      raw.segments.push_back(std::move(s));
    }
    const std::uint32_t zone_count = cur.u32("zone count");
    if (zone_count > payload_bytes / 16) {
      fail_record("zone count " + std::to_string(zone_count) +
                  " exceeds record payload");
    }
    raw.zones.reserve(zone_count);
    for (std::uint32_t i = 0; i < zone_count; ++i) {
      const double start = cur.f64("zone start");
      const double end = cur.f64("zone end");
      raw.zones.push_back(ForbiddenZone{start, end});
    }
    if (cur.remaining() != 0) {
      fail_record("record payload has " + std::to_string(cur.remaining()) +
                  " trailing bytes");
    }
    return finish_record(std::move(raw), label_, record_index);
  } catch (const NetlistError&) {
    advance_boundary();  // the stream already sits on the next prefix
    throw;
  }
}

// ------------------------------------------------------------- writer

NetlistWriter::NetlistWriter(const std::string& path, NetlistFormat format)
    : file_(path, std::ios::binary), label_(path), format_(format) {
  if (!file_.good()) {
    throw NetlistError(path, -1, "cannot open netlist file for writing");
  }
  os_ = &file_;
  if (format_ == NetlistFormat::kBinary) {
    os_->write(kBinaryMagic, 4);
    std::string v;
    put_u32(v, kBinaryVersion);
    os_->write(v.data(), static_cast<std::streamsize>(v.size()));
  } else {
    *os_ << kTextMagic << " 1\n";
  }
}

NetlistWriter::NetlistWriter(std::ostream& os, NetlistFormat format,
                             std::string label)
    : os_(&os), label_(std::move(label)), format_(format) {
  if (format_ == NetlistFormat::kBinary) {
    os_->write(kBinaryMagic, 4);
    std::string v;
    put_u32(v, kBinaryVersion);
    os_->write(v.data(), static_cast<std::streamsize>(v.size()));
  } else {
    *os_ << kTextMagic << " 1\n";
  }
}

NetlistWriter::~NetlistWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; call close() directly for the error.
  }
}

void NetlistWriter::add(const Net& net, double tau_t_fs) {
  if (closed_) {
    throw NetlistError(label_, static_cast<std::int64_t>(count_),
                       "add() after close()");
  }
  // Injected write failure, keyed by record ordinal; fires before any
  // bytes go out so a faulted add() leaves the stream clean.
  try {
    fire_fault("netlist.write", count_);
  } catch (const TransientError& e) {
    throw NetlistError(label_, static_cast<std::int64_t>(count_), e.what(),
                       NetlistErrorKind::kIo, /*recoverable=*/true,
                       net.name());
  }
  if (!std::isfinite(tau_t_fs) || tau_t_fs < 0) {
    throw NetlistError(label_, static_cast<std::int64_t>(count_),
                       "timing target must be finite and >= 0 (0 = unset)");
  }
  if (format_ == NetlistFormat::kText) {
    *os_ << "net " << net.name() << "\n";
    if (tau_t_fs > 0) {
      *os_ << "target_fs " << format_double_exact(tau_t_fs) << "\n";
    }
    *os_ << "driver " << format_double_exact(net.driver_width_u()) << "\n";
    *os_ << "receiver " << format_double_exact(net.receiver_width_u())
         << "\n";
    for (const auto& s : net.segments()) {
      *os_ << "segment len_um " << format_double_exact(s.length_um)
           << " r_ohm_per_um " << format_double_exact(s.r_ohm_per_um)
           << " c_ff_per_um " << format_double_exact(s.c_ff_per_um);
      if (!s.layer.empty()) *os_ << " layer " << s.layer;
      *os_ << "\n";
    }
    for (const auto& z : net.zones()) {
      *os_ << "zone " << format_double_exact(z.start_um) << " "
           << format_double_exact(z.end_um) << "\n";
    }
    *os_ << "end\n";
  } else {
    std::string payload;
    payload.reserve(128 + net.segments().size() * 40);
    if (net.name().size() > 0xffff) {
      throw NetlistError(label_, static_cast<std::int64_t>(count_),
                         "net name longer than 65535 bytes");
    }
    put_u16(payload, static_cast<std::uint16_t>(net.name().size()));
    payload += net.name();
    put_f64(payload, net.driver_width_u());
    put_f64(payload, net.receiver_width_u());
    put_f64(payload, tau_t_fs);
    put_u32(payload, static_cast<std::uint32_t>(net.segments().size()));
    for (const auto& s : net.segments()) {
      put_f64(payload, s.length_um);
      put_f64(payload, s.r_ohm_per_um);
      put_f64(payload, s.c_ff_per_um);
      if (s.layer.size() > 0xffff) {
        throw NetlistError(label_, static_cast<std::int64_t>(count_),
                           "layer name longer than 65535 bytes");
      }
      put_u16(payload, static_cast<std::uint16_t>(s.layer.size()));
      payload += s.layer;
    }
    put_u32(payload, static_cast<std::uint32_t>(net.zones().size()));
    for (const auto& z : net.zones()) {
      put_f64(payload, z.start_um);
      put_f64(payload, z.end_um);
    }
    if (payload.size() > kMaxNetlistRecordBytes) {
      throw NetlistError(label_, static_cast<std::int64_t>(count_),
                         "record payload exceeds " +
                             std::to_string(kMaxNetlistRecordBytes) +
                             " bytes");
    }
    std::string prefix;
    put_u32(prefix, static_cast<std::uint32_t>(payload.size()));
    os_->write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
    os_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  if (!os_->good()) {
    throw NetlistError(label_, static_cast<std::int64_t>(count_),
                       "write failed");
  }
  ++count_;
}

void NetlistWriter::close() {
  if (closed_) return;
  closed_ = true;
  os_->flush();
  if (!os_->good()) {
    throw NetlistError(label_, static_cast<std::int64_t>(count_),
                       "flush failed on close");
  }
  if (os_ == &file_) file_.close();
}

}  // namespace rip::net
