#include "net/generator.hpp"

#include "util/error.hpp"

namespace rip::net {

Net random_net(const tech::Technology& tech, const RandomNetConfig& config,
               Rng& rng, const std::string& name) {
  RIP_REQUIRE(config.min_segments >= 1 &&
                  config.min_segments <= config.max_segments,
              "segment count range out of order");
  RIP_REQUIRE(config.min_segment_length_um > 0 &&
                  config.min_segment_length_um <= config.max_segment_length_um,
              "segment length range out of order");
  RIP_REQUIRE(!config.layers.empty(), "generator needs at least one layer");
  RIP_REQUIRE(config.zone_fraction_min >= 0 &&
                  config.zone_fraction_max < 1.0 &&
                  config.zone_fraction_min <= config.zone_fraction_max,
              "zone fraction range invalid");

  const int n_segments =
      rng.uniform_int(config.min_segments, config.max_segments);
  std::vector<Segment> segments;
  segments.reserve(static_cast<std::size_t>(n_segments));
  double total = 0.0;
  for (int i = 0; i < n_segments; ++i) {
    const auto& layer_name = config.layers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(config.layers.size()) - 1))];
    const auto& layer = tech.layer(layer_name);
    Segment s;
    s.length_um = rng.uniform(config.min_segment_length_um,
                              config.max_segment_length_um);
    s.r_ohm_per_um = layer.r_ohm_per_um;
    s.c_ff_per_um = layer.c_ff_per_um;
    s.layer = layer.name;
    total += s.length_um;
    segments.push_back(std::move(s));
  }

  std::vector<ForbiddenZone> zones;
  // Rejection-sample non-overlapping zones; with the paper's single zone
  // this accepts on the first draw.
  int attempts = 0;
  while (static_cast<int>(zones.size()) < config.zone_count) {
    RIP_REQUIRE(++attempts < 1000,
                "could not place non-overlapping forbidden zones");
    const double frac =
        rng.uniform(config.zone_fraction_min, config.zone_fraction_max);
    const double zlen = frac * total;
    const double start = rng.uniform(0.0, total - zlen);
    const ForbiddenZone z{start, start + zlen};
    bool overlaps = false;
    for (const auto& other : zones) {
      if (z.start_um < other.end_um && other.start_um < z.end_um) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) zones.push_back(z);
  }

  const double wd =
      rng.uniform(config.driver_width_min_u, config.driver_width_max_u);
  const double wr =
      rng.uniform(config.receiver_width_min_u, config.receiver_width_max_u);
  return Net(name, wd, wr, std::move(segments), std::move(zones));
}

}  // namespace rip::net
