#include "net/net.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace rip::net {

Net::Net(std::string name, double driver_width_u, double receiver_width_u,
         std::vector<Segment> segments, std::vector<ForbiddenZone> zones)
    : name_(std::move(name)),
      driver_width_u_(driver_width_u),
      receiver_width_u_(receiver_width_u),
      segments_(std::move(segments)),
      zones_(std::move(zones)) {
  RIP_REQUIRE(!name_.empty(), "net name must not be empty");
  RIP_REQUIRE(driver_width_u_ > 0, "driver width must be positive");
  RIP_REQUIRE(receiver_width_u_ > 0, "receiver width must be positive");
  RIP_REQUIRE(!segments_.empty(), "net needs at least one segment");

  prefix_len_.reserve(segments_.size() + 1);
  prefix_r_.reserve(segments_.size() + 1);
  prefix_c_.reserve(segments_.size() + 1);
  prefix_len_.push_back(0.0);
  prefix_r_.push_back(0.0);
  prefix_c_.push_back(0.0);
  for (const auto& s : segments_) {
    RIP_REQUIRE(s.length_um > 0,
                "segment length must be positive in net " + name_);
    RIP_REQUIRE(s.r_ohm_per_um > 0 && s.c_ff_per_um > 0,
                "segment RC must be positive in net " + name_);
    prefix_len_.push_back(prefix_len_.back() + s.length_um);
    prefix_r_.push_back(prefix_r_.back() + s.length_um * s.r_ohm_per_um);
    prefix_c_.push_back(prefix_c_.back() + s.length_um * s.c_ff_per_um);
  }

  std::sort(zones_.begin(), zones_.end(),
            [](const ForbiddenZone& a, const ForbiddenZone& b) {
              return a.start_um < b.start_um;
            });
  const double total = total_length_um();
  double prev_end = -1.0;
  double covered = 0.0;
  for (const auto& z : zones_) {
    RIP_REQUIRE(z.start_um >= 0 && z.end_um <= total,
                "forbidden zone outside net " + name_);
    RIP_REQUIRE(z.start_um < z.end_um,
                "forbidden zone must have positive length in net " + name_);
    RIP_REQUIRE(z.start_um >= prev_end,
                "forbidden zones overlap in net " + name_);
    prev_end = z.end_um;
    covered += z.length_um();
  }
  RIP_REQUIRE(covered < total,
              "forbidden zones cover the entire net " + name_);
}

std::size_t Net::segment_index_at(double pos_um, Side side) const {
  const double total = total_length_um();
  RIP_REQUIRE(pos_um >= 0 && pos_um <= total,
              "position outside net " + name_);
  // upper_bound: first prefix strictly greater than pos.
  auto it = std::upper_bound(prefix_len_.begin(), prefix_len_.end(), pos_um);
  std::size_t idx = static_cast<std::size_t>(it - prefix_len_.begin());
  // idx in [1, m+1]; segment index is idx-1 for the downstream side.
  std::size_t seg = (idx == 0) ? 0 : idx - 1;
  if (seg >= segments_.size()) seg = segments_.size() - 1;  // pos == L
  if (side == Side::kUpstream && pos_um == prefix_len_[seg] && seg > 0) {
    --seg;  // exactly on an internal boundary: take the upstream segment
  }
  return seg;
}

WirePiece Net::wire_at(double pos_um, Side side) const {
  const auto& s = segments_[segment_index_at(pos_um, side)];
  return WirePiece{0.0, s.r_ohm_per_um, s.c_ff_per_um};
}

namespace {
double integrate(const std::vector<double>& prefix_len,
                 const std::vector<double>& prefix_q,
                 const std::vector<Segment>& segments,
                 double a, double b,
                 double Segment::* per_um) {
  // prefix_q over whole segments, plus fractional ends.
  auto lo = std::upper_bound(prefix_len.begin(), prefix_len.end(), a);
  auto hi = std::upper_bound(prefix_len.begin(), prefix_len.end(), b);
  std::size_t sa = static_cast<std::size_t>(lo - prefix_len.begin()) - 1;
  std::size_t sb = static_cast<std::size_t>(hi - prefix_len.begin()) - 1;
  if (sa >= segments.size()) sa = segments.size() - 1;
  if (sb >= segments.size()) sb = segments.size() - 1;
  if (sa == sb) {
    return (b - a) * (segments[sa].*per_um);
  }
  double q = 0.0;
  // Tail of segment sa.
  q += (prefix_len[sa + 1] - a) * (segments[sa].*per_um);
  // Whole segments between.
  q += prefix_q[sb] - prefix_q[sa + 1];
  // Head of segment sb.
  q += (b - prefix_len[sb]) * (segments[sb].*per_um);
  return q;
}
}  // namespace

double Net::resistance_between_ohm(double a_um, double b_um) const {
  RIP_REQUIRE(a_um >= 0 && b_um <= total_length_um() && a_um <= b_um,
              "span out of range in net " + name_);
  return integrate(prefix_len_, prefix_r_, segments_, a_um, b_um,
                   &Segment::r_ohm_per_um);
}

double Net::capacitance_between_ff(double a_um, double b_um) const {
  RIP_REQUIRE(a_um >= 0 && b_um <= total_length_um() && a_um <= b_um,
              "span out of range in net " + name_);
  return integrate(prefix_len_, prefix_c_, segments_, a_um, b_um,
                   &Segment::c_ff_per_um);
}

std::vector<WirePiece> Net::pieces_between(double a_um, double b_um) const {
  std::vector<WirePiece> pieces;
  pieces_between(a_um, b_um, pieces);
  return pieces;
}

void Net::pieces_between(double a_um, double b_um,
                         std::vector<WirePiece>& out) const {
  RIP_REQUIRE(a_um >= 0 && b_um <= total_length_um() && a_um <= b_um,
              "span out of range in net " + name_);
  out.clear();
  if (a_um == b_um) return;
  std::size_t seg = segment_index_at(a_um, Side::kDownstream);
  double pos = a_um;
  while (pos < b_um && seg < segments_.size()) {
    const double seg_end = prefix_len_[seg + 1];
    const double piece_end = std::min(seg_end, b_um);
    if (piece_end > pos) {
      out.push_back(WirePiece{piece_end - pos,
                              segments_[seg].r_ohm_per_um,
                              segments_[seg].c_ff_per_um});
    }
    pos = piece_end;
    ++seg;
  }
}

bool Net::in_forbidden_zone(double pos_um) const {
  return zone_index_at(pos_um) >= 0;
}

int Net::zone_index_at(double pos_um) const {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (pos_um > zones_[i].start_um && pos_um < zones_[i].end_um)
      return static_cast<int>(i);
  }
  return -1;
}

bool Net::placement_legal(double pos_um) const {
  return pos_um > 0.0 && pos_um < total_length_um() &&
         !in_forbidden_zone(pos_um);
}

NetBuilder& NetBuilder::driver(double width_u) {
  driver_width_u_ = width_u;
  return *this;
}

NetBuilder& NetBuilder::receiver(double width_u) {
  receiver_width_u_ = width_u;
  return *this;
}

NetBuilder& NetBuilder::segment(double length_um, double r_ohm_per_um,
                                double c_ff_per_um, std::string layer) {
  segments_.push_back(
      Segment{length_um, r_ohm_per_um, c_ff_per_um, std::move(layer)});
  return *this;
}

NetBuilder& NetBuilder::zone(double start_um, double end_um) {
  zones_.push_back(ForbiddenZone{start_um, end_um});
  return *this;
}

Net NetBuilder::build() const {
  return Net(name_, driver_width_u_, receiver_width_u_, segments_, zones_);
}

}  // namespace rip::net
