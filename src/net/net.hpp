#pragma once

/// @file net.hpp
/// The multi-layer two-pin interconnect of Problem LPRI (Section 3 of the
/// paper): a linear chain of wire segments with distinct RC characteristics
/// (as produced by a router), a driver of width w_d at position 0, a
/// receiver of width w_r at the far end, and forbidden zones — intervals
/// (from macro-blocks) where no repeater may be placed.
///
/// Positions along the net are 1-D coordinates in microns, measured from
/// the driver output (0) to the receiver input (total_length_um()).

#include <cstddef>
#include <string>
#include <vector>

namespace rip::net {

/// One routed wire segment with uniform per-unit-length RC.
struct Segment {
  double length_um = 0;     ///< segment length [um]
  double r_ohm_per_um = 0;  ///< resistance per micron [Ohm/um]
  double c_ff_per_um = 0;   ///< capacitance per micron [fF/um]
  std::string layer;        ///< routing layer name (informational)
};

/// A forbidden zone [start, end]: repeaters may sit exactly on the
/// boundary but not strictly inside.
struct ForbiddenZone {
  double start_um = 0;
  double end_um = 0;

  double length_um() const { return end_um - start_um; }
};

/// A piece of uniform wire; spans between two positions decompose into
/// these for Elmore evaluation and DP wire propagation.
struct WirePiece {
  double length_um = 0;
  double r_ohm_per_um = 0;
  double c_ff_per_um = 0;
};

/// Which side of a position to sample when the position falls exactly on
/// a segment boundary. REFINE's one-sided location derivatives (Eqs. 17
/// and 18) need the wire parameters just downstream vs. just upstream of
/// a repeater.
enum class Side {
  kDownstream,  ///< parameters of the wire at position+epsilon
  kUpstream,    ///< parameters of the wire at position-epsilon
};

/// Immutable two-pin net. Construct via the constructor or NetBuilder;
/// construction validates all invariants and precomputes prefix sums so
/// that resistance/capacitance integrals are O(log m).
class Net {
 public:
  /// @param name           identifier used in reports
  /// @param driver_width_u driver strength w_d in units of u (> 0)
  /// @param receiver_width_u receiver (sink gate) width w_r in u (> 0)
  /// @param segments       at least one segment, all lengths > 0
  /// @param zones          forbidden zones; will be sorted; must lie within
  ///                       the net, must not overlap each other, and must
  ///                       not cover the entire net
  Net(std::string name, double driver_width_u, double receiver_width_u,
      std::vector<Segment> segments, std::vector<ForbiddenZone> zones = {});

  const std::string& name() const { return name_; }
  double driver_width_u() const { return driver_width_u_; }
  double receiver_width_u() const { return receiver_width_u_; }
  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<ForbiddenZone>& zones() const { return zones_; }

  /// Total routed length [um].
  double total_length_um() const { return prefix_len_.back(); }

  /// Total wire resistance of the whole net [Ohm].
  double total_resistance_ohm() const { return prefix_r_.back(); }

  /// Total wire capacitance of the whole net [fF].
  double total_capacitance_ff() const { return prefix_c_.back(); }

  /// Start coordinate of segment `i` [um].
  double segment_start_um(std::size_t i) const { return prefix_len_[i]; }

  /// Index of the segment containing `pos`; at internal boundaries the
  /// `side` argument disambiguates. Requires 0 <= pos <= total length.
  std::size_t segment_index_at(double pos_um,
                               Side side = Side::kDownstream) const;

  /// Per-unit-length wire parameters at a position (side-resolved).
  WirePiece wire_at(double pos_um, Side side) const;

  /// Wire resistance integrated over [a, b] [Ohm]. Requires 0<=a<=b<=L.
  double resistance_between_ohm(double a_um, double b_um) const;

  /// Wire capacitance integrated over [a, b] [fF]. Requires 0<=a<=b<=L.
  double capacitance_between_ff(double a_um, double b_um) const;

  /// Decompose the span [a, b] into uniform pieces ordered from a to b.
  /// Zero-length output pieces are suppressed.
  std::vector<WirePiece> pieces_between(double a_um, double b_um) const;

  /// Same decomposition into a caller-owned buffer (cleared first,
  /// capacity reused). The DP kernels call this once per candidate
  /// interval with a workspace buffer, so steady-state solves do not
  /// allocate a pieces vector per interval.
  void pieces_between(double a_um, double b_um,
                      std::vector<WirePiece>& out) const;

  /// True if `pos` lies strictly inside any forbidden zone.
  bool in_forbidden_zone(double pos_um) const;

  /// If `pos` is strictly inside a zone, return its index; -1 otherwise.
  int zone_index_at(double pos_um) const;

  /// True if a repeater may be placed at `pos`: inside (0, L) and not in
  /// a forbidden zone.
  bool placement_legal(double pos_um) const;

 private:
  std::string name_;
  double driver_width_u_;
  double receiver_width_u_;
  std::vector<Segment> segments_;
  std::vector<ForbiddenZone> zones_;
  // prefix_len_[i] = start of segment i; prefix_len_[m] = total length.
  std::vector<double> prefix_len_;
  std::vector<double> prefix_r_;
  std::vector<double> prefix_c_;
};

/// Fluent construction helper.
///
///     Net net = NetBuilder("n1").driver(120).receiver(60)
///                   .segment(1500, 0.108, 0.21, "metal4")
///                   .zone(500, 900)
///                   .build();
class NetBuilder {
 public:
  explicit NetBuilder(std::string name) : name_(std::move(name)) {}

  NetBuilder& driver(double width_u);
  NetBuilder& receiver(double width_u);
  NetBuilder& segment(double length_um, double r_ohm_per_um,
                      double c_ff_per_um, std::string layer = "");
  NetBuilder& zone(double start_um, double end_um);

  /// Validate and build the immutable Net.
  Net build() const;

 private:
  std::string name_;
  double driver_width_u_ = 1.0;
  double receiver_width_u_ = 1.0;
  std::vector<Segment> segments_;
  std::vector<ForbiddenZone> zones_;
};

}  // namespace rip::net
