#pragma once

/// @file netlist_io.hpp
/// Versioned on-disk netlist formats and the streaming reader/writer
/// that feed full-chip sweeps. Where net_io.hpp serializes ONE net per
/// file, a netlist file carries 10^4..10^6 records, so both formats are
/// designed to be produced and consumed incrementally: the writer never
/// buffers more than one record, the reader yields one record at a time
/// and never loads the file, and every record boundary has a byte
/// offset that a checkpoint can store and seek back to (eval/stream.hpp
/// builds its resume protocol on exactly that).
///
/// A record is a net plus an optional per-net timing target in
/// femtoseconds (0 = unset; the stream driver then derives one), so a
/// file is a self-contained workload, not just geometry.
///
/// Text format ("ripnetlist 1") — line oriented, diffable, the
/// directives of the single-net format plus record framing:
///
///     ripnetlist 1
///     net net_1
///     target_fs 2500000
///     driver 120
///     receiver 60
///     segment len_um 1500 r_ohm_per_um 0.108 c_ff_per_um 0.21 layer metal4
///     zone 900 2400
///     end
///     net net_2
///     ...
///     end
///
/// Lines beginning with '#' are comments. Doubles are written in
/// shortest-round-trip form (std::to_chars), so text -> parse -> text
/// reproduces the file byte for byte.
///
/// Binary format — magic "RNLB", u32 little-endian version (= 1), then
/// length-prefixed records until EOF:
///
///     u32 payload_bytes            (<= kMaxRecordBytes)
///     payload:
///       u16 name_bytes, name
///       f64 driver_width_u, f64 receiver_width_u, f64 target_fs
///       u32 segment_count
///         per segment: f64 len_um, f64 r_ohm_per_um, f64 c_ff_per_um,
///                      u16 layer_bytes, layer
///       u32 zone_count
///         per zone: f64 start_um, f64 end_um
///
/// All integers and IEEE-754 doubles are little-endian. EOF is valid
/// only at a record boundary.
///
/// Every malformed input — truncated file, bad magic or version, an
/// oversized length prefix, NaN or non-positive RC values, EOF in the
/// middle of a record — throws NetlistError carrying the file name and
/// the index of the offending record; the reader never returns a
/// partially parsed record and never crashes on hostile bytes.
///
/// Errors are classified (NetlistErrorKind) and, where the reader could
/// advance the stream to the next record boundary before throwing,
/// marked recoverable: a caller may keep calling next() and quarantine
/// just the bad record instead of aborting a million-net sweep. Framing
/// damage (a corrupt length prefix, EOF mid-payload) is never
/// recoverable — past it there is no trustworthy boundary.

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>

#include "net/net.hpp"
#include "util/error.hpp"

namespace rip::net {

/// Both on-disk netlist encodings. Readers sniff the leading magic;
/// writers take the format explicitly.
enum class NetlistFormat { kText, kBinary };

/// Hard ceiling on one binary record's payload (1 MiB — a plausible
/// record is a few hundred bytes). A length prefix above this is
/// rejected before any allocation, so a corrupt or hostile prefix can
/// not OOM the reader.
inline constexpr std::uint32_t kMaxNetlistRecordBytes = 1u << 20;

/// Failure classes of the netlist layer, used by quarantine sidecars
/// to label bad records.
enum class NetlistErrorKind {
  kFraming,    ///< record framing / header damage — boundaries untrustworthy
  kMalformed,  ///< one record's content is invalid; framing held
  kIo,         ///< the I/O layer failed (open, read, write, flush)
};

/// Error type of the netlist layer: every parse failure carries the
/// file name (or stream label) and the 0-based index of the record
/// being parsed (-1 = the file header). what() renders as
/// "<path>: record <i>: <detail>" / "<path>: <detail>".
class NetlistError : public Error {
 public:
  NetlistError(const std::string& path, std::int64_t record_index,
               const std::string& detail,
               NetlistErrorKind kind = NetlistErrorKind::kFraming,
               bool recoverable = false, std::string net_name = {});

  const std::string& path() const { return path_; }
  /// 0-based record index, or -1 for a header-level failure.
  std::int64_t record_index() const { return record_index_; }

  NetlistErrorKind kind() const { return kind_; }
  /// Short classification label: "framing" / "malformed" / "io".
  const char* error_class() const;

  /// True when the reader advanced to the next record boundary before
  /// throwing: next() may be called again and only this record is lost.
  bool recoverable() const { return recoverable_; }

  /// Name of the offending net, when it parsed far enough to have one.
  const std::string& net_name() const { return net_name_; }

 private:
  std::string path_;
  std::int64_t record_index_;
  NetlistErrorKind kind_;
  bool recoverable_;
  std::string net_name_;
};

/// One parsed record: the net plus its optional stored timing target
/// (0 = the file carries none).
struct NetlistRecord {
  Net net;
  double tau_t_fs = 0.0;
};

/// Incremental netlist reader. Owns its stream when constructed from a
/// path; the istream overload borrows (useful for tests). Memory use is
/// one record regardless of file size.
class NetlistReader {
 public:
  /// Open `path` and parse the header. The format is sniffed from the
  /// leading magic bytes. Throws NetlistError on open or header failure.
  explicit NetlistReader(const std::string& path);

  /// Read from a caller-owned stream (already positioned at the
  /// header). `label` names the source in error messages.
  NetlistReader(std::istream& is, std::string label);

  /// Parse and return the next record, or nullopt at clean EOF (a
  /// record boundary). Throws NetlistError on any malformed input. If
  /// the error is recoverable() the reader has already advanced past
  /// the bad record and next() may be called again; otherwise the
  /// reader is poisoned and must not be reused. Hits the
  /// "netlist.read" fault point (keyed by record index) after each
  /// successful parse; an injected transient fault surfaces as a
  /// recoverable kIo NetlistError.
  std::optional<NetlistRecord> next();

  /// Index of the next unread record == records returned so far.
  std::uint64_t index() const { return index_; }

  /// Byte offset of the next unread record — valid checkpoint cut.
  std::uint64_t offset() const { return offset_; }

  /// Resume at a (offset, index) pair previously returned by offset()/
  /// index() — the checkpoint protocol's seek. The offset must address
  /// a record boundary of this same file: an offset past EOF, inside
  /// the header, or landing mid-record is rejected with a typed
  /// NetlistError up front (not as a confusing parse error on the next
  /// read).
  void seek(std::uint64_t offset, std::uint64_t record_index);

  NetlistFormat format() const { return format_; }
  const std::string& source() const { return label_; }

 private:
  [[noreturn]] void fail(const std::string& detail) const;
  void read_header();
  void advance_boundary();
  std::optional<NetlistRecord> next_text();
  std::optional<NetlistRecord> next_binary();

  std::ifstream file_;
  std::istream* is_ = nullptr;
  std::string label_;
  NetlistFormat format_ = NetlistFormat::kText;
  std::uint64_t index_ = 0;
  std::uint64_t offset_ = 0;
  std::uint64_t header_end_ = 0;  ///< first byte past the header
};

/// Incremental netlist writer: header on construction, one record per
/// add(), nothing buffered beyond the stream's own buffer. close()
/// flushes and verifies the stream (also run by the destructor, which
/// swallows errors — call close() when you need the failure).
class NetlistWriter {
 public:
  NetlistWriter(const std::string& path, NetlistFormat format);
  NetlistWriter(std::ostream& os, NetlistFormat format, std::string label);
  ~NetlistWriter();

  NetlistWriter(const NetlistWriter&) = delete;
  NetlistWriter& operator=(const NetlistWriter&) = delete;

  /// Append one record. `tau_t_fs` must be 0 (no stored target) or a
  /// positive, finite femtosecond value.
  void add(const Net& net, double tau_t_fs = 0.0);

  /// Flush and verify; throws NetlistError if the stream went bad.
  void close();

  std::uint64_t count() const { return count_; }
  NetlistFormat format() const { return format_; }

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::string label_;
  NetlistFormat format_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Shortest-round-trip decimal rendering of a double (std::to_chars):
/// parsing the result reproduces the exact bits, and re-rendering the
/// parsed value reproduces the exact string — the property the text
/// format's byte-identical round trip rests on.
std::string format_double_exact(double v);

}  // namespace rip::net
