#pragma once

/// @file solution.hpp
/// A repeater-insertion solution for a two-pin net: the output of every
/// algorithm in this repository (DP baseline, REFINE, RIP). Widths are in
/// units of the minimal repeater width u; the paper's power objective is
/// the total width p = sum(w_i) (Eq. 4).

#include <vector>

#include "net/net.hpp"

namespace rip::net {

/// One inserted repeater.
struct Repeater {
  double position_um = 0;  ///< location along the net, in (0, L)
  double width_u = 0;      ///< repeater width in units of u
};

/// Ordered set of repeaters on a net (positions ascending).
class RepeaterSolution {
 public:
  RepeaterSolution() = default;

  /// Construct from repeaters in any order; they will be sorted by
  /// position. Throws if two repeaters share a position or a width is
  /// not positive.
  explicit RepeaterSolution(std::vector<Repeater> repeaters);

  const std::vector<Repeater>& repeaters() const { return repeaters_; }
  std::size_t size() const { return repeaters_.size(); }
  bool empty() const { return repeaters_.empty(); }

  /// Total repeater width p = sum(w_i) [u] — the power proxy of Eq. (4).
  double total_width_u() const;

  /// Check placement legality against a net: every repeater strictly
  /// inside (0, L) and outside all forbidden zones. Returns false (does
  /// not throw) so that callers can use it as a predicate in tests.
  bool legal_for(const Net& net) const;

 private:
  std::vector<Repeater> repeaters_;
};

}  // namespace rip::net
