#pragma once

/// @file delay_metrics.hpp
/// Higher-order delay metrics for buffered chains.
///
/// Section 4.1 of the paper notes that "more accurate analytical delay
/// models can be used by replacing the Elmore delay with the
/// corresponding delay functions". This module provides the classic D2M
/// metric (ln2 * m1^2 / sqrt(m2), built from the first two transfer
/// moments) for whole buffered chains, so designs optimized under Elmore
/// can be re-scored under a tighter metric. D2M <= Elmore always, and is
/// typically much closer to the simulated 50% delay for far-end sinks.

#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::rc {

/// D2M delay of one repeater stage: the stage's wire is discretized into
/// `subdivisions` sections per piece, the transfer moments m1/m2 at the
/// load are computed on the resulting ladder (including the driver
/// resistance R_s/w and parasitic C_p*w), and D2M is evaluated at the
/// load node.
double stage_d2m_fs(const tech::RepeaterDevice& device, double driver_width_u,
                    const std::vector<net::WirePiece>& pieces, double load_ff,
                    int subdivisions = 16);

/// D2M delay of a buffered chain: the sum of per-stage D2M delays (the
/// switch-level repeater model decouples stages exactly as in Eq. 2).
double chain_d2m_fs(const net::Net& net, const net::RepeaterSolution& solution,
                    const tech::RepeaterDevice& device, int subdivisions = 16);

}  // namespace rip::rc
