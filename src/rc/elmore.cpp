#include "rc/elmore.hpp"

#include "util/error.hpp"

namespace rip::rc {

WireElmore wire_elmore(const std::vector<net::WirePiece>& pieces,
                       double load_ff) {
  // Walk from the load back toward the driver, accumulating downstream
  // capacitance; each piece adds r*l*(C_downstream + c*l/2).
  WireElmore out;
  double c_down = load_ff;
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    const double r = it->r_ohm_per_um * it->length_um;
    const double c = it->c_ff_per_um * it->length_um;
    out.delay_fs += r * (c_down + 0.5 * c);
    c_down += c;
    out.total_cap_ff += c;
  }
  return out;
}

double stage_elmore_fs(const tech::RepeaterDevice& device,
                       double driver_width_u,
                       const std::vector<net::WirePiece>& pieces,
                       double load_ff) {
  RIP_REQUIRE(driver_width_u > 0, "stage driver width must be positive");
  RIP_REQUIRE(load_ff >= 0, "stage load must be non-negative");
  const WireElmore wire = wire_elmore(pieces, load_ff);
  const double rs_eff = device.rs_ohm / driver_width_u;
  return device.rs_ohm * device.cp_ff +
         rs_eff * (wire.total_cap_ff + load_ff) + wire.delay_fs;
}

}  // namespace rip::rc
