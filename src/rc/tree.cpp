#include "rc/tree.hpp"

#include "util/error.hpp"

namespace rip::rc {

RcTree::RcTree() {
  parent_.push_back(kRoot);
  r_ohm_.push_back(0.0);
  cap_ff_.push_back(0.0);
  name_.push_back("root");
  children_.emplace_back();
}

std::size_t RcTree::add_node(std::size_t parent, double r_ohm, double cap_ff,
                             std::string name) {
  RIP_REQUIRE(parent < parent_.size(), "parent node does not exist");
  RIP_REQUIRE(r_ohm >= 0, "edge resistance must be non-negative");
  RIP_REQUIRE(cap_ff >= 0, "node capacitance must be non-negative");
  const std::size_t id = parent_.size();
  parent_.push_back(parent);
  r_ohm_.push_back(r_ohm);
  cap_ff_.push_back(cap_ff);
  name_.push_back(std::move(name));
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

void RcTree::add_cap(std::size_t node, double cap_ff) {
  RIP_REQUIRE(node < cap_ff_.size(), "node does not exist");
  cap_ff_[node] += cap_ff;
}

std::size_t RcTree::parent(std::size_t node) const {
  RIP_REQUIRE(node < parent_.size(), "node does not exist");
  return parent_[node];
}

double RcTree::edge_resistance_ohm(std::size_t node) const {
  RIP_REQUIRE(node < r_ohm_.size(), "node does not exist");
  return r_ohm_[node];
}

std::vector<double> RcTree::downstream_cap_ff() const {
  std::vector<double> cdown = cap_ff_;
  // Children have larger indices than parents, so a reverse sweep
  // accumulates subtrees bottom-up.
  for (std::size_t i = parent_.size(); i-- > 1;) {
    cdown[parent_[i]] += cdown[i];
  }
  return cdown;
}

std::vector<double> RcTree::elmore_delay_fs(
    double driver_resistance_ohm) const {
  const auto cdown = downstream_cap_ff();
  std::vector<double> delay(parent_.size(), 0.0);
  delay[kRoot] = driver_resistance_ohm * cdown[kRoot];
  for (std::size_t i = 1; i < parent_.size(); ++i) {
    delay[i] = delay[parent_[i]] + r_ohm_[i] * cdown[i];
  }
  return delay;
}

std::vector<double> RcTree::second_moment_fs2(
    double driver_resistance_ohm) const {
  const auto m1 = elmore_delay_fs(driver_resistance_ohm);
  // Weighted downstream sums: w_i = C_i * m1_i accumulated over subtrees.
  std::vector<double> wdown(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i)
    wdown[i] = cap_ff_[i] * m1[i];
  for (std::size_t i = parent_.size(); i-- > 1;) {
    wdown[parent_[i]] += wdown[i];
  }
  std::vector<double> m2(parent_.size(), 0.0);
  m2[kRoot] = driver_resistance_ohm * wdown[kRoot];
  for (std::size_t i = 1; i < parent_.size(); ++i) {
    m2[i] = m2[parent_[i]] + r_ohm_[i] * wdown[i];
  }
  return m2;
}

}  // namespace rip::rc
