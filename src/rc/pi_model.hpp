#pragma once

/// @file pi_model.hpp
/// O'Brien/Savarino pi-model reduction: collapse an arbitrary RC ladder
/// (plus load) into a 3-element pi circuit that matches the first three
/// driving-point admittance moments. Used to present accurate lumped
/// loads to gate delay models and in tests as an independent check of the
/// moment machinery.

#include <vector>

#include "net/net.hpp"
#include "rc/moments.hpp"

namespace rip::rc {

/// The reduced pi circuit: C_near at the driver side, series R, C_far.
struct PiModel {
  double c_near_ff = 0;
  double r_ohm = 0;
  double c_far_ff = 0;

  /// Total capacitance of the reduction.
  double total_cap_ff() const { return c_near_ff + c_far_ff; }
};

/// Reduce admittance moments to a pi model:
///   C_far = y2^2 / y3, R = -y3^2 / y2^3, C_near = y1 - C_far.
/// Throws if the moments are not realizable (y2 >= 0 or y3 <= 0), which
/// cannot happen for passive RC inputs.
PiModel reduce_to_pi(const YMoments& y);

/// Convenience: reduce a piecewise-uniform wire plus load directly.
PiModel reduce_to_pi(const std::vector<net::WirePiece>& pieces,
                     double load_ff, int subdivisions = 8);

}  // namespace rip::rc
