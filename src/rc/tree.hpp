#pragma once

/// @file tree.hpp
/// General RC trees: the substrate for the paper's announced future-work
/// extension to low-power interconnect *trees* (Section 7) and for the
/// classic van Ginneken formulation the DP engine generalizes.
///
/// A tree has nodes with a lumped capacitance and edges with a lumped
/// resistance toward the parent. Node 0 is the root (driver output).
/// Parents must be created before children, so node indices are already
/// a topological order.

#include <cstddef>
#include <string>
#include <vector>

namespace rip::rc {

/// Mutable RC tree builder + moment evaluator.
class RcTree {
 public:
  static constexpr std::size_t kRoot = 0;

  /// Create a tree with just the root (cap 0).
  RcTree();

  /// Add a node under `parent` connected through `r_ohm`, carrying
  /// `cap_ff` to ground. Returns the new node id.
  std::size_t add_node(std::size_t parent, double r_ohm, double cap_ff,
                       std::string name = "");

  /// Add capacitance to an existing node (e.g. a sink pin cap).
  void add_cap(std::size_t node, double cap_ff);

  std::size_t node_count() const { return parent_.size(); }
  std::size_t parent(std::size_t node) const;
  double edge_resistance_ohm(std::size_t node) const;
  double node_cap_ff(std::size_t node) const { return cap_ff_.at(node); }
  const std::string& node_name(std::size_t node) const {
    return name_.at(node);
  }
  const std::vector<std::size_t>& children(std::size_t node) const {
    return children_.at(node);
  }

  /// Total capacitance in the subtree rooted at each node.
  std::vector<double> downstream_cap_ff() const;

  /// Elmore delay (first transfer moment magnitude) from the root to each
  /// node, optionally including a driver resistance at the root which
  /// sees the entire tree capacitance.
  std::vector<double> elmore_delay_fs(double driver_resistance_ohm = 0) const;

  /// Second transfer moment magnitude m2 at each node (for D2M).
  /// m2(i) = sum_k R(path_i ∩ path_k) * C_k * m1(k), computed with the
  /// same downstream-accumulation trick as Elmore.
  std::vector<double> second_moment_fs2(double driver_resistance_ohm = 0) const;

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> r_ohm_;
  std::vector<double> cap_ff_;
  std::vector<std::string> name_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace rip::rc
