#include "rc/pi_model.hpp"

#include "util/error.hpp"

namespace rip::rc {

PiModel reduce_to_pi(const YMoments& y) {
  RIP_REQUIRE(y.y1 > 0, "pi reduction requires y1 > 0");
  PiModel pi;
  if (y.y2 == 0.0 || y.y3 == 0.0) {
    // Purely capacitive input (no resistance downstream): lump everything.
    pi.c_near_ff = y.y1;
    return pi;
  }
  RIP_REQUIRE(y.y2 < 0 && y.y3 > 0, "admittance moments not passive-RC");
  pi.c_far_ff = y.y2 * y.y2 / y.y3;
  pi.r_ohm = -(y.y3 * y.y3) / (y.y2 * y.y2 * y.y2);
  pi.c_near_ff = y.y1 - pi.c_far_ff;
  // Guard against pathological moment sets (cancellation): keep C_near
  // non-negative by construction.
  if (pi.c_near_ff < 0) pi.c_near_ff = 0;
  return pi;
}

PiModel reduce_to_pi(const std::vector<net::WirePiece>& pieces,
                     double load_ff, int subdivisions) {
  return reduce_to_pi(wire_admittance_moments(pieces, load_ff, subdivisions));
}

}  // namespace rip::rc
