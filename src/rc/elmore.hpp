#pragma once

/// @file elmore.hpp
/// Elmore delay of a single repeater stage (Eq. 1 of the paper).
///
/// A stage is: a driving repeater of width w (switch-level model: output
/// resistance R_s/w, parasitic output capacitance C_p*w), a run of
/// piecewise-uniform wire, and a receiving gate modeled as a lumped
/// capacitor. Each uniform wire piece uses the lumped-RC pi model, which
/// for Elmore purposes contributes r*l*(C_downstream + c*l/2).

#include <vector>

#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::rc {

/// Elmore delay contribution of the wire alone: sum over pieces (in
/// driver-to-load order) of r_j l_j (c_j l_j / 2 + downstream C), with
/// `load_ff` at the far end. Also returns the total wire capacitance.
struct WireElmore {
  double delay_fs = 0;    ///< distributed wire delay [fs]
  double total_cap_ff = 0;///< total wire capacitance [fF]
};

/// Evaluate the wire part of Eq. (1) over an ordered piece list.
WireElmore wire_elmore(const std::vector<net::WirePiece>& pieces,
                       double load_ff);

/// Full stage Elmore delay per Eq. (1):
///   tau = R_s C_p + (R_s / w) (C_wire + load) + wire_delay(load)
/// where `load_ff` is the input capacitance of the receiving gate
/// (C_o * w_next for a repeater, C_o * w_r for the receiver).
double stage_elmore_fs(const tech::RepeaterDevice& device,
                       double driver_width_u,
                       const std::vector<net::WirePiece>& pieces,
                       double load_ff);

}  // namespace rip::rc
