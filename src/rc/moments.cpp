#include "rc/moments.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rip::rc {

namespace {

/// Shunt capacitor at the input node: y1 += C.
void add_shunt_cap(YMoments& y, double cap_ff) { y.y1 += cap_ff; }

/// Series resistor R between the input and a downstream admittance y:
/// Y_in = Y / (1 + R*Y), expanded to third order.
void add_series_res(YMoments& y, double r_ohm) {
  const double y1 = y.y1;
  const double y2 = y.y2;
  const double y3 = y.y3;
  y.y1 = y1;
  y.y2 = y2 - r_ohm * y1 * y1;
  y.y3 = y3 - 2.0 * r_ohm * y1 * y2 + r_ohm * r_ohm * y1 * y1 * y1;
}

}  // namespace

YMoments wire_admittance_moments(const std::vector<net::WirePiece>& pieces,
                                 double load_ff, int subdivisions) {
  RIP_REQUIRE(subdivisions >= 1, "subdivisions must be >= 1");
  RIP_REQUIRE(load_ff >= 0, "load must be non-negative");
  YMoments y;
  y.y1 = load_ff;
  // Walk from the load toward the driver, adding pi sections.
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    const double dl = it->length_um / subdivisions;
    const double r = it->r_ohm_per_um * dl;
    const double c = it->c_ff_per_um * dl;
    for (int k = 0; k < subdivisions; ++k) {
      add_shunt_cap(y, 0.5 * c);
      add_series_res(y, r);
      add_shunt_cap(y, 0.5 * c);
    }
  }
  return y;
}

double d2m_delay_fs(double m1_fs, double m2_fs2) {
  RIP_REQUIRE(m1_fs >= 0, "m1 must be non-negative");
  RIP_REQUIRE(m2_fs2 > 0, "m2 must be positive");
  return std::log(2.0) * m1_fs * m1_fs / std::sqrt(m2_fs2);
}

}  // namespace rip::rc
