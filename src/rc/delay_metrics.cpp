#include "rc/delay_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "rc/buffered_chain.hpp"
#include "rc/moments.hpp"
#include "rc/tree.hpp"
#include "util/error.hpp"

namespace rip::rc {

double stage_d2m_fs(const tech::RepeaterDevice& device, double driver_width_u,
                    const std::vector<net::WirePiece>& pieces, double load_ff,
                    int subdivisions) {
  RIP_REQUIRE(driver_width_u > 0, "stage driver width must be positive");
  RIP_REQUIRE(subdivisions >= 1, "subdivisions must be >= 1");

  // Build the stage as a path RcTree: root carries the driver parasitic,
  // then the discretized wire, then the lumped load.
  RcTree tree;
  tree.add_cap(RcTree::kRoot, device.cp_ff * driver_width_u);
  std::size_t cur = RcTree::kRoot;
  for (const auto& piece : pieces) {
    const int sections = subdivisions;
    const double dl = piece.length_um / sections;
    for (int k = 0; k < sections; ++k) {
      const std::size_t next =
          tree.add_node(cur, piece.r_ohm_per_um * dl, 0.0);
      tree.add_cap(cur, piece.c_ff_per_um * dl / 2.0);
      tree.add_cap(next, piece.c_ff_per_um * dl / 2.0);
      cur = next;
    }
  }
  tree.add_cap(cur, load_ff);

  const double rs_eff = device.rs_ohm / driver_width_u;
  const auto m1 = tree.elmore_delay_fs(rs_eff);
  const auto m2 = tree.second_moment_fs2(rs_eff);
  if (m2[cur] <= 0) return m1[cur];  // degenerate (no RC product)
  return std::min(m1[cur], d2m_delay_fs(m1[cur], m2[cur]));
}

double chain_d2m_fs(const net::Net& net, const net::RepeaterSolution& solution,
                    const tech::RepeaterDevice& device, int subdivisions) {
  const BufferedChain chain(net, solution, device);
  double total = 0.0;
  for (const auto& stage : chain.stages()) {
    total += stage_d2m_fs(device, stage.driver_width_u, stage.pieces,
                          device.co_ff * stage.load_width_u, subdivisions);
  }
  return total;
}

}  // namespace rip::rc
