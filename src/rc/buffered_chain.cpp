#include "rc/buffered_chain.hpp"

#include "rc/elmore.hpp"
#include "util/error.hpp"

namespace rip::rc {

BufferedChain::BufferedChain(const net::Net& net,
                             const net::RepeaterSolution& solution,
                             const tech::RepeaterDevice& device)
    : device_(device) {
  const double total = net.total_length_um();
  const auto& reps = solution.repeaters();
  for (const auto& r : reps) {
    RIP_REQUIRE(r.position_um > 0 && r.position_um < total,
                "repeater position outside the net interior");
  }

  stages_.reserve(reps.size() + 1);
  double from = 0.0;
  double driver_w = net.driver_width_u();
  for (std::size_t i = 0; i <= reps.size(); ++i) {
    const bool last = (i == reps.size());
    const double to = last ? total : reps[i].position_um;
    const double load_w = last ? net.receiver_width_u() : reps[i].width_u;
    Stage stage;
    stage.driver_width_u = driver_w;
    stage.load_width_u = load_w;
    stage.from_um = from;
    stage.to_um = to;
    stage.pieces = net.pieces_between(from, to);
    stage.wire_resistance_ohm = net.resistance_between_ohm(from, to);
    stage.wire_capacitance_ff = net.capacitance_between_ff(from, to);
    stages_.push_back(std::move(stage));
    from = to;
    if (!last) driver_w = reps[i].width_u;
  }
}

double BufferedChain::stage_delay_fs(std::size_t i) const {
  RIP_REQUIRE(i < stages_.size(), "stage index out of range");
  const Stage& s = stages_[i];
  return stage_elmore_fs(device_, s.driver_width_u, s.pieces,
                         device_.co_ff * s.load_width_u);
}

double BufferedChain::total_delay_fs() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) sum += stage_delay_fs(i);
  return sum;
}

double elmore_delay_fs(const net::Net& net,
                       const net::RepeaterSolution& solution,
                       const tech::RepeaterDevice& device) {
  return BufferedChain(net, solution, device).total_delay_fs();
}

}  // namespace rip::rc
