#pragma once

/// @file buffered_chain.hpp
/// Stage decomposition of a buffered two-pin net (Fig. 3 of the paper)
/// and exact Elmore evaluation of Eq. (2).
///
/// This evaluator is deliberately *independent* of the DP engine's
/// incremental delay bookkeeping: tests use it to cross-check every DP
/// and RIP solution, and REFINE uses its per-stage wire totals
/// (R_i, C_i in the paper's notation).

#include <vector>

#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::rc {

/// One stage of a buffered net: the run of wire between consecutive
/// repeaters (or driver/receiver), with its driving width and the load
/// width at the far end.
struct Stage {
  double driver_width_u = 0;   ///< w_i: width of the driving repeater
  double load_width_u = 0;     ///< w_{i+1}: width of the receiving gate
  double from_um = 0;          ///< stage start position
  double to_um = 0;            ///< stage end position
  std::vector<net::WirePiece> pieces;  ///< wire pieces, driver->load order
  double wire_resistance_ohm = 0;      ///< R_i: total stage wire resistance
  double wire_capacitance_ff = 0;      ///< C_i: total stage wire capacitance
};

/// A net plus a repeater solution, decomposed into stages.
class BufferedChain {
 public:
  /// Decompose `net` buffered with `solution`. Repeater positions must be
  /// strictly inside (0, L); the solution need not be zone-legal (REFINE
  /// evaluates trial placements), but must be ordered (guaranteed by
  /// RepeaterSolution).
  BufferedChain(const net::Net& net, const net::RepeaterSolution& solution,
                const tech::RepeaterDevice& device);

  /// Stage list; size() == solution.size() + 1.
  const std::vector<Stage>& stages() const { return stages_; }

  /// Elmore delay of stage `i` per Eq. (1) [fs].
  double stage_delay_fs(std::size_t i) const;

  /// Total delay per Eq. (2): sum of all stage delays [fs].
  double total_delay_fs() const;

 private:
  const tech::RepeaterDevice device_;
  std::vector<Stage> stages_;
};

/// Convenience wrapper: Elmore delay of `net` buffered with `solution`.
double elmore_delay_fs(const net::Net& net,
                       const net::RepeaterSolution& solution,
                       const tech::RepeaterDevice& device);

}  // namespace rip::rc
