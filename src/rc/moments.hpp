#pragma once

/// @file moments.hpp
/// Admittance moments of RC ladders and moment-based reductions.
///
/// Used for the O'Brien/Savarino pi-model reduction (pi_model.hpp) and the
/// D2M delay metric. The paper uses Elmore throughout (Section 4.1) but
/// notes that "more accurate analytical delay models can be used by
/// replacing the Elmore delay" — these moments are the hook for that.

#include <vector>

#include "net/net.hpp"

namespace rip::rc {

/// First three moments of a driving-point admittance:
///   Y(s) = y1*s + y2*s^2 + y3*s^3 + O(s^4).
/// Units: y1 [fF], y2 [fF*fs], y3 [fF*fs^2]. For passive RC circuits
/// y1 > 0, y2 < 0, y3 > 0.
struct YMoments {
  double y1 = 0;
  double y2 = 0;
  double y3 = 0;
};

/// Input admittance moments of a piecewise-uniform wire terminated by a
/// lumped load. Each piece is expanded into `subdivisions` pi-sections
/// (>= 1); more subdivisions approach the distributed-line moments.
YMoments wire_admittance_moments(const std::vector<net::WirePiece>& pieces,
                                 double load_ff, int subdivisions = 8);

/// Transfer-function moment based delay metric D2M = ln(2) * m1^2 /
/// sqrt(m2), with m1 = Elmore delay and m2 the (positive-magnitude)
/// second transfer moment. More accurate than Elmore for far-out sinks.
double d2m_delay_fs(double m1_fs, double m2_fs2);

}  // namespace rip::rc
