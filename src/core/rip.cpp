#include "core/rip.hpp"

#include <algorithm>
#include <cmath>

#include "dp/library.hpp"
#include "dp/workspace.hpp"
#include "net/candidates.hpp"
#include "rc/buffered_chain.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace rip::core {

RipResult rip_insert(const net::Net& net, const tech::RepeaterDevice& device,
                     double tau_t_fs, const RipOptions& options) {
  return rip_insert(net, device, tau_t_fs, options, dp::Workspace::local());
}

RipResult rip_insert(const net::Net& net, const tech::RepeaterDevice& device,
                     double tau_t_fs, const RipOptions& options,
                     dp::Workspace& workspace, dp::ChainSolveCache* cache,
                     const tech::ObjectiveBackend* backend) {
  RIP_REQUIRE(tau_t_fs > 0, "timing target must be positive");
  RIP_REQUIRE(options.refine_repeats >= 1, "need at least one REFINE pass");
  WallTimer total_timer;
  RipResult result;

  // ---- Stage 1: coarse DP (Fig. 6, line 1). ----
  WallTimer stage_timer;
  const dp::RepeaterLibrary coarse_library = dp::RepeaterLibrary::uniform(
      options.coarse_min_width_u, options.coarse_granularity_u,
      options.coarse_library_size);
  const auto coarse_candidates =
      net::uniform_candidates(net, options.coarse_pitch_um);
  dp::ChainDpOptions dp_options;
  dp_options.mode = dp::Mode::kMinPower;
  dp_options.timing_target_fs = tau_t_fs;
  dp_options.backend = backend;
  result.coarse =
      dp::run_chain_dp_cached(net, device, coarse_library, coarse_candidates,
                              dp_options, workspace, cache);
  result.coarse_s = stage_timer.seconds();

  if (result.coarse.status != dp::Status::kOptimal) {
    // Even the coarse library cannot meet the target: report infeasible
    // with the best-effort (min-delay) solution for diagnostics.
    result.status = dp::Status::kInfeasible;
    result.solution = result.coarse.min_delay_solution;
    result.delay_fs = result.coarse.min_delay_fs;
    result.total_width_u = result.solution.total_width_u();
    result.runtime_s = total_timer.seconds();
    return result;
  }

  // A coarse solution with no repeaters cannot be refined (REFINE keeps
  // the repeater count); it is already the trivial minimum-power answer.
  if (result.coarse.solution.empty()) {
    result.status = dp::Status::kOptimal;
    result.solution = result.coarse.solution;
    result.delay_fs = result.coarse.delay_fs;
    result.total_width_u = 0;
    result.objective_cost = result.coarse.objective_cost;
    result.used_fallback = true;
    result.runtime_s = total_timer.seconds();
    return result;
  }

  // ---- Stage 2: REFINE (Fig. 6, line 2; Section 7 allows repeats). ----
  stage_timer.reset();
  net::RepeaterSolution refine_input = result.coarse.solution;
  for (int pass = 0; pass < options.refine_repeats; ++pass) {
    result.refined =
        analytical::refine(net, device, refine_input, tau_t_fs,
                           options.refine);
    if (!result.refined.width_solve_ok) break;
    refine_input = result.refined.solution();
  }
  result.refine_s = stage_timer.seconds();

  if (!result.refined.width_solve_ok) {
    // Analytical relaxation infeasible at this placement: fall back to
    // the coarse DP answer (still feasible by construction).
    result.status = dp::Status::kOptimal;
    result.solution = result.coarse.solution;
    result.delay_fs = result.coarse.delay_fs;
    result.total_width_u = result.coarse.total_width_u;
    result.objective_cost = result.coarse.objective_cost;
    result.used_fallback = true;
    result.runtime_s = total_timer.seconds();
    return result;
  }

  // ---- Stage 3: fine DP over the refined library and locations
  //      (Fig. 6, lines 3-4). ----
  stage_timer.reset();
  const dp::RepeaterLibrary fine_library = dp::RepeaterLibrary::from_rounding(
      result.refined.widths_u, options.fine_granularity_u,
      options.fine_min_width_u, options.fine_max_width_u);
  const auto fine_candidates = net::window_candidates(
      net, result.refined.positions_um, options.window_half,
      options.window_pitch_um);

  // Each candidate only offers the bracketed widths of the REFINE
  // repeater(s) whose window covers it. This keeps the final DP's width
  // lattice as concise as the analytical solution itself (see
  // ChainDpOptions::allowed_buffers).
  const double window_span =
      options.window_half * options.window_pitch_um + 1e-6;
  std::vector<std::vector<std::int16_t>> allowed(fine_candidates.size());
  const auto& lib_widths = fine_library.widths_u();
  auto library_index = [&](double w) {
    const auto it =
        std::lower_bound(lib_widths.begin(), lib_widths.end(), w - 1e-9);
    RIP_ASSERT(it != lib_widths.end() && std::abs(*it - w) < 1e-6,
               "bracketed width missing from the stage-3 library");
    return static_cast<std::int16_t>(it - lib_widths.begin());
  };
  for (std::size_t ri = 0; ri < result.refined.positions_um.size(); ++ri) {
    const double w = result.refined.widths_u[ri];
    const double lo = std::clamp(
        std::floor(w / options.fine_granularity_u) * options.fine_granularity_u,
        options.fine_min_width_u, options.fine_max_width_u);
    const double hi = std::clamp(
        std::ceil(w / options.fine_granularity_u) * options.fine_granularity_u,
        options.fine_min_width_u, options.fine_max_width_u);
    const std::int16_t lo_idx = library_index(lo);
    const std::int16_t hi_idx = library_index(hi);
    const double center = result.refined.positions_um[ri];
    for (std::size_t ci = 0; ci < fine_candidates.size(); ++ci) {
      if (std::abs(fine_candidates[ci] - center) <= window_span) {
        allowed[ci].push_back(lo_idx);
        if (hi_idx != lo_idx) allowed[ci].push_back(hi_idx);
      }
    }
  }
  for (auto& a : allowed) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  dp::ChainDpOptions final_options = dp_options;
  final_options.allowed_buffers = &allowed;
  result.final_dp = dp::run_chain_dp(net, device, fine_library,
                                     fine_candidates, final_options,
                                     workspace);
  result.final_s = stage_timer.seconds();

  // Best feasible of {stage 3, stage 1}: RIP never loses to its own
  // coarse stage and stays feasible whenever stage 1 was. Arbitrated on
  // the objective cost (== total width on the identity objective).
  const bool final_ok = result.final_dp.status == dp::Status::kOptimal;
  if (final_ok &&
      result.final_dp.objective_cost <= result.coarse.objective_cost) {
    result.solution = result.final_dp.solution;
    result.delay_fs = result.final_dp.delay_fs;
    result.total_width_u = result.final_dp.total_width_u;
    result.objective_cost = result.final_dp.objective_cost;
  } else {
    result.solution = result.coarse.solution;
    result.delay_fs = result.coarse.delay_fs;
    result.total_width_u = result.coarse.total_width_u;
    result.objective_cost = result.coarse.objective_cost;
    result.used_fallback = true;
  }
  result.status = dp::Status::kOptimal;
  result.runtime_s = total_timer.seconds();
  return result;
}

}  // namespace rip::core
