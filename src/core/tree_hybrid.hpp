#pragma once

/// @file tree_hybrid.hpp
/// "Tree-RIP-lite": our implementation of the paper's announced
/// future-work extension to interconnect trees (Section 7).
///
/// The chain algorithm's REFINE stage relies on closed-form chain
/// equations, so the tree hybrid substitutes a greedy discrete width
/// descent between two DP passes:
///
///   1. coarse power-aware tree DP (small coarse library);
///   2. greedy refinement: per buffer, try removal and every smaller
///      fine-granularity width, keeping the move iff the worst-sink delay
///      still meets the target — repeat to a fixpoint;
///   3. fine tree DP restricted to the concise library of widths the
///      refinement actually used.
///
/// The bench (bench_tree) shows the same quality/runtime tradeoff as the
/// paper's Table 2, transplanted to trees.

#include "dp/tree_dp.hpp"
#include "tech/technology.hpp"

namespace rip::core {

/// Tree hybrid knobs (mirrors RipOptions where meaningful).
struct TreeHybridOptions {
  double coarse_min_width_u = 80.0;
  double coarse_granularity_u = 80.0;
  int coarse_library_size = 5;
  double fine_granularity_u = 10.0;
  double fine_min_width_u = 10.0;
  double fine_max_width_u = 400.0;
  int max_greedy_rounds = 20;
};

/// Result of the tree hybrid.
struct TreeHybridResult {
  dp::Status status = dp::Status::kInfeasible;
  dp::TreeSolution solution;
  double delay_fs = 0;
  double total_width_u = 0;

  dp::TreeDpResult coarse;
  double greedy_width_u = 0;   ///< total width after greedy refinement
  int greedy_moves = 0;        ///< accepted greedy moves
  dp::TreeDpResult final_dp;
  bool used_fallback = false;

  double runtime_s = 0;
};

/// Run the tree hybrid with a driver of `driver_width_u` at the root.
/// The first overload runs its DP and greedy stages on this thread's
/// dp::Workspace::local(); the second reuses the caller's workspace.
TreeHybridResult tree_hybrid_insert(const dp::BufferTree& tree,
                                    const tech::RepeaterDevice& device,
                                    double driver_width_u, double tau_t_fs,
                                    const TreeHybridOptions& options = {});
TreeHybridResult tree_hybrid_insert(const dp::BufferTree& tree,
                                    const tech::RepeaterDevice& device,
                                    double driver_width_u, double tau_t_fs,
                                    const TreeHybridOptions& options,
                                    dp::Workspace& workspace);

}  // namespace rip::core
