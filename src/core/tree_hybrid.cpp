#include "core/tree_hybrid.hpp"

#include <algorithm>
#include <cmath>

#include "dp/library.hpp"
#include "dp/workspace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace rip::core {

TreeHybridResult tree_hybrid_insert(const dp::BufferTree& tree,
                                    const tech::RepeaterDevice& device,
                                    double driver_width_u, double tau_t_fs,
                                    const TreeHybridOptions& options) {
  return tree_hybrid_insert(tree, device, driver_width_u, tau_t_fs, options,
                            dp::Workspace::local());
}

TreeHybridResult tree_hybrid_insert(const dp::BufferTree& tree,
                                    const tech::RepeaterDevice& device,
                                    double driver_width_u, double tau_t_fs,
                                    const TreeHybridOptions& options,
                                    dp::Workspace& workspace) {
  RIP_REQUIRE(tau_t_fs > 0, "timing target must be positive");
  WallTimer timer;
  TreeHybridResult result;

  dp::ChainDpOptions dp_options;
  dp_options.mode = dp::Mode::kMinPower;
  dp_options.timing_target_fs = tau_t_fs;

  // ---- Stage 1: coarse tree DP. ----
  const dp::RepeaterLibrary coarse_library = dp::RepeaterLibrary::uniform(
      options.coarse_min_width_u, options.coarse_granularity_u,
      options.coarse_library_size);
  result.coarse = dp::run_tree_dp(tree, device, driver_width_u,
                                  coarse_library, dp_options, workspace);
  if (result.coarse.status != dp::Status::kOptimal) {
    result.status = dp::Status::kInfeasible;
    result.solution = result.coarse.min_delay_solution;
    result.delay_fs = result.coarse.min_delay_fs;
    result.total_width_u = result.solution.total_width_u();
    result.runtime_s = timer.seconds();
    return result;
  }

  // ---- Stage 2: greedy discrete width descent. ----
  const dp::RepeaterLibrary fine_library = dp::RepeaterLibrary::range(
      options.fine_min_width_u, options.fine_max_width_u,
      options.fine_granularity_u);
  // Each trial differs from the incumbent in exactly one node, so the
  // descent edits that entry in place and reverts on rejection — no
  // per-trial copy of the solution vector, keeping the whole descent
  // allocation-free on a warm workspace (tree_delay_fs reuses the
  // workspace's bottom-up sweep arrays).
  dp::TreeSolution greedy = result.coarse.solution;
  for (int round = 0; round < options.max_greedy_rounds; ++round) {
    bool improved = false;
    for (std::size_t node = 0; node < greedy.width_u.size(); ++node) {
      const double current = greedy.width_u[node];
      if (current <= 0) continue;
      // Try removal first, then ascending fine widths below the current
      // one; take the cheapest feasible option.
      greedy.width_u[node] = 0;
      if (dp::tree_delay_fs(tree, device, driver_width_u, greedy,
                            workspace) <= tau_t_fs) {
        improved = true;
        ++result.greedy_moves;
        continue;
      }
      bool shrunk = false;
      for (const double w : fine_library.widths_u()) {
        if (w >= current) break;
        greedy.width_u[node] = w;
        if (dp::tree_delay_fs(tree, device, driver_width_u, greedy,
                              workspace) <= tau_t_fs) {
          improved = true;
          ++result.greedy_moves;
          shrunk = true;
          break;
        }
      }
      if (!shrunk) greedy.width_u[node] = current;
    }
    if (!improved) break;
  }
  result.greedy_width_u = greedy.total_width_u();

  // ---- Stage 3: windowed fine tree DP around the greedy solution.
  // Mirrors chain-RIP's stage 3: each node near a greedy buffer may hold
  // that buffer's floor/ceil fine widths; everything else stays empty.
  // "Near" = the node itself, its parent, and its children (one-edge
  // sliding window in the tree).
  dp::TreeDpResult final_dp;
  std::vector<double> greedy_widths;
  for (const double w : greedy.width_u)
    if (w > 0) greedy_widths.push_back(w);
  if (!greedy_widths.empty()) {
    const dp::RepeaterLibrary concise = dp::RepeaterLibrary::from_rounding(
        greedy_widths, options.fine_granularity_u, options.fine_min_width_u,
        options.fine_max_width_u);
    const auto& lib_widths = concise.widths_u();
    auto library_index = [&](double w) {
      const auto it =
          std::lower_bound(lib_widths.begin(), lib_widths.end(), w - 1e-9);
      RIP_ASSERT(it != lib_widths.end() && std::abs(*it - w) < 1e-6,
                 "bracketed width missing from the tree stage-3 library");
      return static_cast<std::int16_t>(it - lib_widths.begin());
    };
    std::vector<std::vector<std::int16_t>> allowed(tree.nodes().size());
    auto add_bracket = [&](std::size_t node, double w) {
      if (!tree.nodes()[node].candidate) return;
      const double lo = std::clamp(
          std::floor(w / options.fine_granularity_u) *
              options.fine_granularity_u,
          options.fine_min_width_u, options.fine_max_width_u);
      const double hi = std::clamp(
          std::ceil(w / options.fine_granularity_u) *
              options.fine_granularity_u,
          options.fine_min_width_u, options.fine_max_width_u);
      allowed[node].push_back(library_index(lo));
      if (hi != lo) allowed[node].push_back(library_index(hi));
    };
    for (std::size_t node = 0; node < greedy.width_u.size(); ++node) {
      const double w = greedy.width_u[node];
      if (w <= 0) continue;
      add_bracket(node, w);
      const auto parent = tree.nodes()[node].parent;
      if (parent > 0) add_bracket(static_cast<std::size_t>(parent), w);
      for (const auto kid : tree.children()[node])
        add_bracket(static_cast<std::size_t>(kid), w);
    }
    for (auto& a : allowed) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    dp::ChainDpOptions final_options = dp_options;
    final_options.allowed_buffers = &allowed;
    final_dp = dp::run_tree_dp(tree, device, driver_width_u, concise,
                               final_options, workspace);
  }
  result.final_dp = final_dp;

  // Best feasible of {stage 3, greedy, stage 1}.
  const double greedy_delay =
      dp::tree_delay_fs(tree, device, driver_width_u, greedy, workspace);
  result.status = dp::Status::kOptimal;
  if (final_dp.status == dp::Status::kOptimal &&
      final_dp.total_width_u <= greedy.total_width_u()) {
    result.solution = final_dp.solution;
    result.delay_fs = final_dp.delay_fs;
    result.total_width_u = final_dp.total_width_u;
  } else if (greedy_delay <= tau_t_fs) {
    result.solution = greedy;
    result.delay_fs = greedy_delay;
    result.total_width_u = greedy.total_width_u();
    result.used_fallback = true;
  } else {
    result.solution = result.coarse.solution;
    result.delay_fs = result.coarse.delay_fs;
    result.total_width_u = result.coarse.total_width_u;
    result.used_fallback = true;
  }
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace rip::core
