#pragma once

/// @file baseline.hpp
/// The conventional power-aware DP baseline the paper compares against
/// ([14], Lillis–Cheng–Lin): one DP pass with a uniformly-spaced repeater
/// library and uniformly-spaced candidate locations. Table 1 uses
/// libraries of size 10 with min width 10u and granularity g; Table 2
/// uses the fixed width range (10u, 400u) with granularity g_DP.

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "net/net.hpp"
#include "tech/technology.hpp"

namespace rip::dp {
class Workspace;
}  // namespace rip::dp

namespace rip::core {

/// Baseline configuration.
struct BaselineOptions {
  dp::RepeaterLibrary library;  ///< the discrete widths the DP may use
  double pitch_um = 200.0;      ///< uniform candidate-location pitch

  /// Table 1 baseline: library of `size` widths from `min_width` at
  /// `granularity` spacing (the paper's size-10, g in {10u,20u,40u}).
  static BaselineOptions uniform_library(double min_width_u,
                                         double granularity_u, int size,
                                         double pitch_um = 200.0);

  /// Table 2 baseline: all multiples of `granularity` in
  /// [min_width, max_width] (the paper's (10u, 400u) range).
  static BaselineOptions range_library(double min_width_u,
                                       double max_width_u,
                                       double granularity_u,
                                       double pitch_um = 200.0);
};

/// Run the baseline DP for a timing target. The first overload solves
/// on this thread's dp::Workspace::local(); the second reuses the
/// caller's workspace arenas across solves, may consult a frontier
/// cache (the baseline solves a fixed library/pitch per net, so across a
/// target sweep every solve after the first is a cache hit), and may
/// minimize a pluggable objective (tech/objective.hpp; nullptr = the
/// paper's minimum-width objective, bit-identical to before backends
/// existed).
dp::ChainDpResult run_baseline(const net::Net& net,
                               const tech::RepeaterDevice& device,
                               double tau_t_fs,
                               const BaselineOptions& options);
dp::ChainDpResult run_baseline(const net::Net& net,
                               const tech::RepeaterDevice& device,
                               double tau_t_fs,
                               const BaselineOptions& options,
                               dp::Workspace& workspace,
                               dp::ChainSolveCache* cache = nullptr,
                               const tech::ObjectiveBackend* backend = nullptr);

}  // namespace rip::core
