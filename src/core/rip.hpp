#pragma once

/// @file rip.hpp
/// Algorithm RIP (Fig. 6 of the paper) — the repository's primary
/// contribution. A hybrid of the DP engine and the analytical solver:
///
///   1. DP with a *coarse* repeater library (Section 6: five widths at
///      80u pitch) and coarse uniform locations (200 um) -> initial
///      solution.
///   2. REFINE: continuous width solve + repeater movement.
///   3. Build a concise library B (REFINE widths rounded to 10u) and a
///      small location set S (each REFINE location ±10 positions at
///      50 um) and re-run the DP restricted to B and S.
///
/// Guarantee: the returned solution is the best feasible of stage 3 and
/// stage 1, so RIP is feasible whenever the coarse DP is, and never worse
/// than it.

#include "analytical/refine.hpp"
#include "dp/chain_dp.hpp"
#include "net/net.hpp"
#include "net/solution.hpp"
#include "tech/technology.hpp"

namespace rip::dp {
class Workspace;
}  // namespace rip::dp

namespace rip::core {

/// All RIP knobs; defaults reproduce Section 6 of the paper.
struct RipOptions {
  // Stage 1: coarse DP.
  double coarse_min_width_u = 80.0;
  double coarse_granularity_u = 80.0;
  int coarse_library_size = 5;
  double coarse_pitch_um = 200.0;

  // Stage 2: REFINE.
  analytical::RefineOptions refine;
  /// Section 7: "REFINE may be performed several times for further power
  /// reduction" — number of REFINE passes (>= 1).
  int refine_repeats = 1;

  // Stage 3: fine local DP.
  double fine_granularity_u = 10.0;
  double fine_min_width_u = 10.0;
  double fine_max_width_u = 400.0;
  int window_half = 10;        ///< locations before/after each REFINE spot
  double window_pitch_um = 50.0;
};

/// Diagnostics-rich result of a RIP run.
struct RipResult {
  dp::Status status = dp::Status::kInfeasible;
  net::RepeaterSolution solution;
  double delay_fs = 0;
  double total_width_u = 0;
  /// Objective cost of `solution` under the active backend — what the
  /// stage-3-vs-stage-1 arbitration compares. Equals total_width_u on
  /// the identity (paper) objective; 0 when infeasible or repeaterless.
  double objective_cost = 0;

  // Per-stage diagnostics.
  dp::ChainDpResult coarse;            ///< stage 1
  analytical::RefineResult refined;    ///< stage 2 (last repeat)
  dp::ChainDpResult final_dp;          ///< stage 3
  bool used_fallback = false;          ///< final answer came from stage 1

  double runtime_s = 0;        ///< total wall clock
  double coarse_s = 0;         ///< stage 1 wall clock
  double refine_s = 0;         ///< stage 2 wall clock
  double final_s = 0;          ///< stage 3 wall clock
};

/// Run Algorithm RIP on a net with timing target `tau_t_fs`. The first
/// overload runs its DP stages on this thread's dp::Workspace::local();
/// the second reuses the caller's workspace arenas across stages and
/// calls, and may consult a frontier cache for the stage-1 coarse DP
/// (whose library/candidates are target-independent, so a target sweep
/// over one net hits after the first solve). The stage-3 fine DP is
/// never cached: its library and allowed-width windows derive from the
/// REFINE output, which changes with the target — caching it would only
/// pollute the cache with single-use entries.
///
/// An objective backend (tech/objective.hpp) threads into both DP stages
/// and the final stage-3-vs-stage-1 arbitration (compared by objective
/// cost). Stage 2's REFINE needs no backend: it preserves the repeater
/// count, and on a fixed count an affine cost is minimized exactly where
/// total width is, so the analytical width argmin is the cost argmin
/// too. nullptr = the paper's objective, bit-identical to before.
RipResult rip_insert(const net::Net& net, const tech::RepeaterDevice& device,
                     double tau_t_fs, const RipOptions& options = {});
RipResult rip_insert(const net::Net& net, const tech::RepeaterDevice& device,
                     double tau_t_fs, const RipOptions& options,
                     dp::Workspace& workspace,
                     dp::ChainSolveCache* cache = nullptr,
                     const tech::ObjectiveBackend* backend = nullptr);

}  // namespace rip::core
