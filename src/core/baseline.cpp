#include "core/baseline.hpp"

#include "dp/workspace.hpp"
#include "net/candidates.hpp"

namespace rip::core {

BaselineOptions BaselineOptions::uniform_library(double min_width_u,
                                                 double granularity_u,
                                                 int size, double pitch_um) {
  BaselineOptions opts{
      dp::RepeaterLibrary::uniform(min_width_u, granularity_u, size),
      pitch_um};
  return opts;
}

BaselineOptions BaselineOptions::range_library(double min_width_u,
                                               double max_width_u,
                                               double granularity_u,
                                               double pitch_um) {
  BaselineOptions opts{
      dp::RepeaterLibrary::range(min_width_u, max_width_u, granularity_u),
      pitch_um};
  return opts;
}

dp::ChainDpResult run_baseline(const net::Net& net,
                               const tech::RepeaterDevice& device,
                               double tau_t_fs,
                               const BaselineOptions& options) {
  return run_baseline(net, device, tau_t_fs, options,
                      dp::Workspace::local());
}

dp::ChainDpResult run_baseline(const net::Net& net,
                               const tech::RepeaterDevice& device,
                               double tau_t_fs, const BaselineOptions& options,
                               dp::Workspace& workspace,
                               dp::ChainSolveCache* cache,
                               const tech::ObjectiveBackend* backend) {
  const auto candidates = net::uniform_candidates(net, options.pitch_um);
  dp::ChainDpOptions dp_options;
  dp_options.mode = dp::Mode::kMinPower;
  dp_options.timing_target_fs = tau_t_fs;
  dp_options.backend = backend;
  return dp::run_chain_dp_cached(net, device, options.library, candidates,
                                 dp_options, workspace, cache);
}

}  // namespace rip::core
