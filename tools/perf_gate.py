#!/usr/bin/env python3
"""Perf gate for the chain-DP kernel bench.

Compares a fresh bench_dp JSON summary against the committed baseline
(BENCH_dp.json at the repo root) per kernel configuration and fails when
any configuration's ns_per_solve regressed by more than the threshold.

Usage:
    python3 tools/perf_gate.py CURRENT.json [BASELINE.json]

BASELINE.json defaults to BENCH_dp.json next to this script's parent
directory (the repo root). The regression threshold is 10% and can be
overridden with RIP_PERF_GATE_PCT — a developer machine that matches the
baseline's hardware should run with the default; shared CI runners are
noisy and should pass a generous override (the gate then only catches
order-of-magnitude blowups, never runner-speed lottery).

Only configurations present in BOTH files are compared; a configuration
that disappeared from the current run fails the gate (a silently dropped
config is how a regression hides), a new configuration is reported and
skipped. Exit status: 0 = within threshold, 1 = regression or missing
config, 2 = usage/parse error.
"""

import json
import os
import sys


def load_configs(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    configs = {c["name"]: c for c in data.get("configs", [])}
    if not configs:
        print(f"perf_gate: {path} has no kernel configurations",
              file=sys.stderr)
        sys.exit(2)
    return configs


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    current_path = argv[1]
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(argv[0])))
    baseline_path = argv[2] if len(argv) == 3 else os.path.join(
        repo_root, "BENCH_dp.json")
    try:
        threshold_pct = float(os.environ.get("RIP_PERF_GATE_PCT", "10"))
    except ValueError:
        print("perf_gate: RIP_PERF_GATE_PCT must be a number",
              file=sys.stderr)
        return 2

    baseline = load_configs(baseline_path)
    current = load_configs(current_path)

    failures = []
    width = max(len(name) for name in baseline)
    print(f"perf gate: {current_path} vs {baseline_path} "
          f"(threshold +{threshold_pct:g}%)")
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"  {name:<{width}}  MISSING from current run")
            failures.append(name)
            continue
        base_ns = float(base["ns_per_solve"])
        cur_ns = float(cur["ns_per_solve"])
        delta_pct = (cur_ns - base_ns) / base_ns * 100.0
        verdict = "ok"
        if delta_pct > threshold_pct:
            verdict = "REGRESSED"
            failures.append(name)
        print(f"  {name:<{width}}  {base_ns / 1e3:10.1f} -> "
              f"{cur_ns / 1e3:10.1f} us/solve  {delta_pct:+7.1f}%  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  new configuration (no baseline, skipped)")

    if failures:
        print(f"perf_gate: FAIL — {len(failures)} configuration(s) over "
              f"the +{threshold_pct:g}% threshold: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
