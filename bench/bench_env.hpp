#pragma once

/// @file bench_env.hpp
/// Environment-variable knobs shared by the table-regeneration benches,
/// so CI can run reduced configurations:
///   RIP_BENCH_NETS     population size (default: the paper's 20)
///   RIP_BENCH_TARGETS  timing targets per net (default: the paper's 20)

#include <cstdlib>
#include <string>

namespace rip::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  try {
    return std::stoi(value);
  } catch (...) {
    return fallback;
  }
}

inline int net_count(int fallback = 20) {
  return env_int("RIP_BENCH_NETS", fallback);
}

inline int targets_per_net(int fallback = 20) {
  return env_int("RIP_BENCH_TARGETS", fallback);
}

}  // namespace rip::bench
