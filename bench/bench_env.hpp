#pragma once

/// @file bench_env.hpp
/// Shared configuration for the table-regeneration benches. Every knob
/// has an environment-variable default (so CI can shrink runs globally)
/// that the command line overrides per invocation:
///   RIP_BENCH_NETS     / --nets N     population size (paper: 20)
///   RIP_BENCH_TARGETS  / --targets N  timing targets per net (paper: 20)
///   RIP_BENCH_JOBS     / --jobs N     worker threads (1 = serial,
///                                     0 = all hardware threads)
///                / --shard I/N        solve shard I of an N-way split
///                / --grain G          scheduler chunk size (0 = auto)
///                / --mode M           chunking mode: static|dynamic|guided

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------- allocation counting
//
// Every bench binary replaces the global operator new/delete with a
// counting malloc shim, so zero-steady-state-allocation claims (the DP
// workspace, bench_dp's per-solve assertion) are *measured*, not
// eyeballed. The hook lives here in the bench — the library itself stays
// untouched — and is safe because each bench executable consists of
// exactly one translation unit that includes this header (replacement
// allocation functions must be defined once per program and must not be
// inline).

namespace rip::bench {
namespace alloc_detail {
// Process-wide totals. Relaxed fetch_add keeps every increment exact
// (atomic RMW can never tear or drop a count — relaxed only frees the
// *ordering* against other memory, which nothing here relies on) at a
// fraction of the seq_cst cost on the malloc hot path.
inline std::atomic<std::uint64_t> count{0};
inline std::atomic<std::uint64_t> bytes{0};
// Per-thread counters, bumped alongside the globals. These are what
// make per-solve sampling exact under --jobs > 1: a global sample taken
// around one worker's solve would also count every allocation its
// neighbours performed in that window, but a thread can read its own
// counter free of any cross-thread traffic.
inline thread_local std::uint64_t thread_count = 0;
inline thread_local std::uint64_t thread_bytes = 0;

inline void* counted_alloc(std::size_t size) noexcept {
  count.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(size, std::memory_order_relaxed);
  ++thread_count;
  thread_bytes += size;
  return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::size_t align) noexcept {
  count.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(size, std::memory_order_relaxed);
  ++thread_count;
  thread_bytes += size;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}
}  // namespace alloc_detail

/// Heap allocations (any thread) since process start.
inline std::uint64_t alloc_count() {
  return alloc_detail::count.load(std::memory_order_relaxed);
}

/// Bytes requested from the heap since process start.
inline std::uint64_t alloc_bytes() {
  return alloc_detail::bytes.load(std::memory_order_relaxed);
}

/// Heap allocations performed by the *calling thread* since it started.
inline std::uint64_t thread_alloc_count() {
  return alloc_detail::thread_count;
}

/// Scoped sample: allocations between construction and delta().
/// Process-wide — only meaningful when nothing else is allocating
/// concurrently (jobs=1). Use ThreadAllocSample inside parallel workers.
class AllocSample {
 public:
  AllocSample() : start_(alloc_count()) {}
  std::uint64_t delta() const { return alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

/// Scoped sample of the calling thread's own allocations. Exact at any
/// job count: construct and read delta() on the same thread that runs
/// the measured code.
class ThreadAllocSample {
 public:
  ThreadAllocSample() : start_(thread_alloc_count()) {}
  std::uint64_t delta() const { return thread_alloc_count() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace rip::bench

void* operator new(std::size_t size) {
  if (void* p = rip::bench::alloc_detail::counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rip::bench::alloc_detail::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rip::bench::alloc_detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = rip::bench::alloc_detail::counted_aligned_alloc(
          size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return rip::bench::alloc_detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return rip::bench::alloc_detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace rip::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  try {
    return std::stoi(value);
  } catch (...) {
    return fallback;
  }
}

inline int net_count(int fallback = 20) {
  return env_int("RIP_BENCH_NETS", fallback);
}

inline int targets_per_net(int fallback = 20) {
  return env_int("RIP_BENCH_TARGETS", fallback);
}

inline int jobs(int fallback = 1) {
  return env_int("RIP_BENCH_JOBS", fallback);
}

/// CLI-over-environment resolution used by every bench main().
inline int net_count(const CliArgs& args, int fallback = 20) {
  return args.get_int_or("nets", net_count(fallback));
}

inline int targets_per_net(const CliArgs& args, int fallback = 20) {
  return args.get_int_or("targets", targets_per_net(fallback));
}

/// Resolved worker-thread count (`--jobs`, then RIP_BENCH_JOBS, then
/// `fallback`; 0 = all hardware threads).
inline int jobs(const CliArgs& args, int fallback = 1) {
  return parallel_jobs(args, jobs(fallback));
}

/// The `--shard I/N` split of a sweep (default: unsharded).
inline ShardSpec shard(const CliArgs& args) { return shard_option(args); }

/// Scheduler chunking knobs: `--grain G` (0 = auto) and `--mode M`
/// (static | dynamic | guided, default dynamic). Any policy yields
/// bit-identical results; it only shifts load balance.
inline ChunkPolicy chunk_policy(const CliArgs& args) {
  ChunkPolicy policy;
  const int grain = args.get_int_or("grain", 0);
  RIP_REQUIRE(grain >= 0, "--grain must be >= 0 (0 = auto)");
  policy.grain = static_cast<std::size_t>(grain);
  const std::string mode = args.get_or("mode", "dynamic");
  if (mode == "static") policy.mode = ChunkPolicy::Mode::kStatic;
  else if (mode == "dynamic") policy.mode = ChunkPolicy::Mode::kDynamic;
  else if (mode == "guided") policy.mode = ChunkPolicy::Mode::kGuided;
  else throw Error("--mode must be static, dynamic, or guided");
  return policy;
}

/// Flag mistyped options instead of silently ignoring them (mirrors
/// rip_cli); call after every option has been read.
inline void warn_unused(const CliArgs& args) {
  for (const auto& name : args.unused()) {
    std::cerr << "warning: unused option --" << name << "\n";
  }
}

}  // namespace rip::bench
