// Benchmark of the streaming netlist sweep (net/netlist_io.hpp +
// eval/stream.hpp): generate an N-net binary netlist on disk, stream it
// through run_stream, and report throughput (nets/sec, ns_per_solve)
// and peak RSS per scale.
//
// The point being measured is the MEMORY contract, not the solver: the
// driver's reorder window bounds resident records, so peak RSS must be
// (nearly) independent of the file's net count. The bench runs its
// scales in ascending order inside one process and gates on the ratio
// of peak RSS after the largest scale to peak RSS after the smallest
// (ru_maxrss is process-lifetime monotone, so the ratio can only be
// pushed UP by a leak — a passing ratio is real evidence). Exit 3 when
// the ratio exceeds --rss-limit (default 1.35).
//
// To keep a million-net sweep tractable the bench generates small nets
// (2-4 short segments) with cheap stored targets — a multiple of the
// net's unbuffered Elmore delay, no DP needed at generation time. The
// DP work per net is small but real; throughput numbers are comparable
// across runs of the same scales.
//
// Knobs: --scales 10000,100000 (net counts, ascending; default matches
// the committed BENCH_stream.json — CI compares configs by name, so
// adding 1000000 locally is fine but do not commit a baseline CI does
// not run), --jobs / RIP_BENCH_JOBS worker threads, --max-pending N
// (window sizing, default 64), --rss-limit R, --dir D scratch directory
// for the generated netlists (default: the system temp dir; files are
// removed afterwards), --keep to leave them, --json PATH for the
// machine-readable summary (CI uploads it as BENCH_stream.json and
// gates it with tools/perf_gate.py).

#include <sys/resource.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "eval/stream.hpp"
#include "net/net.hpp"
#include "net/netlist_io.hpp"
#include "rc/buffered_chain.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rip;

/// Peak resident set of this process so far, in KiB (Linux ru_maxrss).
std::uint64_t peak_rss_kib() {
  struct rusage usage{};
  RIP_REQUIRE(getrusage(RUSAGE_SELF, &usage) == 0, "getrusage failed");
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

/// One small random net: 2-4 segments of 200..700 um on paper-like RC,
/// occasionally a forbidden zone. Solves in well under a millisecond,
/// which is what makes 10^5..10^6-net sweeps benchable.
net::Net small_net(Rng& rng, std::uint64_t index) {
  const int segment_count = rng.uniform_int(2, 4);
  std::vector<net::Segment> segments;
  segments.reserve(static_cast<std::size_t>(segment_count));
  double total_um = 0;
  for (int s = 0; s < segment_count; ++s) {
    net::Segment seg;
    seg.length_um = rng.uniform(200.0, 700.0);
    seg.r_ohm_per_um = rng.uniform(0.08, 0.12);
    seg.c_ff_per_um = rng.uniform(0.18, 0.25);
    seg.layer = rng.bernoulli(0.5) ? "metal4" : "metal5";
    total_um += seg.length_um;
    segments.push_back(std::move(seg));
  }
  std::vector<net::ForbiddenZone> zones;
  if (rng.bernoulli(0.2)) {
    const double start = rng.uniform(0.1, 0.6) * total_um;
    zones.push_back(net::ForbiddenZone{start, start + 0.15 * total_um});
  }
  return net::Net("n" + std::to_string(index), rng.uniform(80.0, 160.0),
                  rng.uniform(40.0, 80.0), std::move(segments),
                  std::move(zones));
}

/// Write an N-net binary netlist with stored targets = 3x the net's
/// unbuffered Elmore delay (cheap to compute, loose enough that most
/// nets are feasible with 0..2 repeaters).
std::uint64_t write_workload(const tech::Technology& tech,
                             const std::string& path, std::uint64_t nets,
                             std::uint64_t seed) {
  Rng rng(seed);
  net::NetlistWriter writer(path, net::NetlistFormat::kBinary);
  for (std::uint64_t i = 0; i < nets; ++i) {
    const net::Net n = small_net(rng, i);
    const double unbuffered =
        rc::elmore_delay_fs(n, net::RepeaterSolution{}, tech.device());
    writer.add(n, 3.0 * unbuffered);
  }
  writer.close();
  return std::filesystem::file_size(path);
}

std::string scale_name(std::uint64_t nets) {
  if (nets % 1000000 == 0) return std::to_string(nets / 1000000) + "m";
  if (nets % 1000 == 0) return std::to_string(nets / 1000) + "k";
  return std::to_string(nets);
}

struct ScaleResult {
  std::uint64_t nets = 0;
  std::uint64_t file_bytes = 0;
  double write_s = 0;
  double stream_s = 0;
  double nets_per_sec = 0;
  double ns_per_solve = 0;
  std::uint64_t peak_rss_kib = 0;  ///< process peak AFTER this scale
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv, {"keep"});
  const int jobs = bench::jobs(args, 1);
  const int max_pending = args.get_int_or("max-pending", 64);
  RIP_REQUIRE(max_pending >= 1, "--max-pending must be >= 1");
  const double rss_limit = args.get_double_or("rss-limit", 1.35);
  RIP_REQUIRE(rss_limit > 1.0, "--rss-limit must be > 1");
  const std::string json_path = args.get_or("json", "");
  const bool keep = args.has("keep");

  std::vector<std::uint64_t> scales;
  for (const auto& token : split_on(args.get_or("scales", "10000,100000"),
                                    ',')) {
    const int nets = parse_int(trim(token), "--scales");
    RIP_REQUIRE(nets >= 1, "--scales entries must be >= 1");
    scales.push_back(static_cast<std::uint64_t>(nets));
    RIP_REQUIRE(scales.size() < 2 || scales[scales.size() - 2] < scales.back(),
                "--scales must be ascending");
  }

  const std::string dir = args.get_or(
      "dir", std::filesystem::temp_directory_path().string());
  const tech::Technology tech = tech::make_tech180();
  bench::warn_unused(args);

  std::vector<ScaleResult> results;
  for (const std::uint64_t nets : scales) {
    ScaleResult r;
    r.nets = nets;
    const std::string name = scale_name(nets);
    const std::string input = dir + "/bench_stream_" + name + ".rnlb";
    const std::string output = dir + "/bench_stream_" + name + ".csv";

    WallTimer write_timer;
    r.file_bytes = write_workload(tech, input, nets, 2005);
    r.write_s = write_timer.seconds();

    eval::StreamOptions options;
    options.jobs = jobs;
    options.max_pending = static_cast<std::size_t>(max_pending);
    const auto stream = eval::run_stream(tech, input, output, options);
    RIP_REQUIRE(stream.finished && stream.rows_written == nets,
                "stream did not complete the workload");
    r.stream_s = stream.elapsed_s;
    r.nets_per_sec = static_cast<double>(nets) / stream.elapsed_s;
    r.ns_per_solve =
        stream.elapsed_s * 1e9 / static_cast<double>(nets);
    r.peak_rss_kib = peak_rss_kib();
    results.push_back(r);

    if (!keep) {
      std::filesystem::remove(input);
      std::filesystem::remove(output);
    }
  }

  Table table({"scale", "nets", "file_mb", "write_s", "stream_s",
               "nets_per_sec", "ns_per_solve", "peak_rss_mb"});
  for (const auto& r : results) {
    table.add_row({scale_name(r.nets), std::to_string(r.nets),
                   fmt_f(r.file_bytes / 1e6, 1), fmt_f(r.write_s, 2),
                   fmt_f(r.stream_s, 2), fmt_f(r.nets_per_sec, 0),
                   fmt_f(r.ns_per_solve, 0),
                   fmt_f(r.peak_rss_kib / 1024.0, 1)});
  }
  table.print(std::cout);

  // The memory gate: peak RSS after the largest scale over peak after
  // the smallest. A window-bounded stream adds essentially nothing when
  // the file grows 10x; an accidental whole-file slurp (or a per-record
  // leak) blows straight through the limit.
  const double rss_ratio =
      static_cast<double>(results.back().peak_rss_kib) /
      static_cast<double>(results.front().peak_rss_kib);
  const bool rss_bounded = rss_ratio <= rss_limit;
  std::cout << "peak RSS ratio (" << scale_name(results.back().nets) << " / "
            << scale_name(results.front().nets) << "): "
            << fmt_f(rss_ratio, 3) << " (limit " << fmt_f(rss_limit, 2)
            << ") " << (rss_bounded ? "ok" : "EXCEEDED") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    RIP_REQUIRE(out.good(), "cannot open --json output file " + json_path);
    out << "{\n  \"workload\": {\"jobs\": " << jobs
        << ", \"max_pending\": " << max_pending << ", \"seed\": 2005},\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      out << "    {\"name\": \"stream-" << scale_name(r.nets)
          << "\", \"nets\": " << r.nets
          << ", \"file_bytes\": " << r.file_bytes
          << ", \"write_s\": " << r.write_s
          << ", \"stream_s\": " << r.stream_s
          << ", \"nets_per_sec\": " << r.nets_per_sec
          << ", \"ns_per_solve\": " << r.ns_per_solve
          << ", \"peak_rss_kib\": " << r.peak_rss_kib << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"rss_ratio\": " << rss_ratio
        << ",\n  \"rss_limit\": " << rss_limit
        << ",\n  \"rss_bounded\": " << (rss_bounded ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return rss_bounded ? 0 : 3;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
