// Microbenchmark of the DP kernels: single-solve latency, label
// throughput, and steady-state allocations on a reused dp::Workspace.
//
// Two kernel families share one harness:
//   - chain configs: paper-workload nets (Section 6 population) solved
//     in kMinPower mode across (library size, granularity, candidate
//     pitch) — the axes the pseudo-polynomial DP cost grows along;
//   - tree configs: random routing trees (the Section 7 extension)
//     solved in kMinPower mode across (sink count, candidates per edge,
//     library) — the axes the junction merges grow along.
//
// Per configuration the bench reports mean us/solve, labels/second,
// prune ratio, arena peaks, and (at --jobs 1) the per-solve heap
// allocation count after warm-up, measured by the counting operator new
// in bench_env.hpp. Steady-state solves on a reused workspace must
// allocate nothing: the bench exits non-zero if any warmed-up kernel
// solve allocates (this is the regression gate for the zero-allocation
// SoA kernels, chain and tree alike). A second parity pass reruns the
// same gate at jobs=8 using per-thread allocation counters — the
// parallel counts must match the serial gate exactly (0), at any job
// count.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS / RIP_BENCH_JOBS, with
// --nets / --targets / --jobs overrides, like every other bench. Extra
// knobs: --repeats R measured passes (default 3), --json PATH writes a
// machine-readable summary (CI uploads it as BENCH_dp.json), --shard I/N
// solves only shard I of each configuration's round-robin case split.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "dp/tree_dp.hpp"
#include "dp/workspace.hpp"
#include "eval/parallel.hpp"
#include "eval/workload.hpp"
#include "net/candidates.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

struct KernelConfig {
  std::string name;
  double min_width_u;
  double granularity_u;
  int library_size;
  /// Chain configs: candidate pitch. Tree configs: 0 (not applicable).
  double pitch_um;
};

struct TreeKernelConfig {
  std::string name;
  int sink_count;
  int candidates_per_edge;
  double min_width_u;
  double granularity_u;
  int library_size;
};

struct ConfigReport {
  KernelConfig config;
  std::size_t solves = 0;
  double mean_us_per_solve = 0;
  double labels_per_sec = 0;
  double labels_per_solve = 0;
  double prune_ratio = 0;
  std::size_t labels_peak = 0;
  std::size_t arena_peak = 0;
  /// Max heap allocations in any single warmed-up kernel solve
  /// (reconstruction off); only measured at jobs == 1, else -1.
  long long steady_allocs_per_solve = -1;
  /// Same gate measured under 8-way parallelism with per-thread
  /// counters: each worker warms its own workspace on a case, then
  /// samples its own thread-local allocation counter around a repeat of
  /// that exact solve. Must equal the jobs=1 figure (0) — concurrency
  /// may not change the allocation count.
  long long steady_allocs_jobs8 = -1;
  /// Mean allocations of a full solve (reconstruction on), after
  /// warm-up; only measured at jobs == 1, else -1.
  double full_solve_allocs = -1;
};

struct CaseRef {
  const rip::net::Net* net;
  const std::vector<double>* candidates;
  double tau_t_fs;
};

struct TreeCaseRef {
  const rip::dp::BufferTree* tree;
  double tau_t_fs;
};

/// Shared measurement harness: warm-up, timed/alloc-gated serial or
/// parallel measured passes, the jobs=8 alloc-parity pass, and the
/// derived rates. `solve(i, full)` runs case i (full = reconstruction
/// on) and returns its DpStats.
template <class Solve>
void measure_config(ConfigReport& report, std::size_t case_count, int repeats,
                    int jobs, const rip::ChunkPolicy& policy, Solve&& solve,
                    bool& steady_state_clean, bool& alloc_parity_clean) {
  using rip::WallTimer;
  using rip::parallel_for_indexed;
  report.solves = case_count * static_cast<std::size_t>(repeats);

  // Warm-up pass: grow every arena of every participating workspace to
  // the configuration's peak shape. Not timed, not alloc-counted.
  parallel_for_indexed(case_count, jobs, policy,
                       [&](std::size_t i) { solve(i, false); });

  std::size_t labels_created = 0;
  std::size_t labels_pruned = 0;
  double total_s = 0;
  if (jobs == 1) {
    // Serial: per-solve latency and the steady-state allocation gate.
    long long max_allocs = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < case_count; ++i) {
        const rip::bench::AllocSample sample;
        WallTimer timer;
        const rip::dp::DpStats stats = solve(i, false);
        total_s += timer.seconds();
        const auto allocs = static_cast<long long>(sample.delta());
        max_allocs = std::max(max_allocs, allocs);
        labels_created += stats.labels_created;
        labels_pruned += stats.labels_pruned;
        report.labels_peak = std::max(report.labels_peak, stats.labels_peak);
        report.arena_peak = std::max(report.arena_peak, stats.arena_peak);
      }
    }
    report.steady_allocs_per_solve = max_allocs;
    if (max_allocs != 0) steady_state_clean = false;

    // Full solves (reconstruction on) for the informational
    // allocations-per-complete-solve figure.
    const rip::bench::AllocSample full_sample;
    for (std::size_t i = 0; i < case_count; ++i) solve(i, true);
    report.full_solve_allocs =
        static_cast<double>(full_sample.delta()) /
        static_cast<double>(std::max<std::size_t>(case_count, 1));
  } else {
    // Parallel: wall-clock throughput over the fanned-out case list;
    // per-case stats are gathered into index-addressed slots.
    std::vector<rip::dp::DpStats> stats(case_count);
    WallTimer timer;
    for (int rep = 0; rep < repeats; ++rep) {
      parallel_for_indexed(case_count, jobs, policy, [&](std::size_t i) {
        stats[i] = solve(i, false);
      });
    }
    total_s = timer.seconds();
    for (const auto& s : stats) {
      labels_created += s.labels_created * static_cast<std::size_t>(repeats);
      labels_pruned += s.labels_pruned * static_cast<std::size_t>(repeats);
      report.labels_peak = std::max(report.labels_peak, s.labels_peak);
      report.arena_peak = std::max(report.arena_peak, s.arena_peak);
    }
  }

  // Allocation-parity pass: rerun the steady-state gate under 8-way
  // parallelism. Each worker warms its own thread-local workspace on
  // case i, then samples *its own* allocation counter around a repeat
  // of that exact solve — ThreadAllocSample cannot absorb a
  // neighbour's traffic the way a process-wide sample would, so the
  // count is exact and the gate stays the strict zero of the serial
  // pass. Runs regardless of --jobs (it is its own fixed-width pass).
  {
    std::vector<long long> parity_allocs(case_count, 0);
    parallel_for_indexed(case_count, 8, policy, [&](std::size_t i) {
      solve(i, false);  // warm this worker's workspace
      const rip::bench::ThreadAllocSample sample;
      solve(i, false);
      parity_allocs[i] = static_cast<long long>(sample.delta());
    });
    report.steady_allocs_jobs8 =
        parity_allocs.empty()
            ? 0
            : *std::max_element(parity_allocs.begin(), parity_allocs.end());
    if (report.steady_allocs_jobs8 != 0) alloc_parity_clean = false;
  }

  report.mean_us_per_solve =
      report.solves == 0 ? 0
                         : total_s / static_cast<double>(report.solves) * 1e6;
  report.labels_per_sec =
      total_s == 0 ? 0 : static_cast<double>(labels_created) / total_s;
  report.labels_per_solve =
      report.solves == 0
          ? 0
          : static_cast<double>(labels_created) /
                static_cast<double>(report.solves);
  report.prune_ratio =
      labels_created == 0
          ? 0
          : static_cast<double>(labels_pruned) /
                static_cast<double>(labels_created);
}

void print_report(const ConfigReport& report) {
  using rip::fmt_f;
  std::cout << "  " << report.config.name << ": " << report.solves
            << " solves, " << fmt_f(report.mean_us_per_solve, 1)
            << " us/solve, " << fmt_f(report.labels_per_sec / 1e6, 2)
            << " Mlabels/s, " << fmt_f(report.labels_per_solve, 0)
            << " labels/solve, "
            << "prune " << fmt_f(report.prune_ratio * 100, 1) << "%, "
            << "peak " << report.labels_peak << " labels / "
            << report.arena_peak << " arena";
  if (report.steady_allocs_per_solve >= 0) {
    std::cout << ", steady allocs/solve " << report.steady_allocs_per_solve
              << ", full-solve allocs " << fmt_f(report.full_solve_allocs, 1);
  }
  std::cout << ", jobs8 allocs " << report.steady_allocs_jobs8 << "\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();

  const int nets = bench::net_count(args, 4);
  const int targets = bench::targets_per_net(args, 10);
  const int repeats = args.get_int_or("repeats", 3);
  const int jobs = bench::jobs(args);
  const ShardSpec shard = bench::shard(args);
  const ChunkPolicy policy = bench::chunk_policy(args);
  const std::string json_path = args.get_or("json", "");
  RIP_REQUIRE(repeats >= 1, "--repeats must be >= 1");

  std::cout << "=== DP kernel bench (" << nets << " nets x " << targets
            << " targets, " << repeats << " repeats, jobs " << jobs;
  if (shard.count > 1)
    std::cout << ", shard " << shard.index << "/" << shard.count;
  std::cout << ") ===\n";

  const auto workload = eval::make_paper_workload(tech, nets, 2005, {},
                                                  {10.0, 400.0, 10.0, 200.0},
                                                  jobs);

  const std::vector<KernelConfig> configs = {
      {"table1-g10-lib10-p200", 10.0, 10.0, 10, 200.0},
      {"table1-g40-lib10-p200", 10.0, 40.0, 10, 200.0},
      {"rip-coarse-g80-lib5-p200", 80.0, 80.0, 5, 200.0},
      {"dense-g10-lib20-p100", 10.0, 10.0, 20, 100.0},
  };

  std::vector<ConfigReport> reports;
  bool steady_state_clean = true;
  bool alloc_parity_clean = true;

  for (const KernelConfig& cfg : configs) {
    const dp::RepeaterLibrary library = dp::RepeaterLibrary::uniform(
        cfg.min_width_u, cfg.granularity_u, cfg.library_size);

    // Candidate lists per net (one allocation each, outside the
    // measured region) and the flat sharded case list.
    std::vector<std::vector<double>> candidates;
    candidates.reserve(workload.size());
    for (const auto& wn : workload)
      candidates.push_back(net::uniform_candidates(wn.net, cfg.pitch_um));
    std::vector<CaseRef> cases;
    const auto flat = eval::shard_case_indices(
        workload.size() * static_cast<std::size_t>(targets), shard.index,
        shard.count);
    cases.reserve(flat.size());
    for (const std::size_t k : flat) {
      const std::size_t ni = k / static_cast<std::size_t>(targets);
      const auto ti = static_cast<int>(k % static_cast<std::size_t>(targets));
      const auto t = eval::timing_targets_fs(workload[ni].tau_min_fs, targets);
      cases.push_back(CaseRef{&workload[ni].net, &candidates[ni], t[
          static_cast<std::size_t>(ti)]});
    }

    ConfigReport report;
    report.config = cfg;
    measure_config(
        report, cases.size(), repeats, jobs, policy,
        [&](std::size_t i, bool full) {
          dp::ChainDpOptions options;
          options.mode = dp::Mode::kMinPower;
          options.reconstruct_solutions = full;
          options.timing_target_fs = cases[i].tau_t_fs;
          return dp::run_chain_dp(*cases[i].net, tech.device(), library,
                                  *cases[i].candidates, options).stats;
        },
        steady_state_clean, alloc_parity_clean);
    reports.push_back(report);
    print_report(report);
  }

  // ---- Tree kernel configurations. Same harness, same gates: the SoA
  // tree kernel must be as allocation-clean as the chain kernel.
  const std::vector<TreeKernelConfig> tree_configs = {
      {"tree-s6-c3-g40-lib10", 6, 3, 40.0, 40.0, 10},
      {"tree-s10-c4-g40-lib10", 10, 4, 40.0, 40.0, 10},
      {"tree-s6-c3-g80-lib5", 6, 3, 80.0, 80.0, 5},
  };
  const double tree_driver_width_u = 120.0;

  for (const TreeKernelConfig& cfg : tree_configs) {
    const dp::RepeaterLibrary library = dp::RepeaterLibrary::uniform(
        cfg.min_width_u, cfg.granularity_u, cfg.library_size);

    // Random trees off a fixed seed (outside the measured region), metal4
    // RC like bench_tree; targets are factors of each tree's min-delay.
    dp::RandomTreeConfig tree_config;
    tree_config.sink_count = cfg.sink_count;
    tree_config.candidates_per_edge = cfg.candidates_per_edge;
    tree_config.edge_length_min_um = 1200.0;
    tree_config.edge_length_max_um = 3000.0;
    tree_config.r_ohm_per_um = tech.layer("metal4").r_ohm_per_um;
    tree_config.c_ff_per_um = tech.layer("metal4").c_ff_per_um;
    Rng rng(2005);
    std::vector<dp::BufferTree> trees;
    trees.reserve(static_cast<std::size_t>(nets));
    for (int t = 0; t < nets; ++t)
      trees.push_back(dp::random_buffer_tree(tree_config, rng));

    std::vector<double> min_delay_fs(trees.size());
    parallel_for_indexed(trees.size(), jobs, policy, [&](std::size_t i) {
      dp::ChainDpOptions delay_mode;
      delay_mode.mode = dp::Mode::kMinDelay;
      delay_mode.reconstruct_solutions = false;
      min_delay_fs[i] = dp::run_tree_dp(trees[i], tech.device(),
                                        tree_driver_width_u, library,
                                        delay_mode).delay_fs;
    });

    std::vector<TreeCaseRef> cases;
    const auto flat = eval::shard_case_indices(
        trees.size() * static_cast<std::size_t>(targets), shard.index,
        shard.count);
    cases.reserve(flat.size());
    for (const std::size_t k : flat) {
      const std::size_t ti = k / static_cast<std::size_t>(targets);
      const auto tgt = static_cast<int>(k % static_cast<std::size_t>(targets));
      const double factor =
          1.1 + 0.9 * tgt / std::max(1, targets - 1);
      cases.push_back(TreeCaseRef{&trees[ti], factor * min_delay_fs[ti]});
    }

    ConfigReport report;
    report.config = KernelConfig{cfg.name, cfg.min_width_u, cfg.granularity_u,
                                 cfg.library_size, 0.0};
    measure_config(
        report, cases.size(), repeats, jobs, policy,
        [&](std::size_t i, bool full) {
          dp::ChainDpOptions options;
          options.mode = dp::Mode::kMinPower;
          options.reconstruct_solutions = full;
          options.timing_target_fs = cases[i].tau_t_fs;
          return dp::run_tree_dp(*cases[i].tree, tech.device(),
                                 tree_driver_width_u, library, options).stats;
        },
        steady_state_clean, alloc_parity_clean);
    reports.push_back(report);
    print_report(report);
  }

  std::cout << "process heap: " << bench::alloc_count() << " allocations, "
            << fmt_f(static_cast<double>(bench::alloc_bytes()) / 1e6, 1)
            << " MB requested\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    RIP_REQUIRE(out.good(), "cannot open --json output file " + json_path);
    out << "{\n  \"workload\": {\"nets\": " << nets
        << ", \"targets_per_net\": " << targets << ", \"repeats\": "
        << repeats << ", \"jobs\": " << jobs << ", \"shard_index\": "
        << shard.index << ", \"shard_count\": " << shard.count
        << ", \"seed\": 2005},\n  \"configs\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const ConfigReport& r = reports[i];
      out << "    {\"name\": \"" << r.config.name << "\", \"library_size\": "
          << r.config.library_size << ", \"granularity_u\": "
          << r.config.granularity_u << ", \"pitch_um\": " << r.config.pitch_um
          << ", \"solves\": " << r.solves << ", \"ns_per_solve\": "
          << r.mean_us_per_solve * 1e3 << ", \"labels_per_sec\": "
          << r.labels_per_sec << ", \"labels_per_solve\": "
          << r.labels_per_solve << ", \"prune_ratio\": " << r.prune_ratio
          << ", \"labels_peak\": " << r.labels_peak << ", \"arena_peak\": "
          << r.arena_peak << ", \"steady_allocs_per_solve\": "
          << r.steady_allocs_per_solve << ", \"steady_allocs_jobs8\": "
          << r.steady_allocs_jobs8 << ", \"full_solve_allocs\": "
          << r.full_solve_allocs << "}" << (i + 1 < reports.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  bench::warn_unused(args);
  if (jobs == 1 && !steady_state_clean) {
    std::cerr << "FAIL: a warmed-up kernel solve allocated on a reused "
                 "workspace (steady_allocs_per_solve above must be 0)\n";
    return 3;
  }
  if (!alloc_parity_clean) {
    std::cerr << "FAIL: a warmed-up kernel solve allocated under jobs=8 "
                 "(steady_allocs_jobs8 must match the jobs=1 gate of 0)\n";
    return 4;
  }
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
