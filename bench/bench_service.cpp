// Overhead and behavior of the asynchronous evaluation service
// (eval/service.hpp). Four sections:
//
//   submit     raw submission throughput: tiny thunks enqueued while
//              dispatch is paused (pure queue cost), then drain wall
//              clock once resumed;
//   batches    many-small-batches: the same cases evaluated as B
//              sequential submit_batch/wait_all rounds through the
//              service vs the PR 3 blocking path (a direct
//              parallel_for_indexed over the cases, reimplemented here
//              as the reference) — the per-batch overhead the async
//              front-end adds;
//   latency    submit latency under backpressure: a bounded pending
//              queue (--max-pending, default 8) with real cases, mean
//              and max per-submit blocking time;
//   identity   service results at --jobs N vs a plain serial loop —
//              the service's determinism contract; any mismatch aborts
//              with exit code 1.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS size the workload,
// RIP_BENCH_JOBS the worker count; --nets / --targets / --jobs /
// --max-pending override.

#include <algorithm>
#include <cstddef>
#include <future>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "eval/parallel.hpp"
#include "eval/service.hpp"
#include "eval/workload.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rip;

bool same_results(const std::vector<eval::CaseResult>& a,
                  const std::vector<eval::CaseResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rip_feasible != b[i].rip_feasible ||
        a[i].dp_feasible != b[i].dp_feasible ||
        a[i].rip_width_u != b[i].rip_width_u ||
        a[i].dp_width_u != b[i].dp_width_u ||
        a[i].improvement_pct != b[i].improvement_pct) {
      return false;
    }
  }
  return true;
}

// The PR 3 blocking engine, for the overhead reference: fan the cases
// straight out over the scheduler, no service in between.
std::vector<eval::CaseResult> blocking_run(
    const tech::Technology& tech, const std::vector<eval::Case>& cases,
    int jobs) {
  std::vector<eval::CaseResult> results(cases.size());
  parallel_for_indexed(cases.size(), jobs, [&](std::size_t i) {
    const eval::Case& c = cases[i];
    results[i] = eval::run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline);
  });
  return results;
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();
  const int nets = bench::net_count(args, 4);
  const int targets = bench::targets_per_net(args, 4);
  const int jobs = bench::jobs(args);
  const int max_pending = args.get_int_or("max-pending", 8);
  RIP_REQUIRE(max_pending >= 1, "--max-pending must be >= 1");

  std::cout << "=== Async evaluation service (" << nets << " nets x "
            << targets << " targets, jobs " << jobs << ") ===\n";

  const auto workload = eval::make_paper_workload(tech, nets, 2005);
  const auto baseline =
      core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  std::vector<eval::Case> cases;
  for (const auto& wn : workload) {
    for (const double tau_t :
         eval::timing_targets_fs(wn.tau_min_fs, targets)) {
      cases.push_back(
          eval::Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  // ------------------------------------------------ submit throughput
  {
    constexpr std::size_t kSubmissions = 10000;
    eval::ServiceOptions options;
    options.jobs = jobs;
    options.start_paused = true;
    eval::EvalService service(tech, options);
    std::vector<std::future<eval::CaseResult>> futures;
    futures.reserve(kSubmissions);
    WallTimer timer;
    for (std::size_t i = 0; i < kSubmissions; ++i) {
      futures.push_back(
          service.submit_fn([] { return eval::CaseResult{}; }));
    }
    const double submit_s = timer.seconds();
    timer.reset();
    service.resume();
    for (auto& future : futures) future.get();
    const double drain_s = timer.seconds();

    std::cout << "\n--- submit: " << kSubmissions << " queued thunks ---\n";
    Table table({"phase", "wall_s", "per_item_us"});
    table.add_row({"submit (paused)", fmt_f(submit_s, 3),
                   fmt_f(submit_s / kSubmissions * 1e6, 2)});
    table.add_row({"drain", fmt_f(drain_s, 3),
                   fmt_f(drain_s / kSubmissions * 1e6, 2)});
    table.print(std::cout);
  }

  // --------------------------------------------- many small batches
  // The shape PR 3 left open: an iterative driver submitting one small
  // batch per step. Service rounds vs the blocking engine, same cases.
  std::vector<eval::CaseResult> reference;
  {
    constexpr std::size_t kRounds = 20;
    WallTimer timer;
    for (std::size_t r = 0; r < kRounds; ++r) {
      const auto results = blocking_run(tech, cases, jobs);
      if (r == 0) reference = results;
    }
    const double blocking_s = timer.seconds();

    eval::ServiceOptions options;
    options.jobs = jobs;
    eval::EvalService service(tech, options);
    timer.reset();
    for (std::size_t r = 0; r < kRounds; ++r) {
      const auto results = service.submit_batch(cases).results();
      if (!same_results(results, reference)) {
        std::cerr << "FAIL: service batch round " << r
                  << " diverged from the blocking engine\n";
        return 1;
      }
    }
    const double service_s = timer.seconds();

    std::cout << "\n--- batches: " << kRounds << " rounds x "
              << cases.size() << " cases ---\n";
    Table table({"engine", "wall_s", "ms/batch"});
    table.add_row({"blocking parallel_for (PR 3)", fmt_f(blocking_s, 2),
                   fmt_f(blocking_s / kRounds * 1e3, 2)});
    table.add_row({"async service", fmt_f(service_s, 2),
                   fmt_f(service_s / kRounds * 1e3, 2)});
    table.print(std::cout);
    std::cout << "service overhead: "
              << fmt_f((service_s - blocking_s) / kRounds * 1e3, 2)
              << " ms/batch\n";
  }

  // --------------------------------------- latency under backpressure
  {
    eval::ServiceOptions options;
    options.jobs = jobs;
    options.max_pending = static_cast<std::size_t>(max_pending);
    eval::EvalService service(tech, options);
    std::vector<std::future<eval::CaseResult>> futures;
    futures.reserve(cases.size());
    double max_submit_s = 0;
    double total_submit_s = 0;
    WallTimer wall;
    for (const eval::Case& c : cases) {
      WallTimer timer;
      futures.push_back(service.submit(c));
      const double s = timer.seconds();
      total_submit_s += s;
      max_submit_s = std::max(max_submit_s, s);
    }
    for (auto& future : futures) future.get();
    const double wall_s = wall.seconds();

    std::cout << "\n--- latency: max_pending " << max_pending << ", "
              << cases.size() << " real cases ---\n";
    Table table({"metric", "value"});
    table.add_row(
        {"mean submit ms",
         fmt_f(total_submit_s / static_cast<double>(cases.size()) * 1e3,
               3)});
    table.add_row({"max submit ms", fmt_f(max_submit_s * 1e3, 3)});
    table.add_row({"total wall s", fmt_f(wall_s, 2)});
    table.print(std::cout);
    std::cout << "(submits beyond the bound block until the dispatcher "
                 "drains the queue — that blocking IS the backpressure)\n";

    // Service-side latency histograms (ServiceStats): how long cases
    // sat queued vs how long they ran. Quantiles are upper bounds of
    // power-of-two buckets; mean/max are exact.
    const eval::ServiceStats stats = service.stats();
    std::cout << "\n--- service histograms (" << stats.cases_evaluated
              << " cases, " << stats.retries << " retries) ---\n";
    Table hist({"metric", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
                "max_ms"});
    const auto add_snapshot = [&hist](const char* name,
                                      const LatencySnapshot& s) {
      hist.add_row({name, fmt_f(s.mean_ms, 3), fmt_f(s.p50_ms, 3),
                    fmt_f(s.p90_ms, 3), fmt_f(s.p99_ms, 3),
                    fmt_f(s.max_ms, 3)});
    };
    add_snapshot("queue time", stats.queue_time);
    add_snapshot("run time", stats.run_time);
    hist.print(std::cout);
  }

  // ------------------------------------------------------- identity
  {
    std::vector<eval::CaseResult> serial;
    serial.reserve(cases.size());
    for (const eval::Case& c : cases) {
      serial.push_back(
          eval::run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline));
    }
    if (!same_results(serial, reference)) {
      std::cerr << "FAIL: service results diverged from the serial loop\n";
      return 1;
    }
    std::cout << "\nservice results at jobs=" << jobs
              << " bit-identical to the serial loop ("
              << cases.size() << " cases)\n";
  }

  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
