// Micro-benchmarks (google-benchmark) for the computational kernels:
// how the power-aware DP scales with library size and candidate count
// (the pseudo-polynomial growth the paper attacks), REFINE's width
// solve, Pareto pruning, and the Elmore evaluators.

#include <benchmark/benchmark.h>

#include "analytical/refine.hpp"
#include "analytical/width_solver.hpp"
#include "core/rip.hpp"
#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "dp/min_delay.hpp"
#include "dp/pareto.hpp"
#include "eval/workload.hpp"
#include "net/candidates.hpp"
#include "rc/buffered_chain.hpp"
#include "util/rng.hpp"

namespace {

using namespace rip;

const tech::Technology& technology() {
  static const tech::Technology tech = tech::make_tech180();
  return tech;
}

struct BenchNet {
  net::Net net;
  double tau_t_fs;
};

const BenchNet& bench_net() {
  static const BenchNet bn = [] {
    const auto wl = eval::make_paper_workload(technology(), 1, 77);
    return BenchNet{wl[0].net, 1.4 * wl[0].tau_min_fs};
  }();
  return bn;
}

/// DP runtime vs library granularity over the fixed (10u, 400u) range —
/// the exact axis of the paper's Table 2.
void BM_ChainDpLibraryGranularity(benchmark::State& state) {
  const auto& bn = bench_net();
  const double g = static_cast<double>(state.range(0));
  const auto lib = dp::RepeaterLibrary::range(10.0, 400.0, g);
  const auto cands = net::uniform_candidates(bn.net, 200.0);
  dp::ChainDpOptions opts;
  opts.mode = dp::Mode::kMinPower;
  opts.timing_target_fs = bn.tau_t_fs;
  for (auto _ : state) {
    auto r = dp::run_chain_dp(bn.net, technology().device(), lib, cands,
                              opts);
    benchmark::DoNotOptimize(r.total_width_u);
  }
  state.counters["lib_size"] = static_cast<double>(lib.size());
}
BENCHMARK(BM_ChainDpLibraryGranularity)->Arg(80)->Arg(40)->Arg(20)->Arg(10);

/// DP runtime vs candidate pitch (location granularity).
void BM_ChainDpCandidatePitch(benchmark::State& state) {
  const auto& bn = bench_net();
  const double pitch = static_cast<double>(state.range(0));
  const auto lib = dp::RepeaterLibrary::uniform(10.0, 20.0, 10);
  const auto cands = net::uniform_candidates(bn.net, pitch);
  dp::ChainDpOptions opts;
  opts.mode = dp::Mode::kMinPower;
  opts.timing_target_fs = bn.tau_t_fs;
  for (auto _ : state) {
    auto r = dp::run_chain_dp(bn.net, technology().device(), lib, cands,
                              opts);
    benchmark::DoNotOptimize(r.total_width_u);
  }
  state.counters["candidates"] = static_cast<double>(cands.size());
}
BENCHMARK(BM_ChainDpCandidatePitch)->Arg(400)->Arg(200)->Arg(100)->Arg(50);

/// Full Algorithm RIP end to end.
void BM_RipInsert(benchmark::State& state) {
  const auto& bn = bench_net();
  for (auto _ : state) {
    auto r = core::rip_insert(bn.net, technology().device(), bn.tau_t_fs);
    benchmark::DoNotOptimize(r.total_width_u);
  }
}
BENCHMARK(BM_RipInsert);

/// REFINE's analytical width solve for n repeaters.
void BM_WidthSolve(benchmark::State& state) {
  const auto& bn = bench_net();
  const int n = static_cast<int>(state.range(0));
  const double total = bn.net.total_length_um();
  std::vector<double> pos;
  for (int i = 1; i <= n; ++i) {
    double x = total * i / (n + 1);
    while (bn.net.in_forbidden_zone(x)) x += 20.0;
    pos.push_back(x);
  }
  for (auto _ : state) {
    auto ws = analytical::solve_widths(bn.net, technology().device(), pos,
                                       bn.tau_t_fs);
    benchmark::DoNotOptimize(ws.total_width_u);
  }
}
BENCHMARK(BM_WidthSolve)->Arg(2)->Arg(4)->Arg(8);

/// Pareto pruning throughput.
void BM_ParetoPrune(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  std::vector<dp::Label> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) {
    l.cap_ff = rng.uniform(1.0, 100.0);
    l.q_fs = rng.uniform(1.0, 100.0);
    l.width_u = rng.uniform(1.0, 100.0);
  }
  for (auto _ : state) {
    auto copy = labels;
    dp::prune_dominated(copy, true);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_ParetoPrune)->Arg(100)->Arg(1000)->Arg(10000);

/// Elmore evaluation of a buffered chain.
void BM_ElmoreEvaluation(benchmark::State& state) {
  const auto& bn = bench_net();
  const auto md = dp::min_delay(bn.net, technology().device(),
                                {10.0, 400.0, 10.0, 200.0});
  for (auto _ : state) {
    const double d =
        rc::elmore_delay_fs(bn.net, md.solution, technology().device());
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ElmoreEvaluation);

}  // namespace
