// Regenerates Table 2 of the paper: "Power savings and speedup tradeoff".
//
// The DP baseline uses the fixed width range (10u, 400u) with granularity
// g_DP in {40u, 30u, 20u, 10u}; as g_DP shrinks the DP closes the quality
// gap but its runtime grows pseudo-polynomially, while RIP's runtime is
// constant — the paper reports a 203x speedup at equal quality.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS / RIP_BENCH_JOBS
// shrink or parallelize the run; --nets / --targets / --jobs override.
// `--shard I/N` solves only shard I of an N-way round-robin split of
// the case space (for multi-machine runs); the merged table over all
// shards is bit-identical to the unsharded one
// (eval::merge_table2_shards).

#include <iostream>

#include "bench_env.hpp"
#include "eval/experiments.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();

  // Default reduced to 10x10 (the g_DP=10u baseline costs seconds per
  // design by construction — that is the point of the table); set
  // RIP_BENCH_NETS=20 RIP_BENCH_TARGETS=20 for the paper's full sweep.
  eval::Table2Config config;
  config.net_count = bench::net_count(args, 10);
  config.targets_per_net = bench::targets_per_net(args, 10);
  config.jobs = bench::jobs(args);
  const ShardSpec shard = bench::shard(args);

  if (shard.count > 1) {
    std::cout << "=== Table 2 shard " << shard.index << "/" << shard.count
              << " (" << config.net_count << " nets x "
              << config.targets_per_net << " targets, jobs " << config.jobs
              << ") ===\n";
    WallTimer shard_timer;
    const auto piece =
        eval::run_table2_shard(tech, config, shard.index, shard.count);
    std::cout << "solved " << piece.rip.size() << " RIP + "
              << piece.dp.size() << " DP cases in "
              << fmt_f(shard_timer.seconds(), 1)
              << " s\n(merge all shards with eval::merge_table2_shards "
                 "to reproduce the unsharded table bit for bit)\n";
    bench::warn_unused(args);
    return 0;
  }

  std::cout << "=== Table 2: power savings and speedup tradeoff ===\n";
  std::cout << "(DP width range 10u..400u at granularity g_DP; "
            << config.net_count << " nets x " << config.targets_per_net
            << " targets, jobs " << config.jobs << ")\n\n";

  WallTimer timer;
  const auto result = eval::run_table2(tech, config);
  const auto table = eval::to_table(result);
  table.print(std::cout);

  std::cout << "\nPaper reference: g=40u: 14.2% / speedup 6x; g=30u: 7.8% / "
               "11x; g=20u: 4.0% / 34x; g=10u: 0.3% / 203x\n";
  std::cout << "(absolute seconds differ from 2005 hardware; the claim is "
               "the growth of the ratio)\n";
  std::cout << "wall clock: " << fmt_f(timer.seconds(), 1) << " s\n";
  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
