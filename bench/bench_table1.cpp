// Regenerates Table 1 of the paper: "Power reduction for two-pin nets".
//
// 20 random nets (Section 6 population), each designed 20 times with
// timing targets 1.05..2.05 * tau_min. RIP is compared against the
// Lillis-style power-aware DP with a library of size 10 (min width 10u)
// at granularities g = 10u / 20u / 40u. Columns follow the paper: dMax
// and V_DP for g=10u, dMax/dMean for g=20u and g=40u, plus the Ave row.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS / RIP_BENCH_JOBS
// shrink or parallelize the run; --nets / --targets / --jobs override.
// `--shard I/N` solves only shard I of an N-way round-robin split of
// the case space (for multi-machine runs); the merged table over all
// shards is bit-identical to the unsharded one
// (eval::merge_table1_shards).

#include <iostream>

#include "bench_env.hpp"
#include "eval/experiments.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();

  eval::Table1Config config;
  config.net_count = bench::net_count(args);
  config.targets_per_net = bench::targets_per_net(args);
  config.jobs = bench::jobs(args);
  const ShardSpec shard = bench::shard(args);

  if (shard.count > 1) {
    std::cout << "=== Table 1 shard " << shard.index << "/" << shard.count
              << " (" << config.net_count << " nets x "
              << config.targets_per_net << " targets, jobs " << config.jobs
              << ") ===\n";
    WallTimer shard_timer;
    const auto piece =
        eval::run_table1_shard(tech, config, shard.index, shard.count);
    std::cout << "solved " << piece.rip.size() << " RIP + "
              << piece.dp.size() << " DP cases in "
              << fmt_f(shard_timer.seconds(), 1)
              << " s\n(merge all shards with eval::merge_table1_shards "
                 "to reproduce the unsharded table bit for bit)\n";
    bench::warn_unused(args);
    return 0;
  }

  std::cout << "=== Table 1: power reduction for two-pin nets ===\n";
  std::cout << "(RIP vs DP[14], library size 10, min width 10u; "
            << config.net_count << " nets x " << config.targets_per_net
            << " targets, jobs " << config.jobs << ")\n\n";

  WallTimer timer;
  const auto result = eval::run_table1(tech, config);
  const auto table = eval::to_table(result);
  table.print(std::cout);

  std::cout << "\nPaper reference (Ave row): dMax(g=10u) 20.33%, V_DP 6/20, "
               "dMax/dMean(g=20u) 11.8%/3.6%, dMax/dMean(g=40u) "
               "23.94%/9.53%\n";
  int rip_violations = 0;
  for (const auto& row : result.rows) rip_violations += row.rip_violations;
  std::cout << "RIP timing violations across all designs: " << rip_violations
            << " (paper: 0)\n";
  std::cout << "wall clock: " << fmt_f(timer.seconds(), 1) << " s\n";
  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
