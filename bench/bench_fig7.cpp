// Regenerates Figure 7 of the paper: power savings of RIP over the DP
// scheme (library size 10) as a function of the timing constraint, for
// width granularities (a) g=10u and (b) g=40u.
//
// The paper's zone structure should reproduce:
//   zone I   (tight targets, g=10u only): the DP violates timing ("VIOL")
//            because its library tops out at 100u;
//   zone II  (medium targets): RIP's largest savings;
//   zone III (loose targets): the schemes converge, and the DP
//            occasionally wins slightly (negative improvement).
//
// Environment: RIP_BENCH_TARGETS / RIP_BENCH_JOBS set the sweep size
// and worker threads; --targets / --jobs override. `--shard I/N`
// solves only shard I of an N-way round-robin split of the sweep;
// the merged figure over all shards is bit-identical to the unsharded
// one (eval::merge_fig7_shards).

#include <iostream>

#include "bench_env.hpp"
#include "eval/experiments.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();

  eval::Fig7Config config;
  config.points = bench::targets_per_net(args, 21);
  config.jobs = bench::jobs(args);
  const ShardSpec shard = bench::shard(args);

  if (shard.count > 1) {
    std::cout << "=== Figure 7 shard " << shard.index << "/" << shard.count
              << " (" << config.points << " sweep points, jobs "
              << config.jobs << ") ===\n";
    WallTimer shard_timer;
    const auto piece =
        eval::run_fig7_shard(tech, config, shard.index, shard.count);
    std::cout << "solved " << piece.rip.size() << " RIP + "
              << piece.dp.size() << " DP cases of net " << piece.net_name
              << " in " << fmt_f(shard_timer.seconds(), 1)
              << " s\n(merge all shards with eval::merge_fig7_shards to "
                 "reproduce the unsharded figure bit for bit)\n";
    bench::warn_unused(args);
    return 0;
  }

  std::cout << "=== Figure 7: improvement vs timing constraint ===\n";
  std::cout << "(one representative net, DP library size 10, g=10u and "
               "g=40u; "
            << config.points << " sweep points, jobs " << config.jobs
            << ")\n\n";

  WallTimer timer;
  const auto result = eval::run_fig7(tech, config);
  std::cout << "net: " << result.net_name << ", tau_min = "
            << fmt_unit(units::fs_to_ns(result.tau_min_fs), 3, "ns")
            << "\n\n";
  const auto table = eval::to_table(result);
  table.print(std::cout);

  // Zone annotation for the g=10u series.
  const auto& g10 = result.series.front();
  int zone1 = 0;
  for (const auto& p : g10.points) {
    if (!p.dp_feasible) ++zone1;
  }
  std::cout << "\nzone I (g=10u DP violations): first " << zone1
            << " of " << g10.points.size() << " points\n";
  std::cout << "Paper reference: Fig 7(a) shows zone I violations at tight "
               "targets, peak savings ~20-30% in zone II, and ~0 (sometimes "
               "negative) in zone III; Fig 7(b) stays positive and grows "
               "with looser targets.\n";
  std::cout << "wall clock: " << fmt_f(timer.seconds(), 1) << " s\n";
  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
