// Scaling and overhead of the parallel batch-evaluation engine. Four
// sections:
//
//   run_cases    the flat batch engine (eval/parallel.hpp) on the
//                Table 1 workload at jobs in {1, 2, 4, 8} (capped by
//                --max-jobs): wall clock, speedup, efficiency;
//   run_table1   the full Table 1 runner (workload generation + RIP +
//                three baseline granularities + reduction), same ladder;
//   scheduler    micro-benches of the persistent scheduler itself:
//                per-batch overhead on a many-small-batches workload
//                vs a PR 2-style spin-up-per-call pool (reimplemented
//                here as the reference), and the ChunkPolicy modes on
//                an uneven one-giant-among-tiny workload;
//   sharding     the batch split into two shards, run independently,
//                merged with eval::merge_shards, and compared to the
//                unsharded results.
//
// Every multi-job, every-chunk-mode, and merged-shard run is checked
// against the jobs=1 results — the engine's contract is bit-identical
// output at any job count and any split, so any mismatch aborts with
// exit code 1.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS size the workload
// and RIP_BENCH_JOBS caps the ladder; --nets / --targets / --max-jobs
// override. Speedup tops out at the machine's core count (a
// single-core container reports ~1x).

#include <atomic>
#include <cstddef>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_env.hpp"
#include "eval/experiments.hpp"
#include "eval/parallel.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rip;

std::vector<int> job_ladder(int max_jobs) {
  std::vector<int> ladder;
  for (int j = 1; j <= max_jobs; j *= 2) ladder.push_back(j);
  return ladder;
}

bool same_results(const std::vector<eval::CaseResult>& a,
                  const std::vector<eval::CaseResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rip_feasible != b[i].rip_feasible ||
        a[i].dp_feasible != b[i].dp_feasible ||
        a[i].rip_width_u != b[i].rip_width_u ||
        a[i].dp_width_u != b[i].dp_width_u ||
        a[i].improvement_pct != b[i].improvement_pct) {
      return false;
    }
  }
  return true;
}

bool same_results(const eval::Table1Result& a, const eval::Table1Result& b) {
  if (a.rows.size() != b.rows.size()) return false;
  auto same_row = [](const eval::Table1Row& x, const eval::Table1Row& y) {
    if (x.net_name != y.net_name || x.rip_violations != y.rip_violations ||
        x.cells.size() != y.cells.size()) {
      return false;
    }
    for (std::size_t g = 0; g < x.cells.size(); ++g) {
      if (x.cells[g].delta_max_pct != y.cells[g].delta_max_pct ||
          x.cells[g].delta_mean_pct != y.cells[g].delta_mean_pct ||
          x.cells[g].dp_violations != y.cells[g].dp_violations ||
          x.cells[g].compared != y.cells[g].compared) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    if (!same_row(a.rows[r], b.rows[r])) return false;
  }
  return same_row(a.average, b.average);
}

// The PR 2 engine, verbatim in behavior: a fresh pool of threads per
// parallel_for call, dynamic index claiming through one shared atomic.
// Kept here as the overhead reference the persistent scheduler is
// measured against.
void spin_up_parallel_for(std::size_t count, int jobs,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const auto threads = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count));
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) break;
        fn(i);
      }
    });
  }
  for (auto& worker : pool) worker.join();
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();
  const int nets = bench::net_count(args, 8);
  const int targets = bench::targets_per_net(args, 8);
  const int max_jobs_raw = args.get_int_or("max-jobs", bench::jobs(8));
  RIP_REQUIRE(max_jobs_raw >= 0,
              "--max-jobs must be >= 0 (0 = all hardware threads)");
  const int max_jobs = resolve_jobs(max_jobs_raw);

  std::cout << "=== Parallel engine scaling (Table 1 workload) ===\n";
  std::cout << "(" << nets << " nets x " << targets << " targets; "
            << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  // ------------------------------------------------ run_cases (flat batch)
  const auto workload = eval::make_paper_workload(tech, nets, 2005);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  std::vector<eval::Case> cases;
  for (const auto& wn : workload) {
    for (const double tau_t : eval::timing_targets_fs(wn.tau_min_fs,
                                                      targets)) {
      cases.push_back(
          eval::Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  std::cout << "--- run_cases: " << cases.size() << " cases ---\n";
  Table engine({"jobs", "wall_s", "speedup", "efficiency%"});
  std::vector<eval::CaseResult> reference;
  double serial_s = 0;
  for (const int jobs : job_ladder(max_jobs)) {
    eval::BatchOptions batch;
    batch.jobs = jobs;
    WallTimer timer;
    const auto results = eval::run_cases(tech, cases, batch);
    const double wall = timer.seconds();
    if (jobs == 1) {
      reference = results;
      serial_s = wall;
    } else if (!same_results(results, reference)) {
      std::cerr << "FAIL: run_cases at jobs=" << jobs
                << " diverged from the serial results\n";
      return 1;
    }
    const double speedup = wall > 0 ? serial_s / wall : 0;
    engine.add_row({std::to_string(jobs), fmt_f(wall, 2),
                    fmt_f(speedup, 2), fmt_f(speedup / jobs * 100.0, 0)});
  }
  engine.print(std::cout);

  // ------------------------------------------------ run_table1 (full runner)
  std::cout << "\n--- run_table1: full Table 1 runner ---\n";
  Table runner({"jobs", "wall_s", "speedup", "efficiency%"});
  eval::Table1Result t1_reference;
  serial_s = 0;
  for (const int jobs : job_ladder(max_jobs)) {
    eval::Table1Config config;
    config.net_count = nets;
    config.targets_per_net = targets;
    config.jobs = jobs;
    WallTimer timer;
    const auto result = eval::run_table1(tech, config);
    const double wall = timer.seconds();
    if (jobs == 1) {
      t1_reference = result;
      serial_s = wall;
    } else if (!same_results(result, t1_reference)) {
      std::cerr << "FAIL: run_table1 at jobs=" << jobs
                << " diverged from the serial results\n";
      return 1;
    }
    const double speedup = wall > 0 ? serial_s / wall : 0;
    runner.add_row({std::to_string(jobs), fmt_f(wall, 2),
                    fmt_f(speedup, 2), fmt_f(speedup / jobs * 100.0, 0)});
  }
  runner.print(std::cout);

  // --------------------------- scheduler: per-batch submission overhead
  // Many small batches is exactly where PR 2's spin-up-per-call pool
  // hurt: every parallel_for paid thread creation + join. The
  // persistent scheduler only enqueues join tasks on long-lived
  // workers, so its per-batch overhead must come out lower.
  {
    const int jobs = std::min(max_jobs, 4);
    constexpr std::size_t kBatches = 200;
    constexpr std::size_t kBatchSize = 64;
    std::vector<double> sink(kBatchSize, 0.0);
    auto tiny = [&](std::size_t i) {
      sink[i] += static_cast<double>(i) * 1e-9;
    };

    // Warm both paths once so thread-stack allocation and the
    // scheduler's lazy worker start are not billed to either side.
    spin_up_parallel_for(kBatchSize, jobs, tiny);
    parallel_for_indexed(kBatchSize, jobs, tiny);

    WallTimer timer;
    for (std::size_t b = 0; b < kBatches; ++b) {
      spin_up_parallel_for(kBatchSize, jobs, tiny);
    }
    const double spin_us = timer.seconds() / kBatches * 1e6;

    timer.reset();
    for (std::size_t b = 0; b < kBatches; ++b) {
      parallel_for_indexed(kBatchSize, jobs, tiny);
    }
    const double persistent_us = timer.seconds() / kBatches * 1e6;

    std::cout << "\n--- scheduler: per-batch overhead (" << kBatches
              << " batches x " << kBatchSize << " tiny tasks, jobs "
              << jobs << ") ---\n";
    Table overhead({"engine", "us/batch"});
    overhead.add_row({"spin-up pool (PR 2)", fmt_f(spin_us, 1)});
    overhead.add_row({"persistent scheduler", fmt_f(persistent_us, 1)});
    overhead.print(std::cout);
    if (persistent_us < spin_us) {
      std::cout << "persistent scheduler overhead is "
                << fmt_f(spin_us / persistent_us, 1)
                << "x lower per batch\n";
    } else {
      std::cout << "WARNING: persistent scheduler not faster on this "
                   "run (loaded machine?)\n";
    }
  }

  // --------------------------- scheduler: chunk modes on uneven work
  // One giant case among many tiny ones — the shape of the paper's
  // sweep (fine-grained hybrid RIP cases are 10-100x coarse chains).
  // Work stealing keeps every mode correct; timings show the balance.
  {
    const int jobs = std::min(max_jobs, 4);
    constexpr std::size_t kCount = 256;
    std::vector<double> reference_out(kCount, 0.0);
    auto uneven = [](std::size_t i, std::vector<double>& out) {
      // Index 0 costs ~kCount times a normal index.
      const std::size_t spins = (i == 0 ? 40000u * kCount : 40000u);
      double acc = 0;
      for (std::size_t s = 0; s < spins; ++s) {
        acc += static_cast<double>(s % 7) * 1e-9;
      }
      out[i] = acc + static_cast<double>(i);
    };
    for (std::size_t i = 0; i < kCount; ++i) uneven(i, reference_out);

    std::cout << "\n--- scheduler: ChunkPolicy modes (1 giant + "
              << kCount - 1 << " tiny tasks, jobs " << jobs << ") ---\n";
    Table modes({"mode", "grain", "wall_s"});
    const ChunkPolicy base = bench::chunk_policy(args);
    const std::pair<const char*, ChunkPolicy::Mode> named_modes[] = {
        {"static", ChunkPolicy::Mode::kStatic},
        {"dynamic", ChunkPolicy::Mode::kDynamic},
        {"guided", ChunkPolicy::Mode::kGuided}};
    for (const auto& [name, mode] : named_modes) {
      ChunkPolicy policy = base;
      policy.mode = mode;
      std::vector<double> out(kCount, 0.0);
      WallTimer timer;
      parallel_for_indexed(kCount, jobs, policy,
                           [&](std::size_t i) { uneven(i, out); });
      const double wall = timer.seconds();
      if (out != reference_out) {
        std::cerr << "FAIL: chunk mode " << name
                  << " diverged from the serial results\n";
        return 1;
      }
      modes.add_row({name,
                     policy.grain == 0 ? std::string("auto")
                                       : std::to_string(policy.grain),
                     fmt_f(wall, 3)});
    }
    modes.print(std::cout);
  }

  // --------------------------- sharding: split, run, merge, compare
  {
    const int shards = 2;
    std::cout << "\n--- sharding: run_cases split " << shards
              << " ways, merged vs unsharded ---\n";
    std::vector<std::vector<eval::CaseResult>> pieces;
    std::size_t solved = 0;
    WallTimer timer;
    for (int s = 0; s < shards; ++s) {
      eval::BatchOptions batch;
      batch.jobs = max_jobs;
      batch.shard_index = s;
      batch.shard_count = shards;
      pieces.push_back(eval::run_cases(tech, cases, batch));
      solved += pieces.back().size();
    }
    const auto merged = eval::merge_shards(pieces);
    if (!same_results(merged, reference)) {
      std::cerr << "FAIL: merged shard results diverged from the "
                   "unsharded run\n";
      return 1;
    }
    std::cout << "shards solved " << solved << "/" << cases.size()
              << " cases in " << fmt_f(timer.seconds(), 2)
              << " s; merged results bit-identical to unsharded\n";
  }

  bench::warn_unused(args);
  std::cout << "\nAll multi-job, chunk-mode, and merged-shard runs "
               "bit-identical to jobs=1.\n";
  std::cout << "Reading: speedup should track min(jobs, cores); the "
               "workload is embarrassingly parallel, so efficiency well "
               "below 100% at jobs <= cores points at engine overhead.\n";
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
