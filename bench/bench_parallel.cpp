// Scaling of the parallel batch-evaluation engine on the Table 1
// workload: the same sweep is solved at jobs in {1, 2, 4, 8} (capped by
// --max-jobs), reporting wall clock, speedup over jobs=1, and parallel
// efficiency. Two layers are measured:
//
//   run_cases    the flat batch engine (eval/parallel.hpp): one Case
//                per (net, target) against the g=10u baseline;
//   run_table1   the full Table 1 runner (workload generation + RIP +
//                three baseline granularities + reduction).
//
// Every multi-job run is checked against the jobs=1 results — the
// engine's contract is bit-identical output at any job count, so any
// mismatch aborts with exit code 1.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS size the workload
// and RIP_BENCH_JOBS caps the ladder; --nets / --targets / --max-jobs
// override. Speedup tops out at the machine's core count (a
// single-core container reports ~1x).

#include <iostream>
#include <thread>
#include <vector>

#include "bench_env.hpp"
#include "eval/experiments.hpp"
#include "eval/parallel.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace rip;

std::vector<int> job_ladder(int max_jobs) {
  std::vector<int> ladder;
  for (int j = 1; j <= max_jobs; j *= 2) ladder.push_back(j);
  return ladder;
}

bool same_results(const std::vector<eval::CaseResult>& a,
                  const std::vector<eval::CaseResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rip_feasible != b[i].rip_feasible ||
        a[i].dp_feasible != b[i].dp_feasible ||
        a[i].rip_width_u != b[i].rip_width_u ||
        a[i].dp_width_u != b[i].dp_width_u ||
        a[i].improvement_pct != b[i].improvement_pct) {
      return false;
    }
  }
  return true;
}

bool same_results(const eval::Table1Result& a, const eval::Table1Result& b) {
  if (a.rows.size() != b.rows.size()) return false;
  auto same_row = [](const eval::Table1Row& x, const eval::Table1Row& y) {
    if (x.net_name != y.net_name || x.rip_violations != y.rip_violations ||
        x.cells.size() != y.cells.size()) {
      return false;
    }
    for (std::size_t g = 0; g < x.cells.size(); ++g) {
      if (x.cells[g].delta_max_pct != y.cells[g].delta_max_pct ||
          x.cells[g].delta_mean_pct != y.cells[g].delta_mean_pct ||
          x.cells[g].dp_violations != y.cells[g].dp_violations ||
          x.cells[g].compared != y.cells[g].compared) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    if (!same_row(a.rows[r], b.rows[r])) return false;
  }
  return same_row(a.average, b.average);
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();
  const int nets = bench::net_count(args, 8);
  const int targets = bench::targets_per_net(args, 8);
  const int max_jobs = args.get_int_or("max-jobs", bench::jobs(8));
  RIP_REQUIRE(max_jobs >= 1, "--max-jobs must be >= 1");

  std::cout << "=== Parallel engine scaling (Table 1 workload) ===\n";
  std::cout << "(" << nets << " nets x " << targets << " targets; "
            << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  // ------------------------------------------------ run_cases (flat batch)
  const auto workload = eval::make_paper_workload(tech, nets, 2005);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 10.0, 10);
  std::vector<eval::Case> cases;
  for (const auto& wn : workload) {
    for (const double tau_t : eval::timing_targets_fs(wn.tau_min_fs,
                                                      targets)) {
      cases.push_back(
          eval::Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  std::cout << "--- run_cases: " << cases.size() << " cases ---\n";
  Table engine({"jobs", "wall_s", "speedup", "efficiency%"});
  std::vector<eval::CaseResult> reference;
  double serial_s = 0;
  for (const int jobs : job_ladder(max_jobs)) {
    eval::BatchOptions batch;
    batch.jobs = jobs;
    WallTimer timer;
    const auto results = eval::run_cases(tech, cases, batch);
    const double wall = timer.seconds();
    if (jobs == 1) {
      reference = results;
      serial_s = wall;
    } else if (!same_results(results, reference)) {
      std::cerr << "FAIL: run_cases at jobs=" << jobs
                << " diverged from the serial results\n";
      return 1;
    }
    const double speedup = wall > 0 ? serial_s / wall : 0;
    engine.add_row({std::to_string(jobs), fmt_f(wall, 2),
                    fmt_f(speedup, 2), fmt_f(speedup / jobs * 100.0, 0)});
  }
  engine.print(std::cout);

  // ------------------------------------------------ run_table1 (full runner)
  std::cout << "\n--- run_table1: full Table 1 runner ---\n";
  Table runner({"jobs", "wall_s", "speedup", "efficiency%"});
  eval::Table1Result t1_reference;
  serial_s = 0;
  for (const int jobs : job_ladder(max_jobs)) {
    eval::Table1Config config;
    config.net_count = nets;
    config.targets_per_net = targets;
    config.jobs = jobs;
    WallTimer timer;
    const auto result = eval::run_table1(tech, config);
    const double wall = timer.seconds();
    if (jobs == 1) {
      t1_reference = result;
      serial_s = wall;
    } else if (!same_results(result, t1_reference)) {
      std::cerr << "FAIL: run_table1 at jobs=" << jobs
                << " diverged from the serial results\n";
      return 1;
    }
    const double speedup = wall > 0 ? serial_s / wall : 0;
    runner.add_row({std::to_string(jobs), fmt_f(wall, 2),
                    fmt_f(speedup, 2), fmt_f(speedup / jobs * 100.0, 0)});
  }
  runner.print(std::cout);

  bench::warn_unused(args);
  std::cout << "\nAll multi-job runs bit-identical to jobs=1.\n";
  std::cout << "Reading: speedup should track min(jobs, cores); the "
               "workload is embarrassingly parallel, so efficiency well "
               "below 100% at jobs <= cores points at engine overhead.\n";
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
