// Tree extension bench (the paper's Section 7 future work): transplants
// the Table 2 quality/runtime tradeoff onto interconnect *trees*.
//
// For a population of random routing trees we compare:
//   - fine tree DP (range library 10u..400u at g): the quality reference,
//     pseudo-polynomially slow as g shrinks;
//   - coarse tree DP (the 5-width 80u library): fast, poor quality;
//   - tree-RIP-lite (coarse DP -> greedy width descent -> concise DP).
//
// Environment: RIP_BENCH_NETS (trees), RIP_BENCH_TARGETS (targets/tree),
// RIP_BENCH_JOBS (worker threads); --nets / --targets / --jobs override.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/tree_hybrid.hpp"
#include "dp/library.hpp"
#include "dp/tree_dp.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();
  const auto& device = tech.device();
  const int tree_count = bench::net_count(args, 8);
  const int targets = bench::targets_per_net(args, 5);
  const int jobs = bench::jobs(args);
  const double driver_width = 120.0;

  std::cout << "=== Tree extension: low-power buffered trees ===\n";
  std::cout << "(" << tree_count << " random trees x " << targets
            << " targets, jobs " << jobs
            << "; worst-sink Elmore delay constraint)\n\n";

  dp::RandomTreeConfig config;
  config.sink_count = 6;
  config.candidates_per_edge = 3;
  config.edge_length_min_um = 1200.0;
  config.edge_length_max_um = 3000.0;
  config.r_ohm_per_um = tech.layer("metal4").r_ohm_per_um;
  config.c_ff_per_um = tech.layer("metal4").c_ff_per_um;

  // Trees come off one shared Rng stream, so generation stays serial;
  // everything downstream is independent per (tree, target) and fans
  // out over the pool.
  Rng rng(2005);
  std::vector<dp::BufferTree> trees;
  trees.reserve(static_cast<std::size_t>(tree_count));
  for (int t = 0; t < tree_count; ++t) {
    trees.push_back(dp::random_buffer_tree(config, rng));
  }

  std::vector<double> min_delay_fs(trees.size());
  parallel_for_indexed(trees.size(), jobs, [&](std::size_t i) {
    dp::ChainDpOptions delay_mode;
    delay_mode.mode = dp::Mode::kMinDelay;
    min_delay_fs[i] = dp::run_tree_dp(
        trees[i], device, driver_width,
        dp::RepeaterLibrary::range(10.0, 400.0, 20.0), delay_mode).delay_fs;
  });

  struct CaseOut {
    bool ok = false;
    double hybrid_rel = 0, coarse_rel = 0;
    double fine_ms = 0, coarse_ms = 0, hybrid_ms = 0;
  };
  const std::size_t tgt_n = static_cast<std::size_t>(targets);
  std::vector<CaseOut> outs(trees.size() * tgt_n);
  parallel_for_indexed(outs.size(), jobs, [&](std::size_t idx) {
    const std::size_t t = idx / tgt_n;
    const int k = static_cast<int>(idx % tgt_n);
    const auto& tree = trees[t];
    const double factor = 1.1 + 0.9 * k / std::max(1, targets - 1);
    const double tau_t = factor * min_delay_fs[t];
    dp::ChainDpOptions power_mode;
    power_mode.mode = dp::Mode::kMinPower;
    power_mode.timing_target_fs = tau_t;
    CaseOut out;

    WallTimer timer;
    const auto fine = dp::run_tree_dp(
        tree, device, driver_width,
        dp::RepeaterLibrary::range(10.0, 400.0, 10.0), power_mode);
    out.fine_ms = timer.millis();

    timer.reset();
    const auto coarse = dp::run_tree_dp(
        tree, device, driver_width,
        dp::RepeaterLibrary::uniform(80.0, 80.0, 5), power_mode);
    out.coarse_ms = timer.millis();

    timer.reset();
    const auto hybrid =
        core::tree_hybrid_insert(tree, device, driver_width, tau_t);
    out.hybrid_ms = timer.millis();

    if (fine.status == dp::Status::kOptimal &&
        coarse.status == dp::Status::kOptimal &&
        hybrid.status == dp::Status::kOptimal && fine.total_width_u > 0) {
      out.ok = true;
      out.hybrid_rel = hybrid.total_width_u / fine.total_width_u;
      out.coarse_rel = coarse.total_width_u / fine.total_width_u;
    }
    outs[idx] = out;
  });

  RunningStats hybrid_rel_fine;   // hybrid width / fine-DP width
  RunningStats coarse_rel_fine;   // coarse width / fine-DP width
  RunningStats fine_ms, coarse_ms, hybrid_ms;
  int cases = 0;
  for (const auto& out : outs) {
    fine_ms.add(out.fine_ms);
    coarse_ms.add(out.coarse_ms);
    hybrid_ms.add(out.hybrid_ms);
    if (out.ok) {
      hybrid_rel_fine.add(out.hybrid_rel);
      coarse_rel_fine.add(out.coarse_rel);
      ++cases;
    }
  }

  Table table({"scheme", "width_vs_fineDP", "mean_runtime_ms"});
  table.add_row({"fine DP (g=10u)", "1.0000", fmt_f(fine_ms.mean(), 2)});
  table.add_row({"coarse DP (80u x5)", fmt_f(coarse_rel_fine.mean(), 4),
                 fmt_f(coarse_ms.mean(), 2)});
  table.add_row({"tree-RIP-lite", fmt_f(hybrid_rel_fine.mean(), 4),
                 fmt_f(hybrid_ms.mean(), 2)});
  table.print(std::cout);
  std::cout << "\ncompared cases: " << cases << "\n";
  std::cout << "Reading: the hybrid should sit near the fine DP's quality "
               "(ratio ~1) at a fraction of its runtime — the chain "
               "algorithm's Table 2 story carried to trees.\n";
  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
