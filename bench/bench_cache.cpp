// Benchmark of the sharded Pareto-frontier solve cache (eval/
// solve_cache.hpp) under warm repeat traffic.
//
// Production-shaped stream: a zipf-like mix of (net, timing target)
// queries — a few hot nets dominate, every net is re-queried at many
// targets — exactly the traffic the target-relative frontier cache is
// built for. The bench times the stream twice: cold (no cache, every
// query runs the full chain DP) and warm (shared SolveCache, every
// query after a net's first is an O(frontier) selection walk), and
// reports the speedup plus the cache's own hit/miss counters.
//
// Correctness gate: for every unique (net, target) case, at jobs 1 and
// jobs 8, the cached result must be bit-identical to the cold solve in
// every field except stats.workspace_reuses (cached stats canonicalize
// warmth to 0). The bench exits non-zero when any field differs or when
// the stream hit-rate falls below 0.9 — CI parses both from the JSON.
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS / RIP_BENCH_JOBS with
// --nets / --targets / --jobs overrides, like every other bench. Extra
// knobs: --stream F repeats of the case space in the query stream
// (default 4), --capacity / --shards cache geometry, --json PATH writes
// the machine-readable summary (CI uploads it as BENCH_cache.json).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "dp/workspace.hpp"
#include "eval/solve_cache.hpp"
#include "eval/workload.hpp"
#include "net/candidates.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

struct CaseRef {
  const rip::net::Net* net;
  const std::vector<double>* candidates;
  double tau_t_fs;
};

/// Exact equality of two solutions (positions and widths are produced by
/// identical arithmetic on identical arrays, so == is the right test).
bool same_solution(const rip::net::RepeaterSolution& a,
                   const rip::net::RepeaterSolution& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.repeaters()[i].position_um != b.repeaters()[i].position_um ||
        a.repeaters()[i].width_u != b.repeaters()[i].width_u)
      return false;
  }
  return true;
}

/// Bit-identity in every documented-deterministic field. The one
/// permitted difference is stats.workspace_reuses (warmth counter).
bool same_result(const rip::dp::ChainDpResult& a,
                 const rip::dp::ChainDpResult& b) {
  return a.status == b.status && a.delay_fs == b.delay_fs &&
         a.total_width_u == b.total_width_u &&
         a.min_delay_fs == b.min_delay_fs &&
         same_solution(a.solution, b.solution) &&
         same_solution(a.min_delay_solution, b.min_delay_solution) &&
         a.stats.labels_created == b.stats.labels_created &&
         a.stats.labels_peak == b.stats.labels_peak &&
         a.stats.positions == b.stats.positions &&
         a.stats.labels_pruned == b.stats.labels_pruned &&
         a.stats.arena_peak == b.stats.arena_peak;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();

  const int nets = bench::net_count(args, 4);
  const int targets = bench::targets_per_net(args, 8);
  const int jobs = bench::jobs(args);
  const int stream_factor = args.get_int_or("stream", 4);
  const int capacity = args.get_int_or("capacity", 1024);
  const int shards = args.get_int_or("shards", 16);
  const std::string json_path = args.get_or("json", "");
  RIP_REQUIRE(stream_factor >= 1, "--stream must be >= 1");
  RIP_REQUIRE(capacity >= 1, "--capacity must be >= 1");
  RIP_REQUIRE(shards >= 1, "--shards must be >= 1");

  std::cout << "=== solve-cache bench (" << nets << " nets x " << targets
            << " targets, stream x" << stream_factor << ", capacity "
            << capacity << ", shards " << shards << ") ===\n";

  // A dense library (40 widths at 10u pitch) so the cold DP is expensive
  // — the regime where frontier reuse pays.
  const auto workload = eval::make_paper_workload(tech, nets, 2005, {},
                                                  {10.0, 400.0, 10.0, 200.0},
                                                  jobs);
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 10.0, 40);

  std::vector<std::vector<double>> candidates;
  candidates.reserve(workload.size());
  for (const auto& wn : workload)
    candidates.push_back(net::uniform_candidates(wn.net, 200.0));

  std::vector<CaseRef> cases;
  cases.reserve(workload.size() * static_cast<std::size_t>(targets));
  for (std::size_t ni = 0; ni < workload.size(); ++ni) {
    const auto t = eval::timing_targets_fs(workload[ni].tau_min_fs, targets);
    for (const double tau : t)
      cases.push_back(CaseRef{&workload[ni].net, &candidates[ni], tau});
  }
  RIP_REQUIRE(!cases.empty(), "empty case space (nets/targets too small)");

  // Zipf-like query stream: net rank r is drawn with weight 1/(r+1)
  // (hot-head, long-tail), the target uniformly. A fixed-seed LCG keeps
  // the stream reproducible run to run.
  std::vector<double> cumulative(workload.size());
  double total_weight = 0;
  for (std::size_t r = 0; r < workload.size(); ++r) {
    total_weight += 1.0 / static_cast<double>(r + 1);
    cumulative[r] = total_weight;
  }
  std::uint64_t lcg = 0x2005cafeULL;
  const auto next_u01 = [&lcg]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(lcg >> 11) * 0x1.0p-53;
  };
  std::vector<std::size_t> stream;
  stream.reserve(cases.size() * static_cast<std::size_t>(stream_factor));
  for (std::size_t s = 0;
       s < cases.size() * static_cast<std::size_t>(stream_factor); ++s) {
    const double draw = next_u01() * total_weight;
    std::size_t ni = 0;
    while (ni + 1 < cumulative.size() && cumulative[ni] < draw) ++ni;
    const auto ti = static_cast<std::size_t>(
        next_u01() * static_cast<double>(targets));
    stream.push_back(ni * static_cast<std::size_t>(targets) +
                     std::min(ti, static_cast<std::size_t>(targets) - 1));
  }

  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinPower;
  options.reconstruct_solutions = true;

  const auto solve_stream = [&](dp::Workspace& ws,
                                dp::ChainSolveCache* cache) {
    for (const std::size_t k : stream) {
      dp::ChainDpOptions o = options;
      o.timing_target_fs = cases[k].tau_t_fs;
      dp::run_chain_dp_cached(*cases[k].net, tech.device(), library,
                              *cases[k].candidates, o, ws, cache);
    }
  };

  // Cold per-case baseline for the identity gate below. Doubles as the
  // arena warm-up for the timed cold pass (32 solves instead of
  // replaying the whole stream untimed).
  std::vector<dp::ChainDpResult> cold(cases.size());
  dp::Workspace cold_ws;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    dp::ChainDpOptions o = options;
    o.timing_target_fs = cases[i].tau_t_fs;
    cold[i] = dp::run_chain_dp(*cases[i].net, tech.device(), library,
                               *cases[i].candidates, o, cold_ws);
  }

  // Cold pass: every stream query runs the full DP.
  WallTimer cold_timer;
  solve_stream(cold_ws, nullptr);
  const double uncached_s = cold_timer.seconds();

  // Warm pass: one priming sweep fills the cache (each net misses
  // exactly once — the key excludes the target), then the timed sweep
  // is all selection walks.
  eval::SolveCache cache({static_cast<std::size_t>(capacity),
                          static_cast<std::size_t>(shards)});
  dp::Workspace warm_ws;
  solve_stream(warm_ws, &cache);
  WallTimer warm_timer;
  solve_stream(warm_ws, &cache);
  const double warm_s = warm_timer.seconds();

  const eval::SolveCacheStats stats = cache.stats();
  const double speedup = warm_s > 0 ? uncached_s / warm_s : 0;

  std::cout << "  stream: " << stream.size() << " queries over "
            << cases.size() << " cases (" << workload.size() << " nets)\n";
  std::cout << "  cold:   " << fmt_f(uncached_s * 1e3, 1) << " ms ("
            << fmt_f(uncached_s / static_cast<double>(stream.size()) * 1e6, 1)
            << " us/query)\n";
  std::cout << "  warm:   " << fmt_f(warm_s * 1e3, 3) << " ms ("
            << fmt_f(warm_s / static_cast<double>(stream.size()) * 1e6, 2)
            << " us/query), speedup " << fmt_f(speedup, 1) << "x\n";
  std::cout << "  cache:  " << stats.hits << " hits, " << stats.misses
            << " misses (hit rate " << fmt_f(stats.hit_rate() * 100, 1)
            << "%), " << stats.entries << " entries, " << stats.evictions
            << " evictions, " << stats.bytes << " bytes\n";

  // Identity gate: cached answers must be bit-identical to cold solves
  // for every unique case, serially and under 8-way parallelism (shared
  // cache, per-thread dirty workspaces).
  bool identical = true;
  for (const int check_jobs : {1, 8}) {
    eval::SolveCache check_cache({static_cast<std::size_t>(capacity),
                                  static_cast<std::size_t>(shards)});
    std::vector<char> ok(cases.size(), 1);
    parallel_for_indexed(cases.size(), check_jobs, {}, [&](std::size_t i) {
      dp::ChainDpOptions o = options;
      o.timing_target_fs = cases[i].tau_t_fs;
      const auto r = dp::run_chain_dp_cached(
          *cases[i].net, tech.device(), library, *cases[i].candidates, o,
          dp::Workspace::local(), &check_cache);
      ok[i] = same_result(r, cold[i]) ? 1 : 0;
    });
    const bool all = std::all_of(ok.begin(), ok.end(),
                                 [](char c) { return c != 0; });
    std::cout << "  identity (jobs " << check_jobs << "): "
              << (all ? "bit-identical to cold solves" : "MISMATCH") << "\n";
    if (!all) identical = false;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    RIP_REQUIRE(out.good(), "cannot open --json output file " + json_path);
    out << "{\n  \"workload\": {\"nets\": " << nets
        << ", \"targets_per_net\": " << targets << ", \"stream_factor\": "
        << stream_factor << ", \"queries\": " << stream.size()
        << ", \"seed\": 2005},\n"
        << "  \"cache\": {\"capacity\": " << capacity << ", \"shards\": "
        << cache.shard_count() << ", \"hits\": " << stats.hits
        << ", \"misses\": " << stats.misses << ", \"hit_rate\": "
        << stats.hit_rate() << ", \"entries\": " << stats.entries
        << ", \"evictions\": " << stats.evictions << ", \"bytes\": "
        << stats.bytes << "},\n"
        << "  \"uncached_s\": " << uncached_s << ",\n"
        << "  \"warm_s\": " << warm_s << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  bench::warn_unused(args);
  if (!identical) {
    std::cerr << "FAIL: cached results are not bit-identical to cold "
                 "solves\n";
    return 3;
  }
  if (stats.hit_rate() <= 0.9) {
    std::cerr << "FAIL: warm-stream hit rate " << stats.hit_rate()
              << " is not > 0.9\n";
    return 4;
  }
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
