// Ablation study of RIP's design choices (DESIGN.md §4). Each variant
// modifies one knob of Algorithm RIP; all run on the same workload and
// are scored by mean total repeater width relative to the full default
// RIP, plus mean runtime. Variants:
//
//   full            the paper's configuration (reference)
//   no-movement     REFINE solves widths but never moves repeaters
//   refine-x2       REFINE executed twice (Section 7 suggestion)
//   zone-hop        movement may hop across forbidden zones (Section 7)
//   window+-2       stage-3 location window shrunk from +-10 to +-2
//   window+-20      stage-3 location window grown to +-20
//   fine-5u         stage-3 library granularity 5u instead of 10u
//   coarse-40u      stage-1 coarse library granularity 40u instead of 80u
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS / RIP_BENCH_JOBS
// shrink or parallelize the run; --nets / --targets / --jobs override.

#include <functional>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/rip.hpp"
#include "eval/workload.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

struct Variant {
  std::string name;
  rip::core::RipOptions options;
};

std::vector<Variant> make_variants() {
  using rip::core::RipOptions;
  std::vector<Variant> variants;

  variants.push_back({"full", RipOptions{}});

  RipOptions no_movement;
  no_movement.refine.max_iterations = 0;
  variants.push_back({"no-movement", no_movement});

  RipOptions refine_x2;
  refine_x2.refine_repeats = 2;
  variants.push_back({"refine-x2", refine_x2});

  RipOptions zone_hop;
  zone_hop.refine.move.allow_zone_hop = true;
  variants.push_back({"zone-hop", zone_hop});

  RipOptions window_small;
  window_small.window_half = 2;
  variants.push_back({"window+-2", window_small});

  RipOptions window_large;
  window_large.window_half = 20;
  variants.push_back({"window+-20", window_large});

  RipOptions fine5;
  fine5.fine_granularity_u = 5.0;
  variants.push_back({"fine-5u", fine5});

  RipOptions coarse40;
  coarse40.coarse_min_width_u = 40.0;
  coarse40.coarse_granularity_u = 40.0;
  coarse40.coarse_library_size = 10;
  variants.push_back({"coarse-40u", coarse40});

  return variants;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace rip;
  const CliArgs args = CliArgs::parse(argc, argv);
  const tech::Technology tech = tech::make_tech180();
  const int nets = bench::net_count(args, 10);
  const int targets = bench::targets_per_net(args, 8);
  const int jobs = bench::jobs(args);

  std::cout << "=== Ablation: RIP design choices ===\n";
  std::cout << "(" << nets << " nets x " << targets << " targets, jobs "
            << jobs << "; width relative to the full configuration; "
            << "lower is better)\n\n";

  const auto workload = eval::make_paper_workload(tech, nets, 2005, {},
                                                  {10.0, 400.0, 10.0, 200.0},
                                                  jobs);
  const auto variants = make_variants();

  const std::size_t net_n = workload.size();
  const std::size_t tgt_n = static_cast<std::size_t>(targets);
  std::vector<std::vector<double>> taus;
  taus.reserve(net_n);
  for (const auto& wn : workload) {
    taus.push_back(eval::timing_targets_fs(wn.tau_min_fs, targets));
  }

  // Per (net, target) solves fan out over the pool; each task measures
  // its own wall clock and writes only its slot, so the aggregates are
  // identical at any job count (runtimes aside).
  struct Run {
    double width_u = -1.0;  ///< -1 = timing violated
    double millis = 0;
  };
  auto run_variant = [&](const core::RipOptions& options) {
    std::vector<Run> runs(net_n * tgt_n);
    parallel_for_indexed(runs.size(), jobs, [&](std::size_t k) {
      const std::size_t ni = k / tgt_n;
      const std::size_t ti = k % tgt_n;
      WallTimer timer;
      const auto r = core::rip_insert(workload[ni].net, tech.device(),
                                      taus[ni][ti], options);
      runs[k].millis = timer.millis();
      if (r.status == dp::Status::kOptimal) runs[k].width_u = r.total_width_u;
    });
    return runs;
  };

  // Reference pass: the full configuration.
  const auto reference = run_variant(variants.front().options);

  Table table({"variant", "rel_width", "delta_vs_full%", "violations",
               "runtime_ms"});
  for (const auto& variant : variants) {
    const auto runs = run_variant(variant.options);
    RunningStats rel;
    RunningStats runtime_ms;
    int violations = 0;
    for (std::size_t k = 0; k < runs.size(); ++k) {
      runtime_ms.add(runs[k].millis);
      if (runs[k].width_u < 0) {
        ++violations;
        continue;
      }
      if (reference[k].width_u > 0) rel.add(runs[k].width_u /
                                            reference[k].width_u);
    }
    const double mean_rel = rel.count() > 0 ? rel.mean() : 0.0;
    table.add_row({variant.name, fmt_f(mean_rel, 4),
                   fmt_f((mean_rel - 1.0) * 100.0, 2),
                   std::to_string(violations),
                   fmt_f(runtime_ms.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: no-movement isolates the value of REFINE's "
               "repeater movement; zone-hop and refine-x2 are the paper's "
               "Section 7 extensions; the window rows probe the stage-3 "
               "location set; coarse-40u probes the stage-1 library.\n";
  bench::warn_unused(args);
  return 0;
} catch (const rip::Error& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
