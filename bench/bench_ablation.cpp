// Ablation study of RIP's design choices (DESIGN.md §4). Each variant
// modifies one knob of Algorithm RIP; all run on the same workload and
// are scored by mean total repeater width relative to the full default
// RIP, plus mean runtime. Variants:
//
//   full            the paper's configuration (reference)
//   no-movement     REFINE solves widths but never moves repeaters
//   refine-x2       REFINE executed twice (Section 7 suggestion)
//   zone-hop        movement may hop across forbidden zones (Section 7)
//   window+-2       stage-3 location window shrunk from +-10 to +-2
//   window+-20      stage-3 location window grown to +-20
//   fine-5u         stage-3 library granularity 5u instead of 10u
//   coarse-40u      stage-1 coarse library granularity 40u instead of 80u
//
// Environment: RIP_BENCH_NETS / RIP_BENCH_TARGETS shrink the run.

#include <functional>
#include <iostream>
#include <vector>

#include "bench_env.hpp"
#include "core/rip.hpp"
#include "eval/workload.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct Variant {
  std::string name;
  rip::core::RipOptions options;
};

std::vector<Variant> make_variants() {
  using rip::core::RipOptions;
  std::vector<Variant> variants;

  variants.push_back({"full", RipOptions{}});

  RipOptions no_movement;
  no_movement.refine.max_iterations = 0;
  variants.push_back({"no-movement", no_movement});

  RipOptions refine_x2;
  refine_x2.refine_repeats = 2;
  variants.push_back({"refine-x2", refine_x2});

  RipOptions zone_hop;
  zone_hop.refine.move.allow_zone_hop = true;
  variants.push_back({"zone-hop", zone_hop});

  RipOptions window_small;
  window_small.window_half = 2;
  variants.push_back({"window+-2", window_small});

  RipOptions window_large;
  window_large.window_half = 20;
  variants.push_back({"window+-20", window_large});

  RipOptions fine5;
  fine5.fine_granularity_u = 5.0;
  variants.push_back({"fine-5u", fine5});

  RipOptions coarse40;
  coarse40.coarse_min_width_u = 40.0;
  coarse40.coarse_granularity_u = 40.0;
  coarse40.coarse_library_size = 10;
  variants.push_back({"coarse-40u", coarse40});

  return variants;
}

}  // namespace

int main() {
  using namespace rip;
  const tech::Technology tech = tech::make_tech180();
  const int nets = bench::net_count(10);
  const int targets = bench::targets_per_net(8);

  std::cout << "=== Ablation: RIP design choices ===\n";
  std::cout << "(" << nets << " nets x " << targets << " targets; width "
            << "relative to the full configuration; lower is better)\n\n";

  const auto workload = eval::make_paper_workload(tech, nets, 2005);
  const auto variants = make_variants();

  // Reference pass: the full configuration.
  std::vector<std::vector<double>> reference_width;
  for (const auto& wn : workload) {
    const auto taus = eval::timing_targets_fs(wn.tau_min_fs, targets);
    std::vector<double> widths;
    for (const double tau : taus) {
      const auto r = core::rip_insert(wn.net, tech.device(), tau,
                                      variants.front().options);
      widths.push_back(r.status == dp::Status::kOptimal ? r.total_width_u
                                                        : -1.0);
    }
    reference_width.push_back(std::move(widths));
  }

  Table table({"variant", "rel_width", "delta_vs_full%", "violations",
               "runtime_ms"});
  for (const auto& variant : variants) {
    RunningStats rel;
    RunningStats runtime_ms;
    int violations = 0;
    for (std::size_t ni = 0; ni < workload.size(); ++ni) {
      const auto taus =
          eval::timing_targets_fs(workload[ni].tau_min_fs, targets);
      for (std::size_t ti = 0; ti < taus.size(); ++ti) {
        WallTimer timer;
        const auto r = core::rip_insert(workload[ni].net, tech.device(),
                                        taus[ti], variant.options);
        runtime_ms.add(timer.millis());
        if (r.status != dp::Status::kOptimal) {
          ++violations;
          continue;
        }
        const double ref = reference_width[ni][ti];
        if (ref > 0) rel.add(r.total_width_u / ref);
      }
    }
    const double mean_rel = rel.count() > 0 ? rel.mean() : 0.0;
    table.add_row({variant.name, fmt_f(mean_rel, 4),
                   fmt_f((mean_rel - 1.0) * 100.0, 2),
                   std::to_string(violations),
                   fmt_f(runtime_ms.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: no-movement isolates the value of REFINE's "
               "repeater movement; zone-hop and refine-x2 are the paper's "
               "Section 7 extensions; the window rows probe the stage-3 "
               "location set; coarse-40u probes the stage-1 library.\n";
  return 0;
}
