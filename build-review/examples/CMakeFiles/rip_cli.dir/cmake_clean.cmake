file(REMOVE_RECURSE
  "../rip_cli"
  "../rip_cli.pdb"
  "CMakeFiles/rip_cli.dir/rip_cli.cpp.o"
  "CMakeFiles/rip_cli.dir/rip_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
