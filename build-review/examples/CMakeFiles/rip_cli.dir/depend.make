# Empty dependencies file for rip_cli.
# This may be replaced when dependencies are built.
