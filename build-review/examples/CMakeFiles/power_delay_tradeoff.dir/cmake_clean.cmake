file(REMOVE_RECURSE
  "../power_delay_tradeoff"
  "../power_delay_tradeoff.pdb"
  "CMakeFiles/power_delay_tradeoff.dir/power_delay_tradeoff.cpp.o"
  "CMakeFiles/power_delay_tradeoff.dir/power_delay_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_delay_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
