# Empty compiler generated dependencies file for power_delay_tradeoff.
# This may be replaced when dependencies are built.
