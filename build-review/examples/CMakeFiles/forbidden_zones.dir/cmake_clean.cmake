file(REMOVE_RECURSE
  "../forbidden_zones"
  "../forbidden_zones.pdb"
  "CMakeFiles/forbidden_zones.dir/forbidden_zones.cpp.o"
  "CMakeFiles/forbidden_zones.dir/forbidden_zones.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forbidden_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
