# Empty dependencies file for forbidden_zones.
# This may be replaced when dependencies are built.
