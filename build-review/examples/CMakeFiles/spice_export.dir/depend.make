# Empty dependencies file for spice_export.
# This may be replaced when dependencies are built.
