file(REMOVE_RECURSE
  "../spice_export"
  "../spice_export.pdb"
  "CMakeFiles/spice_export.dir/spice_export.cpp.o"
  "CMakeFiles/spice_export.dir/spice_export.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
