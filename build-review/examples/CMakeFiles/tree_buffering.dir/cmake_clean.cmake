file(REMOVE_RECURSE
  "../tree_buffering"
  "../tree_buffering.pdb"
  "CMakeFiles/tree_buffering.dir/tree_buffering.cpp.o"
  "CMakeFiles/tree_buffering.dir/tree_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
