# Empty compiler generated dependencies file for tree_buffering.
# This may be replaced when dependencies are built.
