file(REMOVE_RECURSE
  "../rip_fallback_test"
  "../rip_fallback_test.pdb"
  "CMakeFiles/rip_fallback_test.dir/rip_fallback_test.cpp.o"
  "CMakeFiles/rip_fallback_test.dir/rip_fallback_test.cpp.o.d"
  "rip_fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
