# Empty dependencies file for rip_fallback_test.
# This may be replaced when dependencies are built.
