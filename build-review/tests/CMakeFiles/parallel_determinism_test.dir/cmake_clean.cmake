file(REMOVE_RECURSE
  "../parallel_determinism_test"
  "../parallel_determinism_test.pdb"
  "CMakeFiles/parallel_determinism_test.dir/parallel_determinism_test.cpp.o"
  "CMakeFiles/parallel_determinism_test.dir/parallel_determinism_test.cpp.o.d"
  "parallel_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
