file(REMOVE_RECURSE
  "../shard_determinism_test"
  "../shard_determinism_test.pdb"
  "CMakeFiles/shard_determinism_test.dir/shard_determinism_test.cpp.o"
  "CMakeFiles/shard_determinism_test.dir/shard_determinism_test.cpp.o.d"
  "shard_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
