# Empty compiler generated dependencies file for shard_determinism_test.
# This may be replaced when dependencies are built.
