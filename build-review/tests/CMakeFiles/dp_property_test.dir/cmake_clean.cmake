file(REMOVE_RECURSE
  "../dp_property_test"
  "../dp_property_test.pdb"
  "CMakeFiles/dp_property_test.dir/dp_property_test.cpp.o"
  "CMakeFiles/dp_property_test.dir/dp_property_test.cpp.o.d"
  "dp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
