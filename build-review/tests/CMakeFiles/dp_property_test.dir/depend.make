# Empty dependencies file for dp_property_test.
# This may be replaced when dependencies are built.
