file(REMOVE_RECURSE
  "../metrics_validation_test"
  "../metrics_validation_test.pdb"
  "CMakeFiles/metrics_validation_test.dir/metrics_validation_test.cpp.o"
  "CMakeFiles/metrics_validation_test.dir/metrics_validation_test.cpp.o.d"
  "metrics_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
