file(REMOVE_RECURSE
  "../scheduler_stress_test"
  "../scheduler_stress_test.pdb"
  "CMakeFiles/scheduler_stress_test.dir/scheduler_stress_test.cpp.o"
  "CMakeFiles/scheduler_stress_test.dir/scheduler_stress_test.cpp.o.d"
  "scheduler_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
