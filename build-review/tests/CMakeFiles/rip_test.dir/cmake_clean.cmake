file(REMOVE_RECURSE
  "../rip_test"
  "../rip_test.pdb"
  "CMakeFiles/rip_test.dir/rip_test.cpp.o"
  "CMakeFiles/rip_test.dir/rip_test.cpp.o.d"
  "rip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
