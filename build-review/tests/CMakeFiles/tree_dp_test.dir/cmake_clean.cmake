file(REMOVE_RECURSE
  "../tree_dp_test"
  "../tree_dp_test.pdb"
  "CMakeFiles/tree_dp_test.dir/tree_dp_test.cpp.o"
  "CMakeFiles/tree_dp_test.dir/tree_dp_test.cpp.o.d"
  "tree_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
