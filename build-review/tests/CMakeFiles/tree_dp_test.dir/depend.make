# Empty dependencies file for tree_dp_test.
# This may be replaced when dependencies are built.
