# Empty dependencies file for rc_test.
# This may be replaced when dependencies are built.
