file(REMOVE_RECURSE
  "../rc_test"
  "../rc_test.pdb"
  "CMakeFiles/rc_test.dir/rc_test.cpp.o"
  "CMakeFiles/rc_test.dir/rc_test.cpp.o.d"
  "rc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
