file(REMOVE_RECURSE
  "../rip_property_test"
  "../rip_property_test.pdb"
  "CMakeFiles/rip_property_test.dir/rip_property_test.cpp.o"
  "CMakeFiles/rip_property_test.dir/rip_property_test.cpp.o.d"
  "rip_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
