# Empty compiler generated dependencies file for rip_property_test.
# This may be replaced when dependencies are built.
