# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/cli_test[1]_include.cmake")
include("/root/repo/build-review/tests/dp_test[1]_include.cmake")
include("/root/repo/build-review/tests/net_test[1]_include.cmake")
include("/root/repo/build-review/tests/rc_test[1]_include.cmake")
include("/root/repo/build-review/tests/refine_test[1]_include.cmake")
include("/root/repo/build-review/tests/rip_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/tech_test[1]_include.cmake")
include("/root/repo/build-review/tests/tree_dp_test[1]_include.cmake")
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/metrics_validation_test[1]_include.cmake")
include("/root/repo/build-review/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-review/tests/dp_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/rip_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/rip_fallback_test[1]_include.cmake")
include("/root/repo/build-review/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-review/tests/eval_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/golden_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_determinism_test[1]_include.cmake")
include("/root/repo/build-review/tests/scheduler_stress_test[1]_include.cmake")
include("/root/repo/build-review/tests/shard_determinism_test[1]_include.cmake")
