file(REMOVE_RECURSE
  "librip.a"
)
