# Empty dependencies file for rip.
# This may be replaced when dependencies are built.
