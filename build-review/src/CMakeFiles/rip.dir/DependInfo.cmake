
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytical/bakoglu.cpp" "src/CMakeFiles/rip.dir/analytical/bakoglu.cpp.o" "gcc" "src/CMakeFiles/rip.dir/analytical/bakoglu.cpp.o.d"
  "/root/repo/src/analytical/movement.cpp" "src/CMakeFiles/rip.dir/analytical/movement.cpp.o" "gcc" "src/CMakeFiles/rip.dir/analytical/movement.cpp.o.d"
  "/root/repo/src/analytical/refine.cpp" "src/CMakeFiles/rip.dir/analytical/refine.cpp.o" "gcc" "src/CMakeFiles/rip.dir/analytical/refine.cpp.o.d"
  "/root/repo/src/analytical/stage_quantities.cpp" "src/CMakeFiles/rip.dir/analytical/stage_quantities.cpp.o" "gcc" "src/CMakeFiles/rip.dir/analytical/stage_quantities.cpp.o.d"
  "/root/repo/src/analytical/width_solver.cpp" "src/CMakeFiles/rip.dir/analytical/width_solver.cpp.o" "gcc" "src/CMakeFiles/rip.dir/analytical/width_solver.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/CMakeFiles/rip.dir/core/baseline.cpp.o" "gcc" "src/CMakeFiles/rip.dir/core/baseline.cpp.o.d"
  "/root/repo/src/core/rip.cpp" "src/CMakeFiles/rip.dir/core/rip.cpp.o" "gcc" "src/CMakeFiles/rip.dir/core/rip.cpp.o.d"
  "/root/repo/src/core/tree_hybrid.cpp" "src/CMakeFiles/rip.dir/core/tree_hybrid.cpp.o" "gcc" "src/CMakeFiles/rip.dir/core/tree_hybrid.cpp.o.d"
  "/root/repo/src/dp/brute_force.cpp" "src/CMakeFiles/rip.dir/dp/brute_force.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/brute_force.cpp.o.d"
  "/root/repo/src/dp/chain_dp.cpp" "src/CMakeFiles/rip.dir/dp/chain_dp.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/chain_dp.cpp.o.d"
  "/root/repo/src/dp/library.cpp" "src/CMakeFiles/rip.dir/dp/library.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/library.cpp.o.d"
  "/root/repo/src/dp/min_delay.cpp" "src/CMakeFiles/rip.dir/dp/min_delay.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/min_delay.cpp.o.d"
  "/root/repo/src/dp/pareto.cpp" "src/CMakeFiles/rip.dir/dp/pareto.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/pareto.cpp.o.d"
  "/root/repo/src/dp/tree_dp.cpp" "src/CMakeFiles/rip.dir/dp/tree_dp.cpp.o" "gcc" "src/CMakeFiles/rip.dir/dp/tree_dp.cpp.o.d"
  "/root/repo/src/eval/experiments.cpp" "src/CMakeFiles/rip.dir/eval/experiments.cpp.o" "gcc" "src/CMakeFiles/rip.dir/eval/experiments.cpp.o.d"
  "/root/repo/src/eval/parallel.cpp" "src/CMakeFiles/rip.dir/eval/parallel.cpp.o" "gcc" "src/CMakeFiles/rip.dir/eval/parallel.cpp.o.d"
  "/root/repo/src/eval/workload.cpp" "src/CMakeFiles/rip.dir/eval/workload.cpp.o" "gcc" "src/CMakeFiles/rip.dir/eval/workload.cpp.o.d"
  "/root/repo/src/net/candidates.cpp" "src/CMakeFiles/rip.dir/net/candidates.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/candidates.cpp.o.d"
  "/root/repo/src/net/generator.cpp" "src/CMakeFiles/rip.dir/net/generator.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/generator.cpp.o.d"
  "/root/repo/src/net/net.cpp" "src/CMakeFiles/rip.dir/net/net.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/net.cpp.o.d"
  "/root/repo/src/net/net_io.cpp" "src/CMakeFiles/rip.dir/net/net_io.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/net_io.cpp.o.d"
  "/root/repo/src/net/solution.cpp" "src/CMakeFiles/rip.dir/net/solution.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/solution.cpp.o.d"
  "/root/repo/src/net/solution_io.cpp" "src/CMakeFiles/rip.dir/net/solution_io.cpp.o" "gcc" "src/CMakeFiles/rip.dir/net/solution_io.cpp.o.d"
  "/root/repo/src/rc/buffered_chain.cpp" "src/CMakeFiles/rip.dir/rc/buffered_chain.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/buffered_chain.cpp.o.d"
  "/root/repo/src/rc/delay_metrics.cpp" "src/CMakeFiles/rip.dir/rc/delay_metrics.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/delay_metrics.cpp.o.d"
  "/root/repo/src/rc/elmore.cpp" "src/CMakeFiles/rip.dir/rc/elmore.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/elmore.cpp.o.d"
  "/root/repo/src/rc/moments.cpp" "src/CMakeFiles/rip.dir/rc/moments.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/moments.cpp.o.d"
  "/root/repo/src/rc/pi_model.cpp" "src/CMakeFiles/rip.dir/rc/pi_model.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/pi_model.cpp.o.d"
  "/root/repo/src/rc/tree.cpp" "src/CMakeFiles/rip.dir/rc/tree.cpp.o" "gcc" "src/CMakeFiles/rip.dir/rc/tree.cpp.o.d"
  "/root/repo/src/sim/spice.cpp" "src/CMakeFiles/rip.dir/sim/spice.cpp.o" "gcc" "src/CMakeFiles/rip.dir/sim/spice.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/CMakeFiles/rip.dir/sim/transient.cpp.o" "gcc" "src/CMakeFiles/rip.dir/sim/transient.cpp.o.d"
  "/root/repo/src/tech/tech180.cpp" "src/CMakeFiles/rip.dir/tech/tech180.cpp.o" "gcc" "src/CMakeFiles/rip.dir/tech/tech180.cpp.o.d"
  "/root/repo/src/tech/tech_io.cpp" "src/CMakeFiles/rip.dir/tech/tech_io.cpp.o" "gcc" "src/CMakeFiles/rip.dir/tech/tech_io.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/CMakeFiles/rip.dir/tech/technology.cpp.o" "gcc" "src/CMakeFiles/rip.dir/tech/technology.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/rip.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rip.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/solver.cpp" "src/CMakeFiles/rip.dir/util/solver.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/solver.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rip.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/rip.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rip.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/rip.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rip.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
