// Integration proof of the backend-equivalence satellite: an explicit
// Paper2005Backend threaded through every evaluation front-end — the
// Table 1/2 and Fig. 7 runners, the blocking batch engine, and the
// async service — must reproduce the default (backend == nullptr) path
// bit for bit, at jobs {1, 8}, cached and uncached. Also pins the
// SolveContext plumbing itself: the deprecated cache knobs still reach
// the solver, and both batch engines reject an explicit workspace.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/workspace.hpp"
#include "eval/experiments.hpp"
#include "eval/parallel.hpp"
#include "eval/service.hpp"
#include "eval/solve_cache.hpp"
#include "eval/workload.hpp"
#include "tech/objective.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rip::eval {
namespace {

void expect_same_cell(const Table1Cell& a, const Table1Cell& b) {
  EXPECT_EQ(a.delta_max_pct, b.delta_max_pct);
  EXPECT_EQ(a.delta_mean_pct, b.delta_mean_pct);
  EXPECT_EQ(a.dp_violations, b.dp_violations);
  EXPECT_EQ(a.compared, b.compared);
}

void expect_same_row(const Table1Row& a, const Table1Row& b) {
  EXPECT_EQ(a.net_name, b.net_name);
  EXPECT_EQ(a.rip_violations, b.rip_violations);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    expect_same_cell(a.cells[i], b.cells[i]);
  }
}

void expect_same_case(const CaseResult& a, const CaseResult& b) {
  EXPECT_EQ(a.tau_t_fs, b.tau_t_fs);
  EXPECT_EQ(a.rip_feasible, b.rip_feasible);
  EXPECT_EQ(a.dp_feasible, b.dp_feasible);
  EXPECT_EQ(a.rip_width_u, b.rip_width_u);
  EXPECT_EQ(a.dp_width_u, b.dp_width_u);
  EXPECT_EQ(a.improvement_pct, b.improvement_pct);
}

/// A paper-shaped but test-sized sweep config pair: same workload seed,
/// one run with config.backend = nullptr, one with the explicit backend.
template <class Config>
Config small_config() {
  Config config;
  config.granularities_u = {20.0, 40.0};
  return config;
}

TEST(BackendEquivalence, Table1PaperBackendMatchesDefault) {
  const tech::Technology tech = tech::make_tech180();
  const tech::Paper2005Backend backend(tech.power(), tech.device());
  auto config = small_config<Table1Config>();
  config.net_count = 4;
  config.targets_per_net = 5;

  config.backend = nullptr;
  config.jobs = 1;
  const auto reference = run_table1(tech, config);

  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    config.backend = &backend;
    config.jobs = jobs;
    const auto with = run_table1(tech, config);
    ASSERT_EQ(with.rows.size(), reference.rows.size());
    for (std::size_t i = 0; i < with.rows.size(); ++i) {
      expect_same_row(with.rows[i], reference.rows[i]);
    }
    expect_same_row(with.average, reference.average);
  }

  // Sharded: two backend-carrying shards reassemble to the same bits.
  config.backend = &backend;
  config.jobs = 1;
  const std::vector<Table1Shard> shards = {
      run_table1_shard(tech, config, 0, 2),
      run_table1_shard(tech, config, 1, 2)};
  const auto merged = merge_table1_shards(config, shards);
  ASSERT_EQ(merged.rows.size(), reference.rows.size());
  for (std::size_t i = 0; i < merged.rows.size(); ++i) {
    expect_same_row(merged.rows[i], reference.rows[i]);
  }
}

TEST(BackendEquivalence, Table2PaperBackendMatchesDefault) {
  const tech::Technology tech = tech::make_tech180();
  const tech::Paper2005Backend backend(tech.power(), tech.device());
  auto config = small_config<Table2Config>();
  config.net_count = 3;
  config.targets_per_net = 4;

  config.backend = nullptr;
  config.jobs = 1;
  const auto reference = run_table2(tech, config);

  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    config.backend = &backend;
    config.jobs = jobs;
    const auto with = run_table2(tech, config);
    ASSERT_EQ(with.rows.size(), reference.rows.size());
    for (std::size_t i = 0; i < with.rows.size(); ++i) {
      // Quality columns are deterministic; runtime columns are wall
      // clock and excluded by design.
      EXPECT_EQ(with.rows[i].granularity_u, reference.rows[i].granularity_u);
      EXPECT_EQ(with.rows[i].delta_mean_pct, reference.rows[i].delta_mean_pct);
      EXPECT_EQ(with.rows[i].compared, reference.rows[i].compared);
    }
  }
}

TEST(BackendEquivalence, Fig7PaperBackendMatchesDefault) {
  const tech::Technology tech = tech::make_tech180();
  const tech::Paper2005Backend backend(tech.power(), tech.device());
  auto config = small_config<Fig7Config>();
  config.points = 7;

  config.backend = nullptr;
  config.jobs = 1;
  const auto reference = run_fig7(tech, config);

  for (const int jobs : {1, 8}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    config.backend = &backend;
    config.jobs = jobs;
    const auto with = run_fig7(tech, config);
    EXPECT_EQ(with.net_name, reference.net_name);
    EXPECT_EQ(with.tau_min_fs, reference.tau_min_fs);
    ASSERT_EQ(with.series.size(), reference.series.size());
    for (std::size_t s = 0; s < with.series.size(); ++s) {
      EXPECT_EQ(with.series[s].granularity_u,
                reference.series[s].granularity_u);
      ASSERT_EQ(with.series[s].points.size(),
                reference.series[s].points.size());
      for (std::size_t p = 0; p < with.series[s].points.size(); ++p) {
        EXPECT_EQ(with.series[s].points[p].tau_t_fs,
                  reference.series[s].points[p].tau_t_fs);
        EXPECT_EQ(with.series[s].points[p].dp_feasible,
                  reference.series[s].points[p].dp_feasible);
        EXPECT_EQ(with.series[s].points[p].improvement_pct,
                  reference.series[s].points[p].improvement_pct);
      }
    }
  }
}

/// The batch cases the engine-level tests share: 2 nets x 3 targets.
std::vector<Case> small_batch(const std::vector<WorkloadNet>& workload) {
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 40.0, 5);
  std::vector<Case> cases;
  for (const auto& wn : workload) {
    for (const double f : {1.2, 1.5, 1.9}) {
      cases.push_back(
          Case{&wn.net, f * wn.tau_min_fs, core::RipOptions{}, baseline});
    }
  }
  return cases;
}

TEST(BackendEquivalence, RunCasesBackendCachedAsyncAllBitIdentical) {
  const tech::Technology tech = tech::make_tech180();
  const auto workload = make_paper_workload(tech, 2);
  const auto cases = small_batch(workload);
  const tech::Paper2005Backend backend(tech.power(), tech.device());

  // Reference: the serial default path (no context at all).
  const auto reference = run_cases(tech, cases);

  // Blocking engine, explicit backend, jobs x cache grid.
  for (const int jobs : {1, 8}) {
    for (const bool cached : {false, true}) {
      SCOPED_TRACE("jobs " + std::to_string(jobs) + (cached ? " cached" : ""));
      SolveCache cache({64, 4});
      BatchOptions options;
      options.jobs = jobs;
      options.context.backend = &backend;
      if (cached) options.context.cache = &cache;
      const auto got = run_cases(tech, cases, options);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("case " + std::to_string(i));
        expect_same_case(got[i], reference[i]);
      }
      if (cached) {
        EXPECT_GT(cache.stats().hits, 0u);
      }
    }
  }

  // Async service with the backend in its context: same bits again.
  ServiceOptions service_options;
  service_options.jobs = 8;
  service_options.context.backend = &backend;
  EvalService service(tech, service_options);
  const auto async = service.submit_batch(cases).results();
  ASSERT_EQ(async.size(), reference.size());
  for (std::size_t i = 0; i < async.size(); ++i) {
    SCOPED_TRACE("async case " + std::to_string(i));
    expect_same_case(async[i], reference[i]);
  }
}

TEST(SolveContextPlumbing, ContextCacheReachesBothBatchEngines) {
  const tech::Technology tech = tech::make_tech180();
  const auto workload = make_paper_workload(tech, 1);
  const auto cases = small_batch(workload);

  // BatchOptions::context.cache attaches the cache to run_cases.
  SolveCache batch_cache({64, 4});
  BatchOptions options;
  options.context.cache = &batch_cache;
  const auto via_batch = run_cases(tech, cases, options);
  EXPECT_GT(batch_cache.stats().hits, 0u);

  // ServiceOptions::context.cache likewise, visible through stats().
  SolveCache service_cache({64, 4});
  ServiceOptions service_options;
  service_options.context.cache = &service_cache;
  EvalService service(tech, service_options);
  EXPECT_TRUE(service.stats().cache_attached);
  service.submit_batch(cases).wait_all();
  EXPECT_GT(service.stats().cache.hits, 0u);

  // Cached answers match the context-overload run_case exactly.
  SolveContext context;
  context.cache = &batch_cache;
  const auto direct = run_case(*cases[0].net, tech, cases[0].tau_t_fs,
                               cases[0].rip, cases[0].baseline, context);
  expect_same_case(direct, via_batch[0]);
}

TEST(SolveContextPlumbing, BatchEnginesRejectAnExplicitWorkspace) {
  const tech::Technology tech = tech::make_tech180();
  const auto workload = make_paper_workload(tech, 1);
  const auto cases = small_batch(workload);
  dp::Workspace ws;

  BatchOptions options;
  options.context.workspace = &ws;
  EXPECT_THROW(run_cases(tech, cases, options), Error);

  ServiceOptions service_options;
  service_options.context.workspace = &ws;
  EXPECT_THROW(EvalService(tech, service_options), Error);

  // run_case itself accepts one — that is the single-threaded contract.
  SolveContext context;
  context.workspace = &ws;
  const auto direct = run_case(*cases[0].net, tech, cases[0].tau_t_fs,
                               cases[0].rip, cases[0].baseline, context);
  const auto reference = run_case(*cases[0].net, tech, cases[0].tau_t_fs,
                                  cases[0].rip, cases[0].baseline);
  expect_same_case(direct, reference);
}

}  // namespace
}  // namespace rip::eval
