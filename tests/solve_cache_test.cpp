// Tests for the sharded Pareto-frontier solve cache (eval/solve_cache)
// and the target-relative DP substrate under it (dp/chain_dp frontier
// solves and the incremental suffix resume): LRU/eviction mechanics,
// the bit-identity property of cached answers versus cold solves under
// every (target, job count, eviction pressure) combination, checkpoint
// resume against upstream edits, and the counters EvalService exposes.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "dp/min_delay.hpp"
#include "dp/workspace.hpp"
#include "eval/parallel.hpp"
#include "eval/service.hpp"
#include "eval/solve_cache.hpp"
#include "eval/workload.hpp"
#include "net/candidates.hpp"
#include "tech/objective.hpp"
#include "tech/technology.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip::eval {
namespace {

/// Minimal one-label frontier with a recognizable marker, for the cache
/// unit tests (no DP involved).
dp::ChainFrontierSolve tiny_solve(double marker) {
  dp::ChainFrontierSolve s;
  s.q_fs = {marker};
  s.width_u = {0.0};
  s.count = {0};
  s.node = {-1};
  return s;
}

/// Exact equality of every deterministic field of two DP results. The
/// one permitted difference is stats.workspace_reuses (warmth counter).
void expect_same_result(const dp::ChainDpResult& a,
                        const dp::ChainDpResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.delay_fs, b.delay_fs);
  EXPECT_EQ(a.total_width_u, b.total_width_u);
  EXPECT_EQ(a.min_delay_fs, b.min_delay_fs);
  ASSERT_EQ(a.solution.size(), b.solution.size());
  for (std::size_t i = 0; i < a.solution.size(); ++i) {
    EXPECT_EQ(a.solution.repeaters()[i].position_um,
              b.solution.repeaters()[i].position_um);
    EXPECT_EQ(a.solution.repeaters()[i].width_u,
              b.solution.repeaters()[i].width_u);
  }
  ASSERT_EQ(a.min_delay_solution.size(), b.min_delay_solution.size());
  for (std::size_t i = 0; i < a.min_delay_solution.size(); ++i) {
    EXPECT_EQ(a.min_delay_solution.repeaters()[i].position_um,
              b.min_delay_solution.repeaters()[i].position_um);
    EXPECT_EQ(a.min_delay_solution.repeaters()[i].width_u,
              b.min_delay_solution.repeaters()[i].width_u);
  }
  EXPECT_EQ(a.stats.labels_created, b.stats.labels_created);
  EXPECT_EQ(a.stats.labels_peak, b.stats.labels_peak);
  EXPECT_EQ(a.stats.positions, b.stats.positions);
  EXPECT_EQ(a.stats.labels_pruned, b.stats.labels_pruned);
  EXPECT_EQ(a.stats.arena_peak, b.stats.arena_peak);
}

TEST(SolveCacheUnit, MissThenHitRoundTrip) {
  SolveCache cache({4, 2});
  EXPECT_EQ(cache.lookup(7), nullptr);
  const auto stored = cache.insert(7, tiny_solve(42.0));
  ASSERT_NE(stored, nullptr);
  const auto hit = cache.lookup(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), stored.get());
  EXPECT_EQ(hit->q_fs[0], 42.0);

  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.lookups(), 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(SolveCacheUnit, LruEvictsTheColdestEntry) {
  // One shard so the LRU order is global and fully observable.
  SolveCache cache({2, 1});
  cache.insert(1, tiny_solve(1.0));
  cache.insert(2, tiny_solve(2.0));
  // Touch key 1: key 2 becomes the eviction victim.
  ASSERT_NE(cache.lookup(1), nullptr);
  cache.insert(3, tiny_solve(3.0));
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(SolveCacheUnit, CapacityOneCollapsesToAGlobalLru) {
  // shard_count is clamped to capacity, so capacity 1 is a strict
  // single-entry LRU no matter how many shards were requested.
  SolveCache cache({1, 16});
  EXPECT_EQ(cache.shard_count(), 1u);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.insert(10, tiny_solve(1.0));
  cache.insert(11, tiny_solve(2.0));
  EXPECT_EQ(cache.lookup(10), nullptr);
  EXPECT_NE(cache.lookup(11), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(SolveCacheUnit, RacingInsertKeepsTheResidentEntry) {
  SolveCache cache({4, 1});
  const auto first = cache.insert(5, tiny_solve(1.0));
  // A second insert under the same key (two threads raced the same
  // miss) must return the already-resident entry, not replace it —
  // equal keys mean bit-identical frontiers, and every caller must
  // select from the same arrays.
  const auto second = cache.insert(5, tiny_solve(2.0));
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(second->q_fs[0], 1.0);
  const auto s = cache.stats();
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SolveCacheUnit, ClearDropsEntriesAndKeepsCounters) {
  SolveCache cache({4, 2});
  cache.insert(1, tiny_solve(1.0));
  ASSERT_NE(cache.lookup(1), nullptr);
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.hits, 1u);  // history survives clear()
  EXPECT_EQ(cache.lookup(1), nullptr);
}

TEST(SolveCacheKey, TargetAndToleranceDoNotEnterTheKey) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::single_segment_net();
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 5);
  const auto candidates = net::uniform_candidates(n, 200.0);

  dp::ChainDpOptions a;
  a.timing_target_fs = 1e6;
  dp::ChainDpOptions b;
  b.timing_target_fs = 2e6;
  b.slack_tolerance_fs = 1.0;
  b.reconstruct_solutions = false;
  EXPECT_EQ(dp::chain_solve_key(n, tech.device(), library, candidates, a),
            dp::chain_solve_key(n, tech.device(), library, candidates, b));

  // Anything the sweep actually reads must change the key.
  dp::ChainDpOptions c = a;
  c.mode = dp::Mode::kMinDelay;
  EXPECT_NE(dp::chain_solve_key(n, tech.device(), library, candidates, a),
            dp::chain_solve_key(n, tech.device(), library, candidates, c));
  const dp::RepeaterLibrary other =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 6);
  EXPECT_NE(dp::chain_solve_key(n, tech.device(), library, candidates, a),
            dp::chain_solve_key(n, tech.device(), other, candidates, a));
}

// The backend-identity satellite, negative direction: one net solved
// under two different objective backends must land in two different
// cache entries — a shared SolveCache can serve a multi-backend sweep
// without ever answering one backend's query with another's frontier.
TEST(SolveCacheKey, BackendsNeverShareAnEntry) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::paper_net(5);
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 10);
  const auto candidates = net::uniform_candidates(n, 200.0);
  const tech::Paper2005Backend paper(tech.power(), tech.device());
  const tech::ActivityPowerBackend activity(tech.power(), tech.device());

  // A tight target, so the optimum genuinely inserts repeaters (at a
  // loose one every objective returns the zero-cost bare wire and the
  // results could not be told apart).
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  dp::ChainDpOptions none;
  none.timing_target_fs = 1.2 * md.tau_min_fs;
  dp::ChainDpOptions with_paper = none;
  with_paper.backend = &paper;
  dp::ChainDpOptions with_activity = none;
  with_activity.backend = &activity;

  // Three pairwise-distinct keys: even the identity-cost Paper2005
  // backend is keyed apart from the historic no-backend path.
  const auto k_none =
      dp::chain_solve_key(n, tech.device(), library, candidates, none);
  const auto k_paper =
      dp::chain_solve_key(n, tech.device(), library, candidates, with_paper);
  const auto k_activity = dp::chain_solve_key(n, tech.device(), library,
                                              candidates, with_activity);
  EXPECT_NE(k_none, k_paper);
  EXPECT_NE(k_none, k_activity);
  EXPECT_NE(k_paper, k_activity);

  // Same net, two backends, one shared cache: two entries, no
  // cross-backend hits, and per-backend results that genuinely differ
  // (the activity objective pays a per-repeater cost the paper's does
  // not, so its optimum uses fewer, wider repeaters or a higher cost).
  SolveCache cache({64, 4});
  const auto a = dp::run_chain_dp_cached(n, tech.device(), library, candidates,
                                         with_paper, dp::Workspace::local(),
                                         &cache);
  const auto b = dp::run_chain_dp_cached(n, tech.device(), library, candidates,
                                         with_activity, dp::Workspace::local(),
                                         &cache);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
  ASSERT_EQ(a.status, dp::Status::kOptimal);
  ASSERT_EQ(b.status, dp::Status::kOptimal);
  EXPECT_NE(a.objective_cost, b.objective_cost);

  // Re-asking each backend's own query hits its own entry and answers
  // bit-identically.
  const auto a2 = dp::run_chain_dp_cached(n, tech.device(), library, candidates,
                                          with_paper, dp::Workspace::local(),
                                          &cache);
  const auto b2 = dp::run_chain_dp_cached(n, tech.device(), library, candidates,
                                          with_activity, dp::Workspace::local(),
                                          &cache);
  EXPECT_EQ(cache.stats().hits, 2u);
  expect_same_result(a2, a);
  expect_same_result(b2, b);
}

// The satellite property: cached answers are bit-identical to cold
// solves for every target, at jobs 1 and 8, on dirty (reused)
// workspaces, and under capacity-1 eviction pressure.
TEST(SolveCacheProperty, CachedBitIdenticalToColdEverywhere) {
  const tech::Technology tech = tech::make_tech180();
  const std::vector<net::Net> nets = {test::single_segment_net(),
                                      test::two_segment_net_with_zone(),
                                      test::paper_net(3)};
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 6);

  struct Query {
    const net::Net* net;
    const std::vector<double>* candidates;
    double target_fs;
  };
  std::vector<std::vector<double>> candidates;
  candidates.reserve(nets.size());
  for (const auto& n : nets)
    candidates.push_back(net::uniform_candidates(n, 200.0));

  // Interleave nets target-major, so under a capacity-1 cache every
  // consecutive query evicts the previous net's frontier.
  std::vector<Query> queries;
  constexpr int kTargets = 8;
  std::vector<std::vector<double>> targets(nets.size());
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    const auto md =
        dp::min_delay(nets[ni], tech.device(), {10.0, 400.0, 10.0, 200.0});
    targets[ni] = timing_targets_fs(md.tau_min_fs, kTargets);
  }
  for (int t = 0; t < kTargets; ++t) {
    for (std::size_t ni = 0; ni < nets.size(); ++ni) {
      queries.push_back(Query{&nets[ni], &candidates[ni],
                              targets[ni][static_cast<std::size_t>(t)]});
    }
  }

  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinPower;

  // Cold reference, solved serially on one deliberately dirty
  // workspace (reused across all nets and targets).
  std::vector<dp::ChainDpResult> cold(queries.size());
  dp::Workspace dirty;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    dp::ChainDpOptions o = options;
    o.timing_target_fs = queries[i].target_fs;
    cold[i] = dp::run_chain_dp(*queries[i].net, tech.device(), library,
                               *queries[i].candidates, o, dirty);
  }

  for (const int jobs : {1, 8}) {
    for (const std::size_t capacity : {std::size_t{1}, std::size_t{64}}) {
      SolveCache cache({capacity, 4});
      std::vector<dp::ChainDpResult> cached(queries.size());
      parallel_for_indexed(queries.size(), jobs, [&](std::size_t i) {
        dp::ChainDpOptions o = options;
        o.timing_target_fs = queries[i].target_fs;
        cached[i] = dp::run_chain_dp_cached(
            *queries[i].net, tech.device(), library, *queries[i].candidates,
            o, dp::Workspace::local(), &cache);
      });
      for (std::size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("jobs " + std::to_string(jobs) + " capacity " +
                     std::to_string(capacity) + " query " +
                     std::to_string(i));
        expect_same_result(cached[i], cold[i]);
      }
      const auto s = cache.stats();
      EXPECT_EQ(s.lookups(), queries.size());
      if (capacity == 1 && jobs == 1) {
        // The interleaved order thrashes a one-entry cache: every query
        // after the first round evicts, and hits are impossible.
        EXPECT_GT(s.evictions, 0u);
        EXPECT_EQ(s.hits, 0u);
      }
      if (capacity == 64 && jobs == 1) {
        // Every net's frontier is solved once, then every later target
        // is a hit.
        EXPECT_EQ(s.misses, nets.size());
        EXPECT_EQ(s.hits, queries.size() - nets.size());
      }
    }
  }
}

TEST(SolveCacheProperty, MinDelayModeIsCachedIdentically) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::two_segment_net_with_zone();
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 6);
  const auto candidates = net::uniform_candidates(n, 200.0);
  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinDelay;

  dp::Workspace ws;
  const auto cold = dp::run_chain_dp(n, tech.device(), library, candidates,
                                     options, ws);
  SolveCache cache({8, 2});
  const auto miss = dp::run_chain_dp_cached(n, tech.device(), library,
                                            candidates, options, ws, &cache);
  const auto hit = dp::run_chain_dp_cached(n, tech.device(), library,
                                           candidates, options, ws, &cache);
  expect_same_result(miss, cold);
  expect_same_result(hit, cold);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SolveCacheProperty, RunCasesBitIdenticalWithCacheAttached) {
  const tech::Technology tech = tech::make_tech180();
  const auto workload = make_paper_workload(tech, 2);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 40.0, 5);
  std::vector<Case> cases;
  for (const auto& wn : workload) {
    for (const double f : {1.2, 1.5, 1.9}) {
      cases.push_back(Case{&wn.net, f * wn.tau_min_fs, core::RipOptions{},
                           baseline});
    }
  }
  const auto reference = run_cases(tech, cases);

  for (const int jobs : {1, 8}) {
    SolveCache cache({64, 4});
    BatchOptions options;
    options.jobs = jobs;
    options.context.cache = &cache;
    const auto cached = run_cases(tech, cases, options);
    ASSERT_EQ(cached.size(), reference.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
      SCOPED_TRACE("jobs " + std::to_string(jobs) + " case " +
                   std::to_string(i));
      EXPECT_EQ(cached[i].tau_t_fs, reference[i].tau_t_fs);
      EXPECT_EQ(cached[i].rip_feasible, reference[i].rip_feasible);
      EXPECT_EQ(cached[i].dp_feasible, reference[i].dp_feasible);
      EXPECT_EQ(cached[i].rip_width_u, reference[i].rip_width_u);
      EXPECT_EQ(cached[i].dp_width_u, reference[i].dp_width_u);
      EXPECT_EQ(cached[i].improvement_pct, reference[i].improvement_pct);
    }
    EXPECT_GT(cache.stats().hits, 0u);
  }
}

TEST(ServiceStats, CountersAreVisibleThroughEvalService) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::paper_net(7);
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 40.0, 5);

  SolveCache cache({64, 4});
  ServiceOptions options;
  options.jobs = 2;
  options.context.cache = &cache;
  std::vector<Case> cases;
  for (const double f : {1.2, 1.4, 1.6, 1.8}) {
    cases.push_back(
        Case{&n, f * md.tau_min_fs, core::RipOptions{}, baseline});
  }
  {
    EvalService service(tech, options);
    service.submit_batch(cases).wait_all();
    const auto s = service.stats();
    EXPECT_EQ(s.cases_evaluated, cases.size());
    EXPECT_TRUE(s.cache_attached);
    EXPECT_GT(s.cache.lookups(), 0u);
    EXPECT_GT(s.cache.hits, 0u);  // 4 targets on one net must share solves
    EXPECT_EQ(s.cache.hits + s.cache.misses, s.cache.lookups());
  }
  // Without a cache the snapshot says so and reports zeroed counters.
  EvalService plain(tech, ServiceOptions{});
  const auto s = plain.stats();
  EXPECT_EQ(s.cases_evaluated, 0u);
  EXPECT_FALSE(s.cache_attached);
  EXPECT_EQ(s.cache.lookups(), 0u);
}

TEST(ChainResume, ResumeAfterUpstreamEditMatchesTheFullSolve) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::single_segment_net();
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 5);

  // Original candidate grid, checkpointed after the receiver-side 4.
  const std::vector<double> candidates = {100, 200, 300, 400, 500,
                                          600, 700, 800, 900};
  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinPower;
  options.timing_target_fs = 1e9;  // selection knob; prefix ignores it

  dp::Workspace ws;
  const auto prefix = dp::chain_dp_prefix(n, tech.device(), library,
                                          candidates, options, 4, ws);
  EXPECT_EQ(prefix.total_candidates, candidates.size());
  EXPECT_EQ(prefix.suffix_candidates, 4u);

  // Upstream edit: a different (and longer) prefix grid; the trailing 4
  // candidates and all geometry downstream of 600 um are unchanged.
  const std::vector<double> edited = {50,  150, 250, 350, 450, 550,
                                      600, 700, 800, 900};
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  for (const double f : {1.1, 1.5, 2.0}) {
    dp::ChainDpOptions o = options;
    o.timing_target_fs = f * md.tau_min_fs;
    dp::Workspace resume_ws;
    const auto resumed = dp::chain_dp_resume(prefix, n, tech.device(),
                                             library, edited, o, resume_ws);
    dp::Workspace full_ws;
    const auto full =
        dp::run_chain_dp(n, tech.device(), library, edited, o, full_ws);
    SCOPED_TRACE("target factor " + std::to_string(f));
    expect_same_result(resumed, full);
  }
}

TEST(ChainResume, SuffixZeroCheckpointAnswersADifferentNet) {
  // A suffix-0 checkpoint bakes in nothing but the seed label, so it
  // may resume against any net with the same receiver width, device,
  // library, and mode.
  const tech::Technology tech = tech::make_tech180();
  const net::Net a = test::single_segment_net();
  const net::Net b = test::two_segment_net_with_zone();
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 5);
  const auto a_candidates = net::uniform_candidates(a, 200.0);
  const auto b_candidates = net::uniform_candidates(b, 200.0);

  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinPower;
  options.timing_target_fs =
      2.0 * dp::min_delay(b, tech.device(), {10.0, 400.0, 10.0, 200.0})
                .tau_min_fs;

  dp::Workspace ws;
  const auto prefix = dp::chain_dp_prefix(a, tech.device(), library,
                                          a_candidates, options, 0, ws);
  const auto resumed = dp::chain_dp_resume(prefix, b, tech.device(), library,
                                           b_candidates, options, ws);
  const auto full =
      dp::run_chain_dp(b, tech.device(), library, b_candidates, options, ws);
  expect_same_result(resumed, full);
}

TEST(ChainResume, StaleOrMismatchedPrefixIsRejected) {
  const tech::Technology tech = tech::make_tech180();
  const net::Net n = test::single_segment_net();
  const dp::RepeaterLibrary library =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 5);
  const std::vector<double> candidates = {100, 200, 300, 400, 500,
                                          600, 700, 800, 900};
  dp::ChainDpOptions options;
  options.mode = dp::Mode::kMinPower;
  options.timing_target_fs = 1e9;

  dp::Workspace ws;
  const auto prefix = dp::chain_dp_prefix(n, tech.device(), library,
                                          candidates, options, 4, ws);

  // A moved suffix candidate changes the fingerprint.
  std::vector<double> moved = candidates;
  moved[7] = 810;
  EXPECT_THROW(dp::chain_dp_resume(prefix, n, tech.device(), library, moved,
                                   options, ws),
               Error);
  // A different library does too.
  const dp::RepeaterLibrary other =
      dp::RepeaterLibrary::uniform(10.0, 40.0, 6);
  EXPECT_THROW(dp::chain_dp_resume(prefix, n, tech.device(), other,
                                   candidates, options, ws),
               Error);
  // A different mode does too.
  dp::ChainDpOptions delay_mode = options;
  delay_mode.mode = dp::Mode::kMinDelay;
  EXPECT_THROW(dp::chain_dp_resume(prefix, n, tech.device(), library,
                                   candidates, delay_mode, ws),
               Error);
  // Fewer candidates than the checkpoint's suffix cannot resume.
  const std::vector<double> short_list = {600, 700, 800};
  EXPECT_THROW(dp::chain_dp_resume(prefix, n, tech.device(), library,
                                   short_list, options, ws),
               Error);
}

}  // namespace
}  // namespace rip::eval
