// Tests for the tree DP extension (power-aware van Ginneken on trees)
// and the tree hybrid.

#include <gtest/gtest.h>

#include "core/tree_hybrid.hpp"
#include "dp/library.hpp"
#include "dp/tree_dp.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rip::dp {
namespace {

/// A 2-sink Y tree: root -- stem -- {left sink, right sink}, with a
/// candidate at every internal node.
BufferTree y_tree() {
  BufferTree tree;
  BufferTreeNode stem;
  stem.parent = 0;
  stem.edge_r_ohm = 100.0;
  stem.edge_c_ff = 200.0;
  stem.candidate = true;
  const auto stem_id = tree.add_node(stem);

  BufferTreeNode left;
  left.parent = stem_id;
  left.edge_r_ohm = 50.0;
  left.edge_c_ff = 100.0;
  left.is_sink = true;
  left.sink_cap_ff = 10.0;
  left.candidate = true;
  tree.add_node(left);

  BufferTreeNode right;
  right.parent = stem_id;
  right.edge_r_ohm = 80.0;
  right.edge_c_ff = 150.0;
  right.is_sink = true;
  right.sink_cap_ff = 20.0;
  right.candidate = true;
  tree.add_node(right);
  return tree;
}

ChainDpOptions power_options(double tau_t) {
  ChainDpOptions o;
  o.mode = Mode::kMinPower;
  o.timing_target_fs = tau_t;
  return o;
}

// ---------------------------------------------------------- construction

TEST(BufferTree, TracksSinksAndChildren) {
  const BufferTree tree = y_tree();
  EXPECT_EQ(tree.nodes().size(), 4u);
  EXPECT_EQ(tree.sink_count(), 2u);
  EXPECT_EQ(tree.children()[0].size(), 1u);
  EXPECT_EQ(tree.children()[1].size(), 2u);
}

TEST(BufferTree, RejectsBadNodes) {
  BufferTree tree;
  BufferTreeNode orphan;
  orphan.parent = 42;
  EXPECT_THROW(tree.add_node(orphan), Error);
  BufferTreeNode negative;
  negative.parent = 0;
  negative.edge_r_ohm = -1.0;
  EXPECT_THROW(tree.add_node(negative), Error);
}

// ------------------------------------------------------------- evaluator

TEST(TreeDelay, PathTreeMatchesHandComputation) {
  // Root -> single edge -> sink: same as a one-stage net.
  // Driver 10u (Rs/w=100): tau = RsCp + 100*(C_edge + sink)
  //                               + R_edge*(C_edge/2 + sink)
  BufferTree tree;
  BufferTreeNode sink;
  sink.parent = 0;
  sink.edge_r_ohm = 100.0;
  sink.edge_c_ff = 200.0;
  sink.is_sink = true;
  sink.sink_cap_ff = 10.0;
  tree.add_node(sink);
  const auto device = test::simple_device();
  TreeSolution empty;
  empty.width_u.assign(2, 0.0);
  const double d = tree_delay_fs(tree, device, 10.0, empty);
  EXPECT_DOUBLE_EQ(d, 1000.0 + 100.0 * 210.0 + 100.0 * (100.0 + 10.0));
}

TEST(TreeDelay, WorstSinkGovernsDelay) {
  const BufferTree tree = y_tree();
  const auto device = test::simple_device();
  TreeSolution empty;
  empty.width_u.assign(4, 0.0);
  const double d = tree_delay_fs(tree, device, 10.0, empty);
  // Right branch (80 Ohm, 150+20 fF) is slower than left.
  // Shared: RsCp + (Rs/w)*Ctotal + stem edge r*(C_below + c_edge/2).
  const double c_total = 200.0 + 100.0 + 10.0 + 150.0 + 20.0;  // 480
  const double c_below_stem = 100.0 + 10.0 + 150.0 + 20.0;     // 280
  const double shared =
      1000.0 + 100.0 * c_total + 100.0 * (c_below_stem + 100.0);
  const double right = 80.0 * (75.0 + 20.0);
  EXPECT_DOUBLE_EQ(d, shared + right);
}

TEST(TreeDelay, RejectsBufferAtNonCandidate) {
  BufferTree tree;
  BufferTreeNode sink;
  sink.parent = 0;
  sink.edge_r_ohm = 10.0;
  sink.edge_c_ff = 10.0;
  sink.is_sink = true;
  sink.sink_cap_ff = 5.0;
  sink.candidate = false;
  tree.add_node(sink);
  const auto device = test::simple_device();
  TreeSolution s;
  s.width_u = {0.0, 8.0};
  EXPECT_THROW(tree_delay_fs(tree, device, 10.0, s), Error);
}

// ------------------------------------------------------------------- DP

TEST(TreeDp, LooseTargetNeedsNoBuffers) {
  const BufferTree tree = y_tree();
  const auto device = test::simple_device();
  TreeSolution empty;
  empty.width_u.assign(4, 0.0);
  const double unbuffered = tree_delay_fs(tree, device, 10.0, empty);
  const auto lib = RepeaterLibrary::uniform(4.0, 4.0, 4);
  const auto r = run_tree_dp(tree, device, 10.0, lib,
                             power_options(unbuffered * 1.5));
  EXPECT_EQ(r.status, Status::kOptimal);
  EXPECT_DOUBLE_EQ(r.total_width_u, 0.0);
}

TEST(TreeDp, SolutionDelayVerifiedByEvaluator) {
  const BufferTree tree = y_tree();
  const auto device = test::simple_device();
  TreeSolution empty;
  empty.width_u.assign(4, 0.0);
  const double unbuffered = tree_delay_fs(tree, device, 10.0, empty);
  const auto lib = RepeaterLibrary::uniform(4.0, 4.0, 6);
  const double tau_t = unbuffered * 0.8;
  const auto r = run_tree_dp(tree, device, 10.0, lib, power_options(tau_t));
  ASSERT_EQ(r.status, Status::kOptimal);
  const double check = tree_delay_fs(tree, device, 10.0, r.solution);
  EXPECT_NEAR(r.delay_fs, check, 1e-6 * check);
  EXPECT_LE(check, tau_t + 1e-6);
  EXPECT_NEAR(r.total_width_u, r.solution.total_width_u(), 1e-12);
}

TEST(TreeDp, InfeasibleTargetDetected) {
  const BufferTree tree = y_tree();
  const auto device = test::simple_device();
  const auto lib = RepeaterLibrary::uniform(4.0, 4.0, 3);
  const auto r = run_tree_dp(tree, device, 10.0, lib, power_options(10.0));
  EXPECT_EQ(r.status, Status::kInfeasible);
  EXPECT_GT(r.min_delay_fs, 10.0);
}

/// Exhaustive reference for tiny trees: enumerate all width assignments
/// over candidate nodes.
double brute_force_tree_min_width(const BufferTree& tree,
                                  const tech::RepeaterDevice& device,
                                  double driver_width_u,
                                  const RepeaterLibrary& lib,
                                  double tau_t, bool& feasible) {
  std::vector<std::size_t> cand_nodes;
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    if (tree.nodes()[i].candidate) cand_nodes.push_back(i);
  }
  const std::size_t choices = lib.size() + 1;
  std::vector<std::size_t> digits(cand_nodes.size(), 0);
  double best = 1e300;
  feasible = false;
  while (true) {
    TreeSolution s;
    s.width_u.assign(tree.nodes().size(), 0.0);
    for (std::size_t i = 0; i < digits.size(); ++i) {
      if (digits[i] > 0)
        s.width_u[cand_nodes[i]] = lib.widths_u()[digits[i] - 1];
    }
    if (tree_delay_fs(tree, device, driver_width_u, s) <= tau_t) {
      feasible = true;
      best = std::min(best, s.total_width_u());
    }
    std::size_t i = 0;
    for (; i < digits.size(); ++i) {
      if (++digits[i] < choices) break;
      digits[i] = 0;
    }
    if (i == digits.size()) break;
  }
  return best;
}

class TreeDpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(TreeDpVsBruteForce, MatchesExhaustiveOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const auto device = test::simple_device();
  RandomTreeConfig config;
  config.sink_count = 3;
  config.candidates_per_edge = 2;
  config.edge_length_min_um = 300.0;
  config.edge_length_max_um = 800.0;
  const BufferTree tree = random_buffer_tree(config, rng);

  const RepeaterLibrary lib({rng.uniform(3.0, 10.0), rng.uniform(15.0, 40.0)});
  TreeSolution empty;
  empty.width_u.assign(tree.nodes().size(), 0.0);
  const double unbuffered = tree_delay_fs(tree, device, 10.0, empty);

  for (const double factor : {0.5, 0.7, 0.9, 1.2}) {
    const double tau_t = unbuffered * factor;
    bool bf_feasible = false;
    const double bf_width = brute_force_tree_min_width(
        tree, device, 10.0, lib, tau_t, bf_feasible);
    const auto dp = run_tree_dp(tree, device, 10.0, lib,
                                power_options(tau_t));
    ASSERT_EQ(dp.status == Status::kOptimal, bf_feasible)
        << "factor " << factor;
    if (bf_feasible) {
      EXPECT_NEAR(dp.total_width_u, bf_width, 1e-9) << "factor " << factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDpVsBruteForce, ::testing::Range(1, 7));

// ------------------------------------------------------------ min delay

TEST(TreeDp, MinDelayModeBeatsUnbufferedOnDeepTrees) {
  Rng rng(404);
  RandomTreeConfig config;
  config.sink_count = 5;
  config.candidates_per_edge = 3;
  config.edge_length_min_um = 1500.0;
  config.edge_length_max_um = 3000.0;
  const BufferTree tree = random_buffer_tree(config, rng);
  const auto device = test::simple_device();
  TreeSolution empty;
  empty.width_u.assign(tree.nodes().size(), 0.0);
  const double unbuffered = tree_delay_fs(tree, device, 10.0, empty);
  ChainDpOptions opts;
  opts.mode = Mode::kMinDelay;
  const auto lib = RepeaterLibrary::uniform(10.0, 10.0, 5);
  const auto r = run_tree_dp(tree, device, 10.0, lib, opts);
  EXPECT_LT(r.delay_fs, unbuffered);
  EXPECT_GT(r.solution.repeater_count(), 0u);
}

// ---------------------------------------------------------- tree hybrid

TEST(TreeHybrid, FeasibleAndNeverWorseThanCoarse) {
  Rng rng(777);
  RandomTreeConfig config;
  config.sink_count = 6;
  config.candidates_per_edge = 3;
  config.edge_length_min_um = 1000.0;
  config.edge_length_max_um = 2500.0;
  const BufferTree tree = random_buffer_tree(config, rng);
  const auto device = tech::make_tech180().device();

  ChainDpOptions delay_opts;
  delay_opts.mode = Mode::kMinDelay;
  const auto md = run_tree_dp(tree, device, 100.0,
                              RepeaterLibrary::range(10, 400, 40),
                              delay_opts);
  const double tau_t = md.delay_fs * 1.4;

  const auto hybrid = core::tree_hybrid_insert(tree, device, 100.0, tau_t);
  ASSERT_EQ(hybrid.status, Status::kOptimal);
  EXPECT_LE(hybrid.total_width_u, hybrid.coarse.total_width_u + 1e-9);
  const double check = tree_delay_fs(tree, device, 100.0, hybrid.solution);
  EXPECT_LE(check, tau_t + 1e-6);
  EXPECT_GE(hybrid.greedy_moves, 0);
}

TEST(TreeHybrid, InfeasibleTargetReported) {
  const BufferTree tree = y_tree();
  const auto device = test::simple_device();
  const auto r = core::tree_hybrid_insert(tree, device, 10.0, 1.0);
  EXPECT_EQ(r.status, Status::kInfeasible);
}

// ------------------------------------------------------------ generator

TEST(RandomTree, AllLeavesAreSinks) {
  Rng rng(5);
  RandomTreeConfig config;
  config.sink_count = 7;
  const BufferTree tree = random_buffer_tree(config, rng);
  EXPECT_EQ(tree.sink_count(), 7u);
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    if (tree.children()[i].empty() && i != 0) {
      EXPECT_TRUE(tree.nodes()[i].is_sink) << "leaf " << i;
    }
  }
}

}  // namespace
}  // namespace rip::dp
