// Tests for the analytical module: the KKT width solver (Eqs. 5 and 8),
// the one-sided location derivatives (Eqs. 17/18 — validated against
// numeric differentiation of the independent Elmore evaluator), the
// movement policy, and the full REFINE loop (Fig. 5).

#include <cmath>

#include <gtest/gtest.h>

#include "analytical/bakoglu.hpp"
#include "analytical/movement.hpp"
#include "analytical/refine.hpp"
#include "analytical/stage_quantities.hpp"
#include "analytical/width_solver.hpp"
#include "rc/buffered_chain.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rip::analytical {
namespace {

net::Net long_uniform_net() {
  return net::NetBuilder("long")
      .driver(20.0)
      .receiver(10.0)
      .segment(10000.0, 0.1, 0.2)
      .build();
}

double delay_at(const net::Net& n, const tech::RepeaterDevice& device,
                const std::vector<double>& pos,
                const std::vector<double>& w) {
  std::vector<net::Repeater> reps;
  for (std::size_t i = 0; i < pos.size(); ++i)
    reps.push_back(net::Repeater{pos[i], w[i]});
  return rc::elmore_delay_fs(n, net::RepeaterSolution(std::move(reps)),
                             device);
}

// ------------------------------------------------------ stage quantities

TEST(StageQuantities, MatchesNetIntegrals) {
  const auto n = test::two_segment_net_with_zone();
  const auto q = stage_quantities(n, {800.0, 2000.0});
  ASSERT_EQ(q.stage_r_ohm.size(), 3u);
  EXPECT_DOUBLE_EQ(q.stage_r_ohm[0], n.resistance_between_ohm(0, 800));
  EXPECT_DOUBLE_EQ(q.stage_r_ohm[1], n.resistance_between_ohm(800, 2000));
  EXPECT_DOUBLE_EQ(q.stage_c_ff[2], n.capacitance_between_ff(2000, 3000));
}

TEST(StageQuantities, RejectsBadPositions) {
  const auto n = test::single_segment_net();
  EXPECT_THROW(stage_quantities(n, {600.0, 400.0}), Error);
  EXPECT_THROW(stage_quantities(n, {0.0}), Error);
  EXPECT_THROW(stage_quantities(n, {1000.0}), Error);
}

// ----------------------------------------------------------- width solve

TEST(WidthSolver, MeetsTargetExactly) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const std::vector<double> pos{2500.0, 5000.0, 7500.0};
  const double unbuffered = delay_at(n, device, {}, {});
  const double tau_t = unbuffered * 0.35;
  const auto ws = solve_widths(n, device, pos, tau_t);
  ASSERT_TRUE(ws.converged);
  EXPECT_NEAR(ws.delay_fs, tau_t, 1e-6 * tau_t);
  // Independent evaluation agrees.
  EXPECT_NEAR(delay_at(n, device, pos, ws.widths_u), tau_t, 1e-6 * tau_t);
  for (const double w : ws.widths_u) EXPECT_GT(w, 0.0);
}

TEST(WidthSolver, KktResidualsVanishAtSolution) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const std::vector<double> pos{2500.0, 5000.0, 7500.0};
  const double tau_t = delay_at(n, device, {}, {}) * 0.35;
  const auto ws = solve_widths(n, device, pos, tau_t);
  ASSERT_TRUE(ws.converged);
  const auto res = kkt_residuals(n, device, pos, ws.widths_u, ws.lambda);
  for (const double r : res) EXPECT_NEAR(r, 0.0, 1e-5);
}

TEST(WidthSolver, LambdaIsPositiveAndDelaySensitivityUniform) {
  // At the optimum every d tau / d w_i equals -1/lambda (Eq. 12): check
  // by numeric differentiation.
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const std::vector<double> pos{3000.0, 6000.0};
  // The continuous minimum with this placement is ~0.42x unbuffered.
  const double tau_t = delay_at(n, device, {}, {}) * 0.5;
  const auto ws = solve_widths(n, device, pos, tau_t);
  ASSERT_TRUE(ws.converged);
  EXPECT_GT(ws.lambda, 0.0);
  for (std::size_t i = 0; i < ws.widths_u.size(); ++i) {
    auto w_hi = ws.widths_u;
    auto w_lo = ws.widths_u;
    const double h = ws.widths_u[i] * 1e-6;
    w_hi[i] += h;
    w_lo[i] -= h;
    const double dtau = (delay_at(n, device, pos, w_hi) -
                         delay_at(n, device, pos, w_lo)) /
                        (2.0 * h);
    EXPECT_NEAR(dtau, -1.0 / ws.lambda, std::abs(dtau) * 1e-3)
        << "repeater " << i;
  }
}

TEST(WidthSolver, TighterTargetsNeedMoreTotalWidth) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const std::vector<double> pos{2500.0, 5000.0, 7500.0};
  const double unbuffered = delay_at(n, device, {}, {});
  double prev = 0.0;
  // The continuous minimum for this placement is ~0.345x unbuffered.
  for (const double factor : {0.6, 0.5, 0.42, 0.36}) {
    const auto ws = solve_widths(n, device, pos, unbuffered * factor);
    ASSERT_TRUE(ws.converged) << factor;
    EXPECT_GT(ws.total_width_u, prev);
    prev = ws.total_width_u;
  }
}

TEST(WidthSolver, InfeasibleTargetFlagged) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const auto ws = solve_widths(n, device, {5000.0}, 100.0);
  EXPECT_FALSE(ws.converged);
}

TEST(WidthSolver, EmptyPlacementReportsUnbufferedDelay) {
  const auto device = test::simple_device();
  const auto n = test::single_segment_net();
  const auto loose = solve_widths(n, device, {}, 50000.0);
  EXPECT_TRUE(loose.converged);
  EXPECT_TRUE(loose.widths_u.empty());
  const auto tight = solve_widths(n, device, {}, 1000.0);
  EXPECT_FALSE(tight.converged);
}

TEST(WidthSolver, WarmStartAgreesWithColdStart) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const std::vector<double> pos{2500.0, 5000.0, 7500.0};
  const double tau_t = delay_at(n, device, {}, {}) * 0.4;
  const auto cold = solve_widths(n, device, pos, tau_t);
  WidthSolveOptions warm_opts;
  warm_opts.lambda_hint = cold.lambda;
  const auto warm = solve_widths(n, device, pos, tau_t, warm_opts);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_NEAR(warm.total_width_u, cold.total_width_u,
              1e-6 * cold.total_width_u);
}

// ------------------------------------------------------------ derivatives

class DerivativeSeeds : public ::testing::TestWithParam<int> {};

TEST_P(DerivativeSeeds, AnalyticMatchesNumericDifferentiation) {
  // The heart of REFINE: Eqs. (17)/(18) must equal the numeric
  // derivative of the *independent* Elmore evaluator with respect to a
  // repeater position (away from segment boundaries, where left and
  // right derivatives coincide).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2027);
  net::NetBuilder builder("d");
  builder.driver(rng.uniform(10.0, 30.0)).receiver(rng.uniform(4.0, 12.0));
  const int segs = rng.uniform_int(2, 4);
  for (int s = 0; s < segs; ++s) {
    builder.segment(rng.uniform(1500.0, 3000.0), rng.uniform(0.05, 0.2),
                    rng.uniform(0.1, 0.3));
  }
  const net::Net n = builder.build();
  const auto device = test::simple_device();

  const double total = n.total_length_um();
  std::vector<double> pos{total * 0.27 + 11.0, total * 0.55 + 7.0,
                          total * 0.81 + 3.0};
  std::vector<double> widths{rng.uniform(5.0, 40.0),
                             rng.uniform(5.0, 40.0),
                             rng.uniform(5.0, 40.0)};

  const auto derivs = location_derivatives(n, device, pos, widths);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double h = 0.5;  // um; stays inside the same segment
    auto p_hi = pos;
    auto p_lo = pos;
    p_hi[i] += h;
    p_lo[i] -= h;
    const double numeric = (delay_at(n, device, p_hi, widths) -
                            delay_at(n, device, p_lo, widths)) /
                           (2.0 * h);
    // Interior of a segment: left == right == numeric derivative.
    EXPECT_NEAR(derivs[i].right, numeric,
                std::max(1e-6, std::abs(numeric) * 1e-6))
        << "repeater " << i;
    EXPECT_NEAR(derivs[i].left, numeric,
                std::max(1e-6, std::abs(numeric) * 1e-6))
        << "repeater " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivativeSeeds, ::testing::Range(1, 9));

TEST(Derivatives, OneSidedValuesDifferAtLayerBoundary) {
  // Repeater exactly on the boundary between two segments with different
  // RC: Eq. (17) uses the downstream parameters, Eq. (18) the upstream.
  const auto device = test::simple_device();
  const auto n = test::two_segment_net_with_zone();  // boundary at 1000
  const auto derivs =
      location_derivatives(n, device, {1000.0}, {10.0});
  ASSERT_EQ(derivs.size(), 1u);
  EXPECT_NE(derivs[0].right, derivs[0].left);
}

// --------------------------------------------------------------- movement

TEST(Movement, MovesDownhillAndReducesWidthAfterResolve) {
  // Put one repeater far from its optimal spot; a movement pass plus a
  // width re-solve must not increase the optimal total width.
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  std::vector<double> pos{1500.0};
  // 1 repeater at 1500 um reaches ~0.74x unbuffered at best.
  const double tau_t = delay_at(n, device, {}, {}) * 0.8;
  auto ws = solve_widths(n, device, pos, tau_t);
  ASSERT_TRUE(ws.converged);
  const double before = ws.total_width_u;

  MoveOptions opts;
  opts.step_um = 200.0;
  const int moved = move_repeaters(n, device, pos, ws.widths_u, opts);
  EXPECT_EQ(moved, 1);
  EXPECT_NE(pos[0], 1500.0);
  const auto ws2 = solve_widths(n, device, pos, tau_t);
  ASSERT_TRUE(ws2.converged);
  EXPECT_LE(ws2.total_width_u, before + 1e-9);
}

TEST(Movement, SkipsMovesIntoForbiddenZones) {
  const auto device = test::simple_device();
  // Zone [400, 700]; repeater at 380 wanting to move downstream by 100
  // would land at 480 (inside) -> must stay put without hopping.
  const auto n = test::two_segment_net_with_zone();
  std::vector<double> pos{380.0};
  std::vector<double> widths{10.0};
  const auto derivs = location_derivatives(n, device, pos, widths);
  MoveOptions opts;
  opts.step_um = 100.0;
  opts.allow_zone_hop = false;
  const int moved = move_repeaters(n, device, pos, widths, opts);
  if (derivs[0].right < 0) {
    EXPECT_EQ(moved, 0);
    EXPECT_DOUBLE_EQ(pos[0], 380.0);
  }
}

TEST(Movement, ZoneHopJumpsToFarBoundary) {
  const auto device = test::simple_device();
  const auto n = test::two_segment_net_with_zone();
  std::vector<double> pos{380.0};
  std::vector<double> widths{10.0};
  const auto derivs = location_derivatives(n, device, pos, widths);
  if (derivs[0].right < 0) {  // wants to go downstream
    MoveOptions opts;
    opts.step_um = 100.0;
    opts.allow_zone_hop = true;
    const int moved = move_repeaters(n, device, pos, widths, opts);
    EXPECT_EQ(moved, 1);
    EXPECT_DOUBLE_EQ(pos[0], 700.0);  // far boundary of [400, 700]
  }
}

TEST(Movement, PreservesOrderingAndBounds) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  std::vector<double> pos{4900.0, 5000.0, 5100.0};
  std::vector<double> widths{20.0, 20.0, 20.0};
  MoveOptions opts;
  opts.step_um = 500.0;
  move_repeaters(n, device, pos, widths, opts);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_GT(pos[0], 0.0);
  EXPECT_LT(pos[2], n.total_length_um());
}

// ----------------------------------------------------------------- refine

TEST(Refine, WidthHistoryIsMonotoneNonIncreasing) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const net::RepeaterSolution initial(
      {{1500.0, 30.0}, {4000.0, 30.0}, {8600.0, 30.0}});
  const double tau_t = delay_at(n, device, {}, {}) * 0.4;
  const auto r = refine(n, device, initial, tau_t);
  ASSERT_TRUE(r.width_solve_ok);
  ASSERT_FALSE(r.width_history_u.empty());
  for (std::size_t i = 1; i < r.width_history_u.size(); ++i) {
    EXPECT_LE(r.width_history_u[i], r.width_history_u[i - 1] + 1e-9);
  }
  EXPECT_NEAR(r.delay_fs, tau_t, 1e-6 * tau_t);
}

TEST(Refine, ImprovesPoorInitialPlacement) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  // All repeaters crowded near the driver: far from optimal (the
  // continuous minimum at this placement is ~0.72x unbuffered, vs
  // ~0.345x when evenly spread).
  const net::RepeaterSolution poor(
      {{500.0, 30.0}, {1000.0, 30.0}, {1500.0, 30.0}});
  const double tau_t = delay_at(n, device, {}, {}) * 0.78;
  const auto r = refine(n, device, poor, tau_t);
  ASSERT_TRUE(r.width_solve_ok);
  // Width at the original placement:
  const auto at_poor = solve_widths(
      n, device, {500.0, 1000.0, 1500.0}, tau_t);
  ASSERT_TRUE(at_poor.converged);
  EXPECT_LT(r.total_width_u, at_poor.total_width_u * 0.95);
  // Repeaters actually moved.
  EXPECT_GT(r.iterations, 0);
}

TEST(Refine, KeepsRepeatersOutOfZones) {
  const auto device = tech::make_tech180().device();
  const auto n = test::paper_net(1234);
  const net::RepeaterSolution initial = [&] {
    std::vector<net::Repeater> reps;
    const double total = n.total_length_um();
    for (double frac : {0.25, 0.5, 0.75}) {
      double x = frac * total;
      // nudge out of zones for a legal start
      while (n.in_forbidden_zone(x)) x += 10.0;
      reps.push_back(net::Repeater{x, 100.0});
    }
    return net::RepeaterSolution(std::move(reps));
  }();
  const double unbuffered = rc::elmore_delay_fs(n, {}, device);
  const auto r = refine(n, device, initial, unbuffered * 0.5);
  if (r.width_solve_ok) {
    for (const double x : r.positions_um) {
      EXPECT_FALSE(n.in_forbidden_zone(x)) << "position " << x;
    }
  }
}

TEST(Refine, EmptyInitialSolutionIsANoop) {
  const auto device = test::simple_device();
  const auto n = test::single_segment_net();
  const auto r = refine(n, device, net::RepeaterSolution{}, 50000.0);
  EXPECT_TRUE(r.width_solve_ok);
  EXPECT_TRUE(r.positions_um.empty());
  EXPECT_DOUBLE_EQ(r.total_width_u, 0.0);
}

TEST(Refine, InfeasibleTargetReportsFailure) {
  const auto device = test::simple_device();
  const auto n = test::single_segment_net();
  const auto r =
      refine(n, device, net::RepeaterSolution({{500.0, 10.0}}), 10.0);
  EXPECT_FALSE(r.width_solve_ok);
}

TEST(Refine, SolutionAccessorRoundTrips) {
  const auto device = test::simple_device();
  const auto n = long_uniform_net();
  const net::RepeaterSolution initial({{3000.0, 20.0}, {6000.0, 20.0}});
  const double tau_t = delay_at(n, device, {}, {}) * 0.45;
  const auto r = refine(n, device, initial, tau_t);
  ASSERT_TRUE(r.width_solve_ok);
  const auto sol = r.solution();
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol.total_width_u(), r.total_width_u, 1e-9);
}

// ---------------------------------------------------------------- bakoglu

TEST(Bakoglu, ClosedFormAgreesWithDpTauMinOnUniformLine) {
  const auto device = test::simple_device();
  const auto insertion =
      optimal_uniform_insertion(device, 10000.0, 0.1, 0.2);
  EXPECT_GT(insertion.stage_count, 1.0);
  EXPECT_GT(insertion.width_u, 1.0);
  // w* = sqrt(Rs*c / (r*Co)) = sqrt(1000*0.2/(0.1*2)) = sqrt(1000).
  EXPECT_NEAR(insertion.width_u, std::sqrt(1000.0), 1e-9);
  // k* = sqrt(R*C / (2*Rs*(Co+Cp))) = sqrt(1000*2000/6000).
  EXPECT_NEAR(insertion.stage_count, std::sqrt(1000.0 * 2000.0 / 6000.0),
              1e-9);
}

TEST(Bakoglu, RejectsBadArguments) {
  const auto device = test::simple_device();
  EXPECT_THROW(optimal_uniform_insertion(device, 0.0, 0.1, 0.2), Error);
  EXPECT_THROW(optimal_uniform_insertion(device, 100.0, 0.0, 0.2), Error);
}

}  // namespace
}  // namespace rip::analytical
