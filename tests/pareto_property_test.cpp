// Property tests for the flat-vector Pareto pruning and the reusable DP
// workspace.
//
// prune_dominated moved from a std::map staircase to a sorted
// flat-vector frontier with in-place compaction; these tests pin its
// semantics against a brute-force O(n^2) domination oracle over
// randomized label sets (2-D and 3-D, with heavy duplicate/tie traffic,
// which is where staircase splicing bugs live). The workspace tests
// prove the arena-reuse contract: a solve on a dirty, many-times-reused
// dp::Workspace is bit-identical to the same solve on a fresh one.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "dp/chain_dp.hpp"
#include "dp/library.hpp"
#include "dp/min_delay.hpp"
#include "dp/pareto.hpp"
#include "dp/tree_dp.hpp"
#include "dp/workspace.hpp"
#include "net/candidates.hpp"
#include "net/net.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rip::dp {
namespace {

using Key = std::tuple<double, double, double>;  // (C, -q, w) ascending

Key key_of(const Label& l, bool use_width) {
  return Key{l.cap_ff, -l.q_fs, use_width ? l.width_u : 0.0};
}

/// The oracle survivor keys: every distinct tracked-dimension tuple that
/// no *different* tuple dominates. (Mutually identical labels collapse
/// to one representative, exactly like prune_dominated promises.)
std::vector<Key> oracle_keys(const std::vector<Label>& labels,
                             bool use_width) {
  std::vector<Key> keys;
  keys.reserve(labels.size());
  for (const Label& l : labels) keys.push_back(key_of(l, use_width));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto dominates_key = [&](const Key& a, const Key& b) {
    return std::get<0>(a) <= std::get<0>(b) &&
           std::get<1>(a) <= std::get<1>(b) &&
           std::get<2>(a) <= std::get<2>(b);
  };
  std::vector<Key> kept;
  for (const Key& k : keys) {
    bool dominated = false;
    for (const Key& other : keys) {
      if (other != k && dominates_key(other, k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(k);
  }
  return kept;
}

/// Random label with values drawn from a coarse grid so exact C/q/w
/// ties and full duplicates occur constantly.
Label grid_label(Rng& rng) {
  Label l;
  l.cap_ff = 0.5 * rng.uniform_int(0, 12);
  l.q_fs = 2.5 * rng.uniform_int(0, 12);
  l.width_u = 10.0 * rng.uniform_int(0, 8);
  l.parent = rng.uniform_int(0, 1000);
  l.buffer = static_cast<std::int16_t>(rng.uniform_int(-1, 5));
  l.count = static_cast<std::int16_t>(rng.uniform_int(0, 9));
  return l;
}

class PruneVsOracle : public ::testing::TestWithParam<bool> {};

TEST_P(PruneVsOracle, MatchesBruteForceDomination) {
  const bool use_width = GetParam();
  Rng rng(use_width ? 77001 : 77002);
  for (int round = 0; round < 300; ++round) {
    const int n = rng.uniform_int(0, 120);
    std::vector<Label> labels;
    labels.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (!labels.empty() && rng.bernoulli(0.2)) {
        // Exact duplicate of an earlier label (tracked dims and all).
        labels.push_back(labels[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(labels.size()) - 1))]);
      } else {
        labels.push_back(grid_label(rng));
      }
    }
    const std::vector<Label> input = labels;

    prune_dominated(labels, use_width);

    // Survivor keys must be exactly the oracle's non-dominated set,
    // one representative per identical group.
    std::vector<Key> got;
    for (const Label& l : labels) got.push_back(key_of(l, use_width));
    std::vector<Key> got_sorted = got;
    std::sort(got_sorted.begin(), got_sorted.end());
    ASSERT_TRUE(std::adjacent_find(got_sorted.begin(), got_sorted.end()) ==
                got_sorted.end())
        << "two survivors share tracked dimensions (round " << round << ")";
    EXPECT_EQ(got_sorted, oracle_keys(input, use_width))
        << "survivor set mismatch (round " << round << ", n " << n << ")";

    // Every survivor must be one of the input labels (pruning never
    // invents or mutates labels).
    for (const Label& l : labels) {
      const bool found = std::any_of(
          input.begin(), input.end(), [&](const Label& in) {
            return in.cap_ff == l.cap_ff && in.q_fs == l.q_fs &&
                   in.width_u == l.width_u && in.parent == l.parent &&
                   in.buffer == l.buffer && in.count == l.count;
          });
      EXPECT_TRUE(found) << "survivor not present in input";
    }

    // Every input label is dominated by (or identical to) a survivor.
    for (const Label& in : input) {
      const bool covered = std::any_of(
          labels.begin(), labels.end(),
          [&](const Label& s) { return dominates(s, in, use_width); });
      EXPECT_TRUE(covered) << "input label escaped domination";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PruneVsOracle, ::testing::Values(false, true));

TEST(FlatFrontier, RejectsDominatedAndEvictsDominated) {
  FlatFrontier frontier;
  EXPECT_TRUE(frontier.try_insert(10.0, 100.0));
  // Dominated: less q, more width.
  EXPECT_FALSE(frontier.try_insert(5.0, 200.0));
  // Duplicate: dominated by the identical seen point.
  EXPECT_FALSE(frontier.try_insert(10.0, 100.0));
  // Same q, smaller width: evicts the old point.
  EXPECT_TRUE(frontier.try_insert(10.0, 50.0));
  EXPECT_EQ(frontier.size(), 1u);
  // Incomparable points extend the staircase.
  EXPECT_TRUE(frontier.try_insert(20.0, 80.0));
  EXPECT_TRUE(frontier.try_insert(5.0, 30.0));
  EXPECT_EQ(frontier.size(), 3u);
  // One point dominating two staircase points evicts both.
  EXPECT_TRUE(frontier.try_insert(20.0, 30.0));
  EXPECT_EQ(frontier.size(), 1u);
  EXPECT_FALSE(frontier.try_insert(19.0, 31.0));
}

// ---------------------------------------------------------------------
// Workspace reuse: solve results are a pure function of the inputs, no
// matter how dirty the workspace is.

net::Net reuse_net() {
  return net::NetBuilder("reuse")
      .driver(120.0)
      .receiver(60.0)
      .segment(2000.0, 0.108, 0.21, "m4")
      .segment(1500.0, 0.061, 0.24, "m5")
      .zone(900.0, 1400.0)
      .build();
}

/// A few unrelated solves with different shapes (other net, other
/// library, both modes) to leave arbitrary arena contents behind.
void dirty_workspace(Workspace& ws) {
  const net::Net other = net::NetBuilder("dirty")
                             .driver(50.0)
                             .receiver(20.0)
                             .segment(900.0, 0.2, 0.15, "m3")
                             .build();
  const tech::RepeaterDevice device = test::simple_device();
  const RepeaterLibrary lib = RepeaterLibrary::uniform(5.0, 15.0, 7);
  const auto candidates = net::uniform_candidates(other, 120.0);
  ChainDpOptions delay_options;
  delay_options.mode = Mode::kMinDelay;
  run_chain_dp(other, device, lib, candidates, delay_options, ws);
  ChainDpOptions power_options;
  power_options.mode = Mode::kMinPower;
  power_options.timing_target_fs = 2.0 *
      run_chain_dp(other, device, lib, candidates, delay_options, ws)
          .min_delay_fs;
  run_chain_dp(other, device, lib, candidates, power_options, ws);

  Rng rng(424242);
  RandomTreeConfig tree_config;
  tree_config.sink_count = 5;
  const BufferTree tree = random_buffer_tree(tree_config, rng);
  ChainDpOptions tree_options;
  tree_options.mode = Mode::kMinDelay;
  run_tree_dp(tree, device, 80.0, lib, tree_options, ws);
}

void expect_identical(const ChainDpResult& a, const ChainDpResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.delay_fs, b.delay_fs);
  EXPECT_EQ(a.total_width_u, b.total_width_u);
  EXPECT_EQ(a.min_delay_fs, b.min_delay_fs);
  ASSERT_EQ(a.solution.size(), b.solution.size());
  for (std::size_t i = 0; i < a.solution.size(); ++i) {
    EXPECT_EQ(a.solution.repeaters()[i].position_um,
              b.solution.repeaters()[i].position_um);
    EXPECT_EQ(a.solution.repeaters()[i].width_u,
              b.solution.repeaters()[i].width_u);
  }
  ASSERT_EQ(a.min_delay_solution.size(), b.min_delay_solution.size());
  for (std::size_t i = 0; i < a.min_delay_solution.size(); ++i) {
    EXPECT_EQ(a.min_delay_solution.repeaters()[i].position_um,
              b.min_delay_solution.repeaters()[i].position_um);
    EXPECT_EQ(a.min_delay_solution.repeaters()[i].width_u,
              b.min_delay_solution.repeaters()[i].width_u);
  }
  // Every stat is input-deterministic except the reuse counter.
  EXPECT_EQ(a.stats.labels_created, b.stats.labels_created);
  EXPECT_EQ(a.stats.labels_pruned, b.stats.labels_pruned);
  EXPECT_EQ(a.stats.labels_peak, b.stats.labels_peak);
  EXPECT_EQ(a.stats.arena_peak, b.stats.arena_peak);
  EXPECT_EQ(a.stats.positions, b.stats.positions);
}

TEST(WorkspaceReuse, ChainSolveBitIdenticalOnDirtyWorkspace) {
  const net::Net net = reuse_net();
  const tech::Technology tech = tech::make_tech180();
  const RepeaterLibrary library = RepeaterLibrary::uniform(10.0, 10.0, 10);
  const auto candidates = net::uniform_candidates(net, 200.0);

  Workspace fresh_delay;
  ChainDpOptions delay_options;
  delay_options.mode = Mode::kMinDelay;
  const ChainDpResult reference_delay = run_chain_dp(
      net, tech.device(), library, candidates, delay_options, fresh_delay);

  ChainDpOptions power_options;
  power_options.mode = Mode::kMinPower;
  power_options.timing_target_fs = 1.4 * reference_delay.min_delay_fs;

  Workspace fresh;
  const ChainDpResult reference = run_chain_dp(
      net, tech.device(), library, candidates, power_options, fresh);
  EXPECT_EQ(reference.stats.workspace_reuses, 0u);

  Workspace reused;
  dirty_workspace(reused);
  const std::size_t prior = reused.stats().solves();
  EXPECT_GT(prior, 0u);
  // Solve N+1 on the reused workspace, twice: both must equal the
  // fresh-workspace solve bit for bit.
  for (int repeat = 0; repeat < 2; ++repeat) {
    const ChainDpResult again = run_chain_dp(
        net, tech.device(), library, candidates, power_options, reused);
    expect_identical(reference, again);
    EXPECT_GE(again.stats.workspace_reuses, prior);
  }

  // reconstruct_solutions=false must not change any number, only skip
  // the solution objects.
  ChainDpOptions stats_only = power_options;
  stats_only.reconstruct_solutions = false;
  const ChainDpResult bare = run_chain_dp(net, tech.device(), library,
                                          candidates, stats_only, reused);
  EXPECT_TRUE(bare.solution.empty());
  EXPECT_EQ(bare.delay_fs, reference.delay_fs);
  EXPECT_EQ(bare.total_width_u, reference.total_width_u);
  EXPECT_EQ(bare.min_delay_fs, reference.min_delay_fs);
  EXPECT_EQ(bare.stats.labels_created, reference.stats.labels_created);
}

TEST(WorkspaceReuse, TreeSolveBitIdenticalOnDirtyWorkspace) {
  Rng rng(2005);
  RandomTreeConfig config;
  config.sink_count = 6;
  const BufferTree tree = random_buffer_tree(config, rng);
  const tech::Technology tech = tech::make_tech180();
  const RepeaterLibrary library = RepeaterLibrary::uniform(20.0, 40.0, 6);

  Workspace fresh_delay;
  ChainDpOptions delay_options;
  delay_options.mode = Mode::kMinDelay;
  const TreeDpResult reference_delay = run_tree_dp(
      tree, tech.device(), 100.0, library, delay_options, fresh_delay);

  ChainDpOptions power_options;
  power_options.mode = Mode::kMinPower;
  power_options.timing_target_fs = 1.5 * reference_delay.min_delay_fs;

  Workspace fresh;
  const TreeDpResult reference = run_tree_dp(tree, tech.device(), 100.0,
                                             library, power_options, fresh);

  Workspace reused;
  dirty_workspace(reused);
  const TreeDpResult again = run_tree_dp(tree, tech.device(), 100.0, library,
                                         power_options, reused);
  EXPECT_EQ(reference.status, again.status);
  EXPECT_EQ(reference.delay_fs, again.delay_fs);
  EXPECT_EQ(reference.total_width_u, again.total_width_u);
  EXPECT_EQ(reference.min_delay_fs, again.min_delay_fs);
  ASSERT_EQ(reference.solution.width_u.size(), again.solution.width_u.size());
  for (std::size_t i = 0; i < reference.solution.width_u.size(); ++i) {
    EXPECT_EQ(reference.solution.width_u[i], again.solution.width_u[i]);
  }
  EXPECT_EQ(reference.stats.labels_created, again.stats.labels_created);
  EXPECT_EQ(reference.stats.labels_pruned, again.stats.labels_pruned);
  EXPECT_EQ(reference.stats.labels_peak, again.stats.labels_peak);
  EXPECT_EQ(reference.stats.arena_peak, again.stats.arena_peak);
  EXPECT_GT(again.stats.workspace_reuses, 0u);
}

TEST(WorkspaceReuse, ReleaseMemoryKeepsCountersAndCorrectness) {
  const net::Net net = reuse_net();
  const tech::Technology tech = tech::make_tech180();
  const RepeaterLibrary library = RepeaterLibrary::uniform(10.0, 20.0, 6);
  const auto candidates = net::uniform_candidates(net, 250.0);
  ChainDpOptions options;
  options.mode = Mode::kMinDelay;

  Workspace ws;
  const ChainDpResult before = run_chain_dp(net, tech.device(), library,
                                            candidates, options, ws);
  const std::size_t solves = ws.stats().solves();
  ws.release_memory();
  EXPECT_EQ(ws.stats().solves(), solves);
  const ChainDpResult after = run_chain_dp(net, tech.device(), library,
                                           candidates, options, ws);
  expect_identical(before, after);
}

}  // namespace
}  // namespace rip::dp
