// Unit tests for the pluggable objective backends (tech/objective):
// the registry, each backend's cost coefficients and reported power,
// the Paper2005Backend's bit-identity with the default (no-backend)
// solver path, and the invariant that ties a DP run's objective cost
// back to the backend's affine per-net cost.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "dp/workspace.hpp"
#include "rc/buffered_chain.hpp"
#include "tech/objective.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rip {
namespace {

const dp::MinDelayOptions kMinDelayGrid = {10.0, 400.0, 10.0, 200.0};

// ------------------------------------------------------------- registry

TEST(BackendRegistry, NamesRoundTripThroughTheFactory) {
  const auto& names = tech::backend_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "paper2005");
  EXPECT_EQ(names[1], "activity");
  EXPECT_EQ(names[2], "lowswing");

  const tech::Technology tech = tech::make_tech180();
  for (const auto& name : names) {
    const auto backend = tech::make_backend(name, tech);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
  }
  EXPECT_THROW(tech::make_backend("no_such_backend", tech), Error);
}

TEST(BackendRegistry, FingerprintsAreDistinctPerBackend) {
  const tech::Technology tech = tech::make_tech180();
  const auto a = tech::make_backend("paper2005", tech);
  const auto b = tech::make_backend("activity", tech);
  const auto c = tech::make_backend("lowswing", tech);
  EXPECT_NE(a->fingerprint(), b->fingerprint());
  EXPECT_NE(a->fingerprint(), c->fingerprint());
  EXPECT_NE(b->fingerprint(), c->fingerprint());
}

TEST(ChainCostTest, EveryFieldBreaksIdentity) {
  EXPECT_TRUE(tech::ChainCost{}.is_identity());
  tech::ChainCost c;
  c.width_weight = 2.0;
  EXPECT_FALSE(c.is_identity());
  c = {};
  c.per_repeater = 1.0;
  EXPECT_FALSE(c.is_identity());
  c = {};
  c.receiver_penalty_fs = 1.0;
  EXPECT_FALSE(c.is_identity());
  c = {};
  c.allow_repeaters = false;
  EXPECT_FALSE(c.is_identity());
}

// ------------------------------------------------------------ paper2005

TEST(Paper2005BackendTest, IdentityCoefficientsAndEq4Power) {
  const tech::Technology tech = tech::make_tech180();
  const tech::Paper2005Backend backend(tech.power(), tech.device());
  const tech::NetProfile profile{"n", 10000.0, 2000.0};
  EXPECT_TRUE(backend.chain_cost(profile).is_identity());
  // Eq. 4: P = gamma * total width; the objective cost IS the width.
  const double gamma =
      tech.power().gamma_nw_per_u(tech.device().co_ff, tech.device().cp_ff);
  EXPECT_DOUBLE_EQ(backend.net_power_nw(profile, 150.0, 3), gamma * 150.0);
}

// The core of the equivalence satellite at solver granularity: the
// explicit Paper2005Backend takes the identity-cost kernel path and must
// reproduce the default (backend == nullptr) solves bit for bit.
TEST(Paper2005BackendTest, BitIdenticalToDefaultPath) {
  const tech::Technology tech = tech::make_tech180();
  const tech::Paper2005Backend backend(tech.power(), tech.device());
  const net::Net n = test::paper_net(7);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 20.0, 10);
  const double tau_min =
      dp::min_delay(n, tech.device(), kMinDelayGrid).tau_min_fs;

  for (const double factor : {1.1, 1.4, 1.8}) {
    SCOPED_TRACE("target factor " + std::to_string(factor));
    const double tau = factor * tau_min;

    const auto dp_default =
        core::run_baseline(n, tech.device(), tau, baseline,
                           dp::Workspace::local(), nullptr, nullptr);
    const auto dp_backend =
        core::run_baseline(n, tech.device(), tau, baseline,
                           dp::Workspace::local(), nullptr, &backend);
    EXPECT_EQ(dp_default.status, dp_backend.status);
    EXPECT_EQ(dp_default.total_width_u, dp_backend.total_width_u);
    EXPECT_EQ(dp_default.delay_fs, dp_backend.delay_fs);
    // Identity objective: the cost is the width, exactly.
    EXPECT_EQ(dp_backend.objective_cost, dp_backend.total_width_u);

    const auto rip_default =
        core::rip_insert(n, tech.device(), tau, {}, dp::Workspace::local(),
                         nullptr, nullptr);
    const auto rip_backend =
        core::rip_insert(n, tech.device(), tau, {}, dp::Workspace::local(),
                         nullptr, &backend);
    EXPECT_EQ(rip_default.status, rip_backend.status);
    EXPECT_EQ(rip_default.total_width_u, rip_backend.total_width_u);
    EXPECT_EQ(rip_default.delay_fs, rip_backend.delay_fs);
    EXPECT_EQ(rip_backend.objective_cost, rip_backend.total_width_u);
    ASSERT_EQ(rip_default.solution.size(), rip_backend.solution.size());
    for (std::size_t i = 0; i < rip_default.solution.size(); ++i) {
      EXPECT_EQ(rip_default.solution.repeaters()[i].position_um,
                rip_backend.solution.repeaters()[i].position_um);
      EXPECT_EQ(rip_default.solution.repeaters()[i].width_u,
                rip_backend.solution.repeaters()[i].width_u);
    }
  }
}

// ------------------------------------------------------------- activity

TEST(ActivityBackendTest, ActivityLookupTiers) {
  const tech::Technology tech = tech::make_tech180();
  std::map<std::string, double, std::less<>> profile{{"clk", 0.9}};
  const tech::ActivityPowerBackend backend(tech.power(), tech.device(), {},
                                           profile);
  // Tier 1: an explicit profile entry wins.
  EXPECT_DOUBLE_EQ(backend.activity_for("clk"), 0.9);
  // Tier 2: unprofiled names get a deterministic pseudo-activity in
  // [0.05, 0.45].
  const double a = backend.activity_for("data_bus_17");
  EXPECT_GE(a, 0.05);
  EXPECT_LE(a, 0.45);
  EXPECT_DOUBLE_EQ(a, backend.activity_for("data_bus_17"));
  EXPECT_NE(a, backend.activity_for("data_bus_18"));
  // Tier 3: anonymous nets fall back to the configured default.
  EXPECT_DOUBLE_EQ(backend.activity_for(""),
                   tech::ActivityPowerConfig{}.default_activity);
}

TEST(ActivityBackendTest, ConstructorRejectsBadActivities) {
  const tech::Technology tech = tech::make_tech180();
  std::map<std::string, double, std::less<>> too_big{{"n", 1.5}};
  EXPECT_THROW(
      tech::ActivityPowerBackend(tech.power(), tech.device(), {}, too_big),
      Error);
  std::map<std::string, double, std::less<>> zero{{"n", 0.0}};
  EXPECT_THROW(
      tech::ActivityPowerBackend(tech.power(), tech.device(), {}, zero),
      Error);
  tech::ActivityPowerConfig config;
  config.default_activity = 0.0;
  EXPECT_THROW(tech::ActivityPowerBackend(tech.power(), tech.device(), config),
               Error);
}

TEST(ActivityBackendTest, CostCoefficientsScaleWithActivity) {
  const tech::Technology tech = tech::make_tech180();
  std::map<std::string, double, std::less<>> profile{{"lo", 0.1}, {"hi", 0.8}};
  const tech::ActivityPowerBackend backend(tech.power(), tech.device(), {},
                                           profile);
  const auto lo = backend.chain_cost({"lo", 10000.0, 2000.0});
  const auto hi = backend.chain_cost({"hi", 10000.0, 2000.0});
  EXPECT_FALSE(lo.is_identity());
  EXPECT_GT(lo.width_weight, 0.0);
  // More switching per unit of repeater width -> steeper width cost.
  EXPECT_GT(hi.width_weight, lo.width_weight);
  // Leakage floor is per repeater and activity-independent.
  EXPECT_GT(lo.per_repeater, 0.0);
  EXPECT_EQ(lo.per_repeater, hi.per_repeater);
  EXPECT_TRUE(lo.allow_repeaters);
  EXPECT_EQ(lo.receiver_penalty_fs, 0.0);
}

TEST(ActivityBackendTest, NetPowerIsMonotoneInCostAndWire) {
  const tech::Technology tech = tech::make_tech180();
  const tech::ActivityPowerBackend backend(tech.power(), tech.device());
  const tech::NetProfile p{"n", 10000.0, 2000.0};
  // Monotone in the optimized repeater cost...
  EXPECT_GT(backend.net_power_nw(p, 200.0, 2), backend.net_power_nw(p, 100.0, 2));
  // ...and in the per-net constants the DP cannot change (wire energy,
  // per-mm static power).
  const tech::NetProfile longer{"n", 20000.0, 4000.0};
  EXPECT_GT(backend.net_power_nw(longer, 100.0, 2),
            backend.net_power_nw(p, 100.0, 2));
}

// The contract between backend and kernel: the DP's reported objective
// cost equals the backend's affine per-net cost evaluated on the
// returned solution (accumulation order may differ, hence NEAR).
TEST(ActivityBackendTest, DpObjectiveMatchesAffineRecompute) {
  const tech::Technology tech = tech::make_tech180();
  const tech::ActivityPowerBackend backend(tech.power(), tech.device());
  const net::Net n = test::paper_net(11);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 20.0, 10);
  const double tau_min =
      dp::min_delay(n, tech.device(), kMinDelayGrid).tau_min_fs;
  const tech::ChainCost cost = backend.chain_cost(
      {n.name(), n.total_length_um(), n.total_capacitance_ff()});

  for (const double factor : {1.2, 1.6, 2.0}) {
    SCOPED_TRACE("target factor " + std::to_string(factor));
    const auto r =
        core::run_baseline(n, tech.device(), factor * tau_min, baseline,
                           dp::Workspace::local(), nullptr, &backend);
    ASSERT_EQ(r.status, dp::Status::kOptimal);
    double recomputed = 0.0;
    for (const auto& rep : r.solution.repeaters()) {
      recomputed += cost.width_weight * rep.width_u + cost.per_repeater;
    }
    EXPECT_NEAR(r.objective_cost, recomputed,
                1e-9 * std::max(1.0, std::abs(recomputed)));
  }
}

// Under the activity objective a looser target can never cost more:
// every feasible label set at a tight target is feasible at a loose one.
TEST(ActivityBackendTest, ObjectiveCostIsMonotoneInTheTarget) {
  const tech::Technology tech = tech::make_tech180();
  const tech::ActivityPowerBackend backend(tech.power(), tech.device());
  const net::Net n = test::paper_net(13);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 20.0, 10);
  const double tau_min =
      dp::min_delay(n, tech.device(), kMinDelayGrid).tau_min_fs;
  double previous = std::numeric_limits<double>::infinity();
  for (const double factor : {1.1, 1.3, 1.5, 1.7, 1.9}) {
    const auto r =
        core::run_baseline(n, tech.device(), factor * tau_min, baseline,
                           dp::Workspace::local(), nullptr, &backend);
    if (r.status != dp::Status::kOptimal) continue;
    EXPECT_LE(r.objective_cost, previous) << "factor " << factor;
    previous = r.objective_cost;
  }
}

// ------------------------------------------------------------- lowswing

TEST(LowSwingBackendTest, CoefficientsForbidRepeaters) {
  const tech::Technology tech = tech::make_tech180();
  const tech::LowSwingBackend backend(tech.power());
  const auto cost = backend.chain_cost({"n", 10000.0, 2000.0});
  EXPECT_FALSE(cost.allow_repeaters);
  EXPECT_EQ(cost.width_weight, 0.0);
  EXPECT_EQ(cost.per_repeater, 0.0);
  EXPECT_EQ(cost.receiver_penalty_fs, tech::LowSwingConfig{}.receiver_penalty_fs);
}

TEST(LowSwingBackendTest, RepeaterlessFeasibilityBoundary) {
  const tech::Technology tech = tech::make_tech180();
  const tech::LowSwingBackend backend(tech.power());
  const net::Net n = test::paper_net(3);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 20.0, 10);
  const double unbuffered =
      rc::elmore_delay_fs(n, net::RepeaterSolution{}, tech.device());
  const double penalty = tech::LowSwingConfig{}.receiver_penalty_fs;

  // Loose enough for the bare wire plus the sense-amp penalty: feasible,
  // and necessarily with zero repeaters at zero objective cost.
  const auto ok = core::run_baseline(n, tech.device(),
                                     2.0 * (unbuffered + penalty), baseline,
                                     dp::Workspace::local(), nullptr, &backend);
  EXPECT_EQ(ok.status, dp::Status::kOptimal);
  EXPECT_EQ(ok.solution.size(), 0u);
  EXPECT_EQ(ok.total_width_u, 0.0);
  EXPECT_EQ(ok.objective_cost, 0.0);
  // The reported delay includes the receiver penalty.
  EXPECT_GE(ok.delay_fs, unbuffered);

  // Tighter than the bare wire alone: no repeaters may be inserted, so
  // the point is infeasible (where the paper objective would buffer it).
  const auto viol = core::run_baseline(n, tech.device(), 0.5 * unbuffered,
                                       baseline, dp::Workspace::local(),
                                       nullptr, &backend);
  EXPECT_EQ(viol.status, dp::Status::kInfeasible);
  const auto buffered = core::run_baseline(n, tech.device(), 0.5 * unbuffered,
                                           baseline, dp::Workspace::local(),
                                           nullptr, nullptr);
  EXPECT_EQ(buffered.status, dp::Status::kOptimal);
}

TEST(LowSwingBackendTest, PowerIsWireEnergyPlusReceiverBias) {
  const tech::Technology tech = tech::make_tech180();
  const tech::LowSwingBackend backend(tech.power());
  const tech::NetProfile p{"n", 10000.0, 2000.0};
  // No repeaters exist, so the objective cost cannot move the power.
  EXPECT_DOUBLE_EQ(backend.net_power_nw(p, 0.0, 0),
                   backend.net_power_nw(p, 999.0, 0));
  // More wire capacitance -> more swing-scaled switching energy.
  const tech::NetProfile bigger{"n", 10000.0, 4000.0};
  EXPECT_GT(backend.net_power_nw(bigger, 0.0, 0), backend.net_power_nw(p, 0.0, 0));
  // The sense-amp bias is a floor even for a zero-capacitance stub.
  const tech::NetProfile stub{"n", 0.0, 0.0};
  EXPECT_DOUBLE_EQ(backend.net_power_nw(stub, 0.0, 0),
                   tech::LowSwingConfig{}.receiver_static_nw);
}

}  // namespace
}  // namespace rip
