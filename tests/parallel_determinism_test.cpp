// The parallel engine's core contract: any job count produces results
// bit-identical to the serial path. Each runner is executed at jobs=1
// and jobs=8 on the seed-2005 workload and compared field by field with
// exact equality (runtime fields excepted — those are wall clock,
// asserted only to be per-task measurements, i.e. positive for every
// case). run_table1 at jobs=8 is additionally checked against the same
// golden Ave values golden_test.cpp pins for the serial path.

#include <gtest/gtest.h>

#include "eval/experiments.hpp"
#include "eval/parallel.hpp"
#include "eval/workload.hpp"
#include "tech/technology.hpp"

namespace rip::eval {
namespace {

constexpr double kPctTol = 1e-6;  // matches golden_test.cpp

const tech::Technology& technology() {
  static const tech::Technology tech = tech::make_tech180();
  return tech;
}

void expect_same(const Table1Row& serial, const Table1Row& parallel) {
  EXPECT_EQ(parallel.net_name, serial.net_name);
  EXPECT_EQ(parallel.rip_violations, serial.rip_violations);
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t g = 0; g < serial.cells.size(); ++g) {
    EXPECT_EQ(parallel.cells[g].delta_max_pct, serial.cells[g].delta_max_pct)
        << "g-index " << g;
    EXPECT_EQ(parallel.cells[g].delta_mean_pct,
              serial.cells[g].delta_mean_pct)
        << "g-index " << g;
    EXPECT_EQ(parallel.cells[g].dp_violations, serial.cells[g].dp_violations)
        << "g-index " << g;
    EXPECT_EQ(parallel.cells[g].compared, serial.cells[g].compared)
        << "g-index " << g;
  }
}

TEST(ParallelDeterminism, WorkloadIsIdenticalAtAnyJobCount) {
  const auto serial = make_paper_workload(technology(), 4, 2005, {},
                                          {10.0, 400.0, 10.0, 200.0}, 1);
  for (const int jobs : {2, 8}) {
    const auto parallel = make_paper_workload(
        technology(), 4, 2005, {}, {10.0, 400.0, 10.0, 200.0}, jobs);
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].net.name(), serial[i].net.name());
      // Bit-identical, not just close.
      EXPECT_EQ(parallel[i].tau_min_fs, serial[i].tau_min_fs)
          << "net " << i << " jobs=" << jobs;
      EXPECT_EQ(parallel[i].net.total_length_um(),
                serial[i].net.total_length_um());
    }
  }
}

TEST(ParallelDeterminism, RunCasesMatchesSerialBitForBit) {
  const auto& tech = technology();
  const auto workload = make_paper_workload(tech, 2, 2005);
  const auto baseline = core::BaselineOptions::uniform_library(10.0, 10.0, 10);

  std::vector<Case> cases;
  for (const auto& wn : workload) {
    for (const double tau_t : timing_targets_fs(wn.tau_min_fs, 5)) {
      cases.push_back(Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  BatchOptions serial_options;
  serial_options.jobs = 1;
  BatchOptions parallel_options;
  parallel_options.jobs = 8;
  const auto serial = run_cases(tech, cases, serial_options);
  const auto parallel = run_cases(tech, cases, parallel_options);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].tau_t_fs, serial[i].tau_t_fs) << "case " << i;
    EXPECT_EQ(parallel[i].rip_feasible, serial[i].rip_feasible);
    EXPECT_EQ(parallel[i].dp_feasible, serial[i].dp_feasible);
    EXPECT_EQ(parallel[i].rip_width_u, serial[i].rip_width_u) << "case " << i;
    EXPECT_EQ(parallel[i].dp_width_u, serial[i].dp_width_u) << "case " << i;
    EXPECT_EQ(parallel[i].improvement_pct, serial[i].improvement_pct);
    // Runtimes are measured inside the worker, per task — they must be
    // real (positive) at every job count, not a share of a batch timer.
    EXPECT_GT(parallel[i].rip_runtime_s, 0.0) << "case " << i;
    EXPECT_GT(parallel[i].dp_runtime_s, 0.0) << "case " << i;
  }
}

TEST(ParallelDeterminism, Table1AtJobs8MatchesSerialAndGoldenValues) {
  Table1Config config;
  config.net_count = 3;
  config.targets_per_net = 5;

  config.jobs = 1;
  const auto serial = run_table1(technology(), config);
  config.jobs = 8;
  const auto parallel = run_table1(technology(), config);

  ASSERT_EQ(parallel.rows.size(), serial.rows.size());
  for (std::size_t r = 0; r < serial.rows.size(); ++r) {
    expect_same(serial.rows[r], parallel.rows[r]);
  }
  expect_same(serial.average, parallel.average);

  // The same seed-2005 golden Ave values golden_test.cpp pins for the
  // serial runner, now demanded of the 8-job runner.
  ASSERT_EQ(parallel.average.cells.size(), 3u);
  EXPECT_NEAR(parallel.average.cells[0].delta_max_pct, 1.282051, kPctTol);
  EXPECT_NEAR(parallel.average.cells[1].delta_max_pct, 17.587992, kPctTol);
  EXPECT_NEAR(parallel.average.cells[2].delta_max_pct, 25.661376, kPctTol);
  EXPECT_NEAR(parallel.average.cells[0].delta_mean_pct, 0.320513, kPctTol);
  EXPECT_NEAR(parallel.average.cells[1].delta_mean_pct, 5.883723, kPctTol);
  EXPECT_NEAR(parallel.average.cells[2].delta_mean_pct, 10.334272, kPctTol);
}

TEST(ParallelDeterminism, Table2AtJobs8MatchesSerialQualityColumns) {
  Table2Config config;
  config.net_count = 2;
  config.targets_per_net = 3;
  config.granularities_u = {40.0, 20.0};

  config.jobs = 1;
  const auto serial = run_table2(technology(), config);
  config.jobs = 8;
  const auto parallel = run_table2(technology(), config);

  ASSERT_EQ(parallel.rows.size(), serial.rows.size());
  for (std::size_t r = 0; r < serial.rows.size(); ++r) {
    EXPECT_EQ(parallel.rows[r].granularity_u, serial.rows[r].granularity_u);
    EXPECT_EQ(parallel.rows[r].delta_mean_pct, serial.rows[r].delta_mean_pct)
        << "row " << r;
    EXPECT_EQ(parallel.rows[r].compared, serial.rows[r].compared);
    // Runtime columns are wall clock (not comparable across runs) but
    // must be per-task measurements: positive means every task was
    // individually timed inside its worker.
    EXPECT_GT(parallel.rows[r].dp_runtime_s, 0.0);
    EXPECT_GT(parallel.rows[r].rip_runtime_s, 0.0);
  }
}

TEST(ParallelDeterminism, Fig7AtJobs8MatchesSerial) {
  Fig7Config config;
  config.points = 7;

  config.jobs = 1;
  const auto serial = run_fig7(technology(), config);
  config.jobs = 8;
  const auto parallel = run_fig7(technology(), config);

  EXPECT_EQ(parallel.net_name, serial.net_name);
  EXPECT_EQ(parallel.tau_min_fs, serial.tau_min_fs);
  ASSERT_EQ(parallel.series.size(), serial.series.size());
  for (std::size_t s = 0; s < serial.series.size(); ++s) {
    ASSERT_EQ(parallel.series[s].points.size(),
              serial.series[s].points.size());
    for (std::size_t p = 0; p < serial.series[s].points.size(); ++p) {
      const auto& sp = serial.series[s].points[p];
      const auto& pp = parallel.series[s].points[p];
      EXPECT_EQ(pp.tau_t_fs, sp.tau_t_fs) << "series " << s << " pt " << p;
      EXPECT_EQ(pp.dp_feasible, sp.dp_feasible);
      EXPECT_EQ(pp.improvement_pct, sp.improvement_pct)
          << "series " << s << " pt " << p;
    }
  }
}

}  // namespace
}  // namespace rip::eval
