// Stress and determinism workloads for the asynchronous evaluation
// service (eval/service.hpp), run under TSan in CI: 10k mixed-priority
// submissions from multiple threads, exception propagation to exactly
// the failing case's future, cancellation racing submission, and the
// headline contract — service results at any job count are
// bit-identical to the serial loop, including the seed-2005 golden
// pins (the same values golden_test.cpp demands of run_case).

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/parallel.hpp"
#include "eval/service.hpp"
#include "eval/workload.hpp"
#include "tech/technology.hpp"

namespace rip::eval {
namespace {

constexpr double kPctTol = 1e-6;    // matches golden_test.cpp
constexpr double kWidthTol = 1e-9;  // matches golden_test.cpp

const tech::Technology& technology() {
  static const tech::Technology tech = tech::make_tech180();
  return tech;
}

CaseResult tagged(double tag) {
  CaseResult r;
  r.tau_t_fs = tag;
  return r;
}

TEST(ServiceStress, TenThousandMixedPrioritySubmissionsAllSettleCorrectly) {
  constexpr int kSubmissions = 10000;
  ServiceOptions options;
  options.jobs = 8;
  EvalService service(technology(), options);

  const Priority priorities[] = {Priority::kLow, Priority::kNormal,
                                 Priority::kHigh};
  std::vector<std::future<CaseResult>> futures;
  futures.reserve(kSubmissions);
  std::atomic<int> executed{0};
  for (int i = 0; i < kSubmissions; ++i) {
    futures.push_back(service.submit_fn(
        [&executed, i] {
          executed.fetch_add(1);
          return tagged(i);
        },
        priorities[i % 3]));
  }
  for (int i = 0; i < kSubmissions; ++i) {
    // Each future must carry exactly its own submission's result —
    // no cross-slot mixups under any priority reordering.
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().tau_t_fs,
              static_cast<double>(i))
        << "submission " << i;
  }
  EXPECT_EQ(executed.load(), kSubmissions);
}

TEST(ServiceStress, ConcurrentSubmittersShareOneService) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  ServiceOptions options;
  options.jobs = 4;
  options.max_pending = 64;  // exercise backpressure under contention
  EvalService service(technology(), options);

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<CaseResult>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      futures[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const double tag = t * kPerThread + i;
        futures[static_cast<std::size_t>(t)].push_back(service.submit_fn(
            [tag] { return tagged(tag); },
            static_cast<Priority>(i % 3)));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(futures[static_cast<std::size_t>(t)]
                    [static_cast<std::size_t>(i)]
                        .get()
                        .tau_t_fs,
                static_cast<double>(t * kPerThread + i))
          << "thread " << t << " submission " << i;
    }
  }
}

TEST(ServiceStress, ExceptionReachesExactlyTheThrowingCasesFuture) {
  constexpr int kSubmissions = 500;
  constexpr int kFailEvery = 37;
  ServiceOptions options;
  options.jobs = 8;
  EvalService service(technology(), options);

  std::vector<std::future<CaseResult>> futures;
  futures.reserve(kSubmissions);
  for (int i = 0; i < kSubmissions; ++i) {
    futures.push_back(service.submit_fn([i]() -> CaseResult {
      if (i % kFailEvery == 0) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      return tagged(i);
    }));
  }
  for (int i = 0; i < kSubmissions; ++i) {
    auto& future = futures[static_cast<std::size_t>(i)];
    if (i % kFailEvery == 0) {
      try {
        future.get();
        FAIL() << "submission " << i << " must fail";
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "boom " + std::to_string(i));
      }
    } else {
      EXPECT_EQ(future.get().tau_t_fs, static_cast<double>(i))
          << "submission " << i << " must not be poisoned by neighbours";
    }
  }
}

TEST(ServiceStress, CancellationRacesSubmissionWithoutLosingCases) {
  constexpr int kSubmissions = 2000;
  ServiceOptions options;
  options.jobs = 4;
  EvalService service(technology(), options);

  std::vector<std::future<CaseResult>> futures;
  futures.reserve(kSubmissions);
  std::atomic<bool> submitting{true};
  std::thread canceller([&] {
    while (submitting.load()) service.cancel_pending();
  });
  for (int i = 0; i < kSubmissions; ++i) {
    futures.push_back(service.submit_fn([i] { return tagged(i); }));
  }
  submitting.store(false);
  canceller.join();

  // Every future settles as exactly one of {its own value, cancelled}.
  int completed = 0;
  int cancelled = 0;
  for (int i = 0; i < kSubmissions; ++i) {
    try {
      EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().tau_t_fs,
                static_cast<double>(i));
      ++completed;
    } catch (const CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, kSubmissions);
}

TEST(ServiceStress, ManySmallBatchesReuseOneService) {
  constexpr int kBatches = 200;
  constexpr int kBatchSize = 16;
  ServiceOptions options;
  options.jobs = 4;
  EvalService service(technology(), options);
  for (int b = 0; b < kBatches; ++b) {
    std::vector<std::future<CaseResult>> futures;
    futures.reserve(kBatchSize);
    for (int i = 0; i < kBatchSize; ++i) {
      futures.push_back(service.submit_fn(
          [b, i] { return tagged(b * kBatchSize + i); },
          static_cast<Priority>((b + i) % 3)));
    }
    for (int i = 0; i < kBatchSize; ++i) {
      ASSERT_EQ(futures[static_cast<std::size_t>(i)].get().tau_t_fs,
                static_cast<double>(b * kBatchSize + i))
          << "batch " << b << " case " << i;
    }
  }
}

TEST(ServiceStress, ResultsAreBitIdenticalToSerialGoldensAtAnyJobCount) {
  const auto& tech = technology();
  const auto workload = make_paper_workload(tech, 2, 2005);
  const auto baseline =
      core::BaselineOptions::uniform_library(10.0, 10.0, 10);

  // Case 0 and 1 are the exact run_case goldens golden_test.cpp pins
  // (net_1 at 1.25x and 1.85x tau_min); the rest is a normal sweep.
  std::vector<Case> cases;
  cases.push_back(Case{&workload[0].net, 1.25 * workload[0].tau_min_fs,
                       core::RipOptions{}, baseline});
  cases.push_back(Case{&workload[0].net, 1.85 * workload[0].tau_min_fs,
                       core::RipOptions{}, baseline});
  for (const auto& wn : workload) {
    for (const double tau_t : timing_targets_fs(wn.tau_min_fs, 5)) {
      cases.push_back(Case{&wn.net, tau_t, core::RipOptions{}, baseline});
    }
  }

  // The serial golden: a plain loop, no service, no scheduler.
  std::vector<CaseResult> serial;
  serial.reserve(cases.size());
  for (const Case& c : cases) {
    serial.push_back(run_case(*c.net, tech, c.tau_t_fs, c.rip, c.baseline));
  }

  for (const int jobs : {1, 8}) {
    ServiceOptions options;
    options.jobs = jobs;
    EvalService service(tech, options);
    BatchHandle batch = service.submit_batch(cases);
    const auto results = batch.results();
    ASSERT_EQ(results.size(), serial.size()) << "jobs " << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, not just close.
      EXPECT_EQ(results[i].tau_t_fs, serial[i].tau_t_fs)
          << "case " << i << " jobs " << jobs;
      EXPECT_EQ(results[i].rip_feasible, serial[i].rip_feasible);
      EXPECT_EQ(results[i].dp_feasible, serial[i].dp_feasible);
      EXPECT_EQ(results[i].rip_width_u, serial[i].rip_width_u)
          << "case " << i;
      EXPECT_EQ(results[i].dp_width_u, serial[i].dp_width_u)
          << "case " << i;
      EXPECT_EQ(results[i].improvement_pct, serial[i].improvement_pct);
      // Runtimes are wall clock but must be genuine per-task
      // measurements taken inside the worker.
      EXPECT_GT(results[i].rip_runtime_s, 0.0) << "case " << i;
      EXPECT_GT(results[i].dp_runtime_s, 0.0) << "case " << i;
    }

    // The golden_test.cpp run_case pins, demanded through the service.
    EXPECT_TRUE(results[0].rip_feasible);
    EXPECT_TRUE(results[0].dp_feasible);
    EXPECT_NEAR(results[0].rip_width_u, 280.0, kWidthTol);
    EXPECT_NEAR(results[0].dp_width_u, 280.0, kWidthTol);
    EXPECT_NEAR(results[0].improvement_pct, 0.0, kPctTol);
    EXPECT_NEAR(results[1].rip_width_u, 50.0, kWidthTol);
    EXPECT_NEAR(results[1].dp_width_u, 50.0, kWidthTol);
  }
}

}  // namespace
}  // namespace rip::eval
