// Property tests for the RIP fallback guarantee (rip.hpp): the returned
// solution is the best feasible of stage 3 and stage 1, so RIP is
// feasible whenever the coarse DP is, never worse than it, and
// `used_fallback` records exactly when the answer came from stage 1.

#include <gtest/gtest.h>

#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "rc/buffered_chain.hpp"
#include "test_helpers.hpp"

namespace rip::core {
namespace {

struct Case {
  std::uint64_t seed;
  double factor;
};

class RipFallbackSweep : public ::testing::TestWithParam<Case> {
 protected:
  static const tech::Technology& technology() {
    static const tech::Technology tech = tech::make_tech180();
    return tech;
  }
};

TEST_P(RipFallbackSweep, NeverWorseThanCoarseDpAndFallbackFlagConsistent) {
  const auto& device = technology().device();
  const auto [seed, factor] = GetParam();

  const net::Net n = test::paper_net(seed);
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  const double tau_t = factor * md.tau_min_fs;

  const auto rip = rip_insert(n, device, tau_t);

  // Feasibility tracks stage 1 exactly: RIP succeeds iff the coarse DP does.
  EXPECT_EQ(rip.status == dp::Status::kOptimal,
            rip.coarse.status == dp::Status::kOptimal);
  if (rip.status != dp::Status::kOptimal) return;

  // Never worse than the stage-1 coarse DP.
  EXPECT_LE(rip.total_width_u, rip.coarse.total_width_u + 1e-9);

  if (rip.used_fallback) {
    // Fallback answers are the stage-1 solution verbatim.
    EXPECT_NEAR(rip.total_width_u, rip.coarse.total_width_u, 1e-9);
    EXPECT_NEAR(rip.delay_fs, rip.coarse.delay_fs, 1e-9);
    EXPECT_EQ(rip.solution.repeaters().size(),
              rip.coarse.solution.repeaters().size());
  } else {
    // Non-fallback answers come from a feasible stage 3 that beat (or
    // tied) stage 1.
    EXPECT_EQ(rip.final_dp.status, dp::Status::kOptimal);
    EXPECT_NEAR(rip.total_width_u, rip.final_dp.total_width_u, 1e-9);
    EXPECT_LE(rip.final_dp.total_width_u, rip.coarse.total_width_u + 1e-9);
  }

  // Either way the reported solution must actually meet timing.
  EXPECT_LE(rc::elmore_delay_fs(n, rip.solution, device),
            tau_t * (1.0 + 1e-9) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTargets, RipFallbackSweep,
    ::testing::Values(Case{401, 1.1}, Case{401, 1.5}, Case{401, 2.0},
                      Case{402, 1.1}, Case{402, 1.6}, Case{403, 1.2},
                      Case{404, 1.3}, Case{405, 1.8}, Case{406, 1.05},
                      Case{407, 1.45}));

// Forcing stage 3 to be infeasible must trip the fallback, not degrade
// the answer: restrict the fine library to a single 10u width, which
// cannot meet a tight target that the coarse 80u..400u library can.
TEST(RipFallback, FallbackSetWhenFinalStageInfeasible) {
  const auto tech = tech::make_tech180();
  const auto& device = tech.device();
  const net::Net n = test::paper_net(408);
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  const double tau_t = 1.1 * md.tau_min_fs;

  RipOptions crippled;
  crippled.fine_min_width_u = 10.0;
  crippled.fine_max_width_u = 10.0;

  const auto rip = rip_insert(n, device, tau_t, crippled);
  ASSERT_EQ(rip.status, dp::Status::kOptimal);
  ASSERT_NE(rip.final_dp.status, dp::Status::kOptimal)
      << "test premise broken: the 10u-only stage 3 met the tight target";
  EXPECT_TRUE(rip.used_fallback);
  EXPECT_NEAR(rip.total_width_u, rip.coarse.total_width_u, 1e-9);
  EXPECT_NEAR(rip.delay_fs, rip.coarse.delay_fs, 1e-9);
}

// On the default options with a generous target, stage 3 should win and
// the fallback flag must stay false (guards against the flag being set
// unconditionally).
TEST(RipFallback, FallbackClearWhenFinalStageWins) {
  const auto tech = tech::make_tech180();
  const auto& device = tech.device();
  const net::Net n = test::paper_net(409);
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  const double tau_t = 1.5 * md.tau_min_fs;

  const auto rip = rip_insert(n, device, tau_t);
  ASSERT_EQ(rip.status, dp::Status::kOptimal);
  ASSERT_EQ(rip.final_dp.status, dp::Status::kOptimal);
  ASSERT_LT(rip.final_dp.total_width_u, rip.coarse.total_width_u);
  EXPECT_FALSE(rip.used_fallback);
}

}  // namespace
}  // namespace rip::core
