// Unit tests for the util module: RNG, statistics, solvers, strings,
// tables.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/solver.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace rip {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(units::ns_to_fs(1.0), 1e6);
  EXPECT_DOUBLE_EQ(units::fs_to_ns(units::ns_to_fs(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(units::ps_to_fs(1.0), 1e3);
  EXPECT_DOUBLE_EQ(units::fs_to_ps(units::ps_to_fs(0.5)), 0.5);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child stream should not replay the parent stream.
  Rng b(5);
  b.next_u64();  // parent consumed one draw to split
  EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(Rng, InvalidBoundsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(RunningStats, SingleValueHasZeroStddev) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Percentile, EmptyAndBadQThrow) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
  EXPECT_THROW(percentile({1.0}, 1.1), Error);
}

// -------------------------------------------------------------- solvers

TEST(Bisect, FindsSqrtTwo) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, HandlesExactRootAtBound) {
  const auto r = bisect([](double x) { return x - 1.0; }, 1.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               Error);
}

TEST(NewtonRaphson, QuadraticConvergence) {
  const auto r = newton_raphson(
      [](double x) {
        return std::make_pair(x * x - 9.0, 2.0 * x);
      },
      5.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-9);
  EXPECT_LT(r.iterations, 10);
}

TEST(NewtonRaphson, SafeguardedByBracket) {
  // Start far away with a bracket; the safeguard must keep iterates in
  // [0, 10] and still converge to the root of a stiff function.
  NewtonOptions opts;
  opts.lo = 0.0;
  opts.hi = 10.0;
  const auto r = newton_raphson(
      [](double x) {
        const double f = std::tanh(x - 4.0);
        const double c = std::cosh(x - 4.0);
        return std::make_pair(f, 1.0 / (c * c));
      },
      9.9, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 4.0, 1e-6);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4 8 8] -> x = [1 2 3]
  const auto x = solve_tridiagonal({0, 1, 1}, {2, 2, 2}, {1, 1, 0},
                                   {4, 8, 8});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Tridiagonal, SingleElement) {
  const auto x = solve_tridiagonal({0}, {4}, {0}, {8});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Tridiagonal, RejectsSizeMismatchAndEmpty) {
  EXPECT_THROW(solve_tridiagonal({}, {}, {}, {}), Error);
  EXPECT_THROW(solve_tridiagonal({0}, {1, 2}, {0}, {1}), Error);
}

TEST(Tridiagonal, RejectsSingular) {
  EXPECT_THROW(solve_tridiagonal({0, 0}, {0, 1}, {0, 0}, {1, 1}), Error);
}

// -------------------------------------------------------------- strings

TEST(Strings, FmtF) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
}

TEST(Strings, FmtUnit) {
  EXPECT_EQ(fmt_unit(1.5, 2, "ns"), "1.50 ns");
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  const auto tokens = split_ws("  a  bb\tccc ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("ripnet 1", "ripnet"));
  EXPECT_FALSE(starts_with("rip", "ripnet"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "t"), 2.5);
  EXPECT_THROW(parse_double("abc", "t"), Error);
  EXPECT_THROW(parse_double("1.5x", "t"), Error);
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42", "t"), 42);
  EXPECT_THROW(parse_int("4.2", "t"), Error);
  EXPECT_THROW(parse_int("", "t"), Error);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a      long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  1"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, RejectsBadRows) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"only_one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

// ---------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(t.seconds(), 0.0);
  const double first = t.millis();
  EXPECT_GE(t.millis(), first);  // monotone
  t.reset();
  EXPECT_LT(t.millis(), first + 1000.0);
}

// ---------------------------------------------------------------- error

TEST(Error, RequireMacroCarriesContext) {
  try {
    RIP_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

}  // namespace
}  // namespace rip
