// Cross-metric validation: Elmore (the paper's model), D2M (the
// higher-order metric the paper says can be swapped in), and the
// backward-Euler transient simulator must tell a consistent story on
// randomized buffered designs. This is the evidence that optimizing
// under Elmore produces designs that are actually fast.

#include <cmath>

#include <gtest/gtest.h>

#include "net/generator.hpp"
#include "rc/buffered_chain.hpp"
#include "rc/delay_metrics.hpp"
#include "sim/transient.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rip {
namespace {

/// A random legal solution on a random paper net.
struct RandomDesign {
  net::Net net;
  net::RepeaterSolution solution;
};

RandomDesign random_design(Rng& rng) {
  const tech::Technology tech = tech::make_tech180();
  net::RandomNetConfig config;
  net::Net n = net::random_net(tech, config, rng, "metrics");
  const double total = n.total_length_um();
  const int reps = rng.uniform_int(1, 5);
  std::vector<net::Repeater> placed;
  for (int i = 0; i < reps; ++i) {
    double x = total * (i + 1) / (reps + 1) + rng.uniform(-300.0, 300.0);
    while (n.in_forbidden_zone(x)) x += 37.0;
    x = std::clamp(x, 50.0, total - 50.0);
    bool clash = false;
    for (const auto& p : placed) {
      if (std::abs(p.position_um - x) < 1.0) clash = true;
    }
    if (clash || n.in_forbidden_zone(x)) continue;
    placed.push_back(net::Repeater{x, rng.uniform(20.0, 300.0)});
  }
  return RandomDesign{std::move(n), net::RepeaterSolution(std::move(placed))};
}

class MetricSeeds : public ::testing::TestWithParam<int> {};

TEST_P(MetricSeeds, ElmoreBoundsD2mBoundsNothingBelowLn2) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7727);
  const auto device = tech::make_tech180().device();
  for (int round = 0; round < 4; ++round) {
    const RandomDesign d = random_design(rng);
    const double elmore = rc::elmore_delay_fs(d.net, d.solution, device);
    const double d2m = rc::chain_d2m_fs(d.net, d.solution, device);
    // D2M is bounded by Elmore and cannot drop below ln2 * Elmore for
    // passive RC stage responses.
    EXPECT_LE(d2m, elmore * (1.0 + 1e-9));
    EXPECT_GE(d2m, std::log(2.0) * elmore * 0.999);
  }
}

TEST_P(MetricSeeds, TransientSitsBetweenD2mScaleAndElmore) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104651);
  const auto device = tech::make_tech180().device();
  const RandomDesign d = random_design(rng);
  const double elmore = rc::elmore_delay_fs(d.net, d.solution, device);
  sim::TransientOptions opts;
  opts.max_section_um = 150.0;
  const double t50 = sim::chain_t50_fs(d.net, d.solution, device, opts);
  EXPECT_LE(t50, elmore * 1.01);
  EXPECT_GE(t50, std::log(2.0) * elmore * 0.8);
}

/// A random legal buffering of a given net.
net::RepeaterSolution random_solution(const net::Net& n, Rng& rng) {
  const double total = n.total_length_um();
  const int reps = rng.uniform_int(1, 5);
  std::vector<net::Repeater> placed;
  for (int i = 0; i < reps; ++i) {
    double x = total * (i + 1) / (reps + 1) + rng.uniform(-300.0, 300.0);
    while (n.in_forbidden_zone(x)) x += 37.0;
    x = std::clamp(x, 50.0, total - 50.0);
    bool clash = n.in_forbidden_zone(x);
    for (const auto& p : placed) {
      if (std::abs(p.position_um - x) < 1.0) clash = true;
    }
    if (!clash) placed.push_back(net::Repeater{x, rng.uniform(20.0, 300.0)});
  }
  return net::RepeaterSolution(std::move(placed));
}

TEST_P(MetricSeeds, AllMetricsAgreeOnClearlySeparatedPairs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  const tech::Technology tech = tech::make_tech180();
  const auto& device = tech.device();
  net::RandomNetConfig config;
  const net::Net n = net::random_net(tech, config, rng, "pairs");
  int compared = 0;
  for (int attempts = 0; attempts < 12 && compared < 4; ++attempts) {
    const auto sa = random_solution(n, rng);
    const auto sb = random_solution(n, rng);
    const double ea = rc::elmore_delay_fs(n, sa, device);
    const double eb = rc::elmore_delay_fs(n, sb, device);
    if (std::abs(ea - eb) < 0.15 * std::max(ea, eb)) continue;  // too close
    const bool elmore_says_a = ea < eb;
    const double da = rc::chain_d2m_fs(n, sa, device);
    const double db = rc::chain_d2m_fs(n, sb, device);
    EXPECT_EQ(da < db, elmore_says_a)
        << "D2M disagrees with a clear Elmore ordering";
    ++compared;
  }
  EXPECT_GT(compared, 0) << "never found a separated pair to compare";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricSeeds, ::testing::Range(1, 7));

}  // namespace
}  // namespace rip
