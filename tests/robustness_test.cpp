// Robustness and failure-injection tests (DESIGN.md §7): degenerate
// nets, empty candidate sets, multiple forbidden zones, and randomized
// cross-checks of the geometric integrals.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/chain_dp.hpp"
#include "dp/min_delay.hpp"
#include "net/candidates.hpp"
#include "net/generator.hpp"
#include "rc/buffered_chain.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rip {
namespace {

// --------------------------------------------------- degenerate inputs

TEST(Robustness, DpWithNoCandidatesReturnsUnbufferedAnswer) {
  const auto device = test::simple_device();
  const auto n = test::single_segment_net();  // unbuffered delay 33000 fs
  const dp::RepeaterLibrary lib({10.0});
  dp::ChainDpOptions opts;
  opts.mode = dp::Mode::kMinPower;
  opts.timing_target_fs = 40000.0;
  const auto ok = dp::run_chain_dp(n, device, lib, {}, opts);
  EXPECT_EQ(ok.status, dp::Status::kOptimal);
  EXPECT_TRUE(ok.solution.empty());
  opts.timing_target_fs = 20000.0;
  const auto bad = dp::run_chain_dp(n, device, lib, {}, opts);
  EXPECT_EQ(bad.status, dp::Status::kInfeasible);
}

TEST(Robustness, RipOnTinyNetWithCoarsePitch) {
  // Net shorter than the coarse candidate pitch: stage 1 sees no
  // candidates at all; RIP must still answer (unbuffered or infeasible),
  // never crash.
  const auto device = tech::make_tech180().device();
  const auto n = net::NetBuilder("tiny")
                     .driver(100)
                     .receiver(40)
                     .segment(150.0, 0.29, 0.29)
                     .build();
  const double unbuffered =
      rc::elmore_delay_fs(n, net::RepeaterSolution{}, device);
  const auto ok = core::rip_insert(n, device, unbuffered * 1.2);
  EXPECT_EQ(ok.status, dp::Status::kOptimal);
  EXPECT_TRUE(ok.solution.empty());
  const auto bad = core::rip_insert(n, device, unbuffered * 0.5);
  EXPECT_EQ(bad.status, dp::Status::kInfeasible);
}

TEST(Robustness, ZoneAlmostCoveringNet) {
  // A zone covering all but slivers at the ends: only boundary-adjacent
  // placements remain.
  const auto device = tech::make_tech180().device();
  const auto n = net::NetBuilder("sliver")
                     .driver(120)
                     .receiver(60)
                     .segment(12000.0, 0.29, 0.29)
                     .zone(600.0, 11400.0)
                     .build();
  const auto cands = net::uniform_candidates(n, 200.0);
  for (const double pos : cands) {
    EXPECT_TRUE(pos <= 600.0 || pos >= 11400.0);
  }
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  const auto r = core::rip_insert(n, device, 1.5 * md.tau_min_fs);
  if (r.status == dp::Status::kOptimal) {
    EXPECT_TRUE(r.solution.legal_for(n));
  }
}

TEST(Robustness, ManySmallZones) {
  const auto device = tech::make_tech180().device();
  net::NetBuilder b("holes");
  b.driver(120).receiver(60).segment(12000.0, 0.29, 0.29);
  for (double z = 1000.0; z < 11000.0; z += 2000.0) {
    b.zone(z, z + 800.0);
  }
  const auto n = b.build();
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  const auto r = core::rip_insert(n, device, 1.4 * md.tau_min_fs);
  ASSERT_EQ(r.status, dp::Status::kOptimal);
  EXPECT_TRUE(r.solution.legal_for(n));
  EXPECT_LE(rc::elmore_delay_fs(n, r.solution, device),
            1.4 * md.tau_min_fs + 1.0);
}

TEST(Robustness, MultiZoneGeneratorEndToEnd) {
  const auto tech = tech::make_tech180();
  net::RandomNetConfig config;
  config.zone_count = 3;
  config.zone_fraction_min = 0.05;
  config.zone_fraction_max = 0.12;
  Rng rng(31415);
  for (int i = 0; i < 4; ++i) {
    const auto n = net::random_net(tech, config, rng, "mz");
    ASSERT_EQ(n.zones().size(), 3u);
    const auto md =
        dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
    const auto r = core::rip_insert(n, tech.device(), 1.5 * md.tau_min_fs);
    if (r.status == dp::Status::kOptimal) {
      EXPECT_TRUE(r.solution.legal_for(n));
    }
  }
}

// ------------------------------------------------- randomized geometry

class GeometrySeeds : public ::testing::TestWithParam<int> {};

TEST_P(GeometrySeeds, IntegralsMatchNumericQuadrature) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const auto tech = tech::make_tech180();
  net::RandomNetConfig config;
  const auto n = net::random_net(tech, config, rng, "gq");
  const double total = n.total_length_um();

  for (int round = 0; round < 10; ++round) {
    double a = rng.uniform(0.0, total);
    double b = rng.uniform(0.0, total);
    if (a > b) std::swap(a, b);
    // Riemann sum with fine steps.
    const int steps = 2000;
    const double dl = (b - a) / steps;
    double r_sum = 0.0;
    double c_sum = 0.0;
    for (int k = 0; k < steps; ++k) {
      const double x = a + (k + 0.5) * dl;
      const auto wire = n.wire_at(x, net::Side::kDownstream);
      r_sum += wire.r_ohm_per_um * dl;
      c_sum += wire.c_ff_per_um * dl;
    }
    EXPECT_NEAR(n.resistance_between_ohm(a, b), r_sum,
                1e-3 * std::max(r_sum, 1.0));
    EXPECT_NEAR(n.capacitance_between_ff(a, b), c_sum,
                1e-3 * std::max(c_sum, 1.0));
  }
}

TEST_P(GeometrySeeds, PiecesBetweenConservesTotals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131071);
  const auto tech = tech::make_tech180();
  net::RandomNetConfig config;
  const auto n = net::random_net(tech, config, rng, "pc");
  const double total = n.total_length_um();
  for (int round = 0; round < 10; ++round) {
    double a = rng.uniform(0.0, total);
    double b = rng.uniform(0.0, total);
    if (a > b) std::swap(a, b);
    double len = 0.0;
    double r = 0.0;
    double c = 0.0;
    for (const auto& piece : n.pieces_between(a, b)) {
      len += piece.length_um;
      r += piece.length_um * piece.r_ohm_per_um;
      c += piece.length_um * piece.c_ff_per_um;
    }
    EXPECT_NEAR(len, b - a, 1e-9 * std::max(1.0, b - a));
    EXPECT_NEAR(r, n.resistance_between_ohm(a, b), 1e-9 * std::max(1.0, r));
    EXPECT_NEAR(c, n.capacitance_between_ff(a, b), 1e-9 * std::max(1.0, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometrySeeds, ::testing::Range(1, 7));

// --------------------------------------------- baseline infeasibility

TEST(Robustness, BaselineReportsMinDelayWhenInfeasible) {
  const auto device = tech::make_tech180().device();
  const auto n = test::paper_net(555);
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  // The g=10u library (caps at 100u) at a target right at tau_min.
  const auto r = core::run_baseline(
      n, device, md.tau_min_fs * 1.001,
      core::BaselineOptions::uniform_library(10, 10, 10));
  if (r.status == dp::Status::kInfeasible) {
    EXPECT_GT(r.min_delay_fs, md.tau_min_fs);
    // The best-effort solution is still legal.
    EXPECT_TRUE(r.min_delay_solution.legal_for(n));
  }
}

}  // namespace
}  // namespace rip
