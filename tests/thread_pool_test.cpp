// util::Scheduler and parallel_for_indexed: the contracts the batch
// evaluation engine relies on — every index runs exactly once under
// any ChunkPolicy, jobs=1 is the serial loop on the calling thread and
// never creates the scheduler, the persistent singleton is reused
// across calls (no per-call thread spin-up), and exceptions propagate
// to the caller. Each gtest case runs in its own process (ctest
// discovery), so singleton-lifecycle assertions are isolated.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip {
namespace {

TEST(ResolveJobs, LiteralForPositiveValues) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(64), 64);
}

TEST(ResolveJobs, ZeroAndNegativeMeanHardwareThreads) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(0), resolve_jobs(-1));
}

TEST(ParallelForIndexed, JobsOneRunsSeriallyOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  std::vector<std::thread::id> threads;
  parallel_for_indexed(16, 1, [&](std::size_t i) {
    order.push_back(i);
    threads.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "serial path must preserve index order";
  }
  for (const auto id : threads) EXPECT_EQ(id, caller);
}

TEST(ParallelForIndexed, JobsOneNeverCreatesTheScheduler) {
  ASSERT_FALSE(Scheduler::exists()) << "test process must start clean";
  std::vector<int> out(64, 0);
  for (int round = 0; round < 3; ++round) {
    parallel_for_indexed(out.size(), 1, [&](std::size_t i) { out[i] = 1; });
  }
  EXPECT_FALSE(Scheduler::exists())
      << "jobs=1 must bypass the persistent pool entirely";
}

TEST(ParallelForIndexed, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_indexed(kCount, 8, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndexed, ResultsMatchSerialAtAnyJobCount) {
  constexpr std::size_t kCount = 200;
  std::vector<double> serial(kCount);
  parallel_for_indexed(kCount, 1, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
  });
  for (const int jobs : {2, 4, 8}) {
    std::vector<double> parallel(kCount);
    parallel_for_indexed(kCount, jobs, [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ParallelForIndexed, EveryChunkPolicyCoversEveryIndexExactlyOnce) {
  // Counts chosen to not divide evenly by typical grains/participants.
  for (const std::size_t count : {1u, 2u, 7u, 64u, 257u}) {
    for (const auto mode :
         {ChunkPolicy::Mode::kStatic, ChunkPolicy::Mode::kDynamic,
          ChunkPolicy::Mode::kGuided}) {
      for (const std::size_t grain : {0u, 1u, 3u, 100u}) {
        ChunkPolicy policy;
        policy.mode = mode;
        policy.grain = grain;
        std::vector<std::atomic<int>> hits(count);
        parallel_for_indexed(count, 8, policy, [&](std::size_t i) {
          hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "count " << count << " mode " << static_cast<int>(mode)
              << " grain " << grain << " index " << i;
        }
      }
    }
  }
}

TEST(ParallelForIndexed, ChunkPoliciesAreBitIdenticalToSerial) {
  constexpr std::size_t kCount = 300;
  std::vector<double> serial(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    serial[i] = static_cast<double>(i) * 0.3 + 7.0;
  }
  for (const auto mode :
       {ChunkPolicy::Mode::kStatic, ChunkPolicy::Mode::kDynamic,
        ChunkPolicy::Mode::kGuided}) {
    ChunkPolicy policy;
    policy.mode = mode;
    policy.grain = 5;
    std::vector<double> out(kCount);
    parallel_for_indexed(kCount, 8, policy, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 0.3 + 7.0;
    });
    EXPECT_EQ(out, serial) << "mode " << static_cast<int>(mode);
  }
}

TEST(ParallelForIndexed, ZeroCountIsANoop) {
  bool ran = false;
  parallel_for_indexed(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForIndexed, ExceptionPropagatesFromWorker) {
  for (const int jobs : {1, 4}) {
    std::atomic<int> executed{0};
    try {
      parallel_for_indexed(64, jobs, [&](std::size_t i) {
        if (i == 17) throw std::runtime_error("boom at 17");
        executed.fetch_add(1);
      });
      FAIL() << "expected the worker exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 17");
    }
    EXPECT_LT(executed.load(), 64) << "failure must cancel remaining work";
  }
}

TEST(ParallelForIndexed, SerialPathStopsAtFirstFailure) {
  std::vector<std::size_t> ran;
  EXPECT_THROW(parallel_for_indexed(10, 1,
                                    [&](std::size_t i) {
                                      if (i == 3) throw Error("bad index");
                                      ran.push_back(i);
                                    }),
               Error);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Scheduler, GlobalReturnsTheSameInstance) {
  Scheduler& a = Scheduler::global();
  Scheduler& b = Scheduler::global();
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(Scheduler::exists());
}

TEST(Scheduler, WorkersPersistAcrossCalls) {
  // Calls at the same job count must reuse the pool: the worker count
  // after the first call is already sufficient and must not grow.
  // Bounds are relative to the pool earlier tests may have grown when
  // the whole binary runs in one process.
  const int prior =
      Scheduler::exists() ? Scheduler::global().worker_count() : 0;
  std::vector<int> out(100, -1);
  parallel_for_indexed(out.size(), 4, [&](std::size_t i) {
    out[i] = static_cast<int>(i);
  });
  const int after_first = Scheduler::global().worker_count();
  EXPECT_GE(after_first, 1);
  EXPECT_LE(after_first, std::max(prior, 3))
      << "jobs=4 needs at most 3 pool workers";
  for (int round = 0; round < 5; ++round) {
    parallel_for_indexed(out.size(), 4, [&](std::size_t i) {
      out[i] = static_cast<int>(i) + round;
    });
  }
  EXPECT_EQ(Scheduler::global().worker_count(), after_first)
      << "repeated calls must not spin up new threads";
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 4);
  }
}

TEST(Scheduler, PoolGrowsToTheLargestJobCount) {
  const int prior =
      Scheduler::exists() ? Scheduler::global().worker_count() : 0;
  std::vector<int> out(64, 0);
  parallel_for_indexed(out.size(), 2, [&](std::size_t i) { out[i] = 1; });
  const int small = Scheduler::global().worker_count();
  parallel_for_indexed(out.size(), 6, [&](std::size_t i) { out[i] = 2; });
  const int big = Scheduler::global().worker_count();
  EXPECT_GE(big, small);
  EXPECT_LE(big, std::max(prior, 5))
      << "jobs=6 needs at most 5 pool workers";
  // Shrinking the job count never shrinks the pool (workers are
  // parked, not churned).
  parallel_for_indexed(out.size(), 2, [&](std::size_t i) { out[i] = 3; });
  EXPECT_EQ(Scheduler::global().worker_count(), big);
}

TEST(Scheduler, MultipleThreadsExecuteChunksOfOneRegion) {
  // Whichever thread runs the first chunk holds it until a second
  // thread has run one — the 63 remaining single-index chunks are
  // poppable/stealable by every other participant, so a second thread
  // must arrive (caller and pool workers are all in the region). A
  // generous 5 s limit keeps a genuine failure from hanging.
  constexpr std::size_t kCount = 64;
  std::mutex mutex;
  std::set<std::thread::id> distinct;
  std::atomic<bool> first_claimed{false};
  ChunkPolicy policy;
  policy.grain = 1;
  parallel_for_indexed(kCount, 4, policy, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      distinct.insert(std::this_thread::get_id());
    }
    if (!first_claimed.exchange(true)) {
      for (int spin = 0; spin < 5000; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(mutex);
        if (distinct.size() >= 2) break;
      }
    }
  });
  EXPECT_GE(distinct.size(), 2u)
      << "work stealing never moved a chunk to a second thread";
}

TEST(Scheduler, MoreJobsThanWorkStillCompletes) {
  std::vector<int> out(3, 0);
  parallel_for_indexed(out.size(), 8, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 1, 1}));
}

// ------------------------------------------- submit_region (async hook)

namespace {

/// Submit a region and block until its completion callback fires —
/// the pattern the async evaluation service uses.
std::exception_ptr submit_and_wait(std::size_t count, int jobs,
                                   std::function<void(std::size_t)> fn,
                                   const ChunkPolicy& policy = {}) {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  Scheduler::global().submit_region(
      count, jobs, std::move(fn),
      [&](std::exception_ptr e) {
        // Notify under the lock: the waiter owns mutex/cv on its stack
        // and may destroy them as soon as it can observe done == true.
        std::lock_guard<std::mutex> lock(mutex);
        done = true;
        error = e;
        cv.notify_all();
      },
      policy);
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  return error;
}

}  // namespace

TEST(SchedulerSubmitRegion, EveryIndexRunsOnceAndCompletionFires) {
  constexpr std::size_t kCount = 300;
  std::vector<std::atomic<int>> hits(kCount);
  const auto error = submit_and_wait(kCount, 4, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  EXPECT_EQ(error, nullptr);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerSubmitRegion, CallerNeverParticipates) {
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mutex;
  std::set<std::thread::id> runners;
  // jobs=1 async still runs on a pool worker — the caller must be free
  // to keep submitting, which is the whole point of the hook.
  for (const int jobs : {1, 4}) {
    const auto error = submit_and_wait(64, jobs, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(mutex);
      runners.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(error, nullptr) << "jobs=" << jobs;
  }
  EXPECT_EQ(runners.count(caller), 0u)
      << "async regions must run entirely on pool workers";
}

TEST(SchedulerSubmitRegion, ZeroCountCompletesImmediately) {
  bool ran = false;
  bool completed = false;
  Scheduler::global().submit_region(
      0, 4, [&](std::size_t) { ran = true; },
      [&](std::exception_ptr e) {
        completed = true;
        EXPECT_EQ(e, nullptr);
      });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(completed) << "count=0 completes synchronously";
}

TEST(SchedulerSubmitRegion, WorkerExceptionReachesTheCallback) {
  std::atomic<int> executed{0};
  const auto error = submit_and_wait(128, 4, [&](std::size_t i) {
    if (i == 17) throw Error("async boom at 17");
    executed.fetch_add(1);
  });
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
    FAIL() << "expected the region's exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("async boom at 17"),
              std::string::npos)
        << "got: " << e.what();
  }
  EXPECT_LT(executed.load(), 127) << "failure must cancel remaining work";
}

TEST(SchedulerSubmitRegion, ManyRegionsInFlightAllComplete) {
  constexpr int kRegions = 50;
  constexpr std::size_t kCount = 40;
  std::vector<std::vector<int>> outs(
      kRegions, std::vector<int>(kCount, 0));
  std::mutex mutex;
  std::condition_variable cv;
  int done = 0;
  for (int r = 0; r < kRegions; ++r) {
    Scheduler::global().submit_region(
        kCount, 2,
        [&outs, r](std::size_t i) {
          outs[static_cast<std::size_t>(r)][i] = static_cast<int>(i) + r;
        },
        [&](std::exception_ptr e) {
          EXPECT_EQ(e, nullptr);
          // Notify under the lock — see submit_and_wait.
          std::lock_guard<std::mutex> lock(mutex);
          ++done;
          cv.notify_all();
        });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done == kRegions; });
  for (int r = 0; r < kRegions; ++r) {
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(outs[static_cast<std::size_t>(r)][i],
                static_cast<int>(i) + r)
          << "region " << r << " index " << i;
    }
  }
}

}  // namespace
}  // namespace rip
