// util::ThreadPool and parallel_for_indexed: the contracts the batch
// evaluation engine relies on — every index runs exactly once, jobs=1
// is the serial loop on the calling thread, queued tasks run FIFO and
// are drained on destruction, and exceptions propagate to the caller.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace rip {
namespace {

TEST(ResolveJobs, LiteralForPositiveValues) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(64), 64);
}

TEST(ResolveJobs, ZeroAndNegativeMeanHardwareThreads) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(0), resolve_jobs(-1));
}

TEST(ParallelForIndexed, JobsOneRunsSeriallyOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  std::vector<std::thread::id> threads;
  parallel_for_indexed(16, 1, [&](std::size_t i) {
    order.push_back(i);
    threads.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "serial path must preserve index order";
  }
  for (const auto id : threads) EXPECT_EQ(id, caller);
}

TEST(ParallelForIndexed, EveryIndexRunsExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_indexed(kCount, 8, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndexed, ResultsMatchSerialAtAnyJobCount) {
  constexpr std::size_t kCount = 200;
  std::vector<double> serial(kCount);
  parallel_for_indexed(kCount, 1, [&](std::size_t i) {
    serial[i] = static_cast<double>(i) * 1.5 + 1.0;
  });
  for (const int jobs : {2, 4, 8}) {
    std::vector<double> parallel(kCount);
    parallel_for_indexed(kCount, jobs, [&](std::size_t i) {
      parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ParallelForIndexed, ZeroCountIsANoop) {
  bool ran = false;
  parallel_for_indexed(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForIndexed, ExceptionPropagatesFromWorker) {
  for (const int jobs : {1, 4}) {
    std::atomic<int> executed{0};
    try {
      parallel_for_indexed(64, jobs, [&](std::size_t i) {
        if (i == 17) throw std::runtime_error("boom at 17");
        executed.fetch_add(1);
      });
      FAIL() << "expected the worker exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 17");
    }
    EXPECT_LT(executed.load(), 64) << "failure must cancel remaining work";
  }
}

TEST(ParallelForIndexed, SerialPathStopsAtFirstFailure) {
  std::vector<std::size_t> ran;
  EXPECT_THROW(parallel_for_indexed(10, 1,
                                    [&](std::size_t i) {
                                      if (i == 3) throw Error("bad index");
                                      ran.push_back(i);
                                    }),
               Error);
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  std::vector<int> order;
  {
    ThreadPool pool(1);
    for (int t = 0; t < 10; ++t) {
      pool.submit([&order, t] { order.push_back(t); });
    }
    // The destructor drains the queue before joining.
  }
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> out(100, -1);
    pool.parallel_for_indexed(out.size(), [&](std::size_t i) {
      out[i] = static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) + round);
    }
  }
}

TEST(ThreadPool, MoreWorkersThanWorkStillCompletes) {
  ThreadPool pool(8);
  std::vector<int> out(3, 0);
  pool.parallel_for_indexed(out.size(), [&](std::size_t i) {
    out[i] = 1;
  });
  EXPECT_EQ(out, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, RejectsNonPositiveWorkerCount) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

}  // namespace
}  // namespace rip
