// End-to-end integration tests: full pipeline determinism, file-format
// interchange between stages, and the SPICE export of a finished design.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "eval/workload.hpp"
#include "net/net_io.hpp"
#include "rc/buffered_chain.hpp"
#include "sim/spice.hpp"
#include "sim/transient.hpp"
#include "tech/tech_io.hpp"
#include "test_helpers.hpp"

namespace rip {
namespace {

TEST(Integration, FullPipelineIsDeterministic) {
  const auto tech = tech::make_tech180();
  const auto wl1 = eval::make_paper_workload(tech, 2, 42);
  const auto wl2 = eval::make_paper_workload(tech, 2, 42);
  for (std::size_t i = 0; i < wl1.size(); ++i) {
    const double tau1 = 1.5 * wl1[i].tau_min_fs;
    const double tau2 = 1.5 * wl2[i].tau_min_fs;
    ASSERT_DOUBLE_EQ(tau1, tau2);
    const auto r1 = core::rip_insert(wl1[i].net, tech.device(), tau1);
    const auto r2 = core::rip_insert(wl2[i].net, tech.device(), tau2);
    ASSERT_EQ(r1.status, r2.status);
    ASSERT_EQ(r1.solution.size(), r2.solution.size());
    EXPECT_DOUBLE_EQ(r1.total_width_u, r2.total_width_u);
    for (std::size_t j = 0; j < r1.solution.size(); ++j) {
      EXPECT_DOUBLE_EQ(r1.solution.repeaters()[j].position_um,
                       r2.solution.repeaters()[j].position_um);
      EXPECT_DOUBLE_EQ(r1.solution.repeaters()[j].width_u,
                       r2.solution.repeaters()[j].width_u);
    }
  }
}

TEST(Integration, NetSurvivesSerializationIntoSameRipResult) {
  const auto tech = tech::make_tech180();
  const net::Net original = test::paper_net(1001);

  std::ostringstream os;
  net::write_net(os, original);
  std::istringstream is(os.str());
  const net::Net parsed = net::read_net(is);

  const auto md = dp::min_delay(original, tech.device(),
                                {10.0, 400.0, 10.0, 200.0});
  const double tau_t = 1.4 * md.tau_min_fs;
  const auto r1 = core::rip_insert(original, tech.device(), tau_t);
  const auto r2 = core::rip_insert(parsed, tech.device(), tau_t);
  ASSERT_EQ(r1.status, r2.status);
  EXPECT_DOUBLE_EQ(r1.total_width_u, r2.total_width_u);
}

TEST(Integration, TechnologySurvivesFileRoundTrip) {
  const auto tech = tech::make_tech180();
  const std::string path = testing::TempDir() + "/rip_tech_roundtrip.txt";
  {
    std::ofstream out(path);
    tech::write_technology(out, tech);
  }
  const auto parsed = tech::read_technology_file(path);
  EXPECT_DOUBLE_EQ(parsed.device().rs_ohm, tech.device().rs_ohm);
  std::remove(path.c_str());
}

TEST(Integration, SpiceDeckForRipSolutionIsWellFormed) {
  const auto tech = tech::make_tech180();
  const net::Net n = test::paper_net(1002);
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  const auto rip = core::rip_insert(n, tech.device(), 1.4 * md.tau_min_fs);
  ASSERT_EQ(rip.status, dp::Status::kOptimal);

  std::ostringstream os;
  sim::write_spice_deck(os, n, rip.solution, tech.device());
  const std::string deck = os.str();
  // One controlled source per stage.
  std::size_t stages = 0;
  for (std::size_t pos = 0; (pos = deck.find("\nE", pos)) != std::string::npos;
       ++pos) {
    ++stages;
  }
  EXPECT_EQ(stages, rip.solution.size() + 1);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(Integration, ElmoreAndTransientAgreeOnRipVsNaive) {
  // RIP's buffered design must beat a naive single-repeater design in
  // both the Elmore metric and the transient simulation.
  const auto tech = tech::make_tech180();
  const net::Net n = test::paper_net(1003);
  const auto md = dp::min_delay(n, tech.device(), {10.0, 400.0, 10.0, 200.0});
  const auto rip = core::rip_insert(n, tech.device(), 1.1 * md.tau_min_fs);
  ASSERT_EQ(rip.status, dp::Status::kOptimal);
  ASSERT_FALSE(rip.solution.empty());

  double naive_pos = n.total_length_um() / 2;
  while (n.in_forbidden_zone(naive_pos)) naive_pos += 25.0;
  const net::RepeaterSolution naive({{naive_pos, 40.0}});

  const double rip_elmore = rc::elmore_delay_fs(n, rip.solution, tech.device());
  const double naive_elmore = rc::elmore_delay_fs(n, naive, tech.device());
  ASSERT_LT(rip_elmore, naive_elmore);

  sim::TransientOptions fast;
  fast.max_section_um = 150.0;
  const double rip_t50 = sim::chain_t50_fs(n, rip.solution, tech.device(), fast);
  const double naive_t50 = sim::chain_t50_fs(n, naive, tech.device(), fast);
  EXPECT_LT(rip_t50, naive_t50);
}

TEST(Integration, BaselineAndRipAgreeOnEasyCases) {
  // At very loose targets both RIP and the DP baseline should settle on
  // zero (or equal-width) solutions — no scheme invents repeaters it
  // does not need.
  const auto tech = tech::make_tech180();
  const net::Net n = test::paper_net(1004);
  const double unbuffered =
      rc::elmore_delay_fs(n, net::RepeaterSolution{}, tech.device());
  const double tau_t = unbuffered * 2.0;
  const auto rip = core::rip_insert(n, tech.device(), tau_t);
  const auto dp = core::run_baseline(
      n, tech.device(), tau_t, core::BaselineOptions::uniform_library(10, 20, 10));
  ASSERT_EQ(rip.status, dp::Status::kOptimal);
  ASSERT_EQ(dp.status, dp::Status::kOptimal);
  EXPECT_DOUBLE_EQ(rip.total_width_u, 0.0);
  EXPECT_DOUBLE_EQ(dp.total_width_u, 0.0);
}

}  // namespace
}  // namespace rip
