// Tests for Algorithm RIP (core module): stage orchestration, the
// feasibility/quality guarantees, option handling, and the baseline
// wrappers.

#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/rip.hpp"
#include "dp/min_delay.hpp"
#include "rc/buffered_chain.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace rip::core {
namespace {

struct PreparedNet {
  net::Net net;
  double tau_min_fs;
};

PreparedNet prepared_paper_net(std::uint64_t seed) {
  net::Net n = test::paper_net(seed);
  const auto device = tech::make_tech180().device();
  const auto md = dp::min_delay(n, device, {10.0, 400.0, 10.0, 200.0});
  return PreparedNet{std::move(n), md.tau_min_fs};
}

TEST(Rip, MeetsTimingAndStaysLegal) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(11);
  const double tau_t = 1.4 * pn.tau_min_fs;
  const auto r = rip_insert(pn.net, device, tau_t);
  ASSERT_EQ(r.status, dp::Status::kOptimal);
  EXPECT_TRUE(r.solution.legal_for(pn.net));
  const double check = rc::elmore_delay_fs(pn.net, r.solution, device);
  EXPECT_LE(check, tau_t + 1.0);
  EXPECT_NEAR(r.delay_fs, check, 1e-6 * check);
  EXPECT_NEAR(r.total_width_u, r.solution.total_width_u(), 1e-9);
}

TEST(Rip, NeverWorseThanItsCoarseStage) {
  const auto device = tech::make_tech180().device();
  for (const std::uint64_t seed : {21, 22, 23}) {
    const auto pn = prepared_paper_net(seed);
    for (const double factor : {1.1, 1.5, 1.9}) {
      const auto r = rip_insert(pn.net, device, factor * pn.tau_min_fs);
      if (r.status != dp::Status::kOptimal) continue;
      if (r.coarse.status == dp::Status::kOptimal) {
        EXPECT_LE(r.total_width_u, r.coarse.total_width_u + 1e-9)
            << "seed " << seed << " factor " << factor;
      }
    }
  }
}

TEST(Rip, FeasibleWheneverCoarseStageIs) {
  const auto device = tech::make_tech180().device();
  for (const std::uint64_t seed : {31, 32}) {
    const auto pn = prepared_paper_net(seed);
    for (const double factor : {1.05, 1.2, 1.6, 2.05}) {
      const auto r = rip_insert(pn.net, device, factor * pn.tau_min_fs);
      if (r.coarse.status == dp::Status::kOptimal) {
        EXPECT_EQ(r.status, dp::Status::kOptimal)
            << "seed " << seed << " factor " << factor;
      }
    }
  }
}

TEST(Rip, InfeasibleTargetReturnsBestEffort) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(41);
  // Far below tau_min: nothing can meet it.
  const auto r = rip_insert(pn.net, device, 0.2 * pn.tau_min_fs);
  EXPECT_EQ(r.status, dp::Status::kInfeasible);
  EXPECT_GT(r.delay_fs, 0.2 * pn.tau_min_fs);
}

TEST(Rip, RuntimeBreakdownIsConsistent) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(51);
  const auto r = rip_insert(pn.net, device, 1.3 * pn.tau_min_fs);
  EXPECT_GT(r.runtime_s, 0.0);
  EXPECT_LE(r.coarse_s + r.refine_s + r.final_s, r.runtime_s + 0.05);
}

TEST(Rip, DiagnosticsExposeAllStages) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(61);
  const auto r = rip_insert(pn.net, device, 1.3 * pn.tau_min_fs);
  ASSERT_EQ(r.status, dp::Status::kOptimal);
  EXPECT_EQ(r.coarse.status, dp::Status::kOptimal);
  if (!r.coarse.solution.empty() && r.refined.width_solve_ok) {
    EXPECT_EQ(r.refined.positions_um.size(), r.coarse.solution.size());
    // REFINE's continuous optimum lower-bounds the final discrete width
    // when the final stage succeeded without fallback.
    if (!r.used_fallback) {
      EXPECT_GE(r.total_width_u, r.refined.total_width_u - 1e-6);
    }
  }
}

TEST(Rip, RefineRepeatsAreAccepted) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(71);
  RipOptions opts;
  opts.refine_repeats = 2;
  const auto r = rip_insert(pn.net, device, 1.4 * pn.tau_min_fs, opts);
  EXPECT_EQ(r.status, dp::Status::kOptimal);
  RipOptions bad;
  bad.refine_repeats = 0;
  EXPECT_THROW(rip_insert(pn.net, device, 1.4 * pn.tau_min_fs, bad), Error);
}

TEST(Rip, RequiresPositiveTarget) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(81);
  EXPECT_THROW(rip_insert(pn.net, device, 0.0), Error);
  EXPECT_THROW(rip_insert(pn.net, device, -5.0), Error);
}

TEST(Rip, LooseTargetYieldsEmptySolution) {
  // If even the unbuffered net meets the target, RIP must return zero
  // repeaters (minimum power).
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(91);
  const double unbuffered =
      rc::elmore_delay_fs(pn.net, net::RepeaterSolution{}, device);
  const auto r = rip_insert(pn.net, device, unbuffered * 1.5);
  ASSERT_EQ(r.status, dp::Status::kOptimal);
  EXPECT_TRUE(r.solution.empty());
  EXPECT_DOUBLE_EQ(r.total_width_u, 0.0);
}

TEST(Rip, WindowOptionsShapeTheFinalCandidates) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(101);
  RipOptions tight_window;
  tight_window.window_half = 0;  // only the REFINE positions themselves
  const auto r =
      rip_insert(pn.net, device, 1.4 * pn.tau_min_fs, tight_window);
  EXPECT_EQ(r.status, dp::Status::kOptimal);
}

// -------------------------------------------------------------- baseline

TEST(Baseline, UniformLibraryMatchesPaperSpec) {
  const auto opts = BaselineOptions::uniform_library(10.0, 20.0, 10);
  EXPECT_EQ(opts.library.size(), 10u);
  EXPECT_DOUBLE_EQ(opts.library.min_width_u(), 10.0);
  EXPECT_DOUBLE_EQ(opts.library.max_width_u(), 190.0);
}

TEST(Baseline, RangeLibraryMatchesPaperSpec) {
  const auto opts = BaselineOptions::range_library(10.0, 400.0, 40.0);
  EXPECT_DOUBLE_EQ(opts.library.max_width_u(), 400.0);
}

TEST(Baseline, SolutionsVerifiedIndependently) {
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(111);
  const double tau_t = 1.5 * pn.tau_min_fs;
  const auto r = run_baseline(pn.net, device, tau_t,
                              BaselineOptions::uniform_library(10, 20, 10));
  if (r.status == dp::Status::kOptimal) {
    EXPECT_TRUE(r.solution.legal_for(pn.net));
    const double check = rc::elmore_delay_fs(pn.net, r.solution, device);
    EXPECT_LE(check, tau_t + 1.0);
  }
}

TEST(Baseline, CoarserGranularityNeverBeatsFiner) {
  // With the same library size, a coarser library is a subset-quality
  // search space: its optimum cannot be better *on average*. Check the
  // weaker per-case property that the finer library is feasible whenever
  // the coarser one is (its widths cover a superset range downward).
  const auto device = tech::make_tech180().device();
  const auto pn = prepared_paper_net(121);
  const double tau_t = 1.3 * pn.tau_min_fs;
  const auto fine = run_baseline(pn.net, device, tau_t,
                                 BaselineOptions::range_library(10, 400, 10));
  const auto coarse = run_baseline(
      pn.net, device, tau_t, BaselineOptions::range_library(10, 400, 40));
  if (coarse.status == dp::Status::kOptimal) {
    ASSERT_EQ(fine.status, dp::Status::kOptimal);
    EXPECT_LE(fine.total_width_u, coarse.total_width_u + 1e-9);
  }
}

}  // namespace
}  // namespace rip::core
