// Fault-injection and round-trip battery for the streaming netlist
// formats (net/netlist_io.hpp). The contract under test: every
// malformed input — truncated file, bad magic/version, oversized or
// lying length prefix, NaN/negative RC values, EOF mid-record — throws
// a typed NetlistError carrying the source name and record index, the
// reader never yields a partially parsed record, and well-formed files
// round-trip byte-identically (text) / value-identically (across
// formats).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "net/net_io.hpp"
#include "net/netlist_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace rip;
using net::NetlistError;
using net::NetlistFormat;
using net::NetlistReader;
using net::NetlistRecord;
using net::NetlistWriter;

net::Net tiny_net(const std::string& name = "n0") {
  return net::Net(name, 120.0, 60.0,
                  {net::Segment{1000.0, 0.1, 0.2, "metal4"},
                   net::Segment{800.0, 0.12, 0.22, "metal5"}},
                  {net::ForbiddenZone{300.0, 500.0}});
}

/// Serialize `count` tiny nets in the given format and return the bytes.
std::string valid_netlist(NetlistFormat format, int count = 3) {
  std::ostringstream os;
  NetlistWriter writer(os, format, "mem");
  for (int i = 0; i < count; ++i) {
    writer.add(tiny_net("n" + std::to_string(i)), 1000.0 * (i + 1));
  }
  writer.close();
  return os.str();
}

// ------------------------------------------- raw binary record forging
//
// The writer refuses to emit invalid values (Net validates on
// construction), so hostile payloads are forged by hand with the same
// little-endian encoding the format specifies.

std::string le16(std::uint16_t v) {
  std::string s;
  s.push_back(static_cast<char>(v & 0xff));
  s.push_back(static_cast<char>(v >> 8));
  return s;
}

std::string le32(std::uint32_t v) {
  std::string s;
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return s;
}

std::string lef64(double v) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &v, sizeof(double));
  return std::string(bytes, sizeof(double));
}

std::string binary_header() { return "RNLB" + le32(1); }

struct ForgedSegment {
  double len = 1000.0;
  double r = 0.1;
  double c = 0.2;
  std::string layer = "m4";
};

std::string forge_payload(const std::string& name, double driver,
                          double receiver, double tau,
                          const std::vector<ForgedSegment>& segments,
                          std::uint32_t zone_count = 0) {
  std::string p = le16(static_cast<std::uint16_t>(name.size())) + name +
                  lef64(driver) + lef64(receiver) + lef64(tau) +
                  le32(static_cast<std::uint32_t>(segments.size()));
  for (const auto& s : segments) {
    p += lef64(s.len) + lef64(s.r) + lef64(s.c) +
         le16(static_cast<std::uint16_t>(s.layer.size())) + s.layer;
  }
  p += le32(zone_count);
  return p;
}

std::string framed(const std::string& payload) {
  return le32(static_cast<std::uint32_t>(payload.size())) + payload;
}

/// Drive a reader over `bytes` until it throws; record how many COMPLETE
/// records came out first, and return the error.
struct FaultOutcome {
  int records_before_failure = 0;
  std::string message;
  std::int64_t record_index = -2;  // -2 = no throw happened
  std::string path;
};

FaultOutcome run_to_failure(const std::string& bytes,
                            const std::string& label = "fault.rnl") {
  FaultOutcome outcome;
  try {
    std::istringstream is(bytes);
    NetlistReader reader(is, label);
    while (auto record = reader.next()) {
      // A yielded record must always be complete and valid — the Net
      // constructor ran, so just sanity-check the invariant cheaply.
      EXPECT_FALSE(record->net.name().empty());
      EXPECT_FALSE(record->net.segments().empty());
      ++outcome.records_before_failure;
    }
  } catch (const NetlistError& e) {
    outcome.message = e.what();
    outcome.record_index = e.record_index();
    outcome.path = e.path();
  }
  return outcome;
}

// ------------------------------------------------------ fault injection

struct FaultCase {
  const char* name;
  std::string bytes;
  const char* expect_substring;  ///< must appear in what()
  std::int64_t expect_index;     ///< NetlistError::record_index()
  int expect_records;            ///< complete records before the throw
};

class NetlistFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(NetlistFaultTest, TypedErrorNeverPartialRecord) {
  const FaultCase& fault = GetParam();
  const FaultOutcome outcome = run_to_failure(fault.bytes);
  ASSERT_NE(outcome.record_index, -2)
      << fault.name << ": expected a NetlistError, none was thrown";
  EXPECT_NE(outcome.message.find(fault.expect_substring), std::string::npos)
      << fault.name << ": message was: " << outcome.message;
  EXPECT_EQ(outcome.record_index, fault.expect_index) << fault.name;
  EXPECT_EQ(outcome.records_before_failure, fault.expect_records)
      << fault.name;
  EXPECT_EQ(outcome.path, "fault.rnl") << fault.name;
  // The full rendered format: "<path>: record <i>: ..." past the header.
  if (fault.expect_index >= 0) {
    const std::string prefix =
        "fault.rnl: record " + std::to_string(fault.expect_index) + ": ";
    EXPECT_EQ(outcome.message.rfind(prefix, 0), 0u)
        << fault.name << ": message was: " << outcome.message;
  } else {
    EXPECT_EQ(outcome.message.rfind("fault.rnl: ", 0), 0u) << fault.name;
  }
}

std::vector<FaultCase> text_faults() {
  const std::string good = valid_netlist(NetlistFormat::kText);
  std::vector<FaultCase> faults;
  faults.push_back({"empty_file", "", "empty netlist file", -1, 0});
  faults.push_back({"bad_magic", "ripnet 1\nnet x\n", "bad netlist magic",
                    -1, 0});
  faults.push_back({"bad_version", "ripnetlist 2\n",
                    "unsupported ripnetlist version", -1, 0});
  // Cut the file in the middle of the second record: keep the header,
  // record 0, and the first two lines of record 1.
  {
    std::string cut = good;
    std::size_t pos = cut.find("net n1");
    pos = cut.find('\n', cut.find('\n', pos) + 1) + 1;
    faults.push_back({"eof_mid_record", cut.substr(0, pos),
                      "unexpected EOF inside record (missing 'end')", 1, 1});
  }
  faults.push_back({"nan_capacitance",
                    "ripnetlist 1\nnet x\ndriver 100\nreceiver 50\n"
                    "segment len_um 1000 r_ohm_per_um 0.1 c_ff_per_um nan\n"
                    "end\n",
                    "capacitance (c_ff_per_um) must be finite and positive",
                    0, 0});
  faults.push_back({"negative_capacitance",
                    "ripnetlist 1\nnet x\ndriver 100\nreceiver 50\n"
                    "segment len_um 1000 r_ohm_per_um 0.1 c_ff_per_um -0.2\n"
                    "end\n",
                    "capacitance (c_ff_per_um) must be finite and positive",
                    0, 0});
  faults.push_back({"negative_driver",
                    "ripnetlist 1\nnet x\ndriver -5\nreceiver 50\n"
                    "segment len_um 1000 r_ohm_per_um 0.1 c_ff_per_um 0.2\n"
                    "end\n",
                    "driver width must be finite and positive", 0, 0});
  faults.push_back({"missing_driver",
                    "ripnetlist 1\nnet x\nreceiver 50\n"
                    "segment len_um 1000 r_ohm_per_um 0.1 c_ff_per_um 0.2\n"
                    "end\n",
                    "missing a 'driver' line", 0, 0});
  faults.push_back({"stray_directive_at_boundary",
                    "ripnetlist 1\ndriver 100\n",
                    "expected 'net <name>' at a record boundary", 0, 0});
  faults.push_back({"unknown_directive",
                    "ripnetlist 1\nnet x\nfrobnicate 3\nend\n",
                    "unknown directive 'frobnicate'", 0, 0});
  faults.push_back({"odd_segment_kv",
                    "ripnetlist 1\nnet x\ndriver 100\nreceiver 50\n"
                    "segment len_um 1000 r_ohm_per_um\nend\n",
                    "odd segment key/value list", 0, 0});
  faults.push_back({"no_segments",
                    "ripnetlist 1\nnet x\ndriver 100\nreceiver 50\nend\n",
                    "record has no segments", 0, 0});
  return faults;
}

std::vector<FaultCase> binary_faults() {
  const std::string good = valid_netlist(NetlistFormat::kBinary);
  const std::string record1 =
      framed(forge_payload("x", 100.0, 50.0, 0.0, {ForgedSegment{}}));
  std::vector<FaultCase> faults;
  {
    std::string bad = good;
    bad[0] = 'X';  // not RNLB and not "ripnetlist": the text fallback
    faults.push_back({"corrupt_magic", bad, "bad netlist magic", -1, 0});
  }
  {
    std::string bad = good;
    bad[4] = 9;  // version 9
    faults.push_back({"bad_version", bad,
                      "unsupported binary netlist version 9", -1, 0});
  }
  faults.push_back({"truncated_header", good.substr(0, 6),
                    "truncated binary netlist header", -1, 0});
  faults.push_back({"truncated_length_prefix",
                    binary_header() + record1 + le32(44).substr(0, 2),
                    "truncated record length prefix", 1, 1});
  faults.push_back(
      {"oversized_length_prefix",
       binary_header() + le32(net::kMaxNetlistRecordBytes + 1),
       "oversized record length prefix", 0, 0});
  faults.push_back({"zero_length_prefix", binary_header() + le32(0),
                    "empty record payload", 0, 0});
  {
    // Record 1's payload cut short on disk.
    const std::string cut =
        binary_header() + record1 + record1.substr(0, record1.size() - 7);
    faults.push_back({"eof_mid_payload", cut,
                      "unexpected EOF inside record payload", 1, 1});
  }
  {
    // The length prefix claims 4 more bytes than the name+count fields
    // can satisfy: the cursor must trip, not read out of bounds.
    std::string payload = forge_payload("x", 100.0, 50.0, 0.0, {});
    payload = payload.substr(0, payload.size() - 4);
    faults.push_back({"lying_payload_cursor",
                      binary_header() + framed(payload),
                      "truncated record payload while reading", 0, 0});
  }
  {
    // Segment count far beyond what the payload could hold.
    std::string payload = le16(1) + "x" + lef64(100.0) + lef64(50.0) +
                          lef64(0.0) + le32(1000000);
    faults.push_back({"lying_segment_count",
                      binary_header() + framed(payload),
                      "segment count 1000000 exceeds record payload", 0, 0});
  }
  {
    std::string payload =
        forge_payload("x", 100.0, 50.0, 0.0, {ForgedSegment{}}) + "JUNK";
    faults.push_back({"trailing_payload_bytes",
                      binary_header() + framed(payload),
                      "trailing bytes", 0, 0});
  }
  {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::string payload = forge_payload(
        "x", 100.0, 50.0, 0.0, {ForgedSegment{1000.0, 0.1, nan, "m4"}});
    faults.push_back({"nan_capacitance", binary_header() + framed(payload),
                      "capacitance (c_ff_per_um) must be finite and positive",
                      0, 0});
  }
  {
    const std::string payload = forge_payload(
        "x", 100.0, 50.0, 0.0, {ForgedSegment{-10.0, 0.1, 0.2, "m4"}});
    faults.push_back({"negative_length", binary_header() + framed(payload),
                      "length (len_um) must be finite and positive", 0, 0});
  }
  {
    const std::string payload =
        forge_payload("", 100.0, 50.0, 0.0, {ForgedSegment{}});
    faults.push_back({"empty_name", binary_header() + framed(payload),
                      "empty net name", 0, 0});
  }
  {
    const double inf = std::numeric_limits<double>::infinity();
    const std::string payload =
        forge_payload("x", 100.0, 50.0, inf, {ForgedSegment{}});
    faults.push_back({"inf_target", binary_header() + framed(payload),
                      "timing target must be finite", 0, 0});
  }
  return faults;
}

INSTANTIATE_TEST_SUITE_P(Text, NetlistFaultTest,
                         ::testing::ValuesIn(text_faults()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });
INSTANTIATE_TEST_SUITE_P(Binary, NetlistFaultTest,
                         ::testing::ValuesIn(binary_faults()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ----------------------------------------------------------- round trip

void expect_same_net(const net::Net& a, const net::Net& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.driver_width_u(), b.driver_width_u());
  EXPECT_EQ(a.receiver_width_u(), b.receiver_width_u());
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].length_um, b.segments()[i].length_um);
    EXPECT_EQ(a.segments()[i].r_ohm_per_um, b.segments()[i].r_ohm_per_um);
    EXPECT_EQ(a.segments()[i].c_ff_per_um, b.segments()[i].c_ff_per_um);
    EXPECT_EQ(a.segments()[i].layer, b.segments()[i].layer);
  }
  ASSERT_EQ(a.zones().size(), b.zones().size());
  for (std::size_t i = 0; i < a.zones().size(); ++i) {
    EXPECT_EQ(a.zones()[i].start_um, b.zones()[i].start_um);
    EXPECT_EQ(a.zones()[i].end_um, b.zones()[i].end_um);
  }
}

/// Random nets with awkward (non-representable-in-decimal) doubles.
std::vector<NetlistRecord> random_records(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NetlistRecord> records;
  for (int i = 0; i < count; ++i) {
    const int segment_count = rng.uniform_int(1, 5);
    std::vector<net::Segment> segments;
    for (int s = 0; s < segment_count; ++s) {
      segments.push_back(net::Segment{
          rng.uniform(10.0, 5000.0), rng.uniform(0.01, 0.5),
          rng.uniform(0.05, 0.5), rng.bernoulli(0.3) ? "" : "metal4"});
    }
    std::vector<net::ForbiddenZone> zones;
    if (rng.bernoulli(0.5)) {
      const double start = rng.uniform(1.0, 100.0);
      zones.push_back(net::ForbiddenZone{start, start + rng.uniform(1.0, 50.0)});
    }
    net::Net n("net_" + std::to_string(i), rng.uniform(20.0, 400.0),
               rng.uniform(10.0, 200.0), std::move(segments),
               std::move(zones));
    records.push_back(
        NetlistRecord{std::move(n),
                      rng.bernoulli(0.5) ? rng.uniform(1e3, 1e7) : 0.0});
  }
  return records;
}

std::string write_all(const std::vector<NetlistRecord>& records,
                      NetlistFormat format) {
  std::ostringstream os;
  NetlistWriter writer(os, format, "mem");
  for (const auto& r : records) writer.add(r.net, r.tau_t_fs);
  writer.close();
  return os.str();
}

std::vector<NetlistRecord> read_all(const std::string& bytes,
                                    NetlistFormat expect_format) {
  std::istringstream is(bytes);
  NetlistReader reader(is, "mem");
  EXPECT_EQ(reader.format(), expect_format);
  std::vector<NetlistRecord> records;
  while (auto record = reader.next()) records.push_back(std::move(*record));
  return records;
}

TEST(NetlistRoundTrip, TextIsByteIdentical) {
  const auto records = random_records(25, 42);
  const std::string once = write_all(records, NetlistFormat::kText);
  const std::string twice =
      write_all(read_all(once, NetlistFormat::kText), NetlistFormat::kText);
  EXPECT_EQ(once, twice);
}

TEST(NetlistRoundTrip, BinaryIsByteIdentical) {
  const auto records = random_records(25, 43);
  const std::string once = write_all(records, NetlistFormat::kBinary);
  const std::string twice = write_all(read_all(once, NetlistFormat::kBinary),
                                      NetlistFormat::kBinary);
  EXPECT_EQ(once, twice);
}

TEST(NetlistRoundTrip, CrossFormatIsValueExact) {
  const auto records = random_records(25, 44);
  // original -> text -> parse -> binary -> parse: every double exact.
  const auto via_text = read_all(write_all(records, NetlistFormat::kText),
                                 NetlistFormat::kText);
  const auto via_both = read_all(write_all(via_text, NetlistFormat::kBinary),
                                 NetlistFormat::kBinary);
  ASSERT_EQ(via_both.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    expect_same_net(records[i].net, via_both[i].net);
    EXPECT_EQ(records[i].tau_t_fs, via_both[i].tau_t_fs);
  }
}

TEST(NetlistRoundTrip, FormatDoubleExactRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    // Bit-pattern soup biased toward ordinary magnitudes.
    double v;
    if (i % 3 == 0) {
      v = rng.uniform(-1e9, 1e9);
    } else {
      const std::uint64_t bits = rng.next_u64();
      std::memcpy(&v, &bits, sizeof(v));
      if (!std::isfinite(v)) continue;
    }
    const std::string s = net::format_double_exact(v);
    const double parsed = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << s;
    EXPECT_EQ(net::format_double_exact(parsed), s);
  }
}

// ----------------------------------------------------- offsets and seek

class NetlistSeekTest : public ::testing::TestWithParam<NetlistFormat> {};

TEST_P(NetlistSeekTest, SeekResumesAtRecordBoundary) {
  const auto records = random_records(10, 45);
  const std::string bytes = write_all(records, GetParam());

  std::istringstream first(bytes);
  NetlistReader reader(first, "mem");
  EXPECT_EQ(reader.index(), 0u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(reader.next().has_value());
  const std::uint64_t offset = reader.offset();
  const std::uint64_t index = reader.index();
  EXPECT_EQ(index, 4u);
  std::vector<NetlistRecord> tail_a;
  while (auto r = reader.next()) tail_a.push_back(std::move(*r));

  std::istringstream second(bytes);
  NetlistReader resumed(second, "mem");
  resumed.seek(offset, index);
  EXPECT_EQ(resumed.index(), 4u);
  std::vector<NetlistRecord> tail_b;
  while (auto r = resumed.next()) tail_b.push_back(std::move(*r));

  ASSERT_EQ(tail_a.size(), 6u);
  ASSERT_EQ(tail_b.size(), tail_a.size());
  for (std::size_t i = 0; i < tail_a.size(); ++i) {
    expect_same_net(tail_a[i].net, tail_b[i].net);
    EXPECT_EQ(tail_a[i].tau_t_fs, tail_b[i].tau_t_fs);
  }
}

TEST_P(NetlistSeekTest, RejectsOffsetsOffRecordBoundaries) {
  const auto records = random_records(10, 45);
  const std::string bytes = write_all(records, GetParam());

  // Map the true record boundaries: post-header, then one per record
  // (the last boundary is clean EOF).
  std::istringstream scan(bytes);
  NetlistReader scanner(scan, "mem");
  std::vector<std::uint64_t> boundaries{scanner.offset()};
  while (scanner.next().has_value()) boundaries.push_back(scanner.offset());
  ASSERT_EQ(boundaries.size(), 11u);
  ASSERT_GT(boundaries.front(), 0u);  // both formats carry a header
  ASSERT_EQ(boundaries.back(), bytes.size());

  const auto expect_rejected = [&](std::uint64_t offset) {
    SCOPED_TRACE("offset " + std::to_string(offset));
    std::istringstream is(bytes);
    NetlistReader reader(is, "mem");
    try {
      reader.seek(offset, 1);
      FAIL() << "seek accepted a non-boundary offset";
    } catch (const NetlistError& e) {
      EXPECT_NE(std::string(e.what()).find("invalid resume offset"),
                std::string::npos)
          << e.what();
      EXPECT_FALSE(e.recoverable());
    }
  };

  expect_rejected(bytes.size() + 1);       // past EOF
  expect_rejected(bytes.size() + 4096);    // far past EOF
  expect_rejected(0);                      // inside the file header
  expect_rejected(boundaries.front() - 1); // last header byte
  expect_rejected(boundaries[1] + 2);      // inside a record
  expect_rejected(boundaries[5] + 2);      // inside a later record

  // The EOF boundary itself is a valid resume cut: a fully processed
  // input resumes straight to "no more records".
  std::istringstream is(bytes);
  NetlistReader reader(is, "mem");
  reader.seek(boundaries.back(), 10);
  EXPECT_EQ(reader.index(), 10u);
  EXPECT_FALSE(reader.next().has_value());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, NetlistSeekTest,
                         ::testing::Values(NetlistFormat::kText,
                                           NetlistFormat::kBinary),
                         [](const auto& info) {
                           return info.param == NetlistFormat::kText
                                      ? "text"
                                      : "binary";
                         });

// --------------------------------------- recoverable-read regressions
//
// The quarantine contract the streaming driver builds on: when a
// record's framing held but its content is invalid, the reader has
// already advanced to the next boundary before throwing, so next() may
// be called again and only the bad record is lost.

TEST(NetlistRecoverableRead, MalformedRecordCanBeSkippedAndReadingContinues) {
  const std::string good_a =
      framed(forge_payload("good_a", 120.0, 60.0, 1000.0, {{}}));
  const std::string bad = framed(forge_payload(
      "bad", 120.0, 60.0, 1000.0,
      {{1000.0, std::numeric_limits<double>::quiet_NaN(), 0.2, "m4"}}));
  const std::string good_b =
      framed(forge_payload("good_b", 120.0, 60.0, 2000.0, {{}}));
  std::istringstream is(binary_header() + good_a + bad + good_b);
  NetlistReader reader(is, "mem");

  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->net.name(), "good_a");

  try {
    reader.next();
    FAIL() << "malformed record was not rejected";
  } catch (const NetlistError& e) {
    EXPECT_TRUE(e.recoverable());
    EXPECT_EQ(e.kind(), net::NetlistErrorKind::kMalformed);
    EXPECT_STREQ(e.error_class(), "malformed");
    EXPECT_EQ(e.record_index(), 1);
  }

  // The reader sits on the next boundary: the tail still parses.
  const auto third = reader.next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->net.name(), "good_b");
  EXPECT_EQ(third->tau_t_fs, 2000.0);
  EXPECT_EQ(reader.index(), 3u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(NetlistRecoverableRead, FramingDamageIsNeverRecoverable) {
  // A length prefix lying beyond EOF: past it there is no trustworthy
  // boundary, so the error must not invite another next() call.
  std::istringstream is(binary_header() + le32(100000));
  NetlistReader reader(is, "mem");
  try {
    reader.next();
    FAIL() << "truncated record was not rejected";
  } catch (const NetlistError& e) {
    EXPECT_FALSE(e.recoverable());
    EXPECT_EQ(e.kind(), net::NetlistErrorKind::kFraming);
    EXPECT_STREQ(e.error_class(), "framing");
  }
}

// ------------------------------------------------------------ writer API

TEST(NetlistWriter, AddAfterCloseThrows) {
  std::ostringstream os;
  NetlistWriter writer(os, NetlistFormat::kText, "mem");
  writer.add(tiny_net());
  EXPECT_EQ(writer.count(), 1u);
  writer.close();
  EXPECT_THROW(writer.add(tiny_net()), NetlistError);
}

TEST(NetlistWriter, RejectsBadTarget) {
  std::ostringstream os;
  NetlistWriter writer(os, NetlistFormat::kBinary, "mem");
  EXPECT_THROW(writer.add(tiny_net(), -1.0), NetlistError);
  EXPECT_THROW(
      writer.add(tiny_net(), std::numeric_limits<double>::quiet_NaN()),
      NetlistError);
}

// ------------------------------------- net_io source-context regression
//
// Satellite of the streaming PR: single-net read errors must name their
// source. These pin the exact message format.

TEST(NetIoErrorContext, StreamErrorsCarrySourceName) {
  std::istringstream is("ripnet 1\nbogus_directive 3\n");
  try {
    net::read_net(is, "widget.net");
    FAIL() << "expected rip::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "widget.net: unknown directive 'bogus_directive' at line 2");
  }
}

TEST(NetIoErrorContext, NoSourceKeepsLegacyMessage) {
  std::istringstream is("ripnet 1\nbogus_directive 3\n");
  try {
    net::read_net(is);
    FAIL() << "expected rip::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown directive 'bogus_directive' at line 2");
  }
}

TEST(NetIoErrorContext, MissingFileNamesPath) {
  try {
    net::read_net_file("/nonexistent/nets/x.net");
    FAIL() << "expected rip::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot open net file: /nonexistent/nets/x.net");
  }
}

TEST(NetlistErrorFormat, HeaderAndRecordRenderings) {
  const NetlistError header_error("big.rnlb", -1, "bad header");
  EXPECT_EQ(std::string(header_error.what()), "big.rnlb: bad header");
  EXPECT_EQ(header_error.record_index(), -1);
  const NetlistError record_error("big.rnlb", 17, "bad segment");
  EXPECT_EQ(std::string(record_error.what()),
            "big.rnlb: record 17: bad segment");
  EXPECT_EQ(record_error.path(), "big.rnlb");
  EXPECT_EQ(record_error.record_index(), 17);
}

}  // namespace
