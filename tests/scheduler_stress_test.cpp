// Adversarial workloads for the persistent work-stealing scheduler:
// one giant case among hundreds of tiny ones (the shape of the paper's
// sweep, where fine-grained hybrid RIP cases are 10-100x slower than
// coarse chains), exceptions thrown while other chunks are being
// stolen, nested parallel_for_indexed calls from inside workers, and a
// 10k-task soak. Every scenario is run at jobs 1/2/8 and asserts
// completion (no lost tasks — every index exactly once), bit-identical
// results, and lowest-index exception propagation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace rip {
namespace {

const std::vector<int> kJobLadder = {1, 2, 8};

/// Burn a little deterministic CPU so chunks overlap in time.
double spin_work(std::size_t iterations) {
  double acc = 0;
  for (std::size_t s = 0; s < iterations; ++s) {
    acc += static_cast<double>(s % 13) * 1e-9;
  }
  return acc;
}

TEST(SchedulerStress, OneGiantAmongHundredsOfTinyTasks) {
  constexpr std::size_t kCount = 400;
  constexpr std::size_t kGiant = 37;
  auto cost = [](std::size_t i) {
    return i == kGiant ? 200000u : 500u;
  };
  std::vector<double> serial(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    serial[i] = spin_work(cost(i)) + static_cast<double>(i);
  }
  for (const int jobs : kJobLadder) {
    std::vector<double> out(kCount, -1.0);
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for_indexed(kCount, jobs, [&](std::size_t i) {
      hits[i].fetch_add(1);
      out[i] = spin_work(cost(i)) + static_cast<double>(i);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index " << i;
    }
    EXPECT_EQ(out, serial) << "jobs=" << jobs;
  }
}

TEST(SchedulerStress, GiantFirstIndexDoesNotSerializeTheRest) {
  // The giant landing on chunk 0 (the caller's first pop) is the worst
  // case for static partitioning — stealing must redistribute the
  // caller's remaining slice. Correctness assertion only; timing is
  // covered by bench_parallel.
  constexpr std::size_t kCount = 300;
  for (const int jobs : kJobLadder) {
    std::vector<std::atomic<int>> hits(kCount);
    ChunkPolicy policy;
    policy.mode = ChunkPolicy::Mode::kStatic;
    parallel_for_indexed(kCount, jobs, policy, [&](std::size_t i) {
      spin_work(i == 0 ? 300000u : 300u);
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index " << i;
    }
  }
}

TEST(SchedulerStress, ExceptionMidStealPropagatesLowestRunIndex) {
  // Every index throws, so the propagated error must carry the lowest
  // index that actually started — exactly the attempted minimum.
  constexpr std::size_t kCount = 256;
  for (const int jobs : kJobLadder) {
    std::atomic<std::size_t> lowest_attempted{
        std::numeric_limits<std::size_t>::max()};
    ChunkPolicy policy;
    policy.grain = 1;  // maximal stealing traffic
    try {
      parallel_for_indexed(kCount, jobs, policy, [&](std::size_t i) {
        std::size_t seen = lowest_attempted.load();
        while (i < seen &&
               !lowest_attempted.compare_exchange_weak(seen, i)) {
        }
        spin_work(2000);  // let other chunks be mid-steal when we throw
        throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      const std::string expected =
          "boom " + std::to_string(lowest_attempted.load());
      EXPECT_EQ(e.what(), expected) << "jobs=" << jobs;
    }
  }
}

TEST(SchedulerStress, ExceptionAmongHeavyNeighborsCancelsRemainingWork) {
  constexpr std::size_t kCount = 500;
  for (const int jobs : kJobLadder) {
    std::atomic<int> executed{0};
    try {
      parallel_for_indexed(kCount, jobs, [&](std::size_t i) {
        if (i == 100) throw std::runtime_error("mid-sweep failure");
        spin_work(1000);
        executed.fetch_add(1);
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "mid-sweep failure");
    }
    EXPECT_LT(executed.load(), static_cast<int>(kCount))
        << "cancellation must skip unclaimed work at jobs=" << jobs;
  }
}

TEST(SchedulerStress, NestedParallelForCompletesWithoutDeadlock) {
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 50;
  for (const int outer_jobs : kJobLadder) {
    for (const int inner_jobs : {1, 4}) {
      std::vector<int> out(kOuter * kInner, -1);
      parallel_for_indexed(kOuter, outer_jobs, [&](std::size_t o) {
        parallel_for_indexed(kInner, inner_jobs, [&](std::size_t i) {
          out[o * kInner + i] = static_cast<int>(o * kInner + i);
        });
      });
      for (std::size_t k = 0; k < out.size(); ++k) {
        ASSERT_EQ(out[k], static_cast<int>(k))
            << "outer_jobs=" << outer_jobs << " inner_jobs=" << inner_jobs;
      }
    }
  }
}

TEST(SchedulerStress, NestedExceptionPropagatesThroughBothLevels) {
  for (const int jobs : {2, 8}) {
    std::atomic<int> outer_done{0};
    try {
      parallel_for_indexed(6, jobs, [&](std::size_t o) {
        parallel_for_indexed(20, 4, [&](std::size_t i) {
          if (o == 3 && i == 7) {
            throw std::runtime_error("inner boom");
          }
        });
        outer_done.fetch_add(1);
      });
      FAIL() << "expected the inner exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "inner boom");
    }
    EXPECT_LT(outer_done.load(), 6);
  }
}

TEST(SchedulerStress, TenThousandTaskSoak) {
  constexpr std::size_t kCount = 10000;
  for (const int jobs : kJobLadder) {
    for (const auto mode :
         {ChunkPolicy::Mode::kStatic, ChunkPolicy::Mode::kDynamic,
          ChunkPolicy::Mode::kGuided}) {
      ChunkPolicy policy;
      policy.mode = mode;
      std::vector<std::atomic<int>> hits(kCount);
      std::atomic<long long> sum{0};
      parallel_for_indexed(kCount, jobs, policy, [&](std::size_t i) {
        hits[i].fetch_add(1);
        sum.fetch_add(static_cast<long long>(i));
      });
      const auto lost =
          std::count_if(hits.begin(), hits.end(),
                        [](const std::atomic<int>& h) {
                          return h.load() != 1;
                        });
      ASSERT_EQ(lost, 0) << "jobs=" << jobs << " mode "
                         << static_cast<int>(mode);
      EXPECT_EQ(sum.load(),
                static_cast<long long>(kCount) * (kCount - 1) / 2);
    }
  }
}

TEST(SchedulerStress, ManySmallBatchesReuseThePool) {
  // 500 back-to-back small regions: the persistent pool must neither
  // lose tasks nor grow without bound.
  constexpr std::size_t kBatch = 16;
  // Earlier regions (same process) may already have grown the pool;
  // jobs=4 batches must not grow it past max(already-there, 3).
  const int allowed =
      std::max(Scheduler::exists() ? Scheduler::global().worker_count() : 0,
               3);
  std::vector<int> out(kBatch, 0);
  for (int round = 0; round < 500; ++round) {
    parallel_for_indexed(kBatch, 4, [&](std::size_t i) {
      out[i] = round + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < kBatch; ++i) {
      ASSERT_EQ(out[i], round + static_cast<int>(i)) << "round " << round;
    }
  }
  EXPECT_LE(Scheduler::global().worker_count(), allowed)
      << "500 jobs=4 batches must not keep spinning up threads";
}

}  // namespace
}  // namespace rip
